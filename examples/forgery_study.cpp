// Forgery study: what it takes for an attacker to fake ownership (§3.3,
// §4.2.2, Theorem 1).
//
// Mallory holds a stolen watermarked image classifier. She cannot read the
// embedded signature (detection fails) and cannot find the trigger set
// (suppression fails), so her last option is forgery: invent a signature σ'
// and a trigger set D' on which the model happens to show σ''s pattern.
// This example walks through why that is hard:
//   * the decision problem is NP-hard (we solve a 3SAT instance through the
//     very same solver to make the equivalence tangible),
//   * at believable distortion budgets the solver proves most instances
//     UNSAT, and
//   * the forgeries that do exist look wrong and score badly under any
//     independently trained model.

#include <cstdio>

#include "attacks/forgery_attack.h"
#include "core/watermark.h"
#include "data/sampling.h"
#include "data/synthetic.h"
#include "reduction/reduction.h"

int main() {
  using namespace treewm;

  std::printf("=== The target: a watermarked digit classifier ===\n");
  data::Dataset dataset = data::synthetic::MakeMnist26Like(/*seed=*/55, 3000);
  Rng rng(8);
  auto split = data::MakeTrainTest(dataset, 0.3, &rng).MoveValue();
  core::Signature sigma = core::Signature::Random(24, 0.5, &rng);
  core::WatermarkConfig config;
  config.seed = 13;
  core::Watermarker watermarker(config);
  auto wm = watermarker.CreateWatermark(split.train, sigma).MoveValue();
  std::printf("%zu trees, accuracy %.4f, legitimate trigger: %zu instances\n\n",
              wm.model.num_trees(), wm.model.Accuracy(split.test),
              wm.trigger_set.num_rows());

  std::printf("=== Why forgery is hard in principle (Theorem 1) ===\n");
  // Forging against a crafted ensemble is exactly 3SAT: watch the forgery
  // solver crack a formula by working on its tree encoding.
  Rng formula_rng(21);
  auto formula = reduction::RandomThreeCnf(10, 42, &formula_rng).MoveValue();
  auto assignment = reduction::SolveThreeSatViaForgery(formula);
  if (assignment.ok()) {
    std::printf("random 3SAT instance (10 vars, 42 clauses): SATISFIABLE via "
                "forgery solver\n");
  } else {
    std::printf("random 3SAT instance (10 vars, 42 clauses): %s\n",
                assignment.status().ToString().c_str());
  }
  std::printf("-> any forgery procedure doubles as a 3SAT solver, so no "
              "polynomial algorithm exists unless P=NP.\n\n");

  std::printf("=== Mallory tries anyway ===\n");
  core::Signature fake = core::Signature::Random(24, 0.5, &rng);
  std::printf("%-8s %10s %10s %12s %14s\n", "epsilon", "forged", "unsat",
              "budget-out", "max distort");
  for (double epsilon : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    attacks::ForgeryAttackConfig attack;
    attack.epsilon = epsilon;
    attack.max_attempts = 30;
    attack.max_nodes_per_instance = 100000;
    auto report =
        attacks::RunForgeryAttack(wm.model, fake, split.test, attack).MoveValue();
    double max_distortion = 0.0;
    for (const auto& inst : report.instances) {
      max_distortion = std::max(max_distortion, inst.linf_distance);
    }
    std::printf("%-8.1f %10zu %10zu %12zu %14.3f\n", epsilon, report.forged,
                report.unsat, report.budget_exhausted, max_distortion);
  }

  std::printf("\n=== What a forgery looks like ===\n");
  attacks::ForgeryAttackConfig showcase;
  showcase.epsilon = 0.7;
  showcase.max_forged = 1;
  showcase.max_attempts = 50;
  auto report =
      attacks::RunForgeryAttack(wm.model, fake, split.test, showcase).MoveValue();
  if (!report.instances.empty()) {
    const auto& inst = report.instances.front();
    std::printf("original test instance %zu:\n", inst.source_row);
    std::vector<float> original(split.test.Row(inst.source_row).begin(),
                                split.test.Row(inst.source_row).end());
    std::printf("%s", data::synthetic::RenderImageAscii(original).c_str());
    std::printf("forged instance (L-inf distance %.3f):\n", inst.linf_distance);
    std::printf("%s", data::synthetic::RenderImageAscii(inst.features).c_str());
    std::printf("-> visibly corrupted; an independent model (or a human) "
                "flags it immediately.\n");
  } else {
    std::printf("no forgery found within the budget even at eps=0.7.\n");
  }
  return 0;
}
