// Quickstart: watermark a random forest in ~40 lines.
//
//   1. load (here: synthesize) a training set,
//   2. pick an owner signature,
//   3. run Algorithm 1 to get a watermarked ensemble + trigger set,
//   4. verify the watermark black-box, save the escrow bundle.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/verification.h"
#include "core/watermark.h"
#include "data/sampling.h"
#include "data/synthetic.h"
#include "io/model_io.h"

int main() {
  using namespace treewm;

  // 1. Data: 569 instances × 30 features, labels ±1, normalized to [0,1].
  data::Dataset dataset = data::synthetic::MakeBreastCancerLike(/*seed=*/2025);
  Rng rng(1);
  auto split = data::MakeTrainTest(dataset, /*test_fraction=*/0.3, &rng).MoveValue();
  std::printf("train: %zu rows, test: %zu rows, %zu features\n",
              split.train.num_rows(), split.test.num_rows(),
              split.train.num_features());

  // 2. A 40-bit signature encoding who we are (bit i steers tree i).
  core::Signature sigma = core::Signature::FromText("Alice");
  std::printf("signature (%zu bits): %s\n", sigma.length(),
              sigma.ToBitString().c_str());

  // 3. Algorithm 1: grid search -> trigger sampling -> Adjust(H) ->
  //    T0/T1 training -> interleave.
  core::WatermarkConfig config;
  config.seed = 7;
  config.trigger_fraction = 0.02;
  core::Watermarker watermarker(config);
  auto watermarked = watermarker.CreateWatermark(split.train, sigma).MoveValue();
  std::printf("watermarked ensemble: %zu trees, trigger set: %zu instances\n",
              watermarked.model.num_trees(), watermarked.trigger_set.num_rows());
  std::printf("test accuracy: %.4f\n", watermarked.model.Accuracy(split.test));

  // 4. Black-box verification: the trigger hides inside a test batch.
  core::VerificationRequest request{watermarked.signature,
                                    watermarked.trigger_set, split.test};
  core::ForestBlackBox suspect(watermarked.model);
  Rng charlie(3);
  auto report =
      core::VerificationAuthority::Verify(suspect, request, &charlie).MoveValue();
  std::printf("verification: %s (matched %zu/%zu instances, log10 p = %.1f)\n",
              report.verified ? "WATERMARK PRESENT" : "not found",
              report.matching_instances, report.trigger_size,
              report.log10_p_value);

  // 5. Escrow everything needed for a future dispute.
  const std::string path = "/tmp/treewm_quickstart_bundle.json";
  Status saved = io::SaveBundle(io::BundleFrom(watermarked), path);
  std::printf("bundle saved to %s: %s\n", path.c_str(),
              saved.ok() ? "ok" : saved.ToString().c_str());
  return report.verified ? 0 : 1;
}
