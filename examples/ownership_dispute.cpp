// Ownership dispute: the full Alice / Bob / Charlie protocol from §3.2.
//
// Alice trains and watermarks a fraud-detection model (imbalanced tabular
// data, the ijcnn1-like workload). Bob steals the model and serves it behind
// an API (white-box access for him, but he dares not modify it). Alice sues;
// Charlie — the legal authority — receives Alice's escrow bundle, queries
// Bob's API black-box on a batch where the trigger instances hide among
// ordinary test rows, and rules.
//
// The example also shows both ways the ruling can go: Bob's stolen model
// verifies, while an independent model trained by honest Carol does not.

#include <cstdio>

#include "core/verification.h"
#include "core/watermark.h"
#include "data/sampling.h"
#include "data/synthetic.h"
#include "io/model_io.h"

int main() {
  using namespace treewm;

  std::printf("=== Act 1: Alice trains and watermarks ===\n");
  data::Dataset dataset = data::synthetic::MakeIjcnn1Like(/*seed=*/99, 4000);
  Rng rng(5);
  auto split = data::MakeTrainTest(dataset, 0.3, &rng).MoveValue();

  core::Signature sigma = core::Signature::Random(/*length=*/48, 0.5, &rng);
  core::WatermarkConfig config;
  config.seed = 11;
  config.trigger_fraction = 0.02;
  // Imbalanced data embeds slowly under +1 weight bumps; be generous.
  config.trigger_training.weight_increment = 2.0;
  config.trigger_training.max_boost_rounds = 200;
  core::Watermarker watermarker(config);
  auto alice_model = watermarker.CreateWatermark(split.train, sigma).MoveValue();
  std::printf("Alice's model: %zu trees, accuracy %.4f, trigger %zu instances\n",
              alice_model.model.num_trees(), alice_model.model.Accuracy(split.test),
              alice_model.trigger_set.num_rows());

  // Alice escrows her bundle (signature + trigger + model snapshot).
  const std::string escrow = "/tmp/treewm_escrow.json";
  if (Status s = io::SaveBundle(io::BundleFrom(alice_model), escrow); !s.ok()) {
    std::printf("escrow failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("\n=== Act 2: Bob steals the model ===\n");
  // Bob got the model file wholesale; he serves it unmodified (§3.1's threat
  // model: integrity-protected deployment, or fear of accuracy loss).
  auto bob_copy = io::LoadBundle(escrow).MoveValue().model;
  std::printf("Bob serves an identical copy (%zu trees).\n", bob_copy.num_trees());

  // Honest Carol trains her own model on her own (similar) data.
  forest::ForestConfig carol_config;
  carol_config.num_trees = 48;
  carol_config.tree = alice_model.tuned_config;
  carol_config.seed = 1234;
  auto carol_data = data::synthetic::MakeIjcnn1Like(/*seed=*/123, 4000);
  Rng carol_rng(6);
  auto carol_split = data::MakeTrainTest(carol_data, 0.3, &carol_rng).MoveValue();
  auto carol_model =
      forest::RandomForest::Fit(carol_split.train, {}, carol_config).MoveValue();
  std::printf("Carol's independent model: accuracy %.4f\n",
              carol_model.Accuracy(split.test));

  std::printf("\n=== Act 3: Charlie adjudicates ===\n");
  auto bundle = io::LoadBundle(escrow).MoveValue();
  core::VerificationRequest request{bundle.signature, bundle.trigger_set,
                                    split.test};
  Rng charlie(7);

  core::ForestBlackBox bob_api(bob_copy);
  auto bob_report =
      core::VerificationAuthority::Verify(bob_api, request, &charlie).MoveValue();
  std::printf("Bob:   matched %zu/%zu trigger instances, bit rate %.3f, "
              "log10 p = %.1f -> %s\n",
              bob_report.matching_instances, bob_report.trigger_size,
              bob_report.bit_match_rate, bob_report.log10_p_value,
              bob_report.verified || bob_report.conclusive()
                  ? "GUILTY (watermark present)"
                  : "inconclusive");

  core::ForestBlackBox carol_api(carol_model);
  auto carol_report =
      core::VerificationAuthority::Verify(carol_api, request, &charlie).MoveValue();
  std::printf("Carol: matched %zu/%zu trigger instances, bit rate %.3f, "
              "log10 p = %.1f -> %s\n",
              carol_report.matching_instances, carol_report.trigger_size,
              carol_report.bit_match_rate, carol_report.log10_p_value,
              carol_report.verified ? "guilty?!" : "INNOCENT (no watermark)");

  return ((bob_report.verified || bob_report.conclusive()) &&
          !carol_report.verified && !carol_report.conclusive())
             ? 0
             : 1;
}
