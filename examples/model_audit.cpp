// Model audit: a due-diligence tool built on the treewm API.
//
// Scenario: a company acquires a vendor's random-forest model and wants to
// know, before deployment, (a) whether the model behaves suspiciously like
// it carries somebody's watermark, and (b) how exposed the model would be to
// the three attacks the paper analyses if the company embedded its *own*
// watermark. The audit runs entirely through public treewm interfaces and
// prints a scorecard.

#include <cstdio>

#include "attacks/detection.h"
#include "attacks/forgery_attack.h"
#include "attacks/suppression.h"
#include "common/stats.h"
#include "core/verification.h"
#include "core/watermark.h"
#include "data/sampling.h"
#include "data/synthetic.h"

int main() {
  using namespace treewm;

  // The vendor hands over a model and a sample of its training distribution.
  data::Dataset dataset = data::synthetic::MakeBreastCancerLike(/*seed=*/77);
  Rng rng(9);
  auto split = data::MakeTrainTest(dataset, 0.3, &rng).MoveValue();

  // Unbeknownst to the buyer, the vendor watermarked the model.
  core::Signature vendor_sigma = core::Signature::Random(32, 0.5, &rng);
  core::WatermarkConfig vendor_config;
  vendor_config.seed = 17;
  core::Watermarker vendor(vendor_config);
  auto vendor_model = vendor.CreateWatermark(split.train, vendor_sigma).MoveValue();
  const forest::RandomForest& model = vendor_model.model;

  std::printf("=== Audit 1: structural anomaly scan ===\n");
  // Without the signature the auditor can only look for bimodal structure.
  for (auto stat :
       {attacks::TreeStatistic::kDepth, attacks::TreeStatistic::kLeafCount}) {
    auto values = attacks::MeasureStatistic(model, stat);
    RunningStats stats;
    for (double v : values) stats.Add(v);
    const double cv = stats.Mean() > 0 ? stats.PopulationStdDev() / stats.Mean()
                                       : 0.0;
    std::printf("%-8s mean %.2f  std %.2f  coeff-of-variation %.3f %s\n",
                attacks::TreeStatisticName(stat), stats.Mean(),
                stats.PopulationStdDev(), cv,
                cv < 0.25 ? "(uniform — no watermark signal)"
                          : "(bimodal — investigate)");
  }

  std::printf("\n=== Audit 2: accuracy due diligence ===\n");
  forest::ForestConfig reference_config;
  reference_config.num_trees = model.num_trees();
  reference_config.tree = vendor_model.tuned_config;
  reference_config.seed = 23;
  auto reference =
      forest::RandomForest::Fit(split.train, {}, reference_config).MoveValue();
  std::printf("vendor model accuracy:    %.4f\n", model.Accuracy(split.test));
  std::printf("reference retrain:        %.4f\n", reference.Accuracy(split.test));
  std::printf("gap:                      %+.4f (within watermarking noise)\n",
              model.Accuracy(split.test) - reference.Accuracy(split.test));

  std::printf("\n=== Audit 3: exposure if WE watermark it ourselves ===\n");
  // The buyer embeds its own watermark into a retrained copy and measures
  // the three attack surfaces on its own artifact.
  core::Signature buyer_sigma = core::Signature::FromText("Buy!");
  core::WatermarkConfig buyer_config;
  buyer_config.seed = 29;
  core::Watermarker buyer(buyer_config);
  auto buyer_model = buyer.CreateWatermark(split.train, buyer_sigma).MoveValue();

  // (a) detection exposure
  auto detection = attacks::DetectByThreshold(
      buyer_model.model, attacks::TreeStatistic::kLeafCount, buyer_sigma);
  std::printf("detection: attacker recovers %zu/%zu bits (50%% = chance)\n",
              detection.num_correct, buyer_sigma.length());

  // (b) suppression exposure
  auto suppression =
      attacks::ProbeSuppression(buyer_model.trigger_set, split.test).MoveValue();
  std::printf("suppression: trigger NN-affinity %.3f vs %.3f expected "
              "(ratio %.2f; ~1 is safe)\n",
              suppression.trigger_nn_fraction, suppression.expected_fraction,
              suppression.separation_ratio);

  // (c) forgery exposure at a believable distortion budget
  auto fake = core::Signature::Random(buyer_sigma.length(), 0.5, &rng);
  attacks::ForgeryAttackConfig forgery;
  forgery.epsilon = 0.1;
  forgery.max_attempts = 40;
  auto forged =
      attacks::RunForgeryAttack(buyer_model.model, fake, split.test, forgery)
          .MoveValue();
  std::printf("forgery @ eps=0.1: %zu forged / %zu attempts "
              "(legitimate trigger: %zu instances)\n",
              forged.forged, forged.attempts, buyer_model.trigger_set.num_rows());

  // (d) and the watermark actually verifies.
  core::VerificationRequest request{buyer_sigma, buyer_model.trigger_set,
                                    split.test};
  core::ForestBlackBox box(buyer_model.model);
  Rng verify_rng(31);
  auto verification =
      core::VerificationAuthority::Verify(box, request, &verify_rng).MoveValue();
  std::printf("verification of our own mark: %s (log10 p = %.1f)\n",
              verification.verified ? "OK" : "FAILED",
              verification.log10_p_value);

  return verification.verified ? 0 : 1;
}
