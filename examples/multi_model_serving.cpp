// Multi-model serving demo: the crash-safe model registry end to end.
//
//   1. train two forests, snapshot one to disk, and load both into a
//      ModelRegistry — one from memory, one cold-started from the binary
//      snapshot (bit-identical serving either way),
//   2. put a SocketServer in registry mode in front: a v1 client (no model
//      id) lands on the default model, a v2 client addresses "compact" by
//      name, and the models listing comes back over the wire,
//   3. hot-reload the default model under traffic — the swap is atomic, so
//      every request completes on exactly one image and nothing is dropped,
//   4. crash-loop a reload with an injected fault until the circuit breaker
//      opens: the old image keeps serving, further reloads are refused
//      typed, and Unload + Load resets the breaker,
//   5. drain and check the registry accounting identity closes exactly.
//
// Build & run:  cmake --build build && ./build/example_multi_model_serving
//
// The same stack is scriptable from a shell via the CLI:
//   ./build/serve_client serve 7070          # two models, ^D to stop
//   ./build/serve_client models 7070
//   ./build/serve_client predict 7070 --model demo-compact 0.5,...,42.5

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/fault_injection.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "io/ensemble_snapshot.h"
#include "predict/flat_ensemble.h"
#include "serve/registry/model_registry.h"
#include "serve/wire/socket_client.h"
#include "serve/wire/socket_server.h"

namespace {

using namespace treewm;

std::shared_ptr<const predict::FlatEnsemble> TrainImage(uint64_t seed,
                                                        size_t num_trees) {
  auto dataset = data::synthetic::MakeBlobs(seed, 300, 6, 1.5);
  forest::ForestConfig config;
  config.num_trees = num_trees;
  config.seed = seed;
  auto forest = forest::RandomForest::Fit(dataset, {}, config).MoveValue();
  return std::make_shared<const predict::FlatEnsemble>(
      predict::FlatEnsemble::FromClassificationTrees(forest.trees()));
}

}  // namespace

int main() {
  using std::chrono::microseconds;

  // 1. Two models into one registry; "compact" cold-starts from a binary
  //    snapshot exactly as a restarted server would.
  auto main_image = TrainImage(/*seed=*/2025, /*num_trees=*/16);
  auto compact_image = TrainImage(/*seed=*/7, /*num_trees=*/5);
  const std::string snapshot_path = "/tmp/treewm_demo_compact.twsn";
  if (!io::SaveEnsembleSnapshot(*compact_image, snapshot_path).ok()) return 1;

  serve::ModelRegistryOptions registry_options;
  registry_options.serving.queue.capacity = 256;
  registry_options.serving.batch.max_batch_rows = 16;
  registry_options.serving.batch.max_batch_delay = microseconds(100);
  registry_options.reload_breaker_threshold = 2;
  auto registry = serve::ModelRegistry::Create(registry_options).MoveValue();
  if (!registry->Load("main", main_image).ok()) return 1;
  if (!registry->LoadFromSnapshot("compact", snapshot_path).ok()) return 1;
  for (const serve::ModelEntryInfo& info : registry->List()) {
    std::printf("model '%s': %s, checksum %08x\n", info.id.c_str(),
                serve::ModelStateName(info.state), info.checksum);
  }

  // 2. Registry-mode wire front door: v1 clients land on default_model.
  serve::wire::SocketServerOptions server_options;
  server_options.default_model = "main";
  auto server =
      serve::wire::SocketServer::Create(registry.get(), server_options)
          .MoveValue();
  std::printf("serving %zu models on 127.0.0.1:%u (default 'main')\n",
              registry->List().size(), server->port());

  const std::vector<float> probe = {0.5f, -1.25f, 3.0f, 0.0f, -0.0f, 2.5f};
  serve::wire::SocketClientOptions v1_options;
  v1_options.port = server->port();
  serve::wire::SocketClient v1_client(v1_options);
  auto via_default = v1_client.Predict(probe).MoveValue();
  auto in_process = registry->Predict("main", probe).MoveValue();
  std::printf("v1 client -> default model: label %+d (%s in-process)\n",
              via_default.label,
              via_default.label == in_process.label &&
                      via_default.votes == in_process.votes
                  ? "bit-identical to"
                  : "MISMATCHES");

  serve::wire::SocketClientOptions v2_options = v1_options;
  v2_options.model_id = "compact";
  serve::wire::SocketClient v2_client(v2_options);
  auto via_id = v2_client.Predict(probe).MoveValue();
  std::printf("v2 client -> 'compact': label %+d with %zu votes\n", via_id.label,
              via_id.votes.size());
  for (const auto& row : v1_client.ListModels().MoveValue()) {
    std::printf("  wire listing: '%s' state %u, %llu submitted\n",
                row.id.c_str(), row.state,
                (unsigned long long)row.submitted);
  }

  // 3. Atomic hot reload under traffic: retrain "main" and swap it in while
  //    requests flow. Every request completes on exactly one image.
  auto retrained = TrainImage(/*seed=*/2026, /*num_trees=*/16);
  size_t completed = 0;
  for (int i = 0; i < 50; ++i) {
    if (i == 20 && !registry->Reload("main", retrained).ok()) return 1;
    completed += registry->Predict("main", probe).ok() ? 1 : 0;
  }
  std::printf("hot reload under traffic: %zu/50 completed, 0 dropped\n",
              completed);

  // 4. Crash-looping reload -> circuit breaker. The old image keeps
  //    serving throughout; reset is an explicit operator action.
  {
    FaultSpec always;
    ScopedFault crash("serve.registry.load.fail", always);
    for (int attempt = 0; attempt < 2; ++attempt) {
      const Status failed = registry->Reload("main", retrained);
      std::printf("reload attempt %d: %s\n", attempt + 1,
                  StatusCodeName(failed.code()));
    }
  }
  const Status refused = registry->Reload("main", retrained);  // fault gone
  std::printf("breaker open: healthy reload refused as %s; serving %s\n",
              StatusCodeName(refused.code()),
              registry->Predict("main", probe).ok() ? "continues" : "BROKEN");
  if (!registry->Unload("main").ok()) return 1;
  if (!registry->Load("main", retrained).ok()) return 1;
  std::printf("unload + load resets the breaker: %s\n",
              registry->Reload("main", main_image).ok() ? "reload serves again"
                                                        : "STILL REFUSED");

  // 5. Drain everything; the registry accounting identity closes exactly:
  //    submitted == front-end submitted + refused_unknown + refused_not_serving.
  server->Shutdown();
  registry->Shutdown();
  const serve::RegistryStats stats = registry->stats();
  const bool closes =
      stats.submitted == stats.serving.submitted + stats.refused_unknown_model +
                             stats.refused_not_serving;
  std::printf(
      "registry stats: %llu submitted, %llu reloads ok, %llu reload failures, "
      "%llu breaker trips; accounting %s\n",
      (unsigned long long)stats.submitted, (unsigned long long)stats.reloads_ok,
      (unsigned long long)stats.reload_failures,
      (unsigned long long)stats.breaker_trips,
      closes ? "closes" : "DOES NOT CLOSE");
  std::remove(snapshot_path.c_str());
  return closes ? 0 : 1;
}
