// Serving demo: the fault-tolerant front-end from a client's point of view.
//
//   1. train a forest, wrap its flat image in a ServingFrontEnd,
//   2. serve single-instance requests and check them against the scalar path,
//   3. force overload pushback (ResourceExhausted) with an injected fault and
//      ride it out with RetryWithBackoff — the polite-client discipline,
//   4. show a deadline failing closed, then drain on shutdown.
//
// Build & run:  cmake --build build && ./build/example_serving_demo

#include <chrono>
#include <cstdio>

#include "common/fault_injection.h"
#include "data/sampling.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "predict/flat_ensemble.h"
#include "serve/retry.h"
#include "serve/serving_front_end.h"

int main() {
  using namespace treewm;
  using std::chrono::milliseconds;

  // 1. A model to serve: 16 trees on the synthetic breast-cancer workload.
  data::Dataset dataset = data::synthetic::MakeBreastCancerLike(/*seed=*/2025);
  Rng rng(1);
  auto split = data::MakeTrainTest(dataset, /*test_fraction=*/0.3, &rng).MoveValue();
  forest::ForestConfig config;
  config.num_trees = 16;
  config.seed = 5;
  auto forest = forest::RandomForest::Fit(split.train, {}, config).MoveValue();

  serve::ServingOptions options;
  options.queue.capacity = 64;
  options.queue.shed_high_water = 48;
  options.batch.max_batch_rows = 32;
  options.batch.max_batch_delay = milliseconds(1);
  auto serving =
      serve::ServingFrontEnd::Create(
          std::make_shared<predict::FlatEnsemble>(
              predict::FlatEnsemble::FromClassificationTrees(forest.trees())),
          options)
          .MoveValue();
  std::printf("serving %zu trees over %zu features\n", serving->num_trees(),
              serving->num_features());

  // 2. Single-instance requests; answers match the scalar reference bit for
  //    bit regardless of how the front-end batched them.
  size_t agree = 0;
  const size_t kProbes = 50;
  for (size_t i = 0; i < kProbes; ++i) {
    auto result = serving->Predict(split.test.Row(i)).MoveValue();
    agree += result.label == forest.Predict(split.test.Row(i)) ? 1 : 0;
  }
  std::printf("served == scalar reference on %zu/%zu probes\n", agree, kProbes);

  // 3. Overload pushback. Arm the queue-full fault site so the first two
  //    admissions are refused ResourceExhausted — exactly what a client sees
  //    when the shed high-water trips — and retry with capped exponential
  //    backoff + jitter. Attempt 3 lands after ~3 ms of backing off.
  FaultSpec queue_full;
  queue_full.max_fires = 2;
  ScopedFault forced_overload("serve.admission.full", queue_full);
  serve::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = milliseconds(1);
  policy.seed = 7;
  size_t attempts = 0;
  auto retried = serve::RetryWithBackoff(policy, /*clock=*/nullptr, [&] {
    ++attempts;
    return serving->Predict(split.test.Row(0));
  });
  std::printf("overload: attempt 1+2 shed, attempt %zu served label %+d %s\n",
              attempts, retried.ok() ? retried.value().label : 0,
              retried.ok() ? "(retry absorbed the pushback)" : "(gave up)");

  // Deadlines are NOT retried — a request whose time budget is spent is
  // dead, not unlucky. Zero timeout expires at the admission check.
  serve::RequestOptions instant;
  instant.timeout = std::chrono::nanoseconds(1);
  attempts = 0;
  auto expired = serve::RetryWithBackoff(policy, /*clock=*/nullptr, [&] {
    ++attempts;
    return serving->Predict(split.test.Row(0), instant);
  });
  std::printf("deadline: %s after %zu attempt(s) — fails closed, no retry\n",
              StatusCodeName(expired.status().code()), attempts);

  // 4. Drain: every accepted request is answered before Shutdown returns.
  serving->Shutdown();
  auto stats = serving->stats();
  std::printf(
      "stats: submitted %llu, admitted %llu, completed %llu, shed %llu, "
      "expired %llu, batches %llu (max %llu rows)\n",
      (unsigned long long)stats.submitted, (unsigned long long)stats.admitted,
      (unsigned long long)stats.completed_ok,
      (unsigned long long)(stats.rejected_full + stats.rejected_shed),
      (unsigned long long)(stats.expired_admission + stats.expired_dispatch +
                           stats.expired_completion),
      (unsigned long long)stats.batches, (unsigned long long)stats.max_batch_rows);
  return 0;
}
