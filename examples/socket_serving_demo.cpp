// Socket serving demo: the verification service behind a real TCP socket.
//
//   1. train a forest, wrap it in a ServingFrontEnd, put a SocketServer in
//      front of it on an ephemeral loopback port,
//   2. ping the server and serve predictions over the wire, checking each
//      answer bit-for-bit against the in-process front-end,
//   3. inject wire faults (1-byte short reads) and show the determinism
//      contract: the wire can change WHICH requests complete, never the
//      value a completed request is served,
//   4. show a wire deadline failing closed, then drain and read the
//      exactly-once accounting off the stats snapshot.
//
// Build & run:  cmake --build build && ./build/example_socket_serving_demo
//
// The same stack is scriptable from a shell via the CLI:
//   ./build/serve_client serve 7070          # foreground server, ^D to stop
//   ./build/serve_client ping 7070
//   ./build/serve_client predict 7070 0.5,-1.25,3.0,0.0,-0.0,42.5
//   ./build/serve_client load 7070 500 4     # 500 requests over 4 connections

#include <chrono>
#include <cstdio>

#include "common/fault_injection.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "predict/flat_ensemble.h"
#include "serve/retry.h"
#include "serve/serving_front_end.h"
#include "serve/wire/socket_client.h"
#include "serve/wire/socket_server.h"

int main() {
  using namespace treewm;
  using std::chrono::microseconds;
  using std::chrono::milliseconds;

  // 1. Model + front-end + socket server. The queue keeps the default
  //    kReject policy: the wire's backpressure is a typed refusal frame, so
  //    the event loop must never block on admission.
  data::Dataset dataset = data::synthetic::MakeBlobs(/*seed=*/2025, 300, 6, 1.5);
  forest::ForestConfig config;
  config.num_trees = 16;
  config.seed = 5;
  auto forest = forest::RandomForest::Fit(dataset, {}, config).MoveValue();
  auto flat = std::make_shared<predict::FlatEnsemble>(
      predict::FlatEnsemble::FromClassificationTrees(forest.trees()));

  serve::ServingOptions serving_options;
  serving_options.queue.capacity = 256;
  serving_options.queue.shed_high_water = 224;
  serving_options.batch.max_batch_rows = 16;
  serving_options.batch.max_batch_delay = microseconds(100);
  auto serving = serve::ServingFrontEnd::Create(flat, serving_options).MoveValue();

  serve::wire::SocketServerOptions server_options;
  server_options.port = 0;  // kernel-assigned; read back below
  server_options.max_connections = 8;
  server_options.max_in_flight_per_connection = 16;
  auto server =
      serve::wire::SocketServer::Create(serving.get(), server_options).MoveValue();
  std::printf("serving %zu trees on 127.0.0.1:%u\n", serving->num_trees(),
              server->port());

  serve::wire::SocketClientOptions client_options;
  client_options.port = server->port();
  serve::wire::SocketClient client(client_options);

  // 2. Liveness, then predictions over the wire. Every answer must match
  //    the in-process front-end bit for bit — the wire adds transport, not
  //    semantics.
  auto ping = client.Ping();
  std::printf("ping: %s\n", ping.ok() ? "pong" : ping.ToString().c_str());

  const size_t kProbes = 32;
  size_t agree = 0;
  for (size_t i = 0; i < kProbes; ++i) {
    auto row = dataset.Row(i);
    auto over_wire = client.Predict(row).MoveValue();
    auto in_process = serving->Predict(row).MoveValue();
    agree += (over_wire.label == in_process.label &&
              over_wire.votes == in_process.votes)
                 ? 1
                 : 0;
  }
  std::printf("wire == in-process on %zu/%zu probes (label + votes)\n", agree,
              kProbes);

  // 3. Hostile transport: clamp every server-side read to 1 byte. Frames
  //    reassemble byte by byte; completed answers are still bit-identical.
  //    A polite client rides resets out with PredictWithRetry (retries only
  //    overload pushback and reset-class transport errors).
  {
    FaultSpec short_reads;
    short_reads.probability = 1.0;
    ScopedFault fault("serve.wire.read.short", short_reads);
    serve::RetryPolicy policy;
    policy.max_attempts = 4;
    policy.initial_backoff = milliseconds(1);
    policy.seed = 7;
    size_t still_agree = 0;
    for (size_t i = 0; i < kProbes; ++i) {
      auto row = dataset.Row(i);
      auto result = client.PredictWithRetry(row, policy);
      if (result.ok() &&
          result.value().label == serving->Predict(row).MoveValue().label) {
        ++still_agree;
      }
    }
    std::printf("under 1-byte reads: %zu/%zu served, all bit-identical\n",
                still_agree, kProbes);
  }

  // 4. Deadlines ride the request frame: a 1 ns budget is spent before
  //    admission, so the server refuses it with a typed error frame.
  auto expired = client.Predict(dataset.Row(0), std::chrono::nanoseconds(1));
  std::printf("1 ns deadline over the wire: %s (fails closed)\n",
              StatusCodeName(expired.status().code()));

  // Drain. After Shutdown() the wire accounting closes exactly once:
  // requests_received == responses_sent + refusals_sent + responses_dropped.
  server->Shutdown();
  auto stats = server->stats();
  std::printf(
      "wire stats: %llu requests -> %llu responses + %llu refusals + %llu "
      "dropped; %llu connections accepted, %llu closed\n",
      (unsigned long long)stats.requests_received,
      (unsigned long long)stats.responses_sent,
      (unsigned long long)stats.refusals_sent,
      (unsigned long long)stats.responses_dropped,
      (unsigned long long)stats.connections_accepted,
      (unsigned long long)stats.connections_closed);
  const bool closes = stats.requests_received ==
                      stats.responses_sent + stats.refusals_sent +
                          stats.responses_dropped;
  std::printf("accounting %s\n", closes ? "closes" : "DOES NOT CLOSE");
  serving->Shutdown();
  return closes ? 0 : 1;
}
