// Extension harness: false ownership claims (ambiguity attack, the cheap
// cousin of forgery). Instead of solving the NP-hard forgery problem, a lazy
// claimant just shows up in court with a random signature and a random
// subset of test instances as their "trigger set", hoping the verification
// statistics fire by accident. This harness measures that false-positive
// rate — the soundness of Charlie's procedure — across many random claims.
//
// Expectation: zero verified and zero conclusive claims; the bit match rate
// of false claims concentrates around the control rate (~0.5), and the
// minimum observed p-value stays far above the 1e-10 conclusiveness bar.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/verification.h"

int main() {
  using namespace treewm;
  const auto scales = bench::PaperDatasets();
  const auto& scale = scales[1];  // breast-cancer: fast
  bench::BenchEnv env = bench::MakeEnv(scale, /*seed=*/52);
  Rng rng(125);
  const core::Signature sigma = core::Signature::Random(scale.num_trees, 0.5, &rng);
  core::WatermarkConfig config = bench::ConfigFor(scale, 17);
  core::Watermarker watermarker(config);
  auto wm = watermarker.CreateWatermark(env.train, sigma).MoveValue();

  const size_t num_claims = bench::FullScale() ? 500 : 200;
  const size_t trigger_size = wm.trigger_set.num_rows();

  std::printf("Extension — false ownership claims against a watermarked model\n");
  std::printf("dataset %s, m=%zu, %zu random claims, fake trigger size %zu\n",
              env.name.c_str(), scale.num_trees, num_claims, trigger_size);
  bench::PrintRule();

  size_t verified = 0;
  size_t conclusive = 0;
  double max_bit_rate = 0.0;
  double min_log10_bit_p = 0.0;
  core::ForestBlackBox suspect(wm.model);
  for (size_t claim = 0; claim < num_claims; ++claim) {
    const core::Signature fake =
        core::Signature::Random(scale.num_trees, 0.5, &rng);
    // The claimant's "trigger": random test rows with their true labels (the
    // best distribution-matching fake they can assemble without solving the
    // forgery problem).
    std::vector<size_t> rows =
        rng.SampleWithoutReplacement(env.test.num_rows(), trigger_size);
    data::Dataset fake_trigger = env.test.Subset(rows);
    std::vector<size_t> decoy_rows;
    for (size_t i = 0; i < env.test.num_rows(); ++i) {
      if (std::find(rows.begin(), rows.end(), i) == rows.end()) {
        decoy_rows.push_back(i);
      }
    }
    core::VerificationRequest request{fake, fake_trigger,
                                      env.test.Subset(decoy_rows)};
    auto report =
        core::VerificationAuthority::Verify(suspect, request, &rng).MoveValue();
    if (report.verified) ++verified;
    if (report.conclusive()) ++conclusive;
    max_bit_rate = std::max(max_bit_rate, report.bit_match_rate);
    min_log10_bit_p = std::min(min_log10_bit_p, report.log10_bit_p_value);
  }

  std::printf("verified (strict):      %zu / %zu\n", verified, num_claims);
  std::printf("conclusive (p < 1e-10): %zu / %zu\n", conclusive, num_claims);
  std::printf("worst bit match rate:   %.3f (legitimate owner: 1.000)\n",
              max_bit_rate);
  std::printf("best log10 bit p-value: %.2f (conclusiveness bar: -10)\n",
              min_log10_bit_p);
  bench::PrintRule();
  std::printf("expected: 0 verified, 0 conclusive — random claims never beat "
              "Charlie's statistics.\n");
  return (verified == 0 && conclusive == 0) ? 0 : 1;
}
