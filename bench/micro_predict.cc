// Micro-benchmarks: inference throughput (single tree, forest majority vote,
// per-tree predict-all as used by black-box verification), including the
// flat-engine vs scalar-reference comparison that gates the batched
// inference work: BM_*Flat must stay well ahead of its BM_*Scalar twin on
// the 32-tree, 4000×20 fixture.
//
// Machine-readable output convention (see bench/README.md):
//   ./micro_predict --benchmark_out=BENCH_predict.json --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <map>

#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "predict/batch_predictor.h"
#include "predict/reference.h"

namespace {

using namespace treewm;

struct Fixture {
  data::Dataset data;
  forest::RandomForest forest;
};

const Fixture& CachedFixture(size_t num_trees) {
  static auto* cache = new std::map<size_t, Fixture>();
  auto it = cache->find(num_trees);
  if (it == cache->end()) {
    auto data = data::synthetic::MakeBlobs(11, 4000, 20, 1.2);
    forest::ForestConfig config;
    config.num_trees = num_trees;
    config.seed = 3;
    auto forest = forest::RandomForest::Fit(data, {}, config).MoveValue();
    it = cache->emplace(num_trees, Fixture{std::move(data), std::move(forest)})
             .first;
  }
  return it->second;
}

void BM_TreePredict(benchmark::State& state) {
  const Fixture& fx = CachedFixture(8);
  const auto& tree = fx.forest.trees()[0];
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Predict(fx.data.Row(i)));
    i = (i + 1) % fx.data.num_rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreePredict);

void BM_ForestPredict(benchmark::State& state) {
  const Fixture& fx = CachedFixture(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.forest.Predict(fx.data.Row(i)));
    i = (i + 1) % fx.data.num_rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestPredict)->Arg(8)->Arg(32)->Arg(80);

void BM_ForestPredictAll(benchmark::State& state) {
  const Fixture& fx = CachedFixture(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    auto votes = fx.forest.PredictAll(fx.data.Row(i));
    benchmark::DoNotOptimize(votes);
    i = (i + 1) % fx.data.num_rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestPredictAll)->Arg(8)->Arg(32)->Arg(80);

// --- flat engine vs retained scalar reference (the acceptance gate) --------

void BM_ForestAccuracyScalar(benchmark::State& state) {
  const Fixture& fx = CachedFixture(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predict::reference::Accuracy(fx.forest, fx.data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_ForestAccuracyScalar)->Unit(benchmark::kMillisecond);

void BM_ForestAccuracyFlat(benchmark::State& state) {
  const Fixture& fx = CachedFixture(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.forest.Accuracy(fx.data));  // flat engine
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_ForestAccuracyFlat)->Unit(benchmark::kMillisecond);

void BM_PredictAllBatchScalar(benchmark::State& state) {
  const Fixture& fx = CachedFixture(32);
  for (auto _ : state) {
    auto votes = predict::reference::PredictAllBatch(fx.forest, fx.data);
    benchmark::DoNotOptimize(votes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_PredictAllBatchScalar)->Unit(benchmark::kMillisecond);

void BM_PredictAllBatchFlat(benchmark::State& state) {
  const Fixture& fx = CachedFixture(32);
  for (auto _ : state) {
    auto votes = fx.forest.PredictAllBatch(fx.data);  // flat engine
    benchmark::DoNotOptimize(votes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_PredictAllBatchFlat)->Unit(benchmark::kMillisecond);

// The flat vote-matrix output shape: same traversal as PredictAllBatchFlat
// minus the vector<vector<int>> materialization (one contiguous allocation
// for the whole batch). Expected within ~10% of BM_ForestAccuracyFlat.
void BM_PredictAllVotesFlat(benchmark::State& state) {
  const Fixture& fx = CachedFixture(32);
  for (auto _ : state) {
    auto votes = fx.forest.PredictAllVotes(fx.data);  // VoteMatrix path
    benchmark::DoNotOptimize(votes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_PredictAllVotesFlat)->Unit(benchmark::kMillisecond);

// Reusing a prebuilt predictor strips the per-call FlatEnsemble rebuild —
// the serving-loop configuration.
void BM_ForestAccuracyFlatPrebuilt(benchmark::State& state) {
  const Fixture& fx = CachedFixture(32);
  predict::BatchPredictor predictor(
      predict::FlatEnsemble::FromClassificationTrees(fx.forest.trees()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.LabelAccuracy(fx.data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_ForestAccuracyFlatPrebuilt)->Unit(benchmark::kMillisecond);

// Cost of packing the ensemble into the SoA arena (paid once per batch call
// in the model-class entry points).
void BM_FlatEnsembleBuild(benchmark::State& state) {
  const Fixture& fx = CachedFixture(32);
  for (auto _ : state) {
    auto flat = predict::FlatEnsemble::FromClassificationTrees(fx.forest.trees());
    benchmark::DoNotOptimize(flat);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatEnsembleBuild);

}  // namespace

BENCHMARK_MAIN();
