// Micro-benchmarks: inference throughput (single tree, forest majority vote,
// per-tree predict-all as used by black-box verification), including the
// kernel comparison matrix that gates the batched inference work: on the
// 32-tree, 4000×20 fixture the forced-FloatKey and forced-quantized paths
// are measured against each other and against the retained scalar
// reference in the same run (BM_*FloatKey / BM_*Quantized / BM_*Scalar).
// Feature cardinality is varied so both bin widths run: the default blobs
// fixture quantizes to uint16 rows, the coarse-grid fixture (features
// snapped to a small value grid before training) to uint8 rows — each
// benchmark's label reports the width actually selected.
//
// Machine-readable output convention (see bench/README.md):
//   ./micro_predict --benchmark_out=BENCH_predict.json --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>

#include "bench_util.h"
#include "boosting/gbdt.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "predict/batch_predictor.h"
#include "predict/quantized_ensemble.h"
#include "predict/reference.h"

namespace {

using namespace treewm;

const bench::ForestFixture& CachedFixture(size_t num_trees) {
  return bench::CachedForestFixture(11, 4000, 20, 1.2, num_trees, 3);
}

/// The same shape with every feature snapped to a coarse value grid before
/// training, so each feature carries far fewer distinct thresholds and the
/// ensemble quantizes to uint8 rows.
const bench::ForestFixture& CachedCoarseFixture() {
  static auto* fx = [] {
    auto data = data::synthetic::MakeBlobs(11, 4000, 20, 1.2);
    data::Dataset coarse(data.num_features());
    for (size_t r = 0; r < data.num_rows(); ++r) {
      std::vector<float> row(data.Row(r).begin(), data.Row(r).end());
      for (float& x : row) x = std::round(x * 4.0f) / 4.0f;
      if (!coarse.AddRow(row, data.Label(r)).ok()) std::abort();  // fixture rows are well-formed
    }
    forest::ForestConfig config;
    config.num_trees = 32;
    config.seed = 3;
    auto forest = forest::RandomForest::Fit(coarse, {}, config).MoveValue();
    return new bench::ForestFixture{std::move(coarse), std::move(forest)};
  }();
  return *fx;
}

/// Prebuilt predictor with a forced kernel — the serving-loop configuration
/// both kernel benchmarks use so the comparison is traversal-only.
predict::BatchPredictor ForcedPredictor(const forest::RandomForest& forest,
                                        predict::PredictKernel kernel) {
  predict::BatchOptions options;
  options.kernel = kernel;
  return predict::BatchPredictor(
      predict::FlatEnsemble::FromClassificationTrees(forest.trees()), options);
}

/// Tags the benchmark with the bin width the dispatcher actually selected,
/// so BENCH_predict.json records which kernel shape ran.
void LabelKernel(benchmark::State& state, const predict::BatchPredictor& p) {
  if (p.ChosenKernel() != predict::PredictKernel::kQuantized) {
    state.SetLabel("floatkey");
    return;
  }
  const auto q = p.ensemble().Quantized();
  state.SetLabel(q->bin_width() == predict::QuantizedEnsemble::BinWidth::kU8
                     ? "quantized/u8"
                     : "quantized/u16");
}

void BM_TreePredict(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(8);
  const auto& tree = fx.forest.trees()[0];
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Predict(fx.data.Row(i)));
    i = (i + 1) % fx.data.num_rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreePredict);

void BM_ForestPredict(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.forest.Predict(fx.data.Row(i)));
    i = (i + 1) % fx.data.num_rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestPredict)->Arg(8)->Arg(32)->Arg(80);

void BM_ForestPredictAll(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    auto votes = fx.forest.PredictAll(fx.data.Row(i));
    benchmark::DoNotOptimize(votes);
    i = (i + 1) % fx.data.num_rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestPredictAll)->Arg(8)->Arg(32)->Arg(80);

// --- kernels vs the retained scalar reference (the acceptance gate) --------

void BM_ForestAccuracyScalar(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predict::reference::Accuracy(fx.forest, fx.data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_ForestAccuracyScalar)->Unit(benchmark::kMillisecond);

// Model entry point: auto kernel dispatch, lazy shared flat image — what
// every production call site actually runs.
void BM_ForestAccuracyFlat(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.forest.Accuracy(fx.data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_ForestAccuracyFlat)->Unit(benchmark::kMillisecond);

void BM_ForestAccuracyFloatKey(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(32);
  auto predictor = ForcedPredictor(fx.forest, predict::PredictKernel::kFloatKey);
  LabelKernel(state, predictor);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.LabelAccuracy(fx.data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_ForestAccuracyFloatKey)->Unit(benchmark::kMillisecond);

void BM_ForestAccuracyQuantized(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(32);
  auto predictor = ForcedPredictor(fx.forest, predict::PredictKernel::kQuantized);
  LabelKernel(state, predictor);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.LabelAccuracy(fx.data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_ForestAccuracyQuantized)->Unit(benchmark::kMillisecond);

// The uint8-bin shape: same geometry, coarse feature grid (fewer distinct
// thresholds per feature), paired FloatKey run on the identical fixture.
void BM_ForestAccuracyFloatKeyU8(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedCoarseFixture();
  auto predictor = ForcedPredictor(fx.forest, predict::PredictKernel::kFloatKey);
  LabelKernel(state, predictor);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.LabelAccuracy(fx.data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_ForestAccuracyFloatKeyU8)->Unit(benchmark::kMillisecond);

void BM_ForestAccuracyQuantizedU8(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedCoarseFixture();
  auto predictor = ForcedPredictor(fx.forest, predict::PredictKernel::kQuantized);
  LabelKernel(state, predictor);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.LabelAccuracy(fx.data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_ForestAccuracyQuantizedU8)->Unit(benchmark::kMillisecond);

// --- the predict.all votes path --------------------------------------------

void BM_PredictAllBatchScalar(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(32);
  for (auto _ : state) {
    auto votes = predict::reference::PredictAllBatch(fx.forest, fx.data);
    benchmark::DoNotOptimize(votes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_PredictAllBatchScalar)->Unit(benchmark::kMillisecond);

void BM_PredictAllBatchFlat(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(32);
  for (auto _ : state) {
    auto votes = fx.forest.PredictAllBatch(fx.data);  // nested adapter
    benchmark::DoNotOptimize(votes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_PredictAllBatchFlat)->Unit(benchmark::kMillisecond);

// The flat vote-matrix output shape through the model entry point (auto
// kernel): one contiguous allocation for the whole batch.
void BM_PredictAllVotesFlat(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(32);
  for (auto _ : state) {
    auto votes = fx.forest.PredictAllVotes(fx.data);  // VoteMatrix path
    benchmark::DoNotOptimize(votes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_PredictAllVotesFlat)->Unit(benchmark::kMillisecond);

void BM_PredictAllVotesFloatKey(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(32);
  auto predictor = ForcedPredictor(fx.forest, predict::PredictKernel::kFloatKey);
  LabelKernel(state, predictor);
  for (auto _ : state) {
    auto votes = predictor.PredictAllVotes(fx.data);
    benchmark::DoNotOptimize(votes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_PredictAllVotesFloatKey)->Unit(benchmark::kMillisecond);

void BM_PredictAllVotesQuantized(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(32);
  auto predictor = ForcedPredictor(fx.forest, predict::PredictKernel::kQuantized);
  LabelKernel(state, predictor);
  for (auto _ : state) {
    auto votes = predictor.PredictAllVotes(fx.data);
    benchmark::DoNotOptimize(votes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_PredictAllVotesQuantized)->Unit(benchmark::kMillisecond);

// --- GBDT regression paths (double leaf values, staged curve) --------------

const boosting::Gbdt& CachedGbdt() {
  static auto* model = [] {
    const bench::ForestFixture& fx = CachedFixture(32);
    boosting::GbdtConfig config;
    config.num_trees = 100;
    return new boosting::Gbdt(boosting::Gbdt::Fit(fx.data, config).MoveValue());
  }();
  return *model;
}

predict::BatchPredictor ForcedGbdtPredictor(predict::PredictKernel kernel) {
  const boosting::Gbdt& model = CachedGbdt();
  predict::BatchOptions options;
  options.kernel = kernel;
  return predict::BatchPredictor(
      predict::FlatEnsemble::FromRegressionTrees(
          model.trees(), model.initial_score(), model.learning_rate()),
      options);
}

void BM_GbdtAccuracyFloatKey(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(32);
  auto predictor = ForcedGbdtPredictor(predict::PredictKernel::kFloatKey);
  LabelKernel(state, predictor);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.ScoreAccuracy(fx.data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_GbdtAccuracyFloatKey)->Unit(benchmark::kMillisecond);

void BM_GbdtAccuracyQuantized(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(32);
  auto predictor = ForcedGbdtPredictor(predict::PredictKernel::kQuantized);
  LabelKernel(state, predictor);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.ScoreAccuracy(fx.data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_GbdtAccuracyQuantized)->Unit(benchmark::kMillisecond);

void BM_GbdtStagedCurveFloatKey(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(32);
  auto predictor = ForcedGbdtPredictor(predict::PredictKernel::kFloatKey);
  LabelKernel(state, predictor);
  for (auto _ : state) {
    auto curve = predictor.StagedAccuracyCurve(fx.data);
    benchmark::DoNotOptimize(curve);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_GbdtStagedCurveFloatKey)->Unit(benchmark::kMillisecond);

void BM_GbdtStagedCurveQuantized(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(32);
  auto predictor = ForcedGbdtPredictor(predict::PredictKernel::kQuantized);
  LabelKernel(state, predictor);
  for (auto _ : state) {
    auto curve = predictor.StagedAccuracyCurve(fx.data);
    benchmark::DoNotOptimize(curve);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_GbdtStagedCurveQuantized)->Unit(benchmark::kMillisecond);

// --- image construction costs ----------------------------------------------

// Reusing a prebuilt predictor strips the per-call FlatEnsemble rebuild —
// the serving-loop configuration.
void BM_ForestAccuracyFlatPrebuilt(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(32);
  predict::BatchPredictor predictor(
      predict::FlatEnsemble::FromClassificationTrees(fx.forest.trees()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.LabelAccuracy(fx.data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_ForestAccuracyFlatPrebuilt)->Unit(benchmark::kMillisecond);

// Cost of packing the ensemble into the SoA arena (paid once per batch call
// in the model-class entry points).
void BM_FlatEnsembleBuild(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(32);
  for (auto _ : state) {
    auto flat = predict::FlatEnsemble::FromClassificationTrees(fx.forest.trees());
    benchmark::DoNotOptimize(flat);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatEnsembleBuild);

// Cost of the binning pass on top of a flat image (paid once per model,
// cached alongside it).
void BM_QuantizedEnsembleBuild(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedFixture(32);
  const auto flat = predict::FlatEnsemble::FromClassificationTrees(fx.forest.trees());
  for (auto _ : state) {
    auto q = predict::QuantizedEnsemble::Build(flat);
    benchmark::DoNotOptimize(q);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuantizedEnsembleBuild);

}  // namespace

BENCHMARK_MAIN();
