// Micro-benchmarks: inference throughput (single tree, forest majority vote,
// per-tree predict-all as used by black-box verification).

#include <benchmark/benchmark.h>

#include "data/synthetic.h"
#include "forest/random_forest.h"

namespace {

using namespace treewm;

struct Fixture {
  data::Dataset data;
  forest::RandomForest forest;
};

const Fixture& CachedFixture(size_t num_trees) {
  static auto* cache = new std::map<size_t, Fixture>();
  auto it = cache->find(num_trees);
  if (it == cache->end()) {
    auto data = data::synthetic::MakeBlobs(11, 4000, 20, 1.2);
    forest::ForestConfig config;
    config.num_trees = num_trees;
    config.seed = 3;
    auto forest = forest::RandomForest::Fit(data, {}, config).MoveValue();
    it = cache->emplace(num_trees, Fixture{std::move(data), std::move(forest)})
             .first;
  }
  return it->second;
}

void BM_TreePredict(benchmark::State& state) {
  const Fixture& fx = CachedFixture(8);
  const auto& tree = fx.forest.trees()[0];
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Predict(fx.data.Row(i)));
    i = (i + 1) % fx.data.num_rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreePredict);

void BM_ForestPredict(benchmark::State& state) {
  const Fixture& fx = CachedFixture(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.forest.Predict(fx.data.Row(i)));
    i = (i + 1) % fx.data.num_rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestPredict)->Arg(8)->Arg(32)->Arg(80);

void BM_ForestPredictAll(benchmark::State& state) {
  const Fixture& fx = CachedFixture(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    auto votes = fx.forest.PredictAll(fx.data.Row(i));
    benchmark::DoNotOptimize(votes);
    i = (i + 1) % fx.data.num_rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestPredictAll)->Arg(8)->Arg(32)->Arg(80);

void BM_ForestAccuracyBatch(benchmark::State& state) {
  const Fixture& fx = CachedFixture(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.forest.Accuracy(fx.data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_rows()));
}
BENCHMARK(BM_ForestAccuracyBatch)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
