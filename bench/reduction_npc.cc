// Sanity harness for Theorem 1 (NP-hardness): runs random 3SAT instances
// through the 3CNF -> tree-ensemble reduction and the forgery solver, and
// checks agreement with the CDCL SAT solver. Reports timing on both routes
// across the clause/variable density spectrum (the 4.26 phase transition is
// where random 3SAT is hardest).

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "reduction/reduction.h"
#include "sat/solver.h"

int main() {
  using namespace treewm;
  const int num_vars = bench::FullScale() ? 18 : 12;
  const double densities[] = {2.0, 3.0, 4.26, 5.5, 7.0};
  const int instances_per_density = bench::FullScale() ? 40 : 20;

  std::printf("Theorem 1 harness — 3SAT via watermark forgery vs CDCL "
              "(n=%d vars)\n", num_vars);
  bench::PrintRule();
  std::printf("%8s %8s %8s %10s %14s %14s\n", "density", "sat", "unsat",
              "mismatch", "forgery ms", "cdcl ms");
  bench::PrintRule();

  Rng rng(113);
  for (double density : densities) {
    const int num_clauses =
        static_cast<int>(density * static_cast<double>(num_vars));
    int sat_count = 0;
    int unsat_count = 0;
    int mismatches = 0;
    double forgery_ms = 0.0;
    double cdcl_ms = 0.0;
    for (int i = 0; i < instances_per_density; ++i) {
      auto formula =
          reduction::RandomThreeCnf(num_vars, num_clauses, &rng).MoveValue();

      Stopwatch cdcl_sw;
      sat::Solver referee;
      const bool loaded = LoadIntoSolver(reduction::ToCnfFormula(formula), &referee);
      const bool expect = loaded && referee.Solve() == sat::SatResult::kSat;
      cdcl_ms += cdcl_sw.ElapsedMillis();

      Stopwatch forgery_sw;
      auto via_forgery = reduction::SolveThreeSatViaForgery(formula);
      forgery_ms += forgery_sw.ElapsedMillis();

      if (via_forgery.ok() != expect) {
        ++mismatches;
      } else if (expect) {
        ++sat_count;
      } else {
        ++unsat_count;
      }
    }
    std::printf("%8.2f %8d %8d %10d %14.2f %14.2f\n", density, sat_count,
                unsat_count, mismatches,
                forgery_ms / instances_per_density,
                cdcl_ms / instances_per_density);
    if (mismatches != 0) {
      std::printf("ERROR: reduction disagreed with the CDCL solver\n");
      return 1;
    }
  }
  bench::PrintRule();
  std::printf("0 mismatches — the reduction is equivalence-preserving "
              "(Theorem 1).\n");
  return 0;
}
