// Micro-benchmarks: CDCL SAT solver on random 3SAT (across the density
// spectrum) and pigeonhole instances, plus the solver-side witness
// validation path: candidate forgery witnesses checked against the ensemble
// one row block at a time through the flat engine (PatternHoldsBatch) vs the
// retained scalar per-witness PredictAll reference.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "core/signature.h"
#include "data/synthetic.h"
#include "reduction/three_cnf.h"
#include "sat/solver.h"
#include "smt/forgery_solver.h"

namespace {

using namespace treewm;

void BM_Random3Sat(benchmark::State& state) {
  const int num_vars = static_cast<int>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  Rng rng(static_cast<uint64_t>(num_vars));
  // Pre-generate a pool of formulas to avoid measuring generation.
  std::vector<sat::CnfFormula> pool;
  for (int i = 0; i < 16; ++i) {
    auto f = reduction::RandomThreeCnf(
                 num_vars, static_cast<int>(density * num_vars), &rng)
                 .MoveValue();
    pool.push_back(reduction::ToCnfFormula(f));
  }
  size_t next = 0;
  for (auto _ : state) {
    sat::Solver solver;
    if (LoadIntoSolver(pool[next], &solver)) {
      benchmark::DoNotOptimize(solver.Solve());
    }
    next = (next + 1) % pool.size();
  }
}
BENCHMARK(BM_Random3Sat)
    ->Args({50, 300})
    ->Args({50, 426})
    ->Args({50, 550})
    ->Args({100, 426})
    ->Unit(benchmark::kMicrosecond);

void AddPigeonhole(sat::Solver* s, int pigeons, int holes) {
  s->EnsureVars(pigeons * holes);
  for (int p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> clause;
    for (int h = 0; h < holes; ++h) {
      clause.push_back(sat::Lit::Make(p * holes + h, false));
    }
    s->AddClause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s->AddClause({sat::Lit::Make(p1 * holes + h, true),
                      sat::Lit::Make(p2 * holes + h, true)});
      }
    }
  }
}

void BM_Pigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver solver;
    AddPigeonhole(&solver, holes + 1, holes);
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_Pigeonhole)->Arg(5)->Arg(6)->Arg(7)->Unit(benchmark::kMillisecond);

// --- witness validation: scalar per-witness vs batched row blocks ----------
//
// The forgery pipeline's acceptance test asks, for a pool of candidate
// witnesses, which ones induce the σ'-required per-tree pattern. The scalar
// baseline pays one PredictAll ensemble walk per witness; the batched path
// answers the whole pool with one flat-engine vote-matrix query
// (smt::ForgerySolver::PatternHoldsBatch).

struct WitnessFixture {
  const bench::ForestFixture& model;  ///< shared blobs + forest fixture
  std::vector<uint8_t> signature_bits;

  const forest::RandomForest& forest() const { return model.forest; }
  const data::Dataset& witnesses() const { return model.data; }
};

const WitnessFixture& CachedWitnessFixture() {
  static auto* fx = [] {
    const auto& model = bench::CachedForestFixture(17, 2000, 20, 1.2, 32, 29);
    Rng rng(31);
    auto fake = core::Signature::Random(model.forest.num_trees(), 0.5, &rng);
    return new WitnessFixture{model, fake.bits()};
  }();
  return *fx;
}

void BM_WitnessValidationScalar(benchmark::State& state) {
  const WitnessFixture& fx = CachedWitnessFixture();
  for (auto _ : state) {
    size_t holds = 0;
    for (size_t i = 0; i < fx.witnesses().num_rows(); ++i) {
      // Scalar reference: one full ensemble walk per witness.
      const std::vector<int> votes = fx.forest().PredictAll(fx.witnesses().Row(i));
      bool ok = true;
      for (size_t t = 0; t < votes.size(); ++t) {
        if (votes[t] != smt::RequiredLabel(+1, fx.signature_bits[t])) {
          ok = false;
          break;
        }
      }
      if (ok) ++holds;
    }
    benchmark::DoNotOptimize(holds);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.witnesses().num_rows()));
}
BENCHMARK(BM_WitnessValidationScalar)->Unit(benchmark::kMillisecond);

void BM_WitnessValidationBatched(benchmark::State& state) {
  const WitnessFixture& fx = CachedWitnessFixture();
  for (auto _ : state) {
    const std::vector<uint8_t> holds = smt::ForgerySolver::PatternHoldsBatch(
        fx.forest(), fx.signature_bits, +1, fx.witnesses());
    benchmark::DoNotOptimize(holds);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.witnesses().num_rows()));
}
BENCHMARK(BM_WitnessValidationBatched)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
