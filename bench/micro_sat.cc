// Micro-benchmarks: CDCL SAT solver on random 3SAT (across the density
// spectrum) and pigeonhole instances.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "reduction/three_cnf.h"
#include "sat/solver.h"

namespace {

using namespace treewm;

void BM_Random3Sat(benchmark::State& state) {
  const int num_vars = static_cast<int>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  Rng rng(static_cast<uint64_t>(num_vars));
  // Pre-generate a pool of formulas to avoid measuring generation.
  std::vector<sat::CnfFormula> pool;
  for (int i = 0; i < 16; ++i) {
    auto f = reduction::RandomThreeCnf(
                 num_vars, static_cast<int>(density * num_vars), &rng)
                 .MoveValue();
    pool.push_back(reduction::ToCnfFormula(f));
  }
  size_t next = 0;
  for (auto _ : state) {
    sat::Solver solver;
    if (LoadIntoSolver(pool[next], &solver)) {
      benchmark::DoNotOptimize(solver.Solve());
    }
    next = (next + 1) % pool.size();
  }
}
BENCHMARK(BM_Random3Sat)
    ->Args({50, 300})
    ->Args({50, 426})
    ->Args({50, 550})
    ->Args({100, 426})
    ->Unit(benchmark::kMicrosecond);

void AddPigeonhole(sat::Solver* s, int pigeons, int holes) {
  s->EnsureVars(pigeons * holes);
  for (int p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> clause;
    for (int h = 0; h < holes; ++h) {
      clause.push_back(sat::Lit::Make(p * holes + h, false));
    }
    s->AddClause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s->AddClause({sat::Lit::Make(p1 * holes + h, true),
                      sat::Lit::Make(p2 * holes + h, true)});
      }
    }
  }
}

void BM_Pigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver solver;
    AddPigeonhole(&solver, holes + 1, holes);
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_Pigeonhole)->Arg(5)->Arg(6)->Arg(7)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
