// Micro-benchmarks: forgery-query latency as a function of ensemble size and
// distortion budget (the quantity behind Figure 4's feasibility results).

#include <benchmark/benchmark.h>

#include "core/signature.h"
#include "data/synthetic.h"
#include "smt/cnf_encoder.h"
#include "smt/forgery_solver.h"

namespace {

using namespace treewm;

struct Fixture {
  data::Dataset data;
  forest::RandomForest forest;
};

const Fixture& CachedModel(size_t num_trees) {
  static auto* cache = new std::map<size_t, Fixture>();
  auto it = cache->find(num_trees);
  if (it == cache->end()) {
    auto data = data::synthetic::MakeBreastCancerLike(19);
    forest::ForestConfig config;
    config.num_trees = num_trees;
    config.seed = 23;
    auto forest = forest::RandomForest::Fit(data, {}, config).MoveValue();
    it = cache->emplace(num_trees, Fixture{std::move(data), std::move(forest)})
             .first;
  }
  return it->second;
}

smt::ForgeryQuery MakeQuery(const Fixture& fx, size_t num_trees, double epsilon,
                            uint64_t seed) {
  Rng rng(seed);
  auto fake = core::Signature::Random(num_trees, 0.5, &rng);
  smt::ForgeryQuery query;
  query.signature_bits = fake.bits();
  query.target_label = +1;
  const size_t row = rng.UniformInt(fx.data.num_rows());
  query.anchor.assign(fx.data.Row(row).begin(), fx.data.Row(row).end());
  query.epsilon = epsilon;
  query.max_nodes = 500000;
  return query;
}

void BM_ForgeryBoxSolver(benchmark::State& state) {
  const size_t num_trees = static_cast<size_t>(state.range(0));
  const double epsilon = static_cast<double>(state.range(1)) / 100.0;
  const Fixture& fx = CachedModel(num_trees);
  uint64_t seed = 1;
  for (auto _ : state) {
    auto query = MakeQuery(fx, num_trees, epsilon, seed++);
    auto outcome = smt::ForgerySolver::Solve(fx.forest, query);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ForgeryBoxSolver)
    ->Args({8, 30})
    ->Args({32, 30})
    ->Args({64, 30})
    ->Args({32, 10})
    ->Args({32, 70})
    ->Unit(benchmark::kMicrosecond);

void BM_ForgeryCnfBackend(benchmark::State& state) {
  const size_t num_trees = static_cast<size_t>(state.range(0));
  const Fixture& fx = CachedModel(num_trees);
  uint64_t seed = 1;
  sat::SolveBudget budget;
  budget.max_conflicts = 100000;
  for (auto _ : state) {
    auto query = MakeQuery(fx, num_trees, 0.3, seed++);
    auto outcome = smt::CnfForgeryBackend::Solve(fx.forest, query, budget);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ForgeryCnfBackend)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_LeafExtraction(benchmark::State& state) {
  const Fixture& fx = CachedModel(32);
  for (auto _ : state) {
    for (const auto& tree : fx.forest.trees()) {
      auto leaves = tree.ExtractLeaves();
      benchmark::DoNotOptimize(leaves);
    }
  }
}
BENCHMARK(BM_LeafExtraction)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
