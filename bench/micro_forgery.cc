// Micro-benchmarks: forgery-query latency as a function of ensemble size and
// distortion budget (the quantity behind Figure 4's feasibility results),
// plus the multi-anchor solve engine: the scalar per-anchor loop (which
// recompiles the requirement arena for every anchor) against one SolveBatch
// call (arena compiled once, watched-option search, pool fan-out), and the
// compiled-vs-rebuilt arena split. Reference numbers are committed as
// bench/BENCH_forgery.json (see bench/README.md).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/signature.h"
#include "smt/cnf_encoder.h"
#include "smt/compiled_requirements.h"
#include "smt/forgery_solver.h"

namespace {

using namespace treewm;

// The shared breast-cancer-like model fixture (seeds match the pre-dedup
// private cache so the BM_ForgeryBoxSolver trajectory stays comparable).
const bench::ForestFixture& CachedModel(size_t num_trees) {
  return bench::CachedNamedForestFixture("breast-cancer", /*data_seed=*/19,
                                         /*rows=*/0, num_trees,
                                         /*forest_seed=*/23);
}

smt::ForgeryQuery MakeQuery(const bench::ForestFixture& fx, size_t num_trees,
                            double epsilon, uint64_t seed) {
  Rng rng(seed);
  auto fake = core::Signature::Random(num_trees, 0.5, &rng);
  smt::ForgeryQuery query;
  query.signature_bits = fake.bits();
  query.target_label = +1;
  const size_t row = rng.UniformInt(fx.data.num_rows());
  query.anchor.assign(fx.data.Row(row).begin(), fx.data.Row(row).end());
  query.epsilon = epsilon;
  query.max_nodes = 500000;
  return query;
}

void BM_ForgeryBoxSolver(benchmark::State& state) {
  const size_t num_trees = static_cast<size_t>(state.range(0));
  const double epsilon = static_cast<double>(state.range(1)) / 100.0;
  const bench::ForestFixture& fx = CachedModel(num_trees);
  uint64_t seed = 1;
  for (auto _ : state) {
    auto query = MakeQuery(fx, num_trees, epsilon, seed++);
    auto outcome = smt::ForgerySolver::Solve(fx.forest, query);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ForgeryBoxSolver)
    ->Args({8, 30})
    ->Args({32, 30})
    ->Args({64, 30})
    ->Args({32, 10})
    ->Args({32, 70})
    ->Unit(benchmark::kMicrosecond);

void BM_ForgeryCnfBackend(benchmark::State& state) {
  const size_t num_trees = static_cast<size_t>(state.range(0));
  const bench::ForestFixture& fx = CachedModel(num_trees);
  uint64_t seed = 1;
  sat::SolveBudget budget;
  budget.max_conflicts = 100000;
  for (auto _ : state) {
    auto query = MakeQuery(fx, num_trees, 0.3, seed++);
    auto outcome = smt::CnfForgeryBackend::Solve(fx.forest, query, budget);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ForgeryCnfBackend)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_LeafExtraction(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedModel(32);
  for (auto _ : state) {
    for (const auto& tree : fx.forest.trees()) {
      auto leaves = tree.ExtractLeaves();
      benchmark::DoNotOptimize(leaves);
    }
  }
}
BENCHMARK(BM_LeafExtraction)->Unit(benchmark::kMicrosecond);

// --- the multi-anchor solve engine -----------------------------------------
//
// The forgery attack solves one query per test anchor against the same
// (forest, σ'). The scalar loop below is what RunForgeryAttack used to do:
// per anchor, rebuild the requirement structure and search. The batched pair
// solves the same anchor block through ForgerySolver::SolveBatch — one
// CompiledRequirements arena per label for the whole block, watched-option
// search, batched end validation. Same verdicts (property-tested in
// tests/test_forgery_batch.cc); the delta is pure engine.

constexpr size_t kAnchorCount = 48;
constexpr double kAnchorEpsilon = 0.3;
constexpr uint64_t kAnchorBudget = 500000;

const std::vector<uint8_t>& FixedFakeBits(size_t num_trees) {
  static auto* cache = new std::map<size_t, std::vector<uint8_t>>();
  auto it = cache->find(num_trees);
  if (it == cache->end()) {
    Rng rng(77);
    it = cache->emplace(num_trees, core::Signature::Random(num_trees, 0.5, &rng).bits())
             .first;
  }
  return it->second;
}

data::Dataset AnchorBlock(const bench::ForestFixture& fx, size_t count) {
  std::vector<size_t> indices(count);
  for (size_t i = 0; i < count; ++i) indices[i] = i % fx.data.num_rows();
  return fx.data.Subset(indices);
}

void BM_ForgeryAnchorsScalarLoop(benchmark::State& state) {
  const size_t num_trees = static_cast<size_t>(state.range(0));
  const bench::ForestFixture& fx = CachedModel(num_trees);
  const data::Dataset anchors = AnchorBlock(fx, kAnchorCount);
  const std::vector<uint8_t>& bits = FixedFakeBits(num_trees);
  for (auto _ : state) {
    size_t sat = 0;
    for (size_t i = 0; i < anchors.num_rows(); ++i) {
      smt::ForgeryQuery query;
      query.signature_bits = bits;
      query.target_label = anchors.Label(i);
      query.anchor.assign(anchors.Row(i).begin(), anchors.Row(i).end());
      query.epsilon = kAnchorEpsilon;
      query.max_nodes = kAnchorBudget;
      auto outcome = smt::ForgerySolver::Solve(fx.forest, query).MoveValue();
      if (outcome.result == sat::SatResult::kSat) ++sat;
    }
    benchmark::DoNotOptimize(sat);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kAnchorCount));
}
BENCHMARK(BM_ForgeryAnchorsScalarLoop)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_ForgeryAnchorsSolveBatch(benchmark::State& state) {
  const size_t num_trees = static_cast<size_t>(state.range(0));
  const bench::ForestFixture& fx = CachedModel(num_trees);
  const data::Dataset anchors = AnchorBlock(fx, kAnchorCount);
  smt::ForgeryBatchQuery shared;
  shared.signature_bits = FixedFakeBits(num_trees);
  shared.epsilon = kAnchorEpsilon;
  shared.max_nodes_per_anchor = kAnchorBudget;
  for (auto _ : state) {
    auto outcomes =
        smt::ForgerySolver::SolveBatch(fx.forest, shared, anchors).MoveValue();
    benchmark::DoNotOptimize(outcomes);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kAnchorCount));
}
BENCHMARK(BM_ForgeryAnchorsSolveBatch)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

// --- compiled vs rebuilt requirement arena ---------------------------------

void BM_CompiledRequirementsBuild(benchmark::State& state) {
  const size_t num_trees = static_cast<size_t>(state.range(0));
  const bench::ForestFixture& fx = CachedModel(num_trees);
  const std::vector<uint8_t>& bits = FixedFakeBits(num_trees);
  for (auto _ : state) {
    auto arena = smt::CompiledRequirements::Compile(fx.forest, bits, +1);
    benchmark::DoNotOptimize(arena);
  }
}
BENCHMARK(BM_CompiledRequirementsBuild)->Arg(8)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_ForgerySolveRebuilt(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedModel(32);
  uint64_t seed = 1;
  for (auto _ : state) {
    auto query = MakeQuery(fx, 32, kAnchorEpsilon, seed++);
    auto outcome = smt::ForgerySolver::Solve(fx.forest, query);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ForgerySolveRebuilt)->Unit(benchmark::kMicrosecond);

void BM_ForgerySolvePrecompiled(benchmark::State& state) {
  const bench::ForestFixture& fx = CachedModel(32);
  // MakeQuery draws a fresh signature per seed; pre-compile the arenas the
  // queries will use so only the search is measured.
  uint64_t seed = 1;
  std::map<uint64_t, std::shared_ptr<const smt::CompiledRequirements>> arenas;
  for (uint64_t s = 1; s <= 64; ++s) {
    auto query = MakeQuery(fx, 32, kAnchorEpsilon, s);
    arenas[s] = smt::CompiledRequirements::Compile(fx.forest, query.signature_bits,
                                                   query.target_label)
                    .MoveValue();
  }
  for (auto _ : state) {
    auto query = MakeQuery(fx, 32, kAnchorEpsilon, seed);
    auto outcome =
        smt::ForgerySolver::Solve(fx.forest, *arenas[seed], query);
    benchmark::DoNotOptimize(outcome);
    seed = seed % 64 + 1;
  }
}
BENCHMARK(BM_ForgerySolvePrecompiled)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
