// Ablation: forgery solver backends. The dedicated branch-and-propagate box
// solver vs the eager CNF encoding solved by the CDCL engine, on identical
// forgery queries. Reports agreement (must be 100%), wall time and search
// effort, plus encoding sizes — quantifying what the dedicated decision
// procedure buys over a generic reduction.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "smt/cnf_encoder.h"

int main() {
  using namespace treewm;
  std::printf("Ablation — forgery backends: box branch&propagate vs eager CNF\n");
  bench::PrintRule();
  std::printf("%-16s %8s %6s %6s %12s %12s %10s %12s\n", "Dataset", "epsilon",
              "sat", "unsat", "box ms/q", "cnf ms/q", "agree", "cnf vars");
  bench::PrintRule();

  for (const auto& scale : bench::PaperDatasets()) {
    bench::BenchEnv env = bench::MakeEnv(scale, /*seed=*/49);
    Rng rng(117);
    const core::Signature sigma =
        core::Signature::Random(scale.num_trees, 0.5, &rng);
    core::WatermarkConfig config = bench::ConfigFor(scale, 14);
    core::Watermarker watermarker(config);
    auto wm = watermarker.CreateWatermark(env.train, sigma).MoveValue();

    for (double epsilon : {0.2, 0.5}) {
      const size_t queries = bench::FullScale() ? 40 : 15;
      size_t agree = 0;
      size_t decided = 0;
      size_t unknowns = 0;
      size_t sat_count = 0;
      size_t unsat_count = 0;
      double box_ms = 0.0;
      double cnf_ms = 0.0;
      size_t cnf_vars = 0;
      Rng query_rng(119);
      for (size_t q = 0; q < queries; ++q) {
        const core::Signature fake =
            core::Signature::Random(scale.num_trees, 0.5, &query_rng);
        smt::ForgeryQuery query;
        query.signature_bits = fake.bits();
        query.target_label = q % 2 == 0 ? +1 : -1;
        const size_t row = query_rng.UniformInt(env.test.num_rows());
        query.anchor.assign(env.test.Row(row).begin(), env.test.Row(row).end());
        query.epsilon = epsilon;
        query.max_nodes = 500000;

        Stopwatch box_sw;
        auto box = smt::ForgerySolver::Solve(wm.model, query).MoveValue();
        box_ms += box_sw.ElapsedMillis();

        smt::CnfEncodingStats stats;
        sat::SolveBudget budget;
        budget.max_conflicts = 200000;
        Stopwatch cnf_sw;
        auto cnf =
            smt::CnfForgeryBackend::Solve(wm.model, query, budget, &stats)
                .MoveValue();
        cnf_ms += cnf_sw.ElapsedMillis();
        cnf_vars = stats.num_atom_vars + stats.num_selector_vars;

        // Budget exhaustion (kUnknown) on either side is not a soundness
        // disagreement; only count queries both backends decided.
        if (box.result == sat::SatResult::kUnknown ||
            cnf.result == sat::SatResult::kUnknown) {
          ++unknowns;
        } else {
          ++decided;
          if (box.result == cnf.result) ++agree;
        }
        if (box.result == sat::SatResult::kSat) ++sat_count;
        if (box.result == sat::SatResult::kUnsat) ++unsat_count;
      }
      std::printf("%-16s %8.1f %6zu %6zu %12.2f %12.2f %8zu%% %12zu  (%zu unk)\n",
                  env.name.c_str(), epsilon, sat_count, unsat_count,
                  box_ms / static_cast<double>(queries),
                  cnf_ms / static_cast<double>(queries),
                  decided == 0 ? 100 : 100 * agree / decided, cnf_vars, unknowns);
    }
  }
  bench::PrintRule();
  std::printf("agreement must be 100%% (both procedures are complete; "
              "unknowns excepted).\n");
  return 0;
}
