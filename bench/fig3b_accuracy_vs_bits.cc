// Reproduces Figure 3 (bottom): test accuracy of watermarked vs standard
// forests as the fraction of signature bits set to 1 grows from 10% to 60%,
// with the trigger set fixed at 2% of the training data.
//
// Paper shape to reproduce: small loss overall; the worst drop is around two
// accuracy points at the highest ones-fractions (more trees forced to err).

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"

int main() {
  using namespace treewm;
  const double ones_fractions[] = {0.10, 0.20, 0.30, 0.40, 0.50, 0.60};
  std::printf("Figure 3b — accuracy vs %% of signature bits set to 1 "
              "(trigger = 2%% of train)\n");
  bench::PrintRule();
  std::printf("%-16s %10s %12s %12s %10s\n", "Dataset", "% bit 1", "WM RF acc",
              "Std RF acc", "delta");
  bench::PrintRule();

  Stopwatch total;
  for (const auto& scale : bench::PaperDatasets()) {
    bench::BenchEnv env = bench::MakeEnv(scale, /*seed=*/43);
    Rng signature_rng(101);
    for (double ones : ones_fractions) {
      const core::Signature sigma =
          core::Signature::Random(scale.num_trees, ones, &signature_rng);
      core::WatermarkConfig config = bench::ConfigFor(scale, 8);
      config.trigger_fraction = 0.02;
      core::Watermarker watermarker(config);
      auto wm = watermarker.CreateWatermark(env.train, sigma);
      if (!wm.ok()) {
        std::printf("%-16s %9.0f%% watermark failed: %s\n", env.name.c_str(),
                    ones * 100.0, wm.status().ToString().c_str());
        continue;
      }
      auto standard = bench::StandardReference(env, scale, wm.value().tuned_config, /*seed=*/56);
      const double wm_acc = wm.value().model.Accuracy(env.test);
      const double std_acc = standard.Accuracy(env.test);
      std::printf("%-16s %9.0f%% %12.4f %12.4f %+10.4f%s\n", env.name.c_str(),
                  ones * 100.0, wm_acc, std_acc, wm_acc - std_acc,
                  wm.value().t1_converged ? "" : "  (partial embed)");
    }
    bench::PrintRule();
  }
  std::printf("total %.1fs — paper: largest drop ~2 accuracy points\n",
              total.ElapsedSeconds());
  return 0;
}
