// Reproduces Figure 3 (top): test accuracy of watermarked vs standard random
// forests as the trigger-set size grows from 1% to 4% of the training data,
// with a fixed random signature containing 50% ones.
//
// Paper shape to reproduce: the watermarked curve tracks the standard curve
// within a couple of points, with negligible loss at trigger <= 2%.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"

int main() {
  using namespace treewm;
  const double trigger_fractions[] = {0.010, 0.015, 0.020, 0.025,
                                      0.030, 0.035, 0.040};
  std::printf("Figure 3a — accuracy vs trigger-set size (signature: 50%% ones)\n");
  bench::PrintRule();
  std::printf("%-16s %10s %12s %12s %10s\n", "Dataset", "|trigger|%", "WM RF acc",
              "Std RF acc", "delta");
  bench::PrintRule();

  Stopwatch total;
  for (const auto& scale : bench::PaperDatasets()) {
    bench::BenchEnv env = bench::MakeEnv(scale, /*seed=*/42);
    // Fixed random signature with 50% ones, shared across trigger sizes.
    Rng signature_rng(99);
    const core::Signature sigma =
        core::Signature::Random(scale.num_trees, 0.5, &signature_rng);

    for (double fraction : trigger_fractions) {
      core::WatermarkConfig config = bench::ConfigFor(scale, 7);
      config.trigger_fraction = fraction;
      core::Watermarker watermarker(config);
      auto wm = watermarker.CreateWatermark(env.train, sigma);
      if (!wm.ok()) {
        std::printf("%-16s %9.1f%% watermark failed: %s\n", env.name.c_str(),
                    fraction * 100.0, wm.status().ToString().c_str());
        continue;
      }
      auto standard = bench::StandardReference(env, scale, wm.value().tuned_config, /*seed=*/55);
      const double wm_acc = wm.value().model.Accuracy(env.test);
      const double std_acc = standard.Accuracy(env.test);
      std::printf("%-16s %9.1f%% %12.4f %12.4f %+10.4f%s\n", env.name.c_str(),
                  fraction * 100.0, wm_acc, std_acc, wm_acc - std_acc,
                  wm.value().t1_converged ? "" : "  (partial embed)");
    }
    bench::PrintRule();
  }
  std::printf("total %.1fs — paper: WM accuracy loss limited, negligible at "
              "trigger <= 2%%\n", total.ElapsedSeconds());
  return 0;
}
