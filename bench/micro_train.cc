// Micro-benchmarks: decision tree and random forest training throughput.

#include <benchmark/benchmark.h>

#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "tree/decision_tree.h"

namespace {

using namespace treewm;

const data::Dataset& CachedBlobs(size_t rows, size_t features) {
  static auto* cache = new std::map<std::pair<size_t, size_t>, data::Dataset>();
  auto key = std::make_pair(rows, features);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, data::synthetic::MakeBlobs(7, rows, features, 1.2))
             .first;
  }
  return it->second;
}

void BM_TreeFit(benchmark::State& state) {
  const auto& data = CachedBlobs(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  tree::TreeConfig config;
  for (auto _ : state) {
    auto tree = tree::DecisionTree::Fit(data, {}, config);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_TreeFit)
    ->Args({500, 10})
    ->Args({2000, 10})
    ->Args({2000, 50})
    ->Args({8000, 20})
    ->Unit(benchmark::kMillisecond);

void BM_TreeFitBestFirst(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  tree::TreeConfig config;
  config.max_leaf_nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto tree = tree::DecisionTree::Fit(data, {}, config);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_TreeFitBestFirst)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_TreeFitWeighted(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  std::vector<double> weights(data.num_rows(), 1.0);
  for (size_t i = 0; i < weights.size(); i += 50) weights[i] = 20.0;
  tree::TreeConfig config;
  for (auto _ : state) {
    auto tree = tree::DecisionTree::Fit(data, weights, config);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_TreeFitWeighted)->Unit(benchmark::kMillisecond);

void BM_ForestFit(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  forest::ForestConfig config;
  config.num_trees = static_cast<size_t>(state.range(0));
  config.seed = 5;
  for (auto _ : state) {
    auto forest = forest::RandomForest::Fit(data, {}, config);
    benchmark::DoNotOptimize(forest);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ForestFit)->Arg(8)->Arg(32)->Arg(80)->Unit(benchmark::kMillisecond);

void BM_ForestFitSerial(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  forest::ForestConfig config;
  config.num_trees = 32;
  config.seed = 5;
  config.num_threads = 1;
  for (auto _ : state) {
    auto forest = forest::RandomForest::Fit(data, {}, config);
    benchmark::DoNotOptimize(forest);
  }
}
BENCHMARK(BM_ForestFitSerial)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
