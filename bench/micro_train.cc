// Micro-benchmarks: decision tree, random forest and GBDT training
// throughput.
//
// Since PR 5 the trainers run on the sort-once column-index engine
// (src/tree/sorted_columns.h + trainer_core.h); every engine benchmark is
// paired with its retained naive reference (`*Reference`, per-node
// re-sorting) measured in the SAME run — the two produce bit-identical
// models by the trainer equivalence contract, so the gap is pure engine.
//
// The BM_Million* family is the histogram trainer gate (PR 8): the exact
// engine vs the opt-in binned-gradient engine on a ONE-MILLION-row fixture,
// paired in the same run for tree, forest and GBDT, with held-out accuracy
// reported as counters so the speedup is visibly not bought with accuracy.
// Reference run committed as bench/BENCH_train.json (see bench/README.md).

#include <benchmark/benchmark.h>

#include <map>
#include <utility>
#include <vector>

#include "boosting/gbdt.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "tree/binned_columns.h"
#include "tree/decision_tree.h"
#include "tree/sorted_columns.h"

namespace {

using namespace treewm;

const data::Dataset& CachedBlobs(size_t rows, size_t features) {
  static auto* cache = new std::map<std::pair<size_t, size_t>, data::Dataset>();
  auto key = std::make_pair(rows, features);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, data::synthetic::MakeBlobs(7, rows, features, 1.2))
             .first;
  }
  return it->second;
}

// ------------------------------------------------------- single trees ----

void BM_TreeFit(benchmark::State& state) {
  const auto& data = CachedBlobs(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  tree::TreeConfig config;
  for (auto _ : state) {
    auto tree = tree::DecisionTree::Fit(data, {}, config);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_TreeFit)
    ->Args({500, 10})
    ->Args({2000, 10})
    ->Args({2000, 50})
    ->Args({8000, 20})
    ->Unit(benchmark::kMillisecond);

void BM_TreeFitReference(benchmark::State& state) {
  const auto& data = CachedBlobs(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  tree::TreeConfig config;
  for (auto _ : state) {
    auto tree = tree::DecisionTree::FitReference(data, {}, config);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_TreeFitReference)
    ->Args({500, 10})
    ->Args({2000, 10})
    ->Args({2000, 50})
    ->Args({8000, 20})
    ->Unit(benchmark::kMillisecond);

// One tree on prebuilt columns: the marginal cost of a tree once the
// dataset-level sort is amortized (the forest / GBDT / TrainWithTrigger
// steady state), vs BM_TreeFit which pays the sort inside the call.
void BM_TreeFitPresortedColumns(benchmark::State& state) {
  const auto& data = CachedBlobs(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  const auto sorted = tree::SortedColumns::Build(data);
  tree::TreeConfig config;
  for (auto _ : state) {
    auto tree = tree::DecisionTree::Fit(data, {}, config, {}, sorted.get());
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_TreeFitPresortedColumns)
    ->Args({2000, 10})
    ->Args({8000, 20})
    ->Unit(benchmark::kMillisecond);

void BM_SortedColumnsBuild(benchmark::State& state) {
  const auto& data = CachedBlobs(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto sorted = tree::SortedColumns::Build(data);
    benchmark::DoNotOptimize(sorted);
  }
}
BENCHMARK(BM_SortedColumnsBuild)
    ->Args({2000, 10})
    ->Args({8000, 20})
    ->Unit(benchmark::kMillisecond);

void BM_TreeFitBestFirst(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  tree::TreeConfig config;
  config.max_leaf_nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto tree = tree::DecisionTree::Fit(data, {}, config);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_TreeFitBestFirst)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_TreeFitBestFirstReference(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  tree::TreeConfig config;
  config.max_leaf_nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto tree = tree::DecisionTree::FitReference(data, {}, config);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_TreeFitBestFirstReference)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_TreeFitWeighted(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  std::vector<double> weights(data.num_rows(), 1.0);
  for (size_t i = 0; i < weights.size(); i += 50) weights[i] = 20.0;
  tree::TreeConfig config;
  for (auto _ : state) {
    auto tree = tree::DecisionTree::Fit(data, weights, config);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_TreeFitWeighted)->Unit(benchmark::kMillisecond);

void BM_TreeFitWeightedReference(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  std::vector<double> weights(data.num_rows(), 1.0);
  for (size_t i = 0; i < weights.size(); i += 50) weights[i] = 20.0;
  tree::TreeConfig config;
  for (auto _ : state) {
    auto tree = tree::DecisionTree::FitReference(data, weights, config);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_TreeFitWeightedReference)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------ forests ----

void BM_ForestFit(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  forest::ForestConfig config;
  config.num_trees = static_cast<size_t>(state.range(0));
  config.seed = 5;
  for (auto _ : state) {
    auto forest = forest::RandomForest::Fit(data, {}, config);
    benchmark::DoNotOptimize(forest);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ForestFit)->Arg(8)->Arg(32)->Arg(80)->Unit(benchmark::kMillisecond);

void BM_ForestFitReference(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  forest::ForestConfig config;
  config.num_trees = static_cast<size_t>(state.range(0));
  config.seed = 5;
  config.use_reference_trainer = true;
  for (auto _ : state) {
    auto forest = forest::RandomForest::Fit(data, {}, config);
    benchmark::DoNotOptimize(forest);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ForestFitReference)
    ->Arg(8)
    ->Arg(32)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond);

void BM_ForestFitSerial(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  forest::ForestConfig config;
  config.num_trees = 32;
  config.seed = 5;
  config.num_threads = 1;
  for (auto _ : state) {
    auto forest = forest::RandomForest::Fit(data, {}, config);
    benchmark::DoNotOptimize(forest);
  }
}
BENCHMARK(BM_ForestFitSerial)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------- GBDT ----

void BM_GbdtFit(benchmark::State& state) {
  const auto& data = CachedBlobs(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  boosting::GbdtConfig config;
  config.num_trees = static_cast<size_t>(state.range(2));
  for (auto _ : state) {
    auto model = boosting::Gbdt::Fit(data, config);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(2));
}
BENCHMARK(BM_GbdtFit)
    ->Args({2000, 10, 50})
    ->Args({4000, 20, 50})
    ->Unit(benchmark::kMillisecond);

void BM_GbdtFitReference(benchmark::State& state) {
  const auto& data = CachedBlobs(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  boosting::GbdtConfig config;
  config.num_trees = static_cast<size_t>(state.range(2));
  config.use_reference_trainer = true;
  for (auto _ : state) {
    auto model = boosting::Gbdt::Fit(data, config);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(2));
}
BENCHMARK(BM_GbdtFitReference)
    ->Args({2000, 10, 50})
    ->Args({4000, 20, 50})
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------- million-row histogram gate ----

constexpr size_t kMillionRows = 1'000'000;
constexpr size_t kMillionFeatures = 16;

// Built once via the chunked fast path (bitwise-identical to MakeBlobs,
// regression-tested) and shared by every BM_Million* benchmark.
const data::Dataset& MillionBlobs() {
  static const data::Dataset* data = new data::Dataset(
      data::synthetic::MakeBlobsChunked(77, kMillionRows, kMillionFeatures, 1.2));
  return *data;
}

const data::Dataset& MillionHoldout() {
  static const data::Dataset* data = new data::Dataset(
      data::synthetic::MakeBlobsChunked(78, 50'000, kMillionFeatures, 1.2));
  return *data;
}

tree::TreeConfig MillionTreeConfig(tree::TrainerMode mode) {
  tree::TreeConfig config;
  config.max_depth = 10;
  config.min_samples_leaf = 20;
  config.trainer_mode = mode;
  return config;
}

void BM_MillionSortedColumnsBuild(benchmark::State& state) {
  const auto& data = MillionBlobs();
  for (auto _ : state) {
    auto sorted = tree::SortedColumns::Build(data);
    benchmark::DoNotOptimize(sorted);
  }
}
BENCHMARK(BM_MillionSortedColumnsBuild)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_MillionBinnedColumnsBuild(benchmark::State& state) {
  const auto& data = MillionBlobs();
  for (auto _ : state) {
    auto binned = tree::BinnedColumns::Build(data);
    benchmark::DoNotOptimize(binned);
  }
}
BENCHMARK(BM_MillionBinnedColumnsBuild)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_MillionTreeFitExact(benchmark::State& state) {
  const auto& data = MillionBlobs();
  auto config = MillionTreeConfig(tree::TrainerMode::kExact);
  for (auto _ : state) {
    auto fitted = tree::DecisionTree::Fit(data, {}, config);
    benchmark::DoNotOptimize(fitted);
    state.counters["holdout_accuracy"] = fitted.value().Accuracy(MillionHoldout());
  }
}
BENCHMARK(BM_MillionTreeFitExact)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_MillionTreeFitHistogram(benchmark::State& state) {
  const auto& data = MillionBlobs();
  auto config = MillionTreeConfig(tree::TrainerMode::kHistogram);
  for (auto _ : state) {
    auto fitted = tree::DecisionTree::Fit(data, {}, config);
    benchmark::DoNotOptimize(fitted);
    state.counters["holdout_accuracy"] = fitted.value().Accuracy(MillionHoldout());
  }
}
BENCHMARK(BM_MillionTreeFitHistogram)->Iterations(1)->Unit(benchmark::kMillisecond);

void MillionForestBody(benchmark::State& state, tree::TrainerMode mode) {
  const auto& data = MillionBlobs();
  forest::ForestConfig config;
  config.num_trees = 4;
  config.seed = 5;
  config.num_threads = 1;
  config.tree = MillionTreeConfig(mode);
  for (auto _ : state) {
    auto fitted = forest::RandomForest::Fit(data, {}, config);
    benchmark::DoNotOptimize(fitted);
    state.counters["holdout_accuracy"] = fitted.value().Accuracy(MillionHoldout());
  }
}

void BM_MillionForestFitExact(benchmark::State& state) {
  MillionForestBody(state, tree::TrainerMode::kExact);
}
BENCHMARK(BM_MillionForestFitExact)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_MillionForestFitHistogram(benchmark::State& state) {
  MillionForestBody(state, tree::TrainerMode::kHistogram);
}
BENCHMARK(BM_MillionForestFitHistogram)->Iterations(1)->Unit(benchmark::kMillisecond);

// GBDT is where the bin-once multiplier pays: one binning pass serves every
// boosting round, and each round's split search is O(bins), not O(rows).
void MillionGbdtBody(benchmark::State& state, tree::TrainerMode mode) {
  const auto& data = MillionBlobs();
  boosting::GbdtConfig config;
  config.num_trees = 10;
  config.tree.max_depth = 8;
  config.tree.min_samples_leaf = 20;
  config.tree.trainer_mode = mode;
  for (auto _ : state) {
    auto fitted = boosting::Gbdt::Fit(data, config);
    benchmark::DoNotOptimize(fitted);
    state.counters["holdout_accuracy"] = fitted.value().Accuracy(MillionHoldout());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(config.num_trees));
}

void BM_MillionGbdtFitExact(benchmark::State& state) {
  MillionGbdtBody(state, tree::TrainerMode::kExact);
}
BENCHMARK(BM_MillionGbdtFitExact)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_MillionGbdtFitHistogram(benchmark::State& state) {
  MillionGbdtBody(state, tree::TrainerMode::kHistogram);
}
BENCHMARK(BM_MillionGbdtFitHistogram)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
