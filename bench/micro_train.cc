// Micro-benchmarks: decision tree, random forest and GBDT training
// throughput.
//
// Since PR 5 the trainers run on the sort-once column-index engine
// (src/tree/sorted_columns.h + trainer_core.h); every engine benchmark is
// paired with its retained naive reference (`*Reference`, per-node
// re-sorting) measured in the SAME run — the two produce bit-identical
// models by the trainer equivalence contract, so the gap is pure engine.
// Reference run committed as bench/BENCH_train.json (see bench/README.md).

#include <benchmark/benchmark.h>

#include <map>
#include <utility>
#include <vector>

#include "boosting/gbdt.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "tree/decision_tree.h"
#include "tree/sorted_columns.h"

namespace {

using namespace treewm;

const data::Dataset& CachedBlobs(size_t rows, size_t features) {
  static auto* cache = new std::map<std::pair<size_t, size_t>, data::Dataset>();
  auto key = std::make_pair(rows, features);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, data::synthetic::MakeBlobs(7, rows, features, 1.2))
             .first;
  }
  return it->second;
}

// ------------------------------------------------------- single trees ----

void BM_TreeFit(benchmark::State& state) {
  const auto& data = CachedBlobs(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  tree::TreeConfig config;
  for (auto _ : state) {
    auto tree = tree::DecisionTree::Fit(data, {}, config);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_TreeFit)
    ->Args({500, 10})
    ->Args({2000, 10})
    ->Args({2000, 50})
    ->Args({8000, 20})
    ->Unit(benchmark::kMillisecond);

void BM_TreeFitReference(benchmark::State& state) {
  const auto& data = CachedBlobs(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  tree::TreeConfig config;
  for (auto _ : state) {
    auto tree = tree::DecisionTree::FitReference(data, {}, config);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_TreeFitReference)
    ->Args({500, 10})
    ->Args({2000, 10})
    ->Args({2000, 50})
    ->Args({8000, 20})
    ->Unit(benchmark::kMillisecond);

// One tree on prebuilt columns: the marginal cost of a tree once the
// dataset-level sort is amortized (the forest / GBDT / TrainWithTrigger
// steady state), vs BM_TreeFit which pays the sort inside the call.
void BM_TreeFitPresortedColumns(benchmark::State& state) {
  const auto& data = CachedBlobs(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  const auto sorted = tree::SortedColumns::Build(data);
  tree::TreeConfig config;
  for (auto _ : state) {
    auto tree = tree::DecisionTree::Fit(data, {}, config, {}, sorted.get());
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_TreeFitPresortedColumns)
    ->Args({2000, 10})
    ->Args({8000, 20})
    ->Unit(benchmark::kMillisecond);

void BM_SortedColumnsBuild(benchmark::State& state) {
  const auto& data = CachedBlobs(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto sorted = tree::SortedColumns::Build(data);
    benchmark::DoNotOptimize(sorted);
  }
}
BENCHMARK(BM_SortedColumnsBuild)
    ->Args({2000, 10})
    ->Args({8000, 20})
    ->Unit(benchmark::kMillisecond);

void BM_TreeFitBestFirst(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  tree::TreeConfig config;
  config.max_leaf_nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto tree = tree::DecisionTree::Fit(data, {}, config);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_TreeFitBestFirst)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_TreeFitBestFirstReference(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  tree::TreeConfig config;
  config.max_leaf_nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto tree = tree::DecisionTree::FitReference(data, {}, config);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_TreeFitBestFirstReference)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_TreeFitWeighted(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  std::vector<double> weights(data.num_rows(), 1.0);
  for (size_t i = 0; i < weights.size(); i += 50) weights[i] = 20.0;
  tree::TreeConfig config;
  for (auto _ : state) {
    auto tree = tree::DecisionTree::Fit(data, weights, config);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_TreeFitWeighted)->Unit(benchmark::kMillisecond);

void BM_TreeFitWeightedReference(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  std::vector<double> weights(data.num_rows(), 1.0);
  for (size_t i = 0; i < weights.size(); i += 50) weights[i] = 20.0;
  tree::TreeConfig config;
  for (auto _ : state) {
    auto tree = tree::DecisionTree::FitReference(data, weights, config);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_TreeFitWeightedReference)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------ forests ----

void BM_ForestFit(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  forest::ForestConfig config;
  config.num_trees = static_cast<size_t>(state.range(0));
  config.seed = 5;
  for (auto _ : state) {
    auto forest = forest::RandomForest::Fit(data, {}, config);
    benchmark::DoNotOptimize(forest);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ForestFit)->Arg(8)->Arg(32)->Arg(80)->Unit(benchmark::kMillisecond);

void BM_ForestFitReference(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  forest::ForestConfig config;
  config.num_trees = static_cast<size_t>(state.range(0));
  config.seed = 5;
  config.use_reference_trainer = true;
  for (auto _ : state) {
    auto forest = forest::RandomForest::Fit(data, {}, config);
    benchmark::DoNotOptimize(forest);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ForestFitReference)
    ->Arg(8)
    ->Arg(32)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond);

void BM_ForestFitSerial(benchmark::State& state) {
  const auto& data = CachedBlobs(4000, 20);
  forest::ForestConfig config;
  config.num_trees = 32;
  config.seed = 5;
  config.num_threads = 1;
  for (auto _ : state) {
    auto forest = forest::RandomForest::Fit(data, {}, config);
    benchmark::DoNotOptimize(forest);
  }
}
BENCHMARK(BM_ForestFitSerial)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------- GBDT ----

void BM_GbdtFit(benchmark::State& state) {
  const auto& data = CachedBlobs(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  boosting::GbdtConfig config;
  config.num_trees = static_cast<size_t>(state.range(2));
  for (auto _ : state) {
    auto model = boosting::Gbdt::Fit(data, config);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(2));
}
BENCHMARK(BM_GbdtFit)
    ->Args({2000, 10, 50})
    ->Args({4000, 20, 50})
    ->Unit(benchmark::kMillisecond);

void BM_GbdtFitReference(benchmark::State& state) {
  const auto& data = CachedBlobs(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)));
  boosting::GbdtConfig config;
  config.num_trees = static_cast<size_t>(state.range(2));
  config.use_reference_trainer = true;
  for (auto _ : state) {
    auto model = boosting::Gbdt::Fit(data, config);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(2));
}
BENCHMARK(BM_GbdtFitReference)
    ->Args({2000, 10, 50})
    ->Args({4000, 20, 50})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
