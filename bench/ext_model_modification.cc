// Extension harness (paper future work, §5): attackers who modify the
// stolen model. Sweeps the three modification attacks and reports the
// attacker's trade-off — accuracy sacrificed vs watermark evidence
// destroyed. The metric that matters for the defender is the *conclusive*
// column: as long as the statistical evidence stays conclusive (p < 1e-10),
// the modification failed even if a few trigger bits flipped.

#include <cstdio>

#include "attacks/modification.h"
#include "bench_util.h"
#include "core/verification.h"

int main() {
  using namespace treewm;
  std::printf("Future-work extension — model modification attacks\n");

  const auto scales = bench::PaperDatasets();
  const auto& scale = scales[1];  // breast-cancer: fastest to iterate
  bench::BenchEnv env = bench::MakeEnv(scale, /*seed=*/50);
  Rng rng(121);
  const core::Signature sigma = core::Signature::Random(scale.num_trees, 0.5, &rng);
  core::WatermarkConfig config = bench::ConfigFor(scale, 15);
  core::Watermarker watermarker(config);
  auto wm = watermarker.CreateWatermark(env.train, sigma).MoveValue();
  const double base_accuracy = wm.model.Accuracy(env.test);
  std::printf("dataset %s, m=%zu, base accuracy %.4f\n\n", env.name.c_str(),
              scale.num_trees, base_accuracy);

  auto report_line = [&](const char* attack, double parameter,
                         const forest::RandomForest& model) {
    core::VerificationRequest request{wm.signature, wm.trigger_set, env.test};
    core::ForestBlackBox box(model);
    Rng verify_rng(7);
    auto report =
        core::VerificationAuthority::Verify(box, request, &verify_rng).MoveValue();
    // How much of the model's per-tree behaviour the attack actually changed
    // (one batched vote-matrix query per model).
    const double flip_rate =
        attacks::VoteFlipRate(wm.model, model, env.test).MoveValue();
    const double accuracy = model.Accuracy(env.test);
    std::printf("%-18s %8.2f %10.4f %10.4f %10.3f %10.4f %9s %11s\n", attack,
                parameter, accuracy, accuracy - base_accuracy,
                report.bit_match_rate, flip_rate, report.verified ? "yes" : "no",
                report.conclusive() ? "conclusive" : "destroyed");
  };

  bench::PrintRule();
  std::printf("%-18s %8s %10s %10s %10s %10s %9s %11s\n", "attack", "param",
              "acc", "acc delta", "bit match", "vote flip", "verified",
              "evidence");
  bench::PrintRule();

  for (int depth : {8, 5, 3, 1}) {
    auto pruned = attacks::PruneToDepth(wm.model, depth).MoveValue();
    report_line("prune-depth", depth, pruned);
  }
  bench::PrintRule();
  for (double fraction : {0.02, 0.05, 0.10, 0.25, 0.50}) {
    Rng attack_rng(200 + static_cast<uint64_t>(fraction * 100));
    auto tampered =
        attacks::RelabelRandomLeaves(wm.model, fraction, &attack_rng).MoveValue();
    report_line("relabel-leaves", fraction, tampered);
  }
  bench::PrintRule();
  for (double fraction : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    Rng attack_rng(300 + static_cast<uint64_t>(fraction * 100));
    auto replaced = attacks::ReplaceRandomTrees(wm.model, fraction, env.train,
                                                wm.adjusted_config, &attack_rng)
                        .MoveValue();
    report_line("replace-trees", fraction, replaced);
  }
  bench::PrintRule();
  std::printf("reading: the watermark survives (evidence stays conclusive) "
              "until the attacker\naccepts a substantial accuracy loss or "
              "retrains most of the ensemble —\nat which point they have "
              "effectively built their own model.\n");
  return 0;
}
