// Reproduces Figure 4: size of the forged trigger set D'_trigger as the
// attacker's distortion budget ε grows, on the MNIST2-6-like dataset.
//
// Protocol (paper §4.2.2): generate 10 random fake signatures; for each,
// iterate over test instances and ask the solver for an instance within the
// ε-L∞ ball matching the fake pattern; average the forged-set sizes.
//
// Paper shape to reproduce: forged size grows with ε and becomes comparable
// to the original trigger size only at ε >= 0.7 (visually obvious
// distortion).

#include <cstdio>

#include "attacks/forgery_attack.h"
#include "bench_util.h"
#include "common/stopwatch.h"

int main() {
  using namespace treewm;
  const auto scales = bench::PaperDatasets();
  const auto& scale = scales[0];  // mnist2-6
  bench::BenchEnv env = bench::MakeEnv(scale, /*seed=*/45);

  Rng rng(105);
  const core::Signature sigma = core::Signature::Random(scale.num_trees, 0.5, &rng);
  core::WatermarkConfig config = bench::ConfigFor(scale, 10);
  core::Watermarker watermarker(config);
  auto wm = watermarker.CreateWatermark(env.train, sigma).MoveValue();
  const size_t original_trigger = wm.trigger_set.num_rows();

  const size_t num_fake_signatures = bench::FullScale() ? 10 : 5;

  std::printf("Figure 4 — forged trigger set size vs distortion ε (%s)\n",
              env.name.c_str());
  std::printf("original |D_trigger| = %zu; %zu fake signatures; attacker stops "
              "once |D'| = |D| (as in the paper, a same-size forged set "
              "suffices)\n",
              original_trigger, num_fake_signatures);
  bench::PrintRule();
  std::printf("%8s %16s %14s %12s %12s %12s %12s\n", "epsilon",
              "|D'_trigger| avg", "vs original", "attempts", "unsat avg",
              "budget avg", "revalid avg");
  bench::PrintRule();

  Stopwatch total;
  for (double epsilon : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    double forged_sum = 0.0;
    double unsat_sum = 0.0;
    double budget_sum = 0.0;
    double attempts_sum = 0.0;
    double revalidated_sum = 0.0;
    Rng fake_rng(107);
    for (size_t s = 0; s < num_fake_signatures; ++s) {
      const core::Signature fake =
          core::Signature::Random(scale.num_trees, 0.5, &fake_rng);
      attacks::ForgeryAttackConfig attack;
      attack.epsilon = epsilon;
      // Iterate the whole test set but stop once the forged set reaches the
      // size of the legitimate trigger set (the attacker's goal).
      attack.max_attempts = env.test.num_rows();
      attack.max_forged = original_trigger;
      attack.max_nodes_per_instance = 200000;
      auto report =
          attacks::RunForgeryAttack(wm.model, fake, env.test, attack).MoveValue();
      forged_sum += static_cast<double>(report.forged);
      unsat_sum += static_cast<double>(report.unsat);
      budget_sum += static_cast<double>(report.budget_exhausted);
      attempts_sum += static_cast<double>(report.attempts);
      // Charlie's batched acceptance test over the whole forged set (one
      // flat-engine query) — must agree with the per-solve validations.
      revalidated_sum += static_cast<double>(report.revalidated);
    }
    const double n = static_cast<double>(num_fake_signatures);
    const double forged_avg = forged_sum / n;
    std::printf("%8.1f %16.1f %13.0f%% %12.0f %12.1f %12.1f %12.1f\n", epsilon,
                forged_avg,
                100.0 * forged_avg / static_cast<double>(original_trigger),
                attempts_sum / n, unsat_sum / n, budget_sum / n,
                revalidated_sum / n);
  }
  bench::PrintRule();
  std::printf("total %.1fs — paper: |D'| approaches |D| only for ε >= 0.7\n",
              total.ElapsedSeconds());
  return 0;
}
