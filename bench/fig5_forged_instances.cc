// Reproduces Figure 5: what forged MNIST2-6 instances look like at
// increasing distortion ε ∈ {0.3, 0.5, 0.7}, rendered as ASCII art, plus the
// paper's closing quantitative check: a standard (independent) ensemble
// scores ~0.99 on the genuine trigger set but only ~0.62 on the forged one —
// forgeries are detectably off-distribution.

#include <cstdio>
#include <cstdlib>

#include "attacks/forgery_attack.h"
#include "bench_util.h"

int main() {
  using namespace treewm;
  const auto scales = bench::PaperDatasets();
  const auto& scale = scales[0];  // mnist2-6
  bench::BenchEnv env = bench::MakeEnv(scale, /*seed=*/46);

  Rng rng(109);
  const core::Signature sigma = core::Signature::Random(scale.num_trees, 0.5, &rng);
  core::WatermarkConfig config = bench::ConfigFor(scale, 11);
  core::Watermarker watermarker(config);
  auto wm = watermarker.CreateWatermark(env.train, sigma).MoveValue();

  const core::Signature fake = core::Signature::Random(scale.num_trees, 0.5, &rng);

  std::printf("Figure 5 — forged instances at increasing distortion\n");
  data::Dataset all_forged(env.test.num_features());
  for (double epsilon : {0.3, 0.5, 0.7}) {
    attacks::ForgeryAttackConfig attack;
    attack.epsilon = epsilon;
    attack.max_forged = 30;
    attack.max_attempts = 200;
    attack.max_nodes_per_instance = 200000;
    auto report =
        attacks::RunForgeryAttack(wm.model, fake, env.test, attack).MoveValue();
    std::printf("\nε = %.1f: forged %zu instance(s) out of %zu attempts "
                "(%zu revalidated in one batched query)\n",
                epsilon, report.forged, report.attempts, report.revalidated);
    if (!report.instances.empty()) {
      const auto& inst = report.instances.front();
      std::printf("anchor row %zu, achieved L∞ distance %.3f\n", inst.source_row,
                  inst.linf_distance);
      std::printf("%s",
                  data::synthetic::RenderImageAscii(inst.features).c_str());
      auto ds = report.ToDataset(env.test.num_features()).MoveValue();
      Status appended = all_forged.Concat(ds);
      if (!appended.ok()) {
        std::fprintf(stderr, "fig5: concat of forged instances failed: %s\n",
                     appended.ToString().c_str());
        std::exit(1);
      }
    }
  }

  // Quantitative tail of §4.2.2: independent standard ensemble accuracy on
  // genuine vs forged trigger instances.
  auto standard =
      bench::StandardReference(env, scale, wm.tuned_config, /*seed=*/57);
  const double genuine_acc = standard.Accuracy(wm.trigger_set);
  bench::PrintRule();
  std::printf("standard RF accuracy on genuine trigger set: %.2f (paper: 0.99)\n",
              genuine_acc);
  if (all_forged.num_rows() > 0) {
    const double forged_acc = standard.Accuracy(all_forged);
    std::printf("standard RF accuracy on forged trigger set:  %.2f (paper: 0.62)\n",
                forged_acc);
    std::printf("drop: %.2f — forged instances are visibly off-distribution\n",
                genuine_acc - forged_acc);
  } else {
    std::printf("no forged instances produced at these ε (forgery resisted)\n");
  }
  return 0;
}
