// Reproduces Table 1: dataset statistics (instances, features, class
// distribution) for the three evaluation datasets.
//
// Paper reference:
//   MNIST2-6       13,866 × 784   51%/49%
//   breast-cancer     569 ×  30   63%/37%
//   ijcnn1         20,000 →10,000 × 22   10%/90%

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace treewm;
  std::printf("Table 1 — dataset statistics (synthetic stand-ins; see DESIGN.md)\n");
  bench::PrintRule();
  std::printf("%-16s %10s %10s %14s %14s\n", "Dataset", "Instances", "Features",
              "Distribution", "Paper");
  bench::PrintRule();
  struct Row {
    const char* name;
    const char* paper;
  };
  const Row rows[] = {{"mnist2-6", "51%/49%"},
                      {"breast-cancer", "63%/37%"},
                      {"ijcnn1", "10%/90%"}};
  for (const Row& row : rows) {
    auto dataset = data::synthetic::MakeByName(row.name, /*seed=*/42).MoveValue();
    const double pos = dataset.PositiveFraction() * 100.0;
    std::printf("%-16s %10zu %10zu %9.0f%%/%2.0f%% %14s\n", row.name,
                dataset.num_rows(), dataset.num_features(), pos, 100.0 - pos,
                row.paper);
    if (!dataset.AllValuesWithin(0.0f, 1.0f)) {
      std::printf("  WARNING: %s not normalized to [0,1]\n", row.name);
      return 1;
    }
  }
  bench::PrintRule();
  std::printf("All datasets normalized to [0,1] as in the paper (§4).\n");
  return 0;
}
