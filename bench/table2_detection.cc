// Reproduces Table 2: the watermark detection attack. For each dataset and
// structural statistic (depth, #leaves), runs both attacker strategies
// against a watermarked model (σ: 50% ones, trigger 2%) and reports
// #correct / #wrong / #uncertain plus the statistic's mean and stddev.
//
// Paper shape to reproduce: strategy 1 (red, band) leaves a huge uncertain
// mass and still guesses wrong on much of the rest; strategy 2 (blue,
// threshold) has no uncertainty but stays near coin-flipping; stddev is
// small relative to the mean (trees look alike).

#include <cstdio>

#include "attacks/detection.h"
#include "bench_util.h"

int main() {
  using namespace treewm;
  std::printf("Table 2 — watermark detection attack "
              "(band strategy / threshold strategy)\n");
  bench::PrintRule();
  std::printf("%-16s %-10s %-18s %13s %13s %13s\n", "Dataset", "Statistic",
              "(mean - std)", "#correct", "#wrong", "#uncertain");
  bench::PrintRule();

  for (const auto& scale : bench::PaperDatasets()) {
    bench::BenchEnv env = bench::MakeEnv(scale, /*seed=*/44);
    Rng rng(103);
    const core::Signature sigma =
        core::Signature::Random(scale.num_trees, 0.5, &rng);
    core::WatermarkConfig config = bench::ConfigFor(scale, 9);
    core::Watermarker watermarker(config);
    auto wm = watermarker.CreateWatermark(env.train, sigma);
    if (!wm.ok()) {
      std::printf("%-16s watermark failed: %s\n", env.name.c_str(),
                  wm.status().ToString().c_str());
      continue;
    }
    for (auto stat :
         {attacks::TreeStatistic::kDepth, attacks::TreeStatistic::kLeafCount}) {
      const auto band = attacks::DetectByBand(wm.value().model, stat, sigma);
      const auto thr = attacks::DetectByThreshold(wm.value().model, stat, sigma);
      char stats_buf[32];
      std::snprintf(stats_buf, sizeof(stats_buf), "(%.2f - %.2f)", band.mean,
                    band.stddev);
      char c_buf[32];
      char w_buf[32];
      char u_buf[32];
      std::snprintf(c_buf, sizeof(c_buf), "%zu / %zu", band.num_correct,
                    thr.num_correct);
      std::snprintf(w_buf, sizeof(w_buf), "%zu / %zu", band.num_wrong,
                    thr.num_wrong);
      std::snprintf(u_buf, sizeof(u_buf), "%zu / %zu", band.num_uncertain,
                    thr.num_uncertain);
      std::printf("%-16s %-10s %-18s %13s %13s %13s\n", env.name.c_str(),
                  attacks::TreeStatisticName(stat), stats_buf, c_buf, w_buf, u_buf);
    }
    // Behavioral extension: per-tree test error (one batched vote-matrix
    // query), thresholded at the mean like strategy 2.
    const auto err =
        attacks::DetectByErrorRate(wm.value().model, env.test, sigma);
    char err_stats_buf[32];
    std::snprintf(err_stats_buf, sizeof(err_stats_buf), "(%.3f - %.3f)",
                  err.mean, err.stddev);
    char ec_buf[32];
    char ew_buf[32];
    std::snprintf(ec_buf, sizeof(ec_buf), "- / %zu", err.num_correct);
    std::snprintf(ew_buf, sizeof(ew_buf), "- / %zu", err.num_wrong);
    std::printf("%-16s %-10s %-18s %13s %13s %13s\n", env.name.c_str(),
                attacks::TreeStatisticName(err.statistic), err_stats_buf, ec_buf,
                ew_buf, "- / 0");
    bench::PrintRule();
  }
  std::printf("paper: both strategies ineffective — band yields mostly "
              "uncertain trees,\nthreshold stays close to random guessing; "
              "stddev small vs mean.\n");
  return 0;
}
