// Ablation: the Adjust(H) heuristic (§3.2). Compares the detection attack's
// success with and without hyper-parameter adjustment. Without Adjust, T1's
// trees are free to overfit and grow larger than T0's, leaking the signature
// through structural statistics — exactly the channel Table 2 shows Adjust
// closes.

#include <cstdio>

#include "attacks/detection.h"
#include "bench_util.h"

int main() {
  using namespace treewm;
  std::printf("Ablation — Adjust(H) on/off: detection attack success\n");
  bench::PrintRule();
  std::printf("%-16s %-8s %-10s %10s %10s %10s %12s\n", "Dataset", "Adjust",
              "Statistic", "#correct", "#wrong", "#uncert", "recovered%%");
  bench::PrintRule();

  for (const auto& scale : bench::PaperDatasets()) {
    bench::BenchEnv env = bench::MakeEnv(scale, /*seed=*/48);
    for (bool adjust : {true, false}) {
      Rng rng(115);
      const core::Signature sigma =
          core::Signature::Random(scale.num_trees, 0.5, &rng);
      core::WatermarkConfig config = bench::ConfigFor(scale, 13);
      config.adjust_hyperparameters = adjust;
      core::Watermarker watermarker(config);
      auto wm = watermarker.CreateWatermark(env.train, sigma);
      if (!wm.ok()) {
        std::printf("%-16s %-8s watermark failed: %s\n", env.name.c_str(),
                    adjust ? "on" : "off", wm.status().ToString().c_str());
        continue;
      }
      for (auto stat :
           {attacks::TreeStatistic::kDepth, attacks::TreeStatistic::kLeafCount}) {
        const auto report = attacks::DetectByThreshold(wm.value().model, stat, sigma);
        const double recovered = 100.0 * static_cast<double>(report.num_correct) /
                                 static_cast<double>(sigma.length());
        std::printf("%-16s %-8s %-10s %10zu %10zu %10zu %11.1f%%\n",
                    env.name.c_str(), adjust ? "on" : "off",
                    attacks::TreeStatisticName(stat), report.num_correct,
                    report.num_wrong, report.num_uncertain, recovered);
      }
    }
    bench::PrintRule();
  }
  std::printf("expected: 'off' rows recover noticeably more signature bits "
              "than 'on' rows\n(50%% = random guessing; the adjusted model "
              "should sit near it).\n");
  return 0;
}
