// Micro-benchmarks: the fault-tolerant serving front-end under load.
//
// The open-loop harness drives Poisson arrivals at a fixed offered rate —
// requests keep arriving whether or not the server keeps up, like real
// clients — sweeping offered rate (as a fraction of the measured max
// sustainable throughput) x batch delay. Each run reports:
//
//   p50_us / p99_us    completion latency percentiles over served requests
//   throughput_rps     requests actually served per second
//   shed_rate          fraction of requests refused (ResourceExhausted)
//   offered_rps        the arrival rate driven at the front door
//
// The 2x-overload rows (rate_pct = 200) are the robustness gate: the
// front-end must shed (shed_rate > 0) instead of letting latency grow
// without bound, and the requests it does serve must stay fast.
//
// Machine-readable output convention (see bench/README.md):
//   ./micro_serve --benchmark_out=BENCH_serve.json --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "predict/flat_ensemble.h"
#include "serve/serving_front_end.h"

namespace {

using namespace treewm;
using std::chrono::steady_clock;

const bench::ForestFixture& ServeFixture() {
  return bench::CachedForestFixture(11, 4000, 16, 1.5, 32, 7);
}

std::shared_ptr<const predict::FlatEnsemble> ServeEnsemble() {
  static auto* flat = new std::shared_ptr<const predict::FlatEnsemble>(
      std::make_shared<predict::FlatEnsemble>(
          predict::FlatEnsemble::FromClassificationTrees(
              ServeFixture().forest.trees())));
  return *flat;
}

serve::ServingOptions LoadTestOptions(int batch_delay_us) {
  serve::ServingOptions options;
  options.queue.capacity = 256;
  options.queue.shed_high_water = 192;  // shed before the queue can fill
  options.queue.policy = serve::OverflowPolicy::kReject;
  options.batch.max_batch_rows = 64;
  options.batch.max_batch_delay = std::chrono::microseconds(batch_delay_us);
  options.predictor.num_threads = 2;
  return options;
}

/// Max sustainable rate through the full stack (closed loop, no pacing),
/// measured once: the offered-rate sweep is expressed relative to this so
/// "2x overload" means the same thing on any machine.
double BaseRatePerSec() {
  static const double rate = [] {
    const auto& fx = ServeFixture();
    auto created = serve::ServingFrontEnd::Create(ServeEnsemble(),
                                                  LoadTestOptions(100));
    auto serving = std::move(created).MoveValue();
    constexpr size_t kWarm = 500, kMeasured = 4000;
    std::vector<std::future<Result<serve::PredictResult>>> futures;
    futures.reserve(kWarm + kMeasured);
    for (size_t i = 0; i < kWarm; ++i) {
      futures.push_back(serving->SubmitPredict(fx.data.Row(i % fx.data.num_rows())));
    }
    // discard ok: warm-up traffic; outcomes are intentionally uncounted
    for (auto& f : futures) (void)f.get();
    futures.clear();
    const auto start = steady_clock::now();
    for (size_t i = 0; i < kMeasured; ++i) {
      futures.push_back(serving->SubmitPredict(fx.data.Row(i % fx.data.num_rows())));
    }
    size_t served = 0;
    for (auto& f : futures) served += f.get().ok() ? 1 : 0;
    const std::chrono::duration<double> elapsed = steady_clock::now() - start;
    serving->Shutdown();
    return static_cast<double>(std::max<size_t>(served, 1)) / elapsed.count();
  }();
  return rate;
}

/// One open-loop run: `num_requests` Poisson arrivals at `offered_rps`.
struct OpenLoopOutcome {
  std::vector<double> latencies_us;  // served requests only
  size_t shed = 0;
  double elapsed_s = 0;
};

OpenLoopOutcome RunOpenLoop(serve::ServingFrontEnd* serving, double offered_rps,
                            size_t num_requests, uint64_t seed) {
  const auto& fx = ServeFixture();
  std::vector<std::future<Result<serve::PredictResult>>> futures(num_requests);
  std::vector<steady_clock::time_point> submitted(num_requests);
  std::atomic<size_t> produced{0};

  // Collector: takes completions in submission order (the pipeline is FIFO)
  // and timestamps each resolve, so latency covers queue + batch + compute.
  std::vector<double> latencies_us;
  latencies_us.reserve(num_requests);
  size_t shed = 0;
  ThreadPool collector(1);
  const Status collector_started = collector.Submit([&] {
    for (size_t i = 0; i < num_requests; ++i) {
      while (produced.load(std::memory_order_acquire) <= i) {
        std::this_thread::yield();
      }
      auto result = futures[i].get();
      const auto now = steady_clock::now();
      if (result.ok()) {
        latencies_us.push_back(
            std::chrono::duration<double, std::micro>(now - submitted[i]).count());
      } else {
        ++shed;
      }
    }
  });
  if (!collector_started.ok()) std::abort();  // fresh pool never rejects

  // Producer: exponential inter-arrival gaps, absolute schedule (open loop —
  // a slow server does NOT slow the arrivals; that is the whole point).
  Rng rng(seed);
  const auto start = steady_clock::now();
  auto next_arrival = start;
  for (size_t i = 0; i < num_requests; ++i) {
    while (steady_clock::now() < next_arrival) {
      // Spin: gaps are microseconds, far below sleep_for resolution.
    }
    submitted[i] = steady_clock::now();
    futures[i] = serving->SubmitPredict(fx.data.Row(i % fx.data.num_rows()));
    produced.store(i + 1, std::memory_order_release);
    const double gap_s = -std::log(1.0 - rng.UniformReal()) / offered_rps;
    next_arrival += std::chrono::duration_cast<steady_clock::duration>(
        std::chrono::duration<double>(gap_s));
  }
  collector.Shutdown();  // drains the collector task (= join)

  OpenLoopOutcome outcome;
  outcome.latencies_us = std::move(latencies_us);
  outcome.shed = shed;
  outcome.elapsed_s =
      std::chrono::duration<double>(steady_clock::now() - start).count();
  return outcome;
}

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0;
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(values->size() - 1) + 0.5);
  std::nth_element(values->begin(), values->begin() + index, values->end());
  return (*values)[index];
}

// args: {offered rate as % of measured max, batch delay in µs}
void BM_ServeOpenLoopPoisson(benchmark::State& state) {
  const double offered_rps =
      BaseRatePerSec() * static_cast<double>(state.range(0)) / 100.0;
  const size_t num_requests = 1500;
  OpenLoopOutcome outcome;
  for (auto _ : state) {
    auto created = serve::ServingFrontEnd::Create(
        ServeEnsemble(), LoadTestOptions(static_cast<int>(state.range(1))));
    auto serving = std::move(created).MoveValue();
    outcome = RunOpenLoop(serving.get(), offered_rps, num_requests,
                          /*seed=*/1234 + static_cast<uint64_t>(state.range(0)));
    serving->Shutdown();
  }
  const size_t served = outcome.latencies_us.size();
  state.counters["offered_rps"] = offered_rps;
  state.counters["throughput_rps"] =
      outcome.elapsed_s > 0 ? static_cast<double>(served) / outcome.elapsed_s : 0;
  state.counters["shed_rate"] =
      static_cast<double>(outcome.shed) / static_cast<double>(num_requests);
  state.counters["p50_us"] = Percentile(&outcome.latencies_us, 0.50);
  state.counters["p99_us"] = Percentile(&outcome.latencies_us, 0.99);
  state.SetItemsProcessed(static_cast<int64_t>(served) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeOpenLoopPoisson)
    ->ArgNames({"rate_pct", "delay_us"})
    ->Args({50, 0})
    ->Args({50, 200})
    ->Args({50, 1000})
    ->Args({100, 0})
    ->Args({100, 200})
    ->Args({100, 1000})
    ->Args({200, 0})    // 2x overload: the shed gate
    ->Args({200, 200})
    ->Args({200, 1000})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Closed-loop single-client round trip: the latency floor of the stack
// (queue hop + batcher wait + one-row batch + promise resolution).
void BM_ServeSingleClientRoundTrip(benchmark::State& state) {
  const auto& fx = ServeFixture();
  auto created = serve::ServingFrontEnd::Create(
      ServeEnsemble(), LoadTestOptions(static_cast<int>(state.range(0))));
  auto serving = std::move(created).MoveValue();
  size_t i = 0;
  for (auto _ : state) {
    auto result = serving->Predict(fx.data.Row(i % fx.data.num_rows()));
    benchmark::DoNotOptimize(result);
    ++i;
  }
  serving->Shutdown();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeSingleClientRoundTrip)
    ->ArgNames({"delay_us"})
    ->Arg(0)
    ->Arg(200)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
