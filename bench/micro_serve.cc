// Micro-benchmarks: the fault-tolerant serving front-end under load.
//
// The open-loop harness drives Poisson arrivals at a fixed offered rate —
// requests keep arriving whether or not the server keeps up, like real
// clients — sweeping offered rate (as a fraction of the measured max
// sustainable throughput) x batch delay. Each run reports:
//
//   p50_us / p99_us    completion latency percentiles over served requests
//   throughput_rps     requests actually served per second
//   shed_rate          fraction of requests refused (ResourceExhausted)
//   offered_rps        the arrival rate driven at the front door
//
// The 2x-overload rows (rate_pct = 200) are the robustness gate: the
// front-end must shed (shed_rate > 0) instead of letting latency grow
// without bound, and the requests it does serve must stay fast.
//
// Machine-readable output convention (see bench/README.md):
//   ./micro_serve --benchmark_out=BENCH_serve.json --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "io/ensemble_snapshot.h"
#include "io/model_io.h"
#include "predict/flat_ensemble.h"
#include "serve/registry/model_registry.h"
#include "serve/serving_front_end.h"
#include "serve/wire/frame.h"
#include "serve/wire/socket_client.h"
#include "serve/wire/socket_server.h"
#include "serve/wire/sockets.h"

namespace {

using namespace treewm;
using std::chrono::steady_clock;

const bench::ForestFixture& ServeFixture() {
  return bench::CachedForestFixture(11, 4000, 16, 1.5, 32, 7);
}

std::shared_ptr<const predict::FlatEnsemble> ServeEnsemble() {
  static auto* flat = new std::shared_ptr<const predict::FlatEnsemble>(
      std::make_shared<predict::FlatEnsemble>(
          predict::FlatEnsemble::FromClassificationTrees(
              ServeFixture().forest.trees())));
  return *flat;
}

serve::ServingOptions LoadTestOptions(int batch_delay_us) {
  serve::ServingOptions options;
  options.queue.capacity = 256;
  options.queue.shed_high_water = 192;  // shed before the queue can fill
  options.queue.policy = serve::OverflowPolicy::kReject;
  options.batch.max_batch_rows = 64;
  options.batch.max_batch_delay = std::chrono::microseconds(batch_delay_us);
  options.predictor.num_threads = 2;
  return options;
}

/// Max sustainable rate through the full stack (closed loop, no pacing),
/// measured once: the offered-rate sweep is expressed relative to this so
/// "2x overload" means the same thing on any machine.
double BaseRatePerSec() {
  static const double rate = [] {
    const auto& fx = ServeFixture();
    auto created = serve::ServingFrontEnd::Create(ServeEnsemble(),
                                                  LoadTestOptions(100));
    auto serving = std::move(created).MoveValue();
    constexpr size_t kWarm = 500, kMeasured = 4000;
    std::vector<std::future<Result<serve::PredictResult>>> futures;
    futures.reserve(kWarm + kMeasured);
    for (size_t i = 0; i < kWarm; ++i) {
      futures.push_back(serving->SubmitPredict(fx.data.Row(i % fx.data.num_rows())));
    }
    // discard ok: warm-up traffic; outcomes are intentionally uncounted
    for (auto& f : futures) (void)f.get();
    futures.clear();
    const auto start = steady_clock::now();
    for (size_t i = 0; i < kMeasured; ++i) {
      futures.push_back(serving->SubmitPredict(fx.data.Row(i % fx.data.num_rows())));
    }
    size_t served = 0;
    for (auto& f : futures) served += f.get().ok() ? 1 : 0;
    const std::chrono::duration<double> elapsed = steady_clock::now() - start;
    serving->Shutdown();
    return static_cast<double>(std::max<size_t>(served, 1)) / elapsed.count();
  }();
  return rate;
}

/// One open-loop run: `num_requests` Poisson arrivals at `offered_rps`.
struct OpenLoopOutcome {
  std::vector<double> latencies_us;  // served requests only
  size_t shed = 0;
  double elapsed_s = 0;
};

/// Open-loop core over any submit callable (`submit(i)` returns the
/// request's future) — shared by the front-end sweep and the registry
/// mixed-traffic bench.
template <typename SubmitFn>
OpenLoopOutcome RunOpenLoopWith(SubmitFn&& submit, double offered_rps,
                                size_t num_requests, uint64_t seed) {
  std::vector<std::future<Result<serve::PredictResult>>> futures(num_requests);
  std::vector<steady_clock::time_point> submitted(num_requests);
  std::atomic<size_t> produced{0};

  // Collector: takes completions in submission order (the pipeline is FIFO)
  // and timestamps each resolve, so latency covers queue + batch + compute.
  std::vector<double> latencies_us;
  latencies_us.reserve(num_requests);
  size_t shed = 0;
  ThreadPool collector(1);
  const Status collector_started = collector.Submit([&] {
    for (size_t i = 0; i < num_requests; ++i) {
      while (produced.load(std::memory_order_acquire) <= i) {
        std::this_thread::yield();
      }
      auto result = futures[i].get();
      const auto now = steady_clock::now();
      if (result.ok()) {
        latencies_us.push_back(
            std::chrono::duration<double, std::micro>(now - submitted[i]).count());
      } else {
        ++shed;
      }
    }
  });
  if (!collector_started.ok()) std::abort();  // fresh pool never rejects

  // Producer: exponential inter-arrival gaps, absolute schedule (open loop —
  // a slow server does NOT slow the arrivals; that is the whole point).
  Rng rng(seed);
  const auto start = steady_clock::now();
  auto next_arrival = start;
  for (size_t i = 0; i < num_requests; ++i) {
    while (steady_clock::now() < next_arrival) {
      // Spin: gaps are microseconds, far below sleep_for resolution.
    }
    submitted[i] = steady_clock::now();
    futures[i] = submit(i);
    produced.store(i + 1, std::memory_order_release);
    const double gap_s = -std::log(1.0 - rng.UniformReal()) / offered_rps;
    next_arrival += std::chrono::duration_cast<steady_clock::duration>(
        std::chrono::duration<double>(gap_s));
  }
  collector.Shutdown();  // drains the collector task (= join)

  OpenLoopOutcome outcome;
  outcome.latencies_us = std::move(latencies_us);
  outcome.shed = shed;
  outcome.elapsed_s =
      std::chrono::duration<double>(steady_clock::now() - start).count();
  return outcome;
}

OpenLoopOutcome RunOpenLoop(serve::ServingFrontEnd* serving, double offered_rps,
                            size_t num_requests, uint64_t seed) {
  const auto& fx = ServeFixture();
  return RunOpenLoopWith(
      [&](size_t i) {
        return serving->SubmitPredict(fx.data.Row(i % fx.data.num_rows()));
      },
      offered_rps, num_requests, seed);
}

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0;
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(values->size() - 1) + 0.5);
  std::nth_element(values->begin(), values->begin() + index, values->end());
  return (*values)[index];
}

// args: {offered rate as % of measured max, batch delay in µs}
void BM_ServeOpenLoopPoisson(benchmark::State& state) {
  const double offered_rps =
      BaseRatePerSec() * static_cast<double>(state.range(0)) / 100.0;
  const size_t num_requests = 1500;
  OpenLoopOutcome outcome;
  for (auto _ : state) {
    auto created = serve::ServingFrontEnd::Create(
        ServeEnsemble(), LoadTestOptions(static_cast<int>(state.range(1))));
    auto serving = std::move(created).MoveValue();
    outcome = RunOpenLoop(serving.get(), offered_rps, num_requests,
                          /*seed=*/1234 + static_cast<uint64_t>(state.range(0)));
    serving->Shutdown();
  }
  const size_t served = outcome.latencies_us.size();
  state.counters["offered_rps"] = offered_rps;
  state.counters["throughput_rps"] =
      outcome.elapsed_s > 0 ? static_cast<double>(served) / outcome.elapsed_s : 0;
  state.counters["shed_rate"] =
      static_cast<double>(outcome.shed) / static_cast<double>(num_requests);
  state.counters["p50_us"] = Percentile(&outcome.latencies_us, 0.50);
  state.counters["p99_us"] = Percentile(&outcome.latencies_us, 0.99);
  state.SetItemsProcessed(static_cast<int64_t>(served) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeOpenLoopPoisson)
    ->ArgNames({"rate_pct", "delay_us"})
    ->Args({50, 0})
    ->Args({50, 200})
    ->Args({50, 1000})
    ->Args({100, 0})
    ->Args({100, 200})
    ->Args({100, 1000})
    ->Args({200, 0})    // 2x overload: the shed gate
    ->Args({200, 200})
    ->Args({200, 1000})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Wire overload: the same open-loop discipline through the socket layer.
//
// Each connection is a pipelined writer (paced Poisson arrivals, never
// waiting for responses — open loop) plus a reader matching answers back to
// submit timestamps by request id. The 2x-overload rows are the wire
// overload gate: the stack must answer EVERY request (response or typed
// refusal — exactly-once accounting), shed instead of queueing without
// bound, and keep served latency flat as connections multiply.

struct WireConnOutcome {
  std::vector<double> latencies_us;  // served requests only
  size_t shed = 0;       // ResourceExhausted refusals (front-end pushback)
  size_t failed = 0;     // anything else (transport, deadline, ...)
};

/// Max sustainable rate THROUGH THE WIRE (closed loop, 4 keep-alive
/// connections), measured once. The wire sweep is expressed relative to
/// this — not the in-process max — so rate_pct=100 saturates the socket
/// path and rate_pct=200 is a true 2x overload of it.
double WireBaseRatePerSec() {
  using namespace treewm::serve::wire;
  static const double rate = [] {
    const auto& fx = ServeFixture();
    auto created = serve::ServingFrontEnd::Create(ServeEnsemble(),
                                                  LoadTestOptions(200));
    auto serving = std::move(created).MoveValue();
    auto server = SocketServer::Create(serving.get(), {});
    if (!server.ok()) std::abort();
    constexpr size_t kConns = 4, kPerConn = 600;
    std::atomic<size_t> served{0};
    const auto start = steady_clock::now();
    {
      ThreadPool clients(kConns);
      for (size_t c = 0; c < kConns; ++c) {
        const Status submitted = clients.Submit([&, c] {
          SocketClientOptions options;
          options.port = server.value()->port();
          SocketClient client(options);
          for (size_t i = 0; i < kPerConn; ++i) {
            auto result =
                client.Predict(fx.data.Row((c + i) % fx.data.num_rows()));
            if (result.ok()) served.fetch_add(1, std::memory_order_relaxed);
          }
        });
        if (!submitted.ok()) std::abort();
      }
      clients.Shutdown();
    }
    const std::chrono::duration<double> elapsed = steady_clock::now() - start;
    server.value()->Shutdown();
    serving->Shutdown();
    return static_cast<double>(std::max<size_t>(served.load(), 1)) /
           elapsed.count();
  }();
  return rate;
}

// args: {offered rate as % of measured max, connection count}
//
// One paced writer thread round-robins Poisson arrivals across all
// connections (pipelined — it never waits for a response: open loop); one
// blocking reader per connection matches answers back to submit timestamps
// by request id. A single pacing thread keeps the harness honest on small
// machines: N spinning producers would starve the server being measured.
void BM_WireOpenLoopOverload(benchmark::State& state) {
  using namespace treewm::serve::wire;
  const auto& fx = ServeFixture();
  const double offered_rps =
      WireBaseRatePerSec() * static_cast<double>(state.range(0)) / 100.0;
  const size_t num_connections = static_cast<size_t>(state.range(1));
  const size_t per_conn = (1536 + num_connections - 1) / num_connections;
  const size_t total = per_conn * num_connections;

  std::vector<WireConnOutcome> outcomes(num_connections);
  double elapsed_s = 0;
  for (auto _ : state) {
    auto created = serve::ServingFrontEnd::Create(ServeEnsemble(),
                                                  LoadTestOptions(200));
    auto serving = std::move(created).MoveValue();
    SocketServerOptions wire_options;
    wire_options.max_connections = num_connections + 4;
    // The front-end's shed high-water is the gate under test; keep the
    // wire-level pipelining cap out of the way.
    wire_options.max_in_flight_per_connection = 4096;
    auto server = SocketServer::Create(serving.get(), wire_options);
    if (!server.ok()) std::abort();

    std::vector<Fd> fds(num_connections);
    for (size_t c = 0; c < num_connections; ++c) {
      auto fd = ConnectTcpLoopback(server.value()->port(),
                                   std::chrono::seconds(30));
      if (!fd.ok()) std::abort();
      fds[c] = std::move(fd).MoveValue();
    }

    // Request i goes to connection i % N with wire id i + 1; timestamps are
    // indexed by wire id, published through `produced`.
    std::vector<steady_clock::time_point> submitted(total);
    std::atomic<size_t> produced{0};

    const auto start = steady_clock::now();
    ThreadPool pool(1 + num_connections);
    for (size_t c = 0; c < num_connections; ++c) {
      WireConnOutcome* outcome = &outcomes[c];
      outcome->latencies_us.clear();
      outcome->latencies_us.reserve(per_conn);
      outcome->shed = 0;
      outcome->failed = 0;
      const Fd* fd = &fds[c];
      const Status reader = pool.Submit([=, &submitted, &produced] {
        FrameDecoder decoder;
        uint8_t chunk[8192];
        size_t answered = 0;
        while (answered < per_conn) {
          auto next = decoder.Next();
          if (!next.ok()) break;
          if (!next.value().has_value()) {
            auto got = ReadSome(*fd, chunk, sizeof(chunk));
            if (!got.ok() || got.value().would_block || got.value().eof) break;
            decoder.Feed(std::span<const uint8_t>(chunk, got.value().bytes));
            continue;
          }
          const auto now = steady_clock::now();
          Frame frame = std::move(*next.value());
          uint64_t id = 0;
          bool ok = false;
          bool resource_exhausted = false;
          if (frame.type == FrameType::kPredictResponse) {
            auto msg = DecodePredictResponse(frame.body);
            if (!msg.ok()) break;
            id = msg.value().request_id;
            ok = true;
          } else if (frame.type == FrameType::kError) {
            auto msg = DecodeError(frame.body);
            if (!msg.ok()) break;
            id = msg.value().request_id;
            resource_exhausted =
                msg.value().code == StatusCode::kResourceExhausted;
          } else {
            break;
          }
          if (id == 0 || id > total) break;  // connection-level error
          while (produced.load(std::memory_order_acquire) < id) {
            std::this_thread::yield();
          }
          ++answered;
          if (ok) {
            outcome->latencies_us.push_back(
                std::chrono::duration<double, std::micro>(
                    now - submitted[id - 1])
                    .count());
          } else if (resource_exhausted) {
            ++outcome->shed;
          } else {
            ++outcome->failed;
          }
        }
        outcome->failed += per_conn - answered;
      });
      if (!reader.ok()) std::abort();
    }
    const Status writer = pool.Submit([&] {
      Rng rng(77 + num_connections);
      auto next_arrival = steady_clock::now();
      for (size_t i = 0; i < total; ++i) {
        while (steady_clock::now() < next_arrival) {
          // Spin: microsecond gaps, open loop.
        }
        PredictRequestMsg msg;
        msg.request_id = i + 1;
        const auto row = fx.data.Row(i % fx.data.num_rows());
        msg.features.assign(row.begin(), row.end());
        const std::vector<uint8_t> frame = EncodePredictRequest(msg);
        submitted[i] = steady_clock::now();
        produced.store(i + 1, std::memory_order_release);
        const Fd& fd = fds[i % num_connections];
        size_t written = 0;
        while (written < frame.size()) {
          auto wrote =
              WriteSome(fd, frame.data() + written, frame.size() - written);
          if (!wrote.ok()) break;  // readers count the missing answers
          if (!wrote.value().would_block) written += wrote.value().bytes;
        }
        const double gap_s = -std::log(1.0 - rng.UniformReal()) / offered_rps;
        next_arrival += std::chrono::duration_cast<steady_clock::duration>(
            std::chrono::duration<double>(gap_s));
      }
      // All requests written; half-close nothing — readers finish by count.
    });
    if (!writer.ok()) std::abort();
    pool.Shutdown();  // joins the writer + readers
    elapsed_s =
        std::chrono::duration<double>(steady_clock::now() - start).count();
    for (Fd& fd : fds) fd.Close();
    server.value()->Shutdown();
    const WireStats stats = server.value()->stats();
    // The wire accounting must close even at 2x overload.
    if (stats.requests_received !=
        stats.responses_sent + stats.refusals_sent + stats.responses_dropped) {
      std::abort();
    }
    serving->Shutdown();
  }

  std::vector<double> all_latencies;
  size_t shed = 0, failed = 0;
  for (const WireConnOutcome& outcome : outcomes) {
    all_latencies.insert(all_latencies.end(), outcome.latencies_us.begin(),
                         outcome.latencies_us.end());
    shed += outcome.shed;
    failed += outcome.failed;
  }
  const size_t served = all_latencies.size();
  state.counters["offered_rps"] = offered_rps;
  state.counters["throughput_rps"] =
      elapsed_s > 0 ? static_cast<double>(served) / elapsed_s : 0;
  state.counters["shed_rate"] =
      static_cast<double>(shed) / static_cast<double>(total);
  state.counters["fail_rate"] =
      static_cast<double>(failed) / static_cast<double>(total);
  state.counters["p50_us"] = Percentile(&all_latencies, 0.50);
  state.counters["p99_us"] = Percentile(&all_latencies, 0.99);
  state.SetItemsProcessed(static_cast<int64_t>(served) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WireOpenLoopOverload)
    ->ArgNames({"rate_pct", "conns"})
    ->Args({50, 1})
    ->Args({50, 4})
    ->Args({100, 4})
    ->Args({100, 16})
    ->Args({200, 4})    // 2x closed-loop base: pipelining absorbs this
    ->Args({200, 16})
    ->Args({400, 4})    // deep overload through the socket: the wire gate
    ->Args({400, 16})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Closed-loop single-client round trip: the latency floor of the stack
// (queue hop + batcher wait + one-row batch + promise resolution).
void BM_ServeSingleClientRoundTrip(benchmark::State& state) {
  const auto& fx = ServeFixture();
  auto created = serve::ServingFrontEnd::Create(
      ServeEnsemble(), LoadTestOptions(static_cast<int>(state.range(0))));
  auto serving = std::move(created).MoveValue();
  size_t i = 0;
  for (auto _ : state) {
    auto result = serving->Predict(fx.data.Row(i % fx.data.num_rows()));
    benchmark::DoNotOptimize(result);
    ++i;
  }
  serving->Shutdown();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeSingleClientRoundTrip)
    ->ArgNames({"delay_us"})
    ->Arg(0)
    ->Arg(200)
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Model registry: cold start and bulkhead isolation under overload.

// Cold start: file on disk -> FlatEnsemble ready to serve. format=0 is the
// JSON path (LoadForest parse + flatten — what a registry restart costs
// without snapshots); format=1 is the binary snapshot (CRC-checked arena
// read, io/ensemble_snapshot.h). Same model either way; bytes_on_disk shows
// the size gap alongside the latency gap.
void BM_RegistryColdStart(benchmark::State& state) {
  const bool use_snapshot = state.range(0) == 1;
  const auto& fx = ServeFixture();
  const std::string path = use_snapshot ? "/tmp/treewm_bench_cold.twsn"
                                        : "/tmp/treewm_bench_cold.json";
  if (use_snapshot) {
    const auto flat =
        predict::FlatEnsemble::FromClassificationTrees(fx.forest.trees());
    if (!io::SaveEnsembleSnapshot(flat, path).ok()) std::abort();
  } else {
    if (!io::SaveForest(fx.forest, path).ok()) std::abort();
  }

  size_t bytes_on_disk = 0;
  for (auto _ : state) {
    if (use_snapshot) {
      auto image = io::LoadEnsembleSnapshot(path);
      if (!image.ok()) std::abort();
      bytes_on_disk = 0;  // reported via the file below either way
      benchmark::DoNotOptimize(image.value());
    } else {
      auto forest = io::LoadForest(path);
      if (!forest.ok()) std::abort();
      auto image =
          predict::FlatEnsemble::FromClassificationTrees(forest.value().trees());
      benchmark::DoNotOptimize(image);
    }
  }
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fseek(f, 0, SEEK_END);
    bytes_on_disk = static_cast<size_t>(std::ftell(f));
    std::fclose(f);
  }
  state.counters["bytes_on_disk"] = static_cast<double>(bytes_on_disk);
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_RegistryColdStart)
    ->ArgNames({"snapshot"})
    ->Arg(0)   // JSON parse + flatten
    ->Arg(1)   // binary snapshot
    ->Unit(benchmark::kMicrosecond);

// Bulkhead isolation gate: two models in one registry, the "hot" model
// driven open-loop at 400% of the measured max while the "cold" model sees
// light traffic. The run reports the cold model's p99 both alone and under
// the neighbor's overload — bulkheads mean the overload is absorbed by the
// hot model's own queue (hot_shed_rate > 0) and cold_p99_us stays at its
// alone baseline instead of inheriting the hot model's queueing delay.
void BM_RegistryMixedTrafficOverload(benchmark::State& state) {
  const auto& fx = ServeFixture();
  const double hot_rps = BaseRatePerSec() * 4.0;   // 400%: deep overload
  const double cold_rps = BaseRatePerSec() * 0.1;  // light, latency-sensitive
  const size_t kHotRequests = 1500;
  const size_t kColdRequests = 300;

  OpenLoopOutcome hot, cold_alone, cold_under_overload;
  for (auto _ : state) {
    serve::ModelRegistryOptions registry_options;
    registry_options.serving = LoadTestOptions(200);
    auto registry = serve::ModelRegistry::Create(registry_options).MoveValue();
    if (!registry->Load("hot", ServeEnsemble()).ok()) std::abort();
    if (!registry->Load("cold", ServeEnsemble()).ok()) std::abort();

    const auto submit_to = [&](const char* id) {
      return [&, id](size_t i) {
        return registry->SubmitPredict(id,
                                       fx.data.Row(i % fx.data.num_rows()));
      };
    };
    // Baseline: the cold model with no noisy neighbor.
    cold_alone =
        RunOpenLoopWith(submit_to("cold"), cold_rps, kColdRequests, 31);
    // Same cold traffic while the hot model is driven 4x over capacity.
    {
      ThreadPool drivers(2);
      const Status hot_driver = drivers.Submit([&] {
        hot = RunOpenLoopWith(submit_to("hot"), hot_rps, kHotRequests, 32);
      });
      const Status cold_driver = drivers.Submit([&] {
        cold_under_overload =
            RunOpenLoopWith(submit_to("cold"), cold_rps, kColdRequests, 33);
      });
      if (!hot_driver.ok() || !cold_driver.ok()) std::abort();
      drivers.Shutdown();
    }
    registry->Shutdown();
    const serve::RegistryStats stats = registry->stats();
    // The registry accounting identity must close even at 4x overload.
    if (stats.submitted != stats.serving.submitted +
                               stats.refused_unknown_model +
                               stats.refused_not_serving) {
      std::abort();
    }
  }
  state.counters["hot_offered_rps"] = hot_rps;
  state.counters["hot_shed_rate"] = static_cast<double>(hot.shed) /
                                    static_cast<double>(kHotRequests);
  state.counters["hot_p99_us"] = Percentile(&hot.latencies_us, 0.99);
  state.counters["cold_p99_alone_us"] =
      Percentile(&cold_alone.latencies_us, 0.99);
  state.counters["cold_p99_us"] =
      Percentile(&cold_under_overload.latencies_us, 0.99);
  state.counters["cold_shed_rate"] =
      static_cast<double>(cold_under_overload.shed) /
      static_cast<double>(kColdRequests);
  state.SetItemsProcessed(
      static_cast<int64_t>(hot.latencies_us.size() +
                           cold_under_overload.latencies_us.size()) *
      static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RegistryMixedTrafficOverload)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
