// Extension harness (paper future work, §5): gradient boosting as the
// comparison ensemble family. Quantifies the accuracy headroom between the
// watermarkable random forest and an equally sized GBDT on each dataset —
// i.e. the current "price of watermarkability" — and prints the analysis of
// why Algorithm 1 does not port to boosting unchanged.

#include <cstdio>

#include "bench_util.h"
#include "boosting/gbdt.h"
#include "common/stopwatch.h"

int main() {
  using namespace treewm;
  std::printf("Future-work extension — gradient boosting baseline\n");
  bench::PrintRule();
  std::printf("%-16s %10s %12s %12s %12s\n", "Dataset", "trees", "WM RF acc",
              "Std RF acc", "GBDT acc");
  bench::PrintRule();

  Stopwatch total;
  for (const auto& scale : bench::PaperDatasets()) {
    bench::BenchEnv env = bench::MakeEnv(scale, /*seed=*/51);
    Rng rng(123);
    const core::Signature sigma = core::Signature::Random(scale.num_trees, 0.5, &rng);
    core::WatermarkConfig config = bench::ConfigFor(scale, 16);
    core::Watermarker watermarker(config);
    auto wm = watermarker.CreateWatermark(env.train, sigma).MoveValue();
    auto standard =
        bench::StandardReference(env, scale, wm.tuned_config, /*seed=*/58);

    boosting::GbdtConfig gbdt_config;
    gbdt_config.num_trees = scale.num_trees;
    gbdt_config.tree.max_depth = 4;
    auto gbdt = boosting::Gbdt::Fit(env.train, gbdt_config).MoveValue();

    std::printf("%-16s %10zu %12.4f %12.4f %12.4f\n", env.name.c_str(),
                scale.num_trees, wm.model.Accuracy(env.test),
                standard.Accuracy(env.test), gbdt.Accuracy(env.test));
  }
  bench::PrintRule();
  std::printf("total %.1fs\n\nWhy Algorithm 1 does not port to boosting "
              "verbatim:\n%s\n",
              total.ElapsedSeconds(),
              boosting::GbdtWatermarkabilityNote().c_str());
  return 0;
}
