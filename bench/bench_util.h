// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Every harness binary runs argument-free at a scale that finishes in tens
// of seconds; setting TREEWM_BENCH_FULL=1 switches to the paper's full
// dataset sizes and ensemble counts (slower but closest to Table 1).

#ifndef TREEWM_BENCH_BENCH_UTIL_H_
#define TREEWM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/watermark.h"
#include "data/dataset.h"
#include "data/sampling.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"

namespace treewm::bench {

/// True when TREEWM_BENCH_FULL=1 is set.
inline bool FullScale() {
  const char* env = std::getenv("TREEWM_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// Per-dataset benchmark scale.
struct DatasetScale {
  const char* name;
  size_t rows;              ///< generated rows (0 = Table 1 size)
  size_t num_trees;         ///< ensemble size m
  double feature_fraction;  ///< per-tree feature share (0 = sqrt(d))
};

/// The three paper datasets at bench scale (paper scale under FullScale()).
inline std::vector<DatasetScale> PaperDatasets() {
  if (FullScale()) {
    // Tree counts approximate the paper's Table 2 ensembles (90/70/80).
    // Tabular datasets use a 0.4 feature share: trees stay correlated like
    // sklearn's, which is what makes low-distortion forgery UNSAT (§4.2.2).
    return {{"mnist2-6", 0, 90, 0.08},
            {"breast-cancer", 0, 70, 0.4},
            {"ijcnn1", 0, 80, 0.4}};
  }
  return {{"mnist2-6", 5000, 32, 0.10},
          {"breast-cancer", 0, 32, 0.4},
          {"ijcnn1", 4000, 32, 0.4}};
}

/// A prepared train/test environment for one dataset.
struct BenchEnv {
  data::Dataset train;
  data::Dataset test;
  std::string name;
};

inline BenchEnv MakeEnv(const DatasetScale& scale, uint64_t seed) {
  auto data = data::synthetic::MakeByName(scale.name, seed, scale.rows).MoveValue();
  Rng rng(seed + 17);
  auto tt = data::MakeTrainTest(data, 0.3, &rng).MoveValue();
  return BenchEnv{std::move(tt.train), std::move(tt.test), scale.name};
}

/// The watermark configuration used across harnesses (mirrors §4's setup:
/// grid-searched H, adjusted hyper-parameters, trigger from the train set).
inline core::WatermarkConfig DefaultWatermarkConfig(uint64_t seed) {
  core::WatermarkConfig config;
  config.seed = seed;
  config.grid.max_depth_grid = {8, 12, -1};
  config.grid.num_folds = 3;
  config.trigger_fraction = 0.02;
  return config;
}

/// Watermark configuration specialized to one dataset scale.
inline core::WatermarkConfig ConfigFor(const DatasetScale& scale, uint64_t seed) {
  core::WatermarkConfig config = DefaultWatermarkConfig(seed);
  config.trigger_training.forest.feature_fraction = scale.feature_fraction;
  return config;
}

/// Trains the standard (non-watermarked) reference forest with the tuned H
/// and the same per-tree feature share as the watermarked model.
inline forest::RandomForest StandardReference(const BenchEnv& env,
                                              const DatasetScale& scale,
                                              const tree::TreeConfig& tuned,
                                              uint64_t seed) {
  forest::ForestConfig config;
  config.num_trees = scale.num_trees;
  config.tree = tuned;
  config.seed = seed;
  config.feature_fraction = scale.feature_fraction;
  return forest::RandomForest::Fit(env.train, {}, config).MoveValue();
}

/// A deterministic blobs-dataset + trained-forest fixture. The micro
/// benches (micro_predict, micro_sat) used to carry private copies of this
/// exact construction; it lives here so every harness builds fixtures the
/// same way and new benches don't grow a third copy.
struct ForestFixture {
  data::Dataset data;
  forest::RandomForest forest;
};

/// Shared cache body behind the two fixture entry points below: builds the
/// dataset via `make_data` and fits a num_trees forest seeded with
/// forest_seed, once per process per key, so repetitions never re-train.
inline const ForestFixture& CachedForestFixtureImpl(
    const std::string& key, const std::function<data::Dataset()>& make_data,
    size_t num_trees, uint64_t forest_seed) {
  static auto* cache = new std::map<std::string, ForestFixture>();
  auto it = cache->find(key);
  if (it == cache->end()) {
    auto data = make_data();
    forest::ForestConfig config;
    config.num_trees = num_trees;
    config.seed = forest_seed;
    auto forest = forest::RandomForest::Fit(data, {}, config).MoveValue();
    it = cache->emplace(key, ForestFixture{std::move(data), std::move(forest)})
             .first;
  }
  return it->second;
}

/// Returns the cached fixture for (data_seed, rows, features, spread) blobs
/// and a num_trees forest seeded with forest_seed.
inline const ForestFixture& CachedForestFixture(uint64_t data_seed, size_t rows,
                                                size_t features, double spread,
                                                size_t num_trees,
                                                uint64_t forest_seed) {
  const std::string key =
      "blobs/" + std::to_string(data_seed) + "/" + std::to_string(rows) + "/" +
      std::to_string(features) + "/" + std::to_string(spread) + "/" +
      std::to_string(num_trees) + "/" + std::to_string(forest_seed);
  return CachedForestFixtureImpl(
      key,
      [&] { return data::synthetic::MakeBlobs(data_seed, rows, features, spread); },
      num_trees, forest_seed);
}

/// Cached fixture over a *named* synthetic dataset
/// (data::synthetic::MakeByName; rows = 0 means the dataset's default size)
/// — the forgery micros run on breast-cancer-like data, not blobs.
inline const ForestFixture& CachedNamedForestFixture(const std::string& name,
                                                     uint64_t data_seed,
                                                     size_t rows, size_t num_trees,
                                                     uint64_t forest_seed) {
  const std::string key = name + "/" + std::to_string(data_seed) + "/" +
                          std::to_string(rows) + "/" + std::to_string(num_trees) +
                          "/" + std::to_string(forest_seed);
  return CachedForestFixtureImpl(
      key,
      [&] { return data::synthetic::MakeByName(name, data_seed, rows).MoveValue(); },
      num_trees, forest_seed);
}

/// Prints a horizontal rule sized to typical harness tables.
inline void PrintRule() {
  std::printf("-------------------------------------------------------------------"
              "-------------\n");
}

}  // namespace treewm::bench

#endif  // TREEWM_BENCH_BENCH_UTIL_H_
