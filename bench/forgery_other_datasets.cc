// Reproduces the in-text forgery results of §4.2.2 for the two non-image
// datasets:
//  * breast-cancer: the forged trigger set reaches at most ~14% of the
//    original trigger size even at ε = 0.9 (most queries are UNSAT);
//  * ijcnn1: only ~1% at ε = 0.1, and raising ε makes individual queries so
//    expensive that the attack stops scaling (the paper reports > 4h per
//    bitmask at ε = 0.3; we surface the same effect as budget exhaustion).

#include <cstdio>

#include "attacks/forgery_attack.h"
#include "bench_util.h"
#include "common/stopwatch.h"

int main() {
  using namespace treewm;
  struct Setup {
    size_t dataset_index;  // into PaperDatasets()
    double epsilon;
    const char* paper_note;
  };
  const Setup setups[] = {
      {1, 0.9, "paper: <= 14% of original trigger even at eps=0.9"},
      {2, 0.1, "paper: ~1% of original trigger at eps=0.1"},
      {2, 0.3, "paper: does not scale (hours per bitmask) at eps=0.3"},
  };

  std::printf("§4.2.2 — forgery on breast-cancer and ijcnn1\n");
  bench::PrintRule();
  std::printf("%-16s %8s %10s %10s %10s %10s\n", "Dataset", "epsilon", "forged",
              "unsat", "budget", "|trigger|");
  bench::PrintRule();

  const auto scales = bench::PaperDatasets();
  for (const Setup& setup : setups) {
    const auto& scale = scales[setup.dataset_index];
    bench::BenchEnv env = bench::MakeEnv(scale, /*seed=*/47);
    Rng rng(111);
    const core::Signature sigma =
        core::Signature::Random(scale.num_trees, 0.5, &rng);
    core::WatermarkConfig config = bench::ConfigFor(scale, 12);
    core::Watermarker watermarker(config);
    auto wm = watermarker.CreateWatermark(env.train, sigma).MoveValue();

    const core::Signature fake =
        core::Signature::Random(scale.num_trees, 0.5, &rng);
    attacks::ForgeryAttackConfig attack;
    attack.epsilon = setup.epsilon;
    attack.max_attempts = bench::FullScale() ? env.test.num_rows() : 60;
    // The node budget stands in for the paper's wall-clock timeout; hard
    // instances at larger ε show up as budget exhaustion.
    attack.max_nodes_per_instance = 100000;
    Stopwatch sw;
    auto report =
        attacks::RunForgeryAttack(wm.model, fake, env.test, attack).MoveValue();
    std::printf("%-16s %8.1f %9zu/%zu %10zu %10zu %10zu  (%.1fs)\n",
                env.name.c_str(), setup.epsilon, report.forged, report.attempts,
                report.unsat, report.budget_exhausted, wm.trigger_set.num_rows(),
                sw.ElapsedSeconds());
    std::printf("  %s\n", setup.paper_note);
  }
  bench::PrintRule();
  return 0;
}
