#!/usr/bin/env python3
"""treewm project-invariant linter.

Enforces repo-wide invariants that the compiler cannot (or that we only
enforce under clang, which not every build host has):

  naked-primitive   std::mutex / std::condition_variable / std::thread
                    outside src/common/. Concurrency primitives live behind
                    the annotated wrappers in src/common/mutex.h and
                    src/common/thread_pool.h so clang's -Wthread-safety
                    analysis sees every lock. (Scope: src/, tests/, bench/.)
  unseeded-random   rand()/srand()/std::random_device in src/. All
                    randomness flows through the seeded common/rng.h so
                    results are reproducible. (Exempt: src/common/rng.*.)
  fault-site        Every TREEWM_FAULT_FIRED site name is unique across
                    src/ (one name == one code site, so arming a fault has
                    one well-defined blast radius) and documented in the
                    fault-site catalog table in src/serve/README.md.
  sleep-in-test     std::this_thread::sleep_for/sleep_until in tests/.
                    Deadline logic is tested with FakeClock + Pump();
                    a sleep in a test is either flaky or slow.
  untagged-discard  A `(void)expr;` cast without a `// discard ok: <why>`
                    comment on the same line or the two lines above.
                    Status/Result are [[nodiscard]]; the cast is the
                    sanctioned suppression and must carry its reason.

Waiver: a `// lint ok: <reason>` comment on the offending line or within the
two lines above (so the reason can wrap) suppresses all rules for that line.
Use sparingly; the reason is mandatory and reviewed.

Usage:
  tools/lint_invariants.py [--root DIR]   lint the tree; exit 0 clean, 1 dirty
  tools/lint_invariants.py --self-test    run the fixtures in
                                          tools/lint_fixtures/ and verify each
                                          `// expect-lint: <rule-id>` marker
                                          fires exactly its rule

Output format (one finding per line):  path:line: [rule-id] message
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List, NamedTuple, Tuple


class Finding(NamedTuple):
    path: str
    line: int  # 1-based
    rule: str
    message: str


# ---------------------------------------------------------------------------
# Source model: per line, the code with comments/strings blanked out, plus the
# comment text (where tags like `discard ok:` / `lint ok:` live).
# ---------------------------------------------------------------------------

class SourceLine(NamedTuple):
    raw: str
    code: str     # string/char literals replaced by "", comments removed
    comment: str  # concatenated comment text on this line


def split_lines(text: str) -> List[SourceLine]:
    """Single-pass scanner handling //, /* */, "..." and '...' well enough
    for this codebase (no raw strings, no trigraphs)."""
    out: List[SourceLine] = []
    in_block = False
    for raw in text.splitlines():
        code: List[str] = []
        comment: List[str] = []
        i, n = 0, len(raw)
        while i < n:
            c = raw[i]
            if in_block:
                end = raw.find("*/", i)
                if end < 0:
                    comment.append(raw[i:])
                    i = n
                else:
                    comment.append(raw[i:end])
                    i = end + 2
                    in_block = False
                continue
            if c == "/" and i + 1 < n and raw[i + 1] == "/":
                comment.append(raw[i + 2:])
                i = n
            elif c == "/" and i + 1 < n and raw[i + 1] == "*":
                in_block = True
                i += 2
            elif c == '"' or c == "'":
                quote = c
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                    elif raw[i] == quote:
                        i += 1
                        break
                    else:
                        i += 1
                code.append('""' if quote == '"' else "''")
            else:
                code.append(c)
                i += 1
        out.append(SourceLine(raw, "".join(code), " ".join(comment)))
    return out


def has_tag(lines: List[SourceLine], idx: int, tag: str, lookback: int) -> bool:
    for j in range(max(0, idx - lookback), idx + 1):
        if tag in lines[j].comment:
            return True
    return False


def waived(lines: List[SourceLine], idx: int) -> bool:
    return has_tag(lines, idx, "lint ok:", lookback=2)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

NAKED_PRIMITIVE_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"thread|jthread)\b")
# std::thread::hardware_concurrency is a static query, not a thread.
HARDWARE_CONCURRENCY_RE = re.compile(r"std::thread::hardware_concurrency")

UNSEEDED_RANDOM_RE = re.compile(r"\bstd::random_device\b|\bs?rand\s*\(")

SLEEP_RE = re.compile(r"\bsleep_(for|until)\s*\(")

# A (void) cast applied to an expression (not a `f(void)` parameter list).
DISCARD_RE = re.compile(r"\(\s*void\s*\)\s*[A-Za-z_:(!~*]")

FAULT_SITE_RE = re.compile(r"TREEWM_FAULT_FIRED\s*\(\s*\"([^\"]+)\"")


def lint_file(path: str, rel: str, scopes: List[str]) -> Tuple[List[Finding], List[Tuple[str, int]]]:
    """Returns (findings, fault_sites) for one file. `scopes` is the subset of
    {"concurrency", "random", "test", "discard", "fault"} that applies."""
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = split_lines(f.read())
    except OSError as e:
        return [Finding(rel, 0, "io", f"unreadable: {e}")], []

    findings: List[Finding] = []
    fault_sites: List[Tuple[str, int]] = []
    for idx, ln in enumerate(lines):
        lineno = idx + 1
        if "fault" in scopes:
            # Match on raw (names live in string literals) but require the
            # macro in code so commented-out sites don't register.
            if "TREEWM_FAULT_FIRED" in ln.code:
                for m in FAULT_SITE_RE.finditer(ln.raw):
                    fault_sites.append((m.group(1), lineno))
        if waived(lines, idx):
            continue
        code = ln.code
        if "concurrency" in scopes:
            code_nc = HARDWARE_CONCURRENCY_RE.sub("", code)
            m = NAKED_PRIMITIVE_RE.search(code_nc)
            if m:
                findings.append(Finding(
                    rel, lineno, "naked-primitive",
                    f"naked std::{m.group(1)} outside src/common/ — use the "
                    "annotated wrappers in common/mutex.h / common/thread_pool.h"))
        if "random" in scopes and UNSEEDED_RANDOM_RE.search(code):
            findings.append(Finding(
                rel, lineno, "unseeded-random",
                "unseeded randomness in src/ — use the seeded treewm::Rng "
                "(common/rng.h) so runs are reproducible"))
        if "test" in scopes and SLEEP_RE.search(code):
            findings.append(Finding(
                rel, lineno, "sleep-in-test",
                "sleep_for/sleep_until in tests/ — drive time with FakeClock "
                "and Pump() instead"))
        if "discard" in scopes and DISCARD_RE.search(code):
            if not has_tag(lines, idx, "discard ok:", lookback=2):
                findings.append(Finding(
                    rel, lineno, "untagged-discard",
                    "(void) cast without a `// discard ok: <reason>` comment "
                    "on the same line or the two lines above"))
    return findings, fault_sites


def scopes_for(rel: str) -> List[str]:
    """Which rules apply to a repo-relative path."""
    rel = rel.replace(os.sep, "/")
    scopes: List[str] = ["discard"]
    in_src = rel.startswith("src/")
    in_common = rel.startswith("src/common/")
    if not in_common:
        scopes.append("concurrency")
    if in_src:
        scopes.append("fault")
        if rel not in ("src/common/rng.h", "src/common/rng.cc"):
            scopes.append("random")
    if rel.startswith("tests/"):
        scopes.append("test")
    return scopes


def check_fault_sites(sites: Dict[str, List[Tuple[str, int]]],
                      readme_path: str) -> List[Finding]:
    """sites: name -> [(rel, line), ...]. Uniqueness + catalog check."""
    findings: List[Finding] = []
    try:
        with open(readme_path, encoding="utf-8") as f:
            readme = f.read()
    except OSError:
        readme = None
    for name in sorted(sites):
        occurrences = sites[name]
        if len(occurrences) > 1:
            first = occurrences[0]
            for rel, line in occurrences[1:]:
                findings.append(Finding(
                    rel, line, "fault-site",
                    f'duplicate fault site "{name}" (first at '
                    f"{first[0]}:{first[1]}) — one name == one code site"))
        if readme is not None and f"`{name}`" not in readme:
            rel, line = occurrences[0]
            findings.append(Finding(
                rel, line, "fault-site",
                f'fault site "{name}" missing from the catalog table in '
                "src/serve/README.md"))
    if readme is None:
        findings.append(Finding(
            os.path.relpath(readme_path), 0, "fault-site",
            "src/serve/README.md (fault-site catalog) not found"))
    return findings


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

SOURCE_EXTS = (".h", ".cc")
LINT_DIRS = ("src", "tests", "bench")


def iter_sources(root: str):
    for top in LINT_DIRS:
        base = os.path.join(root, top)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    path = os.path.join(dirpath, name)
                    yield path, os.path.relpath(path, root)


def lint_tree(root: str) -> List[Finding]:
    findings: List[Finding] = []
    all_sites: Dict[str, List[Tuple[str, int]]] = {}
    for path, rel in iter_sources(root):
        file_findings, fault_sites = lint_file(path, rel, scopes_for(rel))
        findings.extend(file_findings)
        for name, line in fault_sites:
            all_sites.setdefault(name, []).append((rel, line))
    findings.extend(check_fault_sites(
        all_sites, os.path.join(root, "src", "serve", "README.md")))
    return findings


EXPECT_RE = re.compile(r"expect-lint:\s*([a-z-]+)")


def self_test(root: str) -> int:
    """Every fixture line marked `// expect-lint: rule` must fire exactly that
    rule; nothing else may fire; the clean fixture must be silent."""
    fixture_dir = os.path.join(root, "tools", "lint_fixtures")
    if not os.path.isdir(fixture_dir):
        print(f"self-test: fixture dir not found: {fixture_dir}")
        return 1
    failures = 0
    readme = os.path.join(root, "src", "serve", "README.md")
    for name in sorted(os.listdir(fixture_dir)):
        if not name.endswith(SOURCE_EXTS):
            continue
        path = os.path.join(fixture_dir, name)
        with open(path, encoding="utf-8") as f:
            lines = split_lines(f.read())
        expected: Dict[int, str] = {}
        for idx, ln in enumerate(lines):
            m = EXPECT_RE.search(ln.comment)
            if m:
                expected[idx + 1] = m.group(1)
        # Fixtures get every rule: they stand in for worst-placed code.
        findings, fault_sites = lint_file(
            path, name, ["concurrency", "random", "test", "discard", "fault"])
        sites: Dict[str, List[Tuple[str, int]]] = {}
        for site, line in fault_sites:
            sites.setdefault(site, []).append((name, line))
        findings.extend(check_fault_sites(sites, readme))
        got: Dict[int, List[str]] = {}
        for f_ in findings:
            got.setdefault(f_.line, []).append(f_.rule)
        ok = True
        for line, rule in expected.items():
            if got.get(line) != [rule]:
                print(f"self-test FAIL {name}:{line}: expected [{rule}], "
                      f"got {got.get(line, [])}")
                ok = False
        for line, rules in got.items():
            if line not in expected:
                print(f"self-test FAIL {name}:{line}: unexpected {rules}")
                ok = False
        if ok:
            verdict = "clean" if not expected else f"{len(expected)} expected findings"
            print(f"self-test ok   {name}: {verdict}")
        else:
            failures += 1
    if failures:
        print(f"self-test: {failures} fixture(s) failed")
        return 1
    print("self-test: all fixtures behave")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script's dir)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the linter against tools/lint_fixtures/")
    args = parser.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if args.self_test:
        return self_test(root)
    findings = lint_tree(root)
    for f_ in sorted(findings):
        print(f"{f_.path}:{f_.line}: [{f_.rule}] {f_.message}")
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
