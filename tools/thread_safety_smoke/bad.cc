// Thread-safety smoke (negative half): the same class as good.cc with the
// lock dropped. clang -Wthread-safety -Werror must REFUSE to compile this —
// if it compiles, the annotations have stopped biting (e.g. a macro became
// a no-op under clang) and the smoke test fails the build.
// Driven by tools/check_thread_safety_smoke.sh; never linked into treewm.

#include "common/annotations.h"
#include "common/mutex.h"

namespace {

class Guarded {
 public:
  void Add(int n) {
    total_ += n;  // unguarded write to a TREEWM_GUARDED_BY field
  }

  // Correctly guarded, so -Wunused-private-field cannot be the reason the
  // file is rejected — only the thread-safety diagnostic on Add() can be.
  int Total() {
    treewm::MutexLock lock(&mutex_);
    return total_;
  }

 private:
  treewm::Mutex mutex_;
  int total_ TREEWM_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Add(1);
  return 0;
}
