// Thread-safety smoke (positive half): idiomatic guarded access. Must
// compile CLEAN under clang -Wthread-safety -Wthread-safety-beta -Werror.
// Driven by tools/check_thread_safety_smoke.sh; never linked into treewm.

#include "common/annotations.h"
#include "common/mutex.h"

namespace {

class Guarded {
 public:
  void Add(int n) {
    treewm::MutexLock lock(&mutex_);
    total_ += n;
  }

  int Total() {
    treewm::MutexLock lock(&mutex_);
    return total_;
  }

 private:
  treewm::Mutex mutex_;
  int total_ TREEWM_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Add(1);
  return g.Total() == 1 ? 0 : 1;
}
