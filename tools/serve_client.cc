// serve_client — CLI for the wire protocol (src/serve/wire/).
//
// Subcommands:
//   serve [port]                     train a demo forest, serve it on
//                                    127.0.0.1:<port> (0 = kernel-picked;
//                                    the bound port is printed), run until
//                                    stdin closes (pipe `true |` for CI).
//   ping <port>                      liveness round-trip.
//   predict <port> f1,f2,...         one prediction; prints label + votes.
//   load <port> <requests> [conns]   closed-loop load over keep-alive
//                                    connections with the polite-client
//                                    retry discipline; prints served/refused.
//
// Typical session:
//   ./build/serve_client serve 7447 &
//   ./build/serve_client ping 7447
//   ./build/serve_client predict 7447 "$(python3 -c 'print(",".join(["0.5"]*30))')"
//   ./build/serve_client load 7447 1000 4

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "data/sampling.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "predict/flat_ensemble.h"
#include "serve/retry.h"
#include "serve/serving_front_end.h"
#include "serve/wire/socket_client.h"
#include "serve/wire/socket_server.h"

namespace {

using namespace treewm;

int Usage() {
  std::fprintf(stderr,
               "usage: serve_client serve [port]\n"
               "       serve_client ping <port>\n"
               "       serve_client predict <port> f1,f2,...\n"
               "       serve_client load <port> <requests> [connections]\n");
  return 2;
}

std::vector<float> ParseFeatures(const std::string& csv) {
  std::vector<float> features;
  size_t at = 0;
  while (at < csv.size()) {
    size_t comma = csv.find(',', at);
    if (comma == std::string::npos) comma = csv.size();
    features.push_back(std::strtof(csv.substr(at, comma - at).c_str(), nullptr));
    at = comma + 1;
  }
  return features;
}

int RunServe(uint16_t port) {
  data::Dataset dataset = data::synthetic::MakeBreastCancerLike(/*seed=*/2025);
  Rng rng(1);
  auto split =
      data::MakeTrainTest(dataset, /*test_fraction=*/0.3, &rng).MoveValue();
  forest::ForestConfig config;
  config.num_trees = 16;
  config.seed = 5;
  auto forest = forest::RandomForest::Fit(split.train, {}, config).MoveValue();

  serve::ServingOptions serving_options;
  serving_options.queue.capacity = 256;
  serving_options.queue.shed_high_water = 192;
  serving_options.batch.max_batch_rows = 32;
  serving_options.batch.max_batch_delay = std::chrono::milliseconds(1);
  auto serving = serve::ServingFrontEnd::Create(
                     std::make_shared<predict::FlatEnsemble>(
                         predict::FlatEnsemble::FromClassificationTrees(
                             forest.trees())),
                     serving_options)
                     .MoveValue();

  serve::wire::SocketServerOptions wire_options;
  wire_options.port = port;
  auto server =
      serve::wire::SocketServer::Create(serving.get(), wire_options);
  if (!server.ok()) {
    std::fprintf(stderr, "serve: %s\n", server.status().ToString().c_str());
    return 1;
  }
  std::printf("serving %zu trees over %zu features on 127.0.0.1:%u\n",
              serving->num_trees(), serving->num_features(),
              server.value()->port());
  std::printf("press enter (or close stdin) to drain and exit\n");
  std::fflush(stdout);
  (void)std::getchar();  // blocks until input or EOF

  server.value()->Shutdown();
  const serve::wire::WireStats stats = server.value()->stats();
  serving->Shutdown();
  std::printf(
      "wire: %llu conns (%llu shed), %llu requests -> %llu responses + "
      "%llu refusals + %llu dropped, %llu parse errors\n",
      (unsigned long long)stats.connections_accepted,
      (unsigned long long)stats.connections_shed,
      (unsigned long long)stats.requests_received,
      (unsigned long long)stats.responses_sent,
      (unsigned long long)stats.refusals_sent,
      (unsigned long long)stats.responses_dropped,
      (unsigned long long)stats.parse_errors);
  return 0;
}

int RunPing(uint16_t port) {
  serve::wire::SocketClientOptions options;
  options.port = port;
  serve::wire::SocketClient client(options);
  const Status status = client.Ping();
  std::printf("ping 127.0.0.1:%u: %s\n", port, status.ToString().c_str());
  return status.ok() ? 0 : 1;
}

int RunPredict(uint16_t port, const std::string& csv) {
  const std::vector<float> features = ParseFeatures(csv);
  if (features.empty()) {
    std::fprintf(stderr, "predict: no features parsed from '%s'\n", csv.c_str());
    return 2;
  }
  serve::wire::SocketClientOptions options;
  options.port = port;
  serve::wire::SocketClient client(options);
  serve::RetryPolicy policy;
  auto result = client.PredictWithRetry(features, policy);
  if (!result.ok()) {
    std::fprintf(stderr, "predict: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("label %+d, votes", result.value().label);
  for (int8_t vote : result.value().votes) std::printf(" %+d", (int)vote);
  std::printf("\n");
  return 0;
}

int RunLoad(uint16_t port, size_t requests, size_t connections) {
  if (connections == 0) connections = 1;
  data::Dataset dataset = data::synthetic::MakeBreastCancerLike(/*seed=*/2025);
  const size_t per_conn = (requests + connections - 1) / connections;
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> refused{0};
  std::atomic<uint64_t> failed{0};
  ThreadPool pool(connections);
  for (size_t c = 0; c < connections; ++c) {
    const Status submitted = pool.Submit([&, c] {
      serve::wire::SocketClientOptions options;
      options.port = port;
      serve::wire::SocketClient client(options);
      serve::RetryPolicy policy;
      policy.seed = c + 1;
      for (size_t i = 0; i < per_conn; ++i) {
        auto row = dataset.Row((c * per_conn + i) % dataset.num_rows());
        auto result = client.PredictWithRetry(row, policy);
        if (result.ok()) {
          served.fetch_add(1, std::memory_order_relaxed);
        } else if (result.status().code() == StatusCode::kResourceExhausted) {
          refused.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    if (!submitted.ok()) {
      std::fprintf(stderr, "load: %s\n", submitted.ToString().c_str());
      return 1;
    }
  }
  pool.Shutdown();
  std::printf("load: %llu served, %llu refused (overload), %llu failed over "
              "%zu connection(s)\n",
              (unsigned long long)served.load(),
              (unsigned long long)refused.load(),
              (unsigned long long)failed.load(), connections);
  return failed.load() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "serve") {
    const uint16_t port =
        argc >= 3 ? static_cast<uint16_t>(std::atoi(argv[2])) : 0;
    return RunServe(port);
  }
  if (command == "ping" && argc >= 3) {
    return RunPing(static_cast<uint16_t>(std::atoi(argv[2])));
  }
  if (command == "predict" && argc >= 4) {
    return RunPredict(static_cast<uint16_t>(std::atoi(argv[2])), argv[3]);
  }
  if (command == "load" && argc >= 4) {
    const size_t requests = static_cast<size_t>(std::atoll(argv[3]));
    const size_t connections =
        argc >= 5 ? static_cast<size_t>(std::atoll(argv[4])) : 1;
    return RunLoad(static_cast<uint16_t>(std::atoi(argv[2])), requests,
                   connections);
  }
  return Usage();
}
