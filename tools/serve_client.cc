// serve_client — CLI for the wire protocol (src/serve/wire/).
//
// Subcommands:
//   serve [port]                     train two demo forests, serve them from
//                                    a model registry on 127.0.0.1:<port>
//                                    (0 = kernel-picked; the bound port is
//                                    printed), run until stdin closes (pipe
//                                    `true |` for CI). Models: "demo" (the
//                                    default for v1 clients) and
//                                    "demo-compact".
//   ping <port>                      liveness round-trip.
//   models <port>                    list the server's models (id, state,
//                                    checksum, traffic counters).
//   predict <port> f1,f2,...         one prediction; prints label + votes.
//   load <port> <requests> [conns]   closed-loop load over keep-alive
//                                    connections with the polite-client
//                                    retry discipline; prints served/refused.
//
// predict and load accept `--model <id>` anywhere after the subcommand to
// address a specific model (protocol v2); without it they speak v1 and land
// on the server's default model.
//
// Typical session:
//   ./build/serve_client serve 7447 &
//   ./build/serve_client ping 7447
//   ./build/serve_client models 7447
//   ./build/serve_client predict 7447 --model demo-compact "$(python3 -c 'print(",".join(["0.5"]*30))')"
//   ./build/serve_client load 7447 1000 4

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "data/sampling.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "predict/flat_ensemble.h"
#include "serve/registry/model_registry.h"
#include "serve/retry.h"
#include "serve/serving_front_end.h"
#include "serve/wire/socket_client.h"
#include "serve/wire/socket_server.h"

namespace {

using namespace treewm;

int Usage() {
  std::fprintf(stderr,
               "usage: serve_client serve [port]\n"
               "       serve_client ping <port>\n"
               "       serve_client models <port>\n"
               "       serve_client predict [--model <id>] <port> f1,f2,...\n"
               "       serve_client load [--model <id>] <port> <requests> "
               "[connections]\n");
  return 2;
}

/// Removes a `--model <id>` pair from `args` (anywhere) and returns the id;
/// empty when absent (= speak protocol v1).
std::string ExtractModelFlag(std::vector<std::string>* args) {
  for (size_t i = 0; i + 1 < args->size(); ++i) {
    if ((*args)[i] == "--model") {
      std::string id = (*args)[i + 1];
      args->erase(args->begin() + i, args->begin() + i + 2);
      return id;
    }
  }
  return "";
}

std::vector<float> ParseFeatures(const std::string& csv) {
  std::vector<float> features;
  size_t at = 0;
  while (at < csv.size()) {
    size_t comma = csv.find(',', at);
    if (comma == std::string::npos) comma = csv.size();
    features.push_back(std::strtof(csv.substr(at, comma - at).c_str(), nullptr));
    at = comma + 1;
  }
  return features;
}

std::shared_ptr<const predict::FlatEnsemble> TrainDemoModel(
    const data::Dataset& train, size_t num_trees, uint64_t seed) {
  forest::ForestConfig config;
  config.num_trees = num_trees;
  config.seed = seed;
  auto forest = forest::RandomForest::Fit(train, {}, config).MoveValue();
  return std::make_shared<const predict::FlatEnsemble>(
      predict::FlatEnsemble::FromClassificationTrees(forest.trees()));
}

int RunServe(uint16_t port) {
  data::Dataset dataset = data::synthetic::MakeBreastCancerLike(/*seed=*/2025);
  Rng rng(1);
  auto split =
      data::MakeTrainTest(dataset, /*test_fraction=*/0.3, &rng).MoveValue();

  serve::ModelRegistryOptions registry_options;
  registry_options.serving.queue.capacity = 256;
  registry_options.serving.queue.shed_high_water = 192;
  registry_options.serving.batch.max_batch_rows = 32;
  registry_options.serving.batch.max_batch_delay = std::chrono::milliseconds(1);
  auto registry = serve::ModelRegistry::Create(registry_options);
  if (!registry.ok()) {
    std::fprintf(stderr, "serve: %s\n", registry.status().ToString().c_str());
    return 1;
  }
  const Status demo =
      registry.value()->Load("demo", TrainDemoModel(split.train, 16, 5));
  const Status compact =
      registry.value()->Load("demo-compact", TrainDemoModel(split.train, 5, 6));
  if (!demo.ok() || !compact.ok()) {
    std::fprintf(stderr, "serve: %s\n",
                 (demo.ok() ? compact : demo).ToString().c_str());
    return 1;
  }

  serve::wire::SocketServerOptions wire_options;
  wire_options.port = port;
  wire_options.default_model = "demo";
  auto server =
      serve::wire::SocketServer::Create(registry.value().get(), wire_options);
  if (!server.ok()) {
    std::fprintf(stderr, "serve: %s\n", server.status().ToString().c_str());
    return 1;
  }
  for (const serve::ModelEntryInfo& info : registry.value()->List()) {
    std::printf("model '%s': %s, checksum %08x\n", info.id.c_str(),
                serve::ModelStateName(info.state), info.checksum);
  }
  std::printf("serving %zu models on 127.0.0.1:%u (default 'demo')\n",
              registry.value()->List().size(), server.value()->port());
  std::printf("press enter (or close stdin) to drain and exit\n");
  std::fflush(stdout);
  (void)std::getchar();  // blocks until input or EOF

  server.value()->Shutdown();
  const serve::wire::WireStats stats = server.value()->stats();
  registry.value()->Shutdown();
  std::printf(
      "wire: %llu conns (%llu shed), %llu requests + %llu model lists -> "
      "%llu responses + %llu refusals + %llu dropped, %llu parse errors\n",
      (unsigned long long)stats.connections_accepted,
      (unsigned long long)stats.connections_shed,
      (unsigned long long)stats.requests_received,
      (unsigned long long)stats.models_requests,
      (unsigned long long)stats.responses_sent,
      (unsigned long long)stats.refusals_sent,
      (unsigned long long)stats.responses_dropped,
      (unsigned long long)stats.parse_errors);
  return 0;
}

int RunPing(uint16_t port) {
  serve::wire::SocketClientOptions options;
  options.port = port;
  serve::wire::SocketClient client(options);
  const Status status = client.Ping();
  std::printf("ping 127.0.0.1:%u: %s\n", port, status.ToString().c_str());
  return status.ok() ? 0 : 1;
}

int RunModels(uint16_t port) {
  serve::wire::SocketClientOptions options;
  options.port = port;
  serve::wire::SocketClient client(options);
  auto models = client.ListModels();
  if (!models.ok()) {
    std::fprintf(stderr, "models: %s\n", models.status().ToString().c_str());
    return 1;
  }
  for (const serve::wire::ModelInfoMsg& row : models.value()) {
    std::printf(
        "model '%s': %s, checksum %08x, %llu submitted, %llu ok, %llu shed\n",
        row.id.c_str(),
        serve::ModelStateName(static_cast<serve::ModelState>(row.state)),
        row.checksum, (unsigned long long)row.submitted,
        (unsigned long long)row.completed_ok, (unsigned long long)row.shed);
  }
  return 0;
}

int RunPredict(uint16_t port, const std::string& csv,
               const std::string& model_id) {
  const std::vector<float> features = ParseFeatures(csv);
  if (features.empty()) {
    std::fprintf(stderr, "predict: no features parsed from '%s'\n", csv.c_str());
    return 2;
  }
  serve::wire::SocketClientOptions options;
  options.port = port;
  options.model_id = model_id;
  serve::wire::SocketClient client(options);
  serve::RetryPolicy policy;
  auto result = client.PredictWithRetry(features, policy);
  if (!result.ok()) {
    std::fprintf(stderr, "predict: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("label %+d, votes", result.value().label);
  for (int8_t vote : result.value().votes) std::printf(" %+d", (int)vote);
  std::printf("\n");
  return 0;
}

int RunLoad(uint16_t port, size_t requests, size_t connections,
            const std::string& model_id) {
  if (connections == 0) connections = 1;
  data::Dataset dataset = data::synthetic::MakeBreastCancerLike(/*seed=*/2025);
  const size_t per_conn = (requests + connections - 1) / connections;
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> refused{0};
  std::atomic<uint64_t> failed{0};
  ThreadPool pool(connections);
  for (size_t c = 0; c < connections; ++c) {
    const Status submitted = pool.Submit([&, c] {
      serve::wire::SocketClientOptions options;
      options.port = port;
      options.model_id = model_id;
      serve::wire::SocketClient client(options);
      serve::RetryPolicy policy;
      policy.seed = c + 1;
      for (size_t i = 0; i < per_conn; ++i) {
        auto row = dataset.Row((c * per_conn + i) % dataset.num_rows());
        auto result = client.PredictWithRetry(row, policy);
        if (result.ok()) {
          served.fetch_add(1, std::memory_order_relaxed);
        } else if (result.status().code() == StatusCode::kResourceExhausted) {
          refused.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    if (!submitted.ok()) {
      std::fprintf(stderr, "load: %s\n", submitted.ToString().c_str());
      return 1;
    }
  }
  pool.Shutdown();
  std::printf("load: %llu served, %llu refused (overload), %llu failed over "
              "%zu connection(s)%s%s\n",
              (unsigned long long)served.load(),
              (unsigned long long)refused.load(),
              (unsigned long long)failed.load(), connections,
              model_id.empty() ? "" : " to model ",
              model_id.empty() ? "" : model_id.c_str());
  return failed.load() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  const std::string model_id = ExtractModelFlag(&args);
  if (command == "serve") {
    const uint16_t port =
        !args.empty() ? static_cast<uint16_t>(std::atoi(args[0].c_str())) : 0;
    return RunServe(port);
  }
  if (command == "ping" && !args.empty()) {
    return RunPing(static_cast<uint16_t>(std::atoi(args[0].c_str())));
  }
  if (command == "models" && !args.empty()) {
    return RunModels(static_cast<uint16_t>(std::atoi(args[0].c_str())));
  }
  if (command == "predict" && args.size() >= 2) {
    return RunPredict(static_cast<uint16_t>(std::atoi(args[0].c_str())),
                      args[1], model_id);
  }
  if (command == "load" && args.size() >= 2) {
    const size_t requests = static_cast<size_t>(std::atoll(args[1].c_str()));
    const size_t connections =
        args.size() >= 3 ? static_cast<size_t>(std::atoll(args[2].c_str())) : 1;
    return RunLoad(static_cast<uint16_t>(std::atoi(args[0].c_str())), requests,
                   connections, model_id);
  }
  return Usage();
}
