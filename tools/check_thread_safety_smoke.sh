#!/usr/bin/env bash
# Verifies the thread-safety annotations actually bite under clang:
#   good.cc  (guarded access under MutexLock)  must compile clean;
#   bad.cc   (same access without the lock)    must be REJECTED with a
#            thread-safety diagnostic under -Wthread-safety -Werror.
#
# Without clang++ on PATH (e.g. the gcc-only dev container) the check exits
# 77 — ctest's SKIP_RETURN_CODE — and CI's static-analysis job, which always
# has clang, remains the enforcing gate. Override the compiler with CLANGXX.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
clang="${CLANGXX:-clang++}"

if ! command -v "$clang" >/dev/null 2>&1; then
  echo "thread_safety_smoke: no clang++ on PATH — skipping (CI enforces this)"
  exit 77
fi

flags=(-std=c++20 -fsyntax-only "-I$root/src"
       -Wthread-safety -Wthread-safety-beta -Werror)

if ! "$clang" "${flags[@]}" "$root/tools/thread_safety_smoke/good.cc"; then
  echo "FAIL: good.cc must compile clean under -Wthread-safety"
  exit 1
fi

err="$(mktemp)"
trap 'rm -f "$err"' EXIT
if "$clang" "${flags[@]}" "$root/tools/thread_safety_smoke/bad.cc" 2>"$err"; then
  echo "FAIL: bad.cc compiled — the annotations are not biting under clang"
  exit 1
fi
if ! grep -q "thread-safety" "$err"; then
  echo "FAIL: bad.cc was rejected, but not by a thread-safety diagnostic:"
  cat "$err"
  exit 1
fi

echo "thread_safety_smoke: annotations bite (good.cc clean, bad.cc rejected)"
