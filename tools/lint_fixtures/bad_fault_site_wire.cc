// Fixture: fault-site discipline at the wire layer. The serve.wire.* sites
// are catalogued in src/serve/README.md with exactly one code site each; a
// fixture reusing one must trip the duplicate check, and a wire-flavored
// name missing from the catalog must trip the catalog check. NEVER compiled.

#include "common/fault_injection.h"

namespace fixture {

inline bool FirstWireSite() {
  // "serve.wire.read.short" is catalogued, so the first code site is clean...
  return TREEWM_FAULT_FIRED("serve.wire.read.short");
}

inline bool DuplicateWireSite() {
  // ...but a second code site would make one armed fault fire in two places.
  return TREEWM_FAULT_FIRED("serve.wire.read.short");  // expect-lint: fault-site
}

inline bool UncataloguedWireSite() {
  return TREEWM_FAULT_FIRED("serve.wire.not.in.catalog");  // expect-lint: fault-site
}

}  // namespace fixture
