// Fixture: idiomatic treewm code — must produce ZERO findings even with
// every rule applied. NEVER compiled.

#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace fixture {

class Counter {
 public:
  void Add(int n) {
    treewm::MutexLock lock(&mutex_);
    total_ += n;
  }

 private:
  treewm::Mutex mutex_;
  int total_ TREEWM_GUARDED_BY(mutex_) = 0;
};

inline void FanOut(treewm::ThreadPool* pool) {
  treewm::ParallelFor(pool, 8, [](size_t) {});
}

inline double Draw(uint64_t seed) {
  treewm::Rng rng(seed);  // seeded: reproducible
  return rng.UniformReal();
}

inline void Discarding() {
  treewm::Status st = treewm::Status::OK();
  // discard ok: fixture demonstrates the sanctioned suppression form
  (void)st;
}

}  // namespace fixture
