// Fixture: fault-site discipline. A duplicated site name and an
// uncatalogued one; each marked line must fire exactly fault-site.
// NEVER compiled.

#include "common/fault_injection.h"

namespace fixture {

inline bool First() {
  // "serve.batch.stall" is in the catalog, so the first use is clean...
  return TREEWM_FAULT_FIRED("serve.batch.stall");
}

inline bool Second() {
  // ...but a second code site reusing the name splits its blast radius.
  return TREEWM_FAULT_FIRED("serve.batch.stall");    // expect-lint: fault-site
}

inline bool Undocumented() {
  return TREEWM_FAULT_FIRED("fixture.not.in.catalog");  // expect-lint: fault-site
}

// A commented-out site must NOT register:
// if (TREEWM_FAULT_FIRED("fixture.ghost.site")) return true;

}  // namespace fixture
