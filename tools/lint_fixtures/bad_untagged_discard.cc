// Fixture: (void) casts without the mandatory justification. Each marked
// line must fire exactly untagged-discard. NEVER compiled.

namespace fixture {

struct [[nodiscard]] Outcome {
  bool ok;
};

inline Outcome DoWork() { return {true}; }

inline void Sloppy() {
  (void)DoWork();                   // expect-lint: untagged-discard
}

inline void SloppyWithWrongComment() {
  // TODO: check this someday
  (void)DoWork();                   // expect-lint: untagged-discard
}

inline void Justified() {
  // discard ok: warm-up call, outcome intentionally uncounted
  (void)DoWork();
}

// A `(void)` parameter list is not a discard; must NOT fire.
inline int NoArgs(void) { return 0; }

}  // namespace fixture
