// Fixture: concurrency primitives named directly instead of through the
// annotated wrappers. Each marked line must fire exactly naked-primitive.
// NEVER compiled — consumed by tools/lint_invariants.py --self-test.

#include <condition_variable>
#include <mutex>
#include <thread>

namespace fixture {

struct Widget {
  std::mutex mu;                    // expect-lint: naked-primitive
  std::condition_variable cv;       // expect-lint: naked-primitive
};

inline void Race() {
  std::thread worker([] {});        // expect-lint: naked-primitive
  worker.join();
}

// The static query is not a thread; must NOT fire.
inline unsigned Cores() { return std::thread::hardware_concurrency(); }

// Commented-out code must NOT fire: std::mutex backup_mu;

}  // namespace fixture
