// Fixture: unseeded randomness inside trainer-style code. Histogram
// trainers must be deterministic functions of (dataset, config, seed) —
// thread-count invariance tests depend on it — so a naked RNG in split
// selection or binning is exactly the bug the unseeded-random rule exists
// to catch. Each marked line must fire exactly that rule. NEVER compiled —
// linter self-test input only.

#include <cstdlib>
#include <random>
#include <vector>

namespace fixture {

struct FakeHistogramBin {
  double weight = 0.0;
  unsigned count = 0;
};

// Jittering equal-gain split ties with ambient entropy: silently breaks the
// "same tree at every thread count" contract.
inline int BreakSplitTie(int feature_a, int feature_b) {
  std::random_device entropy;         // expect-lint: unseeded-random
  return entropy() % 2 == 0 ? feature_a : feature_b;
}

// Subsampling rows for a binning pass with the legacy global RNG: the cut
// arrays stop being reproducible across runs.
inline std::vector<FakeHistogramBin> SampleBins(size_t num_bins) {
  std::vector<FakeHistogramBin> bins(num_bins);
  for (auto& bin : bins) {
    bin.count = static_cast<unsigned>(rand());  // expect-lint: unseeded-random
  }
  return bins;
}

// A seeded engine threaded through from config is the approved pattern and
// must NOT fire (mt19937 with an explicit seed, no random_device).
inline unsigned SeededDraw(std::mt19937* engine) { return (*engine)(); }

}  // namespace fixture
