// Fixture: fault-site discipline at the registry layer. The
// serve.registry.* sites are catalogued in src/serve/README.md with exactly
// one code site each; a fixture reusing one must trip the duplicate check,
// and a registry-flavored name missing from the catalog must trip the
// catalog check. NEVER compiled.

#include "common/fault_injection.h"

namespace fixture {

inline bool FirstRegistrySite() {
  // "serve.registry.load.fail" is catalogued, so the first code site is
  // clean...
  return TREEWM_FAULT_FIRED("serve.registry.load.fail");
}

inline bool DuplicateRegistrySite() {
  // ...but a second code site would make one armed fault fire in two places.
  return TREEWM_FAULT_FIRED("serve.registry.load.fail");  // expect-lint: fault-site
}

inline bool UncataloguedRegistrySite() {
  return TREEWM_FAULT_FIRED("serve.registry.not.in.catalog");  // expect-lint: fault-site
}

}  // namespace fixture
