// Fixture: wall-clock sleeps where FakeClock + Pump() belong. Each marked
// line must fire exactly sleep-in-test. NEVER compiled.

#include <chrono>
#include <thread>

namespace fixture {

inline void FlakyWait() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));   // expect-lint: sleep-in-test
}

inline void FlakyWaitUntil(std::chrono::steady_clock::time_point t) {
  std::this_thread::sleep_until(t);                             // expect-lint: sleep-in-test
}

// A waived sleep (reason given) must NOT fire.
inline void SanctionedWait() {
  // lint ok: real-thread race setup, no deadline logic involved
  std::this_thread::sleep_for(std::chrono::microseconds(10));
}

}  // namespace fixture
