// Fixture: unseeded randomness. Each marked line must fire exactly
// unseeded-random. NEVER compiled — linter self-test input only.

#include <cstdlib>
#include <random>

namespace fixture {

inline int Roll() {
  std::random_device entropy;       // expect-lint: unseeded-random
  return static_cast<int>(entropy());
}

inline int LegacyRoll() {
  return rand() % 6;                // expect-lint: unseeded-random
}

inline void LegacySeed() {
  srand(42);                        // expect-lint: unseeded-random
}

// An identifier merely containing "rand" must NOT fire.
inline int operand(int x) { return x; }
inline int UsesOperand() { return operand(3); }

}  // namespace fixture
