// Multi-model registry: per-model bulkheads over shared immutable images.
//
// The registry maps model ids to entries, each owning one immutable
// ensemble image (shared_ptr<const FlatEnsemble> — the quantized/forgery
// siblings hang off it lazily and are shared the same way) and one ISOLATED
// ServingFrontEnd: its own AdmissionQueue, batcher, and dispatcher. Nothing
// is pooled across models, so one model's overload sheds only that model's
// traffic and one model's wedged reload cannot touch another's latency
// (tests/test_registry.cc proves both).
//
// Lifecycle state machine, per model:
//
//       Load ──► LOADING ──ok──► SERVING ◄──┐
//                   │                │      │ Reload (atomic swap)
//                 fail               │      │
//                   ▼                ▼      │
//                FAILED          DRAINING ──┘ (old image drains)
//                   │                │
//                   └──── Unload ────┴────► UNLOADED (entry removed)
//
// Load/Reload/Unload are concurrent-safe. Reload builds a complete new
// front-end on the new image OFF the entry lock, then publishes it by
// swapping the entry's shared_ptr; because submits push into the current
// front-end under the same short entry lock, every request lands in exactly
// one front-end — requests admitted before the swap finish on the old
// image, admissions after it see the new one, and draining the old
// front-end completes every accepted promise. Zero requests are dropped or
// spuriously refused across a swap, and the accounting identity
//
//   registry submitted == Σ front-end submitted (live + retired + unloaded)
//                         + refused_unknown_model + refused_not_serving
//
// closes exactly (each front-end's own identity — submitted == completed +
// rejected + expired once drained — closes beneath it).
//
// Repeated reload failures trip a per-model circuit breaker: after
// `reload_breaker_threshold` consecutive failures, further reloads refuse
// with FailedPrecondition until the model is unloaded, while the old image
// keeps serving — a crash-looping model file cannot take down a healthy
// model. Fault sites: "serve.registry.load.fail" (front-end construction),
// "serve.registry.swap.stall" (between build and publication, where a slow
// reload must not block traffic), and "serve.registry.snapshot.corrupt"
// (io/ensemble_snapshot cold-start reads) — see src/serve/README.md.
//
// Rejected shapes (and why): one global registry lock serializing submits
// of every model (cross-model contention is exactly what bulkheads exist
// to kill); a copy-on-write model map republished per mutation (submits
// get lock-free lookup but every Load/Unload copies the map, and per-entry
// state still needs a lock for the swap — the map mutex is touched only to
// find the entry, never during prediction); and reloading by mutating the
// front-end's image in place (every traversal would pay an acquire on the
// hot path; swapping the whole front-end keeps images immutable and makes
// drain the only synchronization).

#ifndef TREEWM_SERVE_REGISTRY_MODEL_REGISTRY_H_
#define TREEWM_SERVE_REGISTRY_MODEL_REGISTRY_H_

#include <atomic>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"
#include "predict/flat_ensemble.h"
#include "serve/request.h"
#include "serve/serving_front_end.h"

namespace treewm::serve {

/// Wire-stable lifecycle byte (kModelsResponse carries it verbatim).
enum class ModelState : uint8_t {
  kLoading = 1,
  kServing = 2,
  kDraining = 3,
  kUnloaded = 4,
  kFailed = 5,
};

const char* ModelStateName(ModelState state);

struct ModelRegistryOptions {
  /// Per-model bulkhead template: every model's front-end is created from
  /// this. The admission policy must be kReject — submits push under the
  /// entry lock, so a blocking push would let one stalled client defer
  /// another model's reload.
  ServingOptions serving;
  /// Registry capacity; Load refuses with ResourceExhausted beyond it.
  size_t max_models = 64;
  /// Consecutive reload failures that open the per-model circuit breaker.
  size_t reload_breaker_threshold = 3;
};

/// Point-in-time view of one model (Info/List and the wire models frame).
struct ModelEntryInfo {
  std::string id;
  ModelState state = ModelState::kLoading;
  /// CRC-32 identity of the served image (io::EnsembleChecksum).
  uint32_t checksum = 0;
  uint64_t reloads = 0;          ///< successful atomic swaps
  uint64_t reload_failures = 0;  ///< failed reload attempts
  bool breaker_open = false;
  /// Why the model is FAILED (OK otherwise).
  Status last_error = Status::OK();
  /// Live front-end counters plus everything retired by swaps.
  ServingStats serving;
};

struct RegistryStats {
  uint64_t loads_ok = 0;
  uint64_t load_failures = 0;
  uint64_t reloads_ok = 0;
  uint64_t reload_failures = 0;
  uint64_t unloads = 0;
  uint64_t breaker_trips = 0;
  uint64_t submitted = 0;              ///< registry-level SubmitPredict calls
  uint64_t refused_unknown_model = 0;  ///< NotFound (no such entry)
  uint64_t refused_not_serving = 0;    ///< FailedPrecondition (wrong state)
  /// Aggregate over every front-end the registry ever ran (live entries,
  /// images retired by reload swaps, and unloaded models).
  ServingStats serving;
};

class ModelRegistry {
 public:
  /// Validates options (admission policy must be kReject; see above).
  [[nodiscard]] static Result<std::unique_ptr<ModelRegistry>> Create(
      ModelRegistryOptions options);

  /// Shuts down (drains every model) if the caller has not already.
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Loads `image` under `id`. AlreadyExists if the id is taken (including
  /// by a FAILED entry — Unload it first), ResourceExhausted at capacity.
  /// A build failure leaves the entry FAILED with the typed cause, visible
  /// to Info/List, never half-serving.
  [[nodiscard]] Status Load(const std::string& id,
                            std::shared_ptr<const predict::FlatEnsemble> image);

  /// Load from a binary snapshot file (io::LoadEnsembleSnapshot). Decode
  /// failures (IoError/ParseError) fail the load closed: the entry is
  /// FAILED, nothing serves.
  [[nodiscard]] Status LoadFromSnapshot(const std::string& id,
                                        const std::string& path);

  /// Atomically replaces a SERVING model's image (see file comment for the
  /// swap protocol). Typed refusals: NotFound (no entry), FailedPrecondition
  /// (not serving / reload already running / breaker open). A build failure
  /// keeps the old image serving and counts toward the breaker.
  [[nodiscard]] Status Reload(const std::string& id,
                              std::shared_ptr<const predict::FlatEnsemble> image);

  /// Reload from a binary snapshot file. A corrupt file is a reload
  /// failure like any other: the old image keeps serving and the breaker
  /// counts it.
  [[nodiscard]] Status ReloadFromSnapshot(const std::string& id,
                                          const std::string& path);

  /// Drains and removes a model. Every request admitted before Unload is
  /// answered on the old image; submits racing the drain get a typed
  /// FailedPrecondition. NotFound if absent, FailedPrecondition while a
  /// reload is in flight.
  [[nodiscard]] Status Unload(const std::string& id);

  /// Routes one request to `id`'s bulkhead. The returned future always
  /// resolves exactly once: a PredictResult, the model's front-end refusal,
  /// or an immediate NotFound / FailedPrecondition when the model cannot
  /// accept work. Thread-safe against concurrent Load/Reload/Unload.
  std::future<Result<PredictResult>> SubmitPredict(
      const std::string& id, std::span<const float> x,
      const RequestOptions& options = {});

  /// Blocking convenience wrapper over SubmitPredict.
  [[nodiscard]] Result<PredictResult> Predict(const std::string& id,
                                              std::span<const float> x,
                                              const RequestOptions& options = {});

  /// Manual-mode pump of one model's front-end (start_dispatcher = false).
  [[nodiscard]] Result<size_t> Pump(const std::string& id,
                                    bool force_flush = false);

  [[nodiscard]] Result<ModelEntryInfo> Info(const std::string& id) const;

  /// Every entry, sorted by id (deterministic output for tools/tests).
  std::vector<ModelEntryInfo> List() const;

  RegistryStats stats() const;

  /// Drains every model and refuses further loads. Idempotent.
  void Shutdown();

 private:
  struct Entry;

  explicit ModelRegistry(ModelRegistryOptions options);

  /// Creates the kLoading entry (all Load preconditions checked here).
  Result<std::shared_ptr<Entry>> BeginLoad(const std::string& id)
      TREEWM_EXCLUDES(map_mutex_);
  /// Publishes a built front-end (or records the typed failure) for a
  /// fresh LOADING entry.
  Status FinishLoad(const std::shared_ptr<Entry>& entry,
                    Result<std::unique_ptr<ServingFrontEnd>> built,
                    uint32_t checksum);
  /// Claims the entry for an exclusive reload (typed refusals otherwise).
  Result<std::shared_ptr<Entry>> BeginReload(const std::string& id)
      TREEWM_EXCLUDES(map_mutex_);
  /// Swap-or-fail tail of a reload; hosts the swap.stall fault site.
  Status FinishReload(const std::shared_ptr<Entry>& entry,
                      Result<std::unique_ptr<ServingFrontEnd>> built,
                      uint32_t checksum);
  /// Front-end construction; hosts the load.fail fault site.
  Result<std::unique_ptr<ServingFrontEnd>> BuildFrontEnd(
      std::shared_ptr<const predict::FlatEnsemble> image) const;

  ModelRegistryOptions options_;

  /// Guards only the id -> entry map. Never held while a front-end is
  /// built, drained, or submitted to, and never nested with entry locks.
  mutable Mutex map_mutex_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> models_
      TREEWM_GUARDED_BY(map_mutex_);
  bool shutdown_ TREEWM_GUARDED_BY(map_mutex_) = false;

  /// Stats retired by Unload/Shutdown (entries gone from the map).
  mutable Mutex retired_mutex_;
  ServingStats unloaded_serving_ TREEWM_GUARDED_BY(retired_mutex_);

  std::atomic<uint64_t> loads_ok_{0};
  std::atomic<uint64_t> load_failures_{0};
  std::atomic<uint64_t> reloads_ok_{0};
  std::atomic<uint64_t> reload_failures_{0};
  std::atomic<uint64_t> unloads_{0};
  std::atomic<uint64_t> breaker_trips_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> refused_unknown_model_{0};
  std::atomic<uint64_t> refused_not_serving_{0};
};

}  // namespace treewm::serve

#endif  // TREEWM_SERVE_REGISTRY_MODEL_REGISTRY_H_
