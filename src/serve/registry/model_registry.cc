#include "serve/registry/model_registry.h"

#include <algorithm>
#include <utility>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "io/ensemble_snapshot.h"

namespace treewm::serve {
namespace {

/// Sums every monotone counter of `from` into `into` (high-water style
/// fields take the max — they are per-front-end observations, not totals).
void AccumulateServingStats(ServingStats* into, const ServingStats& from) {
  into->submitted += from.submitted;
  into->admitted += from.admitted;
  into->completed_ok += from.completed_ok;
  into->rejected_full += from.rejected_full;
  into->rejected_shed += from.rejected_shed;
  into->rejected_shutdown += from.rejected_shutdown;
  into->rejected_invalid += from.rejected_invalid;
  into->expired_admission += from.expired_admission;
  into->expired_dispatch += from.expired_dispatch;
  into->expired_completion += from.expired_completion;
  into->batches += from.batches;
  into->batched_rows += from.batched_rows;
  into->degraded_flushes += from.degraded_flushes;
  into->queue_high_water = std::max(into->queue_high_water, from.queue_high_water);
  into->max_batch_rows = std::max(into->max_batch_rows, from.max_batch_rows);
}

std::future<Result<PredictResult>> ImmediateRefusal(Status status) {
  std::promise<Result<PredictResult>> promise;
  promise.set_value(std::move(status));
  return promise.get_future();
}

constexpr size_t kMaxModelIdChars = 256;

}  // namespace

const char* ModelStateName(ModelState state) {
  switch (state) {
    case ModelState::kLoading:
      return "LOADING";
    case ModelState::kServing:
      return "SERVING";
    case ModelState::kDraining:
      return "DRAINING";
    case ModelState::kUnloaded:
      return "UNLOADED";
    case ModelState::kFailed:
      return "FAILED";
  }
  return "UNKNOWN";
}

/// One model. The entry mutex is held only for pointer swaps, counter
/// reads, and the (non-blocking) push into the current front-end — never
/// across front-end construction or drain.
struct ModelRegistry::Entry {
  explicit Entry(std::string model_id) : id(std::move(model_id)) {}

  const std::string id;

  mutable Mutex mutex;
  ModelState state TREEWM_GUARDED_BY(mutex) = ModelState::kLoading;
  std::shared_ptr<ServingFrontEnd> front_end TREEWM_GUARDED_BY(mutex);
  uint32_t checksum TREEWM_GUARDED_BY(mutex) = 0;
  uint64_t reloads TREEWM_GUARDED_BY(mutex) = 0;
  uint64_t reload_failures TREEWM_GUARDED_BY(mutex) = 0;
  uint64_t consecutive_reload_failures TREEWM_GUARDED_BY(mutex) = 0;
  bool reload_in_progress TREEWM_GUARDED_BY(mutex) = false;
  bool breaker_open TREEWM_GUARDED_BY(mutex) = false;
  Status last_error TREEWM_GUARDED_BY(mutex) = Status::OK();
  /// Counters of front-ends this entry retired via reload swaps.
  ServingStats retired TREEWM_GUARDED_BY(mutex);

  ModelEntryInfo InfoLocked() const TREEWM_REQUIRES(mutex) {
    ModelEntryInfo info;
    info.id = id;
    info.state = state;
    info.checksum = checksum;
    info.reloads = reloads;
    info.reload_failures = reload_failures;
    info.breaker_open = breaker_open;
    info.last_error = last_error;
    info.serving = retired;
    if (front_end != nullptr) {
      AccumulateServingStats(&info.serving, front_end->stats());
    }
    return info;
  }
};

Result<std::unique_ptr<ModelRegistry>> ModelRegistry::Create(
    ModelRegistryOptions options) {
  if (options.max_models == 0) {
    return Status::InvalidArgument("registry needs max_models >= 1");
  }
  if (options.reload_breaker_threshold == 0) {
    return Status::InvalidArgument("registry needs reload_breaker_threshold >= 1");
  }
  if (options.serving.queue.policy != OverflowPolicy::kReject) {
    // Submits push under the entry lock so an atomic swap can guarantee
    // every request lands in exactly one front-end; a blocking push would
    // hold that lock until a deadline.
    return Status::InvalidArgument(
        "registry bulkheads require OverflowPolicy::kReject");
  }
  return std::unique_ptr<ModelRegistry>(new ModelRegistry(std::move(options)));
}

ModelRegistry::ModelRegistry(ModelRegistryOptions options)
    : options_(std::move(options)) {}

ModelRegistry::~ModelRegistry() { Shutdown(); }

Result<std::unique_ptr<ServingFrontEnd>> ModelRegistry::BuildFrontEnd(
    std::shared_ptr<const predict::FlatEnsemble> image) const {
  // Fault site: a model image whose front-end cannot come up (bad file,
  // resource exhaustion at construction, ...). Load leaves the entry
  // FAILED; reload keeps the old image serving and feeds the breaker.
  if (TREEWM_FAULT_FIRED("serve.registry.load.fail")) {
    return Status::Internal("injected model load failure");
  }
  return ServingFrontEnd::Create(std::move(image), options_.serving);
}

Result<std::shared_ptr<ModelRegistry::Entry>> ModelRegistry::BeginLoad(
    const std::string& id) {
  if (id.empty() || id.size() > kMaxModelIdChars) {
    return Status::InvalidArgument("model id must be 1..256 characters");
  }
  MutexLock lock(&map_mutex_);
  if (shutdown_) return Status::FailedPrecondition("registry is shut down");
  if (models_.contains(id)) {
    return Status::AlreadyExists(StrFormat("model '%s' already exists", id.c_str()));
  }
  if (models_.size() >= options_.max_models) {
    return Status::ResourceExhausted(
        StrFormat("registry is at its %zu-model capacity", options_.max_models));
  }
  auto entry = std::make_shared<Entry>(id);
  models_.emplace(id, entry);
  return entry;
}

Status ModelRegistry::FinishLoad(const std::shared_ptr<Entry>& entry,
                                 Result<std::unique_ptr<ServingFrontEnd>> built,
                                 uint32_t checksum) {
  MutexLock lock(&entry->mutex);
  if (!built.ok()) {
    entry->state = ModelState::kFailed;
    entry->last_error = built.status();
    load_failures_.fetch_add(1, std::memory_order_relaxed);
    return built.status();
  }
  entry->front_end = std::shared_ptr<ServingFrontEnd>(built.MoveValue().release());
  entry->checksum = checksum;
  entry->state = ModelState::kServing;
  entry->last_error = Status::OK();
  loads_ok_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ModelRegistry::Load(const std::string& id,
                           std::shared_ptr<const predict::FlatEnsemble> image) {
  if (image == nullptr) return Status::InvalidArgument("null model image");
  TREEWM_ASSIGN_OR_RETURN(std::shared_ptr<Entry> entry, BeginLoad(id));
  const uint32_t checksum = io::EnsembleChecksum(*image);
  return FinishLoad(entry, BuildFrontEnd(std::move(image)), checksum);
}

Status ModelRegistry::LoadFromSnapshot(const std::string& id,
                                       const std::string& path) {
  TREEWM_ASSIGN_OR_RETURN(std::shared_ptr<Entry> entry, BeginLoad(id));
  Result<predict::FlatEnsemble> image = io::LoadEnsembleSnapshot(path);
  if (!image.ok()) return FinishLoad(entry, image.status(), 0);
  auto shared = std::make_shared<const predict::FlatEnsemble>(image.MoveValue());
  const uint32_t checksum = io::EnsembleChecksum(*shared);
  return FinishLoad(entry, BuildFrontEnd(std::move(shared)), checksum);
}

Result<std::shared_ptr<ModelRegistry::Entry>> ModelRegistry::BeginReload(
    const std::string& id) {
  std::shared_ptr<Entry> entry;
  {
    MutexLock lock(&map_mutex_);
    auto it = models_.find(id);
    if (it == models_.end()) {
      return Status::NotFound(StrFormat("model '%s' not found", id.c_str()));
    }
    entry = it->second;
  }
  MutexLock lock(&entry->mutex);
  if (entry->breaker_open) {
    return Status::FailedPrecondition(StrFormat(
        "model '%s' reload circuit breaker is open after %llu consecutive "
        "failures; unload and reload to reset",
        id.c_str(),
        static_cast<unsigned long long>(entry->consecutive_reload_failures)));
  }
  if (entry->state != ModelState::kServing) {
    return Status::FailedPrecondition(
        StrFormat("model '%s' is %s, not SERVING", id.c_str(),
                  ModelStateName(entry->state)));
  }
  if (entry->reload_in_progress) {
    return Status::FailedPrecondition(
        StrFormat("model '%s' reload already in progress", id.c_str()));
  }
  entry->reload_in_progress = true;
  return entry;
}

Status ModelRegistry::FinishReload(const std::shared_ptr<Entry>& entry,
                                   Result<std::unique_ptr<ServingFrontEnd>> built,
                                   uint32_t checksum) {
  // Fault site: the window between building the new front-end and
  // publishing it. A stall here must delay only this reload — the old
  // image keeps serving and other models are untouched.
  TREEWM_FAULT_FIRED("serve.registry.swap.stall");

  std::shared_ptr<ServingFrontEnd> old_front_end;
  {
    MutexLock lock(&entry->mutex);
    if (entry->state != ModelState::kServing) {
      entry->reload_in_progress = false;
      // Unloaded (or shut down) while the new image was building; the
      // freshly built front-end served nothing, so dropping it on the
      // floor loses no requests.
      return Status::FailedPrecondition(StrFormat(
          "model '%s' was unloaded during reload", entry->id.c_str()));
    }
    if (!built.ok()) {
      entry->reload_in_progress = false;
      entry->last_error = built.status();
      ++entry->reload_failures;
      ++entry->consecutive_reload_failures;
      reload_failures_.fetch_add(1, std::memory_order_relaxed);
      if (entry->consecutive_reload_failures >= options_.reload_breaker_threshold) {
        entry->breaker_open = true;
        breaker_trips_.fetch_add(1, std::memory_order_relaxed);
      }
      return built.status();
    }
    old_front_end = std::move(entry->front_end);
    entry->front_end = std::shared_ptr<ServingFrontEnd>(built.MoveValue().release());
    entry->checksum = checksum;
    entry->last_error = Status::OK();
    ++entry->reloads;
    entry->consecutive_reload_failures = 0;
    // reload_in_progress stays true through the drain below so Unload
    // cannot erase the entry before the old front-end's counters land in
    // entry->retired — that window would orphan them and break the
    // registry accounting identity.
  }
  // Drain OFF the lock: requests admitted before the swap finish on the
  // old image while new admissions already flow into the new one.
  old_front_end->Shutdown();
  const ServingStats retired = old_front_end->stats();
  old_front_end.reset();
  bool entry_gone = false;
  {
    MutexLock lock(&entry->mutex);
    entry->reload_in_progress = false;
    if (entry->state == ModelState::kServing) {
      AccumulateServingStats(&entry->retired, retired);
    } else {
      // Shutdown() (which does not wait on reloads) snatched the entry
      // mid-drain and already folded entry->retired into the unloaded
      // total; route the old front-end's counters there directly.
      entry_gone = true;
    }
  }
  if (entry_gone) {
    MutexLock lock(&retired_mutex_);
    AccumulateServingStats(&unloaded_serving_, retired);
  }
  reloads_ok_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ModelRegistry::Reload(const std::string& id,
                             std::shared_ptr<const predict::FlatEnsemble> image) {
  if (image == nullptr) return Status::InvalidArgument("null model image");
  TREEWM_ASSIGN_OR_RETURN(std::shared_ptr<Entry> entry, BeginReload(id));
  const uint32_t checksum = io::EnsembleChecksum(*image);
  return FinishReload(entry, BuildFrontEnd(std::move(image)), checksum);
}

Status ModelRegistry::ReloadFromSnapshot(const std::string& id,
                                         const std::string& path) {
  TREEWM_ASSIGN_OR_RETURN(std::shared_ptr<Entry> entry, BeginReload(id));
  Result<predict::FlatEnsemble> image = io::LoadEnsembleSnapshot(path);
  if (!image.ok()) return FinishReload(entry, image.status(), 0);
  auto shared = std::make_shared<const predict::FlatEnsemble>(image.MoveValue());
  const uint32_t checksum = io::EnsembleChecksum(*shared);
  return FinishReload(entry, BuildFrontEnd(std::move(shared)), checksum);
}

Status ModelRegistry::Unload(const std::string& id) {
  std::shared_ptr<Entry> entry;
  {
    MutexLock lock(&map_mutex_);
    auto it = models_.find(id);
    if (it == models_.end()) {
      return Status::NotFound(StrFormat("model '%s' not found", id.c_str()));
    }
    entry = it->second;
  }
  std::shared_ptr<ServingFrontEnd> front_end;
  {
    MutexLock lock(&entry->mutex);
    if (entry->reload_in_progress) {
      return Status::FailedPrecondition(
          StrFormat("model '%s' has a reload in flight", id.c_str()));
    }
    if (entry->state != ModelState::kServing &&
        entry->state != ModelState::kFailed) {
      return Status::FailedPrecondition(
          StrFormat("model '%s' is %s", id.c_str(), ModelStateName(entry->state)));
    }
    entry->state = ModelState::kDraining;
    front_end = std::move(entry->front_end);
  }
  {
    MutexLock lock(&map_mutex_);
    models_.erase(id);
  }
  ServingStats drained;
  if (front_end != nullptr) {
    front_end->Shutdown();
    drained = front_end->stats();
    front_end.reset();
  }
  ServingStats retired;
  {
    MutexLock lock(&entry->mutex);
    entry->state = ModelState::kUnloaded;
    retired = entry->retired;
    AccumulateServingStats(&retired, drained);
  }
  {
    MutexLock lock(&retired_mutex_);
    AccumulateServingStats(&unloaded_serving_, retired);
  }
  unloads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::future<Result<PredictResult>> ModelRegistry::SubmitPredict(
    const std::string& id, std::span<const float> x,
    const RequestOptions& options) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<Entry> entry;
  {
    MutexLock lock(&map_mutex_);
    auto it = models_.find(id);
    if (it != models_.end()) entry = it->second;
  }
  if (entry == nullptr) {
    refused_unknown_model_.fetch_add(1, std::memory_order_relaxed);
    return ImmediateRefusal(
        Status::NotFound(StrFormat("model '%s' not found", id.c_str())));
  }
  // The push is a bounded non-blocking enqueue (kReject policy, enforced at
  // Create), so holding the entry lock across it is cheap — and is exactly
  // what makes the reload swap atomic: every submit lands in the front-end
  // that will be drained, never between two of them.
  MutexLock lock(&entry->mutex);
  if (entry->state != ModelState::kServing) {
    refused_not_serving_.fetch_add(1, std::memory_order_relaxed);
    Status cause = entry->last_error;
    return ImmediateRefusal(Status::FailedPrecondition(StrFormat(
        "model '%s' is %s%s", id.c_str(), ModelStateName(entry->state),
        cause.ok() ? "" : (": " + cause.message()).c_str())));
  }
  return entry->front_end->SubmitPredict(x, options);
}

Result<PredictResult> ModelRegistry::Predict(const std::string& id,
                                             std::span<const float> x,
                                             const RequestOptions& options) {
  return SubmitPredict(id, x, options).get();
}

Result<size_t> ModelRegistry::Pump(const std::string& id, bool force_flush) {
  std::shared_ptr<Entry> entry;
  {
    MutexLock lock(&map_mutex_);
    auto it = models_.find(id);
    if (it == models_.end()) {
      return Status::NotFound(StrFormat("model '%s' not found", id.c_str()));
    }
    entry = it->second;
  }
  std::shared_ptr<ServingFrontEnd> front_end;
  {
    MutexLock lock(&entry->mutex);
    if (entry->front_end == nullptr) {
      return Status::FailedPrecondition(
          StrFormat("model '%s' has no front-end", id.c_str()));
    }
    front_end = entry->front_end;
  }
  return front_end->Pump(force_flush);
}

Result<ModelEntryInfo> ModelRegistry::Info(const std::string& id) const {
  std::shared_ptr<Entry> entry;
  {
    MutexLock lock(&map_mutex_);
    auto it = models_.find(id);
    if (it == models_.end()) {
      return Status::NotFound(StrFormat("model '%s' not found", id.c_str()));
    }
    entry = it->second;
  }
  MutexLock lock(&entry->mutex);
  return entry->InfoLocked();
}

std::vector<ModelEntryInfo> ModelRegistry::List() const {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    MutexLock lock(&map_mutex_);
    entries.reserve(models_.size());
    for (const auto& [id, entry] : models_) entries.push_back(entry);
  }
  std::vector<ModelEntryInfo> infos;
  infos.reserve(entries.size());
  for (const auto& entry : entries) {
    MutexLock lock(&entry->mutex);
    infos.push_back(entry->InfoLocked());
  }
  std::sort(infos.begin(), infos.end(),
            [](const ModelEntryInfo& a, const ModelEntryInfo& b) {
              return a.id < b.id;
            });
  return infos;
}

RegistryStats ModelRegistry::stats() const {
  RegistryStats stats;
  stats.loads_ok = loads_ok_.load(std::memory_order_relaxed);
  stats.load_failures = load_failures_.load(std::memory_order_relaxed);
  stats.reloads_ok = reloads_ok_.load(std::memory_order_relaxed);
  stats.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  stats.unloads = unloads_.load(std::memory_order_relaxed);
  stats.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.refused_unknown_model =
      refused_unknown_model_.load(std::memory_order_relaxed);
  stats.refused_not_serving = refused_not_serving_.load(std::memory_order_relaxed);
  {
    MutexLock lock(&retired_mutex_);
    stats.serving = unloaded_serving_;
  }
  for (const ModelEntryInfo& info : List()) {
    AccumulateServingStats(&stats.serving, info.serving);
  }
  return stats;
}

void ModelRegistry::Shutdown() {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    MutexLock lock(&map_mutex_);
    shutdown_ = true;
    entries.reserve(models_.size());
    for (const auto& [id, entry] : models_) entries.push_back(entry);
    models_.clear();
  }
  for (const auto& entry : entries) {
    std::shared_ptr<ServingFrontEnd> front_end;
    {
      MutexLock lock(&entry->mutex);
      entry->state = ModelState::kDraining;
      front_end = std::move(entry->front_end);
    }
    ServingStats drained;
    if (front_end != nullptr) {
      front_end->Shutdown();
      drained = front_end->stats();
      front_end.reset();
    }
    ServingStats retired;
    {
      MutexLock lock(&entry->mutex);
      entry->state = ModelState::kUnloaded;
      retired = entry->retired;
      AccumulateServingStats(&retired, drained);
    }
    MutexLock lock(&retired_mutex_);
    AccumulateServingStats(&unloaded_serving_, retired);
  }
}

}  // namespace treewm::serve
