#include "serve/wire/sockets.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "common/fault_injection.h"

namespace treewm::serve::wire {
namespace {

Status ErrnoStatus(const char* op, int err) {
  return Status::IoError(std::string("wire: ") + op + " failed: " +
                         std::strerror(err));
}

Status ResetStatus(const char* op) {
  return Status::IoError(std::string("wire: ") + op +
                         " failed: connection reset");
}

}  // namespace

void Fd::Close() {
  if (fd_ >= 0) {
    // EINTR on close is unrecoverable-by-retry on Linux; the fd is gone
    // either way.
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Fd> ListenTcpLoopback(uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket", errno);
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)", errno);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoStatus("bind", errno);
  }
  if (::listen(fd.get(), backlog) != 0) return ErrnoStatus("listen", errno);
  TREEWM_RETURN_IF_ERROR(SetNonBlocking(fd));
  return fd;
}

Result<uint16_t> LocalPort(const Fd& fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname", errno);
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Fd> ConnectTcpLoopback(uint16_t port,
                              std::chrono::nanoseconds recv_timeout) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket", errno);
  if (recv_timeout.count() > 0) {
    timeval tv{};
    const auto usec =
        std::chrono::duration_cast<std::chrono::microseconds>(recv_timeout);
    tv.tv_sec = static_cast<time_t>(usec.count() / 1000000);
    tv.tv_usec = static_cast<suseconds_t>(usec.count() % 1000000);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
      return ErrnoStatus("setsockopt(SO_RCVTIMEO)", errno);
    }
  }
  // Single-instance request/response frames: latency wants no Nagle delay.
  const int one = 1;
  if (::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)", errno);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return ErrnoStatus("connect", errno);
  return fd;
}

Result<AcceptOutcome> AcceptConnection(const Fd& listener) {
  int raw;
  do {
    raw = ::accept(listener.get(), nullptr, nullptr);
  } while (raw < 0 && errno == EINTR);
  if (raw < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      AcceptOutcome out;
      out.would_block = true;
      return out;
    }
    // ECONNABORTED & friends: the connection died in the backlog; treat as
    // transient, like the fault below.
    if (errno == ECONNABORTED || errno == EPROTO) {
      return ErrnoStatus("accept (transient)", errno);
    }
    return ErrnoStatus("accept", errno);
  }
  Fd fd(raw);
  if (TREEWM_FAULT_FIRED("serve.wire.accept.fail")) {
    // The kernel completed the handshake; injected failure tears it down
    // before the server ever sees it — the client observes a reset.
    return Status::IoError("wire: accept failed (injected fault)");
  }
  TREEWM_RETURN_IF_ERROR(SetNonBlocking(fd));
  const int one = 1;
  if (::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)", errno);
  }
  AcceptOutcome out;
  out.fd = std::move(fd);
  return out;
}

Status SetNonBlocking(const Fd& fd) {
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  if (::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoStatus("fcntl(F_SETFL)", errno);
  }
  return Status::OK();
}

Result<IoOutcome> ReadSome(const Fd& fd, uint8_t* buf, size_t len) {
  if (len == 0) return IoOutcome{};
  if (TREEWM_FAULT_FIRED("serve.wire.read.reset")) {
    return ResetStatus("read (injected fault)");
  }
  if (TREEWM_FAULT_FIRED("serve.wire.read.short")) len = 1;
  ssize_t n;
  do {
    n = ::recv(fd.get(), buf, len, 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      IoOutcome out;
      out.would_block = true;
      return out;
    }
    if (errno == ECONNRESET) return ResetStatus("read");
    return ErrnoStatus("read", errno);
  }
  IoOutcome out;
  if (n == 0) {
    out.eof = true;
  } else {
    out.bytes = static_cast<size_t>(n);
  }
  return out;
}

Result<IoOutcome> WriteSome(const Fd& fd, const uint8_t* buf, size_t len) {
  if (len == 0) return IoOutcome{};
  if (TREEWM_FAULT_FIRED("serve.wire.write.short")) len = 1;
  ssize_t n;
  do {
    n = ::send(fd.get(), buf, len, MSG_NOSIGNAL);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      IoOutcome out;
      out.would_block = true;
      return out;
    }
    if (errno == ECONNRESET || errno == EPIPE) return ResetStatus("write");
    return ErrnoStatus("write", errno);
  }
  IoOutcome out;
  out.bytes = static_cast<size_t>(n);
  return out;
}

Result<std::pair<Fd, Fd>> MakeWakePipe() {
  int fds[2];
  if (::pipe(fds) != 0) return ErrnoStatus("pipe", errno);
  Fd read_end(fds[0]);
  Fd write_end(fds[1]);
  TREEWM_RETURN_IF_ERROR(SetNonBlocking(read_end));
  TREEWM_RETURN_IF_ERROR(SetNonBlocking(write_end));
  return std::make_pair(std::move(read_end), std::move(write_end));
}

void SignalWakePipe(const Fd& write_end) {
  const uint8_t byte = 1;
  ssize_t n;
  do {
    n = ::write(write_end.get(), &byte, 1);
  } while (n < 0 && errno == EINTR);
  // A full pipe (EAGAIN) means a wake is already pending: nothing to do.
}

void DrainWakePipe(const Fd& read_end) {
  uint8_t sink[64];
  while (true) {
    const ssize_t n = ::read(read_end.get(), sink, sizeof(sink));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
  }
}

bool IsTransportError(const Status& status) {
  return status.code() == StatusCode::kIoError;
}

}  // namespace treewm::serve::wire
