// Length-prefixed binary framing for the verification serving protocol.
//
// Every message on the wire is one frame:
//
//   offset 0   u8[4]  magic "TWMP"
//   offset 4   u8     version (kWireVersion or kWireVersionMultiModel)
//   offset 5   u8     FrameType
//   offset 6   u16le  reserved, must be zero
//   offset 8   u32le  body length (<= max_body_bytes)
//   offset 12  u32le  CRC-32 over header bytes [4, 12) + body
//   offset 16  body
//
// The checksum covers everything after the magic, so a single flipped bit
// anywhere in a frame is detected: magic flips fail the magic check, CRC
// field flips fail the CRC check, and every other byte is under the CRC.
// Decoders NEVER trust a length field — body length is bounds-checked
// against max_body_bytes before any allocation, and every typed body
// decoder walks a bounds-checked cursor that fails closed with ParseError
// on truncation, trailing bytes, or out-of-range values. A malformed frame
// can cost the sender its connection; it cannot crash the server or smuggle
// through a half-parsed request (tests/test_wire.cc fuzzes every prefix and
// random byte flips of valid frames).
//
// Version negotiation is per frame and rides the existing version byte: a
// decoder accepts v1 and v2 frames on the same connection and records which
// one each frame used, so a v1-only client (no model-id field) keeps
// working against a multi-model server byte-for-byte unchanged — the server
// routes its requests to a configured default model. v2 adds a model-id
// field to kPredictRequest and the kModelsRequest/kModelsResponse pair;
// those two frame types are invalid in a v1 frame.
//
// Body layouts (all integers little-endian):
//   kPredictRequest   u64 request_id, u64 timeout_ns (0 = no deadline),
//                     [v2 only: u16 model_id length, model_id bytes,]
//                     u32 num_features, f32[num_features] (IEEE-754 bits)
//   kPredictResponse  u64 request_id, i32 label, u32 num_votes,
//                     i8[num_votes]
//   kError            u64 request_id (0 = connection-level), u32 StatusCode,
//                     u32 message length, message bytes
//   kPing / kPong     u64 token (pong echoes the ping's token)
//   kModelsRequest    u64 token (v2 only)
//   kModelsResponse   u64 token, u32 num_models, then per model:
//                     u16 id length, id bytes, u8 lifecycle state,
//                     u32 image checksum, u64 submitted, u64 completed_ok,
//                     u64 shed (v2 only)

#ifndef TREEWM_SERVE_WIRE_FRAME_H_
#define TREEWM_SERVE_WIRE_FRAME_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/request.h"

namespace treewm::serve::wire {

inline constexpr uint8_t kMagic[4] = {'T', 'W', 'M', 'P'};
/// v1: single-model protocol (PR 9). Still the default for clients that do
/// not target a model by id.
inline constexpr uint8_t kWireVersion = 1;
/// v2: adds the model-id field to kPredictRequest and the models-listing
/// frame pair. Anything above this is rejected as unsupported.
inline constexpr uint8_t kWireVersionMultiModel = 2;
inline constexpr size_t kHeaderBytes = 16;
/// Default ceiling on a frame body. A predict request over the largest
/// supported feature vector fits comfortably; anything bigger is hostile.
inline constexpr size_t kDefaultMaxBodyBytes = size_t{1} << 20;
/// Ceiling on a wire model id. Ids are routing keys, not payloads.
inline constexpr size_t kMaxModelIdBytes = 256;

enum class FrameType : uint8_t {
  kPredictRequest = 1,
  kPredictResponse = 2,
  kError = 3,
  kPing = 4,
  kPong = 5,
  kModelsRequest = 6,   ///< v2 only
  kModelsResponse = 7,  ///< v2 only
};

/// One decoded frame: type + raw body (typed decoders below parse it) plus
/// the protocol version its header carried, so the server can parse the
/// body with the right layout and answer v1 clients in v1.
struct Frame {
  FrameType type = FrameType::kError;
  uint8_t version = kWireVersion;
  std::vector<uint8_t> body;
};

/// CRC-32 (IEEE 802.3, reflected) of `data`.
uint32_t Crc32(std::span<const uint8_t> data);

/// Appends one complete frame (header + body) to `out`, stamped with
/// `version` (defaults to v1 so every pre-registry call site is unchanged).
void AppendFrame(FrameType type, std::span<const uint8_t> body,
                 std::vector<uint8_t>* out, uint8_t version = kWireVersion);

// ---------------------------------------------------------------- bodies ----

struct PredictRequestMsg {
  uint64_t request_id = 0;
  /// Relative deadline carried on the wire; 0 = none. The server turns this
  /// into RequestOptions::timeout, so the admission/dispatch/completion
  /// deadline checks of the in-process front-end apply unchanged.
  std::chrono::nanoseconds timeout{0};
  /// v2 only: registry routing key. Empty means "the server's default
  /// model" (and is the only spelling a v1 frame can carry).
  std::string model_id;
  std::vector<float> features;
};

struct PredictResponseMsg {
  uint64_t request_id = 0;
  int32_t label = 0;
  std::vector<int8_t> votes;
};

struct ErrorMsg {
  uint64_t request_id = 0;  ///< 0 = connection-level (no specific request)
  StatusCode code = StatusCode::kInternal;
  std::string message;

  /// Reconstructs the typed Status this error frame transports.
  Status ToStatus() const { return Status(code, message); }
};

struct PingMsg {
  uint64_t token = 0;
};

/// One model row in a kModelsResponse frame. `state` is the registry's
/// lifecycle byte (serve::ModelState); decode validates its range but the
/// wire layer does not otherwise interpret it.
struct ModelInfoMsg {
  std::string id;
  uint8_t state = 0;
  uint32_t checksum = 0;
  uint64_t submitted = 0;
  uint64_t completed_ok = 0;
  uint64_t shed = 0;
};

struct ModelsRequestMsg {
  uint64_t token = 0;
};

struct ModelsResponseMsg {
  uint64_t token = 0;
  std::vector<ModelInfoMsg> models;
};

/// `version` selects the body layout; v1 never encodes the model-id field
/// (callers must not set one — the client refuses before encoding).
std::vector<uint8_t> EncodePredictRequest(const PredictRequestMsg& msg,
                                          uint8_t version = kWireVersion);
std::vector<uint8_t> EncodePredictResponse(const PredictResponseMsg& msg,
                                           uint8_t version = kWireVersion);
std::vector<uint8_t> EncodeError(const ErrorMsg& msg,
                                 uint8_t version = kWireVersion);
std::vector<uint8_t> EncodePing(FrameType type, const PingMsg& msg,
                                uint8_t version = kWireVersion);
std::vector<uint8_t> EncodeModelsRequest(const ModelsRequestMsg& msg);
std::vector<uint8_t> EncodeModelsResponse(const ModelsResponseMsg& msg);

/// Body decoders: fail closed with ParseError on truncation, trailing
/// bytes, or out-of-range fields — never on the framing layer's say-so.
/// DecodePredictRequest parses the layout of the frame's `version`.
[[nodiscard]] Result<PredictRequestMsg> DecodePredictRequest(
    std::span<const uint8_t> body, uint8_t version = kWireVersion);
[[nodiscard]] Result<PredictResponseMsg> DecodePredictResponse(
    std::span<const uint8_t> body);
[[nodiscard]] Result<ErrorMsg> DecodeError(std::span<const uint8_t> body);
[[nodiscard]] Result<PingMsg> DecodePing(std::span<const uint8_t> body);
[[nodiscard]] Result<ModelsRequestMsg> DecodeModelsRequest(
    std::span<const uint8_t> body);
[[nodiscard]] Result<ModelsResponseMsg> DecodeModelsResponse(
    std::span<const uint8_t> body);

// --------------------------------------------------------------- decoder ----

/// Incremental frame reassembler for one byte stream. Feed it whatever the
/// socket produced (short reads welcome); Next() yields complete frames in
/// order, nullopt when more bytes are needed, or ParseError — after which
/// the stream is poisoned (framing is lost for good) and every further
/// Next() repeats the error.
///
/// Fault site "serve.wire.frame.corrupt": when armed and a complete frame
/// is buffered, a header bit of that frame is flipped before validation, so
/// the decode fails closed exactly like hostile bytes would.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_body_bytes = kDefaultMaxBodyBytes)
      : max_body_bytes_(max_body_bytes) {}

  /// Buffers `bytes` (appended after previously fed data).
  void Feed(std::span<const uint8_t> bytes);

  /// Extracts the next complete frame, if any.
  [[nodiscard]] Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by a returned frame.
  size_t buffered() const { return buffer_.size() - consumed_; }

  /// True when the stream ended mid-frame: buffered bytes exist that do not
  /// form a complete frame. A connection closing in this state was cut off
  /// mid-message (or was sending garbage).
  bool HasPartialFrame() const { return buffered() > 0; }

  /// True once a ParseError was returned; the stream cannot recover.
  bool poisoned() const { return poisoned_; }

 private:
  size_t max_body_bytes_;
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  bool poisoned_ = false;
  Status poison_status_;
};

}  // namespace treewm::serve::wire

#endif  // TREEWM_SERVE_WIRE_FRAME_H_
