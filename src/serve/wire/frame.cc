#include "serve/wire/frame.h"

#include <bit>
#include <cstring>
#include <string_view>

#include "common/crc32.h"
#include "common/fault_injection.h"

namespace treewm::serve::wire {
namespace {

// ------------------------------------------------------------- primitives ----

void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(v), out);
  PutU32(static_cast<uint32_t>(v >> 32), out);
}

uint32_t ReadU32At(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

/// Bounds-checked little-endian cursor over a frame body. Every accessor
/// fails closed: once an over-read is attempted, ok_ latches false and the
/// caller returns ParseError. No accessor ever reads past the span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

  uint8_t U8() { return Take(1) ? data_[pos_ - 1] : 0; }

  uint16_t U16() {
    if (!Take(2)) return 0;
    return static_cast<uint16_t>(data_[pos_ - 2]) |
           static_cast<uint16_t>(static_cast<uint16_t>(data_[pos_ - 1]) << 8);
  }

  uint32_t U32() {
    if (!Take(4)) return 0;
    return ReadU32At(data_.data() + pos_ - 4);
  }

  uint64_t U64() {
    const uint64_t lo = U32();
    const uint64_t hi = U32();
    return lo | (hi << 32);
  }

  std::span<const uint8_t> Bytes(size_t n) {
    if (!Take(n)) return {};
    return data_.subspan(pos_ - n, n);
  }

 private:
  bool Take(size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Status TruncatedBody(const char* what) {
  return Status::ParseError(std::string("wire: truncated or overlong ") + what +
                            " body");
}

/// CRC over the covered header fields (bytes [4, 12): version, type,
/// reserved, body length) continued over the body. The shared common/crc32
/// implementation keeps this, the snapshot format, and the registry's image
/// checksums on one set of test vectors.
uint32_t FrameCrc(const uint8_t* header, std::span<const uint8_t> body) {
  uint32_t crc = Crc32Init();
  crc = Crc32Update(crc, std::span<const uint8_t>(header + 4, 8));
  crc = Crc32Update(crc, body);
  return Crc32Finish(crc);
}

bool ValidWireVersion(uint8_t version) {
  return version == kWireVersion || version == kWireVersionMultiModel;
}

bool ValidFrameType(uint8_t version, uint8_t type) {
  const uint8_t max = version >= kWireVersionMultiModel
                          ? static_cast<uint8_t>(FrameType::kModelsResponse)
                          : static_cast<uint8_t>(FrameType::kPong);
  return type >= static_cast<uint8_t>(FrameType::kPredictRequest) && type <= max;
}

void PutString16(std::string_view s, std::vector<uint8_t>* out) {
  PutU16(static_cast<uint16_t>(s.size()), out);
  out->insert(out->end(), s.begin(), s.end());
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data) { return treewm::Crc32(data); }

void AppendFrame(FrameType type, std::span<const uint8_t> body,
                 std::vector<uint8_t>* out, uint8_t version) {
  const size_t header_at = out->size();
  out->insert(out->end(), std::begin(kMagic), std::end(kMagic));
  out->push_back(version);
  out->push_back(static_cast<uint8_t>(type));
  PutU16(0, out);  // reserved
  PutU32(static_cast<uint32_t>(body.size()), out);
  PutU32(0, out);  // CRC placeholder
  const uint32_t crc = FrameCrc(out->data() + header_at, body);
  (*out)[header_at + 12] = static_cast<uint8_t>(crc);
  (*out)[header_at + 13] = static_cast<uint8_t>(crc >> 8);
  (*out)[header_at + 14] = static_cast<uint8_t>(crc >> 16);
  (*out)[header_at + 15] = static_cast<uint8_t>(crc >> 24);
  out->insert(out->end(), body.begin(), body.end());
}

// ----------------------------------------------------------------- encode ----

std::vector<uint8_t> EncodePredictRequest(const PredictRequestMsg& msg,
                                          uint8_t version) {
  std::vector<uint8_t> body;
  body.reserve(22 + msg.model_id.size() + 4 * msg.features.size());
  PutU64(msg.request_id, &body);
  // Zero is the wire's only "no deadline" spelling; kNoDeadline (and any
  // non-positive value) normalizes to it so the server never computes
  // now + int64-max.
  const int64_t timeout_ns =
      (msg.timeout.count() > 0 && msg.timeout < kNoDeadline)
          ? msg.timeout.count()
          : 0;
  PutU64(static_cast<uint64_t>(timeout_ns), &body);
  if (version >= kWireVersionMultiModel) PutString16(msg.model_id, &body);
  PutU32(static_cast<uint32_t>(msg.features.size()), &body);
  for (float f : msg.features) PutU32(std::bit_cast<uint32_t>(f), &body);
  std::vector<uint8_t> frame;
  frame.reserve(kHeaderBytes + body.size());
  AppendFrame(FrameType::kPredictRequest, body, &frame, version);
  return frame;
}

std::vector<uint8_t> EncodePredictResponse(const PredictResponseMsg& msg,
                                           uint8_t version) {
  std::vector<uint8_t> body;
  body.reserve(16 + msg.votes.size());
  PutU64(msg.request_id, &body);
  PutU32(std::bit_cast<uint32_t>(msg.label), &body);
  PutU32(static_cast<uint32_t>(msg.votes.size()), &body);
  for (int8_t v : msg.votes) body.push_back(static_cast<uint8_t>(v));
  std::vector<uint8_t> frame;
  frame.reserve(kHeaderBytes + body.size());
  AppendFrame(FrameType::kPredictResponse, body, &frame, version);
  return frame;
}

std::vector<uint8_t> EncodeError(const ErrorMsg& msg, uint8_t version) {
  std::vector<uint8_t> body;
  body.reserve(16 + msg.message.size());
  PutU64(msg.request_id, &body);
  PutU32(static_cast<uint32_t>(msg.code), &body);
  PutU32(static_cast<uint32_t>(msg.message.size()), &body);
  body.insert(body.end(), msg.message.begin(), msg.message.end());
  std::vector<uint8_t> frame;
  frame.reserve(kHeaderBytes + body.size());
  AppendFrame(FrameType::kError, body, &frame, version);
  return frame;
}

std::vector<uint8_t> EncodePing(FrameType type, const PingMsg& msg,
                                uint8_t version) {
  std::vector<uint8_t> body;
  PutU64(msg.token, &body);
  std::vector<uint8_t> frame;
  frame.reserve(kHeaderBytes + body.size());
  AppendFrame(type == FrameType::kPong ? FrameType::kPong : FrameType::kPing,
              body, &frame, version);
  return frame;
}

std::vector<uint8_t> EncodeModelsRequest(const ModelsRequestMsg& msg) {
  std::vector<uint8_t> body;
  PutU64(msg.token, &body);
  std::vector<uint8_t> frame;
  frame.reserve(kHeaderBytes + body.size());
  AppendFrame(FrameType::kModelsRequest, body, &frame, kWireVersionMultiModel);
  return frame;
}

std::vector<uint8_t> EncodeModelsResponse(const ModelsResponseMsg& msg) {
  std::vector<uint8_t> body;
  PutU64(msg.token, &body);
  PutU32(static_cast<uint32_t>(msg.models.size()), &body);
  for (const ModelInfoMsg& m : msg.models) {
    PutString16(m.id, &body);
    body.push_back(m.state);
    PutU32(m.checksum, &body);
    PutU64(m.submitted, &body);
    PutU64(m.completed_ok, &body);
    PutU64(m.shed, &body);
  }
  std::vector<uint8_t> frame;
  frame.reserve(kHeaderBytes + body.size());
  AppendFrame(FrameType::kModelsResponse, body, &frame, kWireVersionMultiModel);
  return frame;
}

// ----------------------------------------------------------------- decode ----

Result<PredictRequestMsg> DecodePredictRequest(std::span<const uint8_t> body,
                                               uint8_t version) {
  ByteReader reader(body);
  PredictRequestMsg msg;
  msg.request_id = reader.U64();
  const uint64_t timeout_ns = reader.U64();
  if (version >= kWireVersionMultiModel) {
    const uint16_t id_len = reader.U16();
    if (!reader.ok()) return TruncatedBody("predict-request");
    if (id_len > kMaxModelIdBytes) {
      return Status::ParseError("wire: predict-request model id too long");
    }
    if (reader.remaining() < id_len) return TruncatedBody("predict-request");
    const std::span<const uint8_t> id = reader.Bytes(id_len);
    msg.model_id.assign(id.begin(), id.end());
  }
  const uint32_t num_features = reader.U32();
  if (!reader.ok()) return TruncatedBody("predict-request");
  // num_features is attacker-controlled: check it against the bytes actually
  // present BEFORE reserving anything.
  if (reader.remaining() != size_t{num_features} * 4) {
    return Status::ParseError(
        "wire: predict-request feature count does not match body length");
  }
  if (timeout_ns >= static_cast<uint64_t>(kNoDeadline.count())) {
    return Status::ParseError("wire: predict-request timeout out of range");
  }
  msg.timeout = std::chrono::nanoseconds(static_cast<int64_t>(timeout_ns));
  msg.features.reserve(num_features);
  for (uint32_t i = 0; i < num_features; ++i) {
    msg.features.push_back(std::bit_cast<float>(reader.U32()));
  }
  if (!reader.ok() || reader.remaining() != 0) {
    return TruncatedBody("predict-request");
  }
  return msg;
}

Result<PredictResponseMsg> DecodePredictResponse(std::span<const uint8_t> body) {
  ByteReader reader(body);
  PredictResponseMsg msg;
  msg.request_id = reader.U64();
  msg.label = std::bit_cast<int32_t>(reader.U32());
  const uint32_t num_votes = reader.U32();
  if (!reader.ok()) return TruncatedBody("predict-response");
  if (reader.remaining() != num_votes) {
    return Status::ParseError(
        "wire: predict-response vote count does not match body length");
  }
  const std::span<const uint8_t> votes = reader.Bytes(num_votes);
  msg.votes.reserve(num_votes);
  for (uint8_t v : votes) msg.votes.push_back(static_cast<int8_t>(v));
  if (!reader.ok() || reader.remaining() != 0) {
    return TruncatedBody("predict-response");
  }
  return msg;
}

Result<ErrorMsg> DecodeError(std::span<const uint8_t> body) {
  ByteReader reader(body);
  ErrorMsg msg;
  msg.request_id = reader.U64();
  const uint32_t code = reader.U32();
  const uint32_t msg_len = reader.U32();
  if (!reader.ok()) return TruncatedBody("error");
  if (code == static_cast<uint32_t>(StatusCode::kOk) ||
      code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
    return Status::ParseError("wire: error frame carries invalid status code");
  }
  msg.code = static_cast<StatusCode>(code);
  if (reader.remaining() != msg_len) {
    return Status::ParseError(
        "wire: error frame message length does not match body length");
  }
  const std::span<const uint8_t> text = reader.Bytes(msg_len);
  msg.message.assign(text.begin(), text.end());
  if (!reader.ok() || reader.remaining() != 0) return TruncatedBody("error");
  return msg;
}

Result<PingMsg> DecodePing(std::span<const uint8_t> body) {
  ByteReader reader(body);
  PingMsg msg;
  msg.token = reader.U64();
  if (!reader.ok() || reader.remaining() != 0) return TruncatedBody("ping");
  return msg;
}

Result<ModelsRequestMsg> DecodeModelsRequest(std::span<const uint8_t> body) {
  ByteReader reader(body);
  ModelsRequestMsg msg;
  msg.token = reader.U64();
  if (!reader.ok() || reader.remaining() != 0) {
    return TruncatedBody("models-request");
  }
  return msg;
}

Result<ModelsResponseMsg> DecodeModelsResponse(std::span<const uint8_t> body) {
  ByteReader reader(body);
  ModelsResponseMsg msg;
  msg.token = reader.U64();
  const uint32_t num_models = reader.U32();
  if (!reader.ok()) return TruncatedBody("models-response");
  // Each model row is at least 33 bytes; bound the count by the bytes
  // actually present before reserving anything.
  if (size_t{num_models} * 33 > reader.remaining()) {
    return Status::ParseError(
        "wire: models-response model count does not fit body length");
  }
  msg.models.reserve(num_models);
  for (uint32_t i = 0; i < num_models; ++i) {
    ModelInfoMsg m;
    const uint16_t id_len = reader.U16();
    if (!reader.ok()) return TruncatedBody("models-response");
    if (id_len > kMaxModelIdBytes) {
      return Status::ParseError("wire: models-response model id too long");
    }
    if (reader.remaining() < id_len) return TruncatedBody("models-response");
    const std::span<const uint8_t> id = reader.Bytes(id_len);
    m.id.assign(id.begin(), id.end());
    m.state = reader.U8();
    m.checksum = reader.U32();
    m.submitted = reader.U64();
    m.completed_ok = reader.U64();
    m.shed = reader.U64();
    if (!reader.ok()) return TruncatedBody("models-response");
    msg.models.push_back(std::move(m));
  }
  if (reader.remaining() != 0) return TruncatedBody("models-response");
  return msg;
}

// ---------------------------------------------------------------- decoder ----

void FrameDecoder::Feed(std::span<const uint8_t> bytes) {
  // Compact lazily so a long-lived keep-alive connection cannot grow the
  // buffer without bound on frame-boundary traffic.
  if (consumed_ > 0 && (consumed_ == buffer_.size() || consumed_ >= 4096)) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (poisoned_) return poison_status_;
  if (buffered() < kHeaderBytes) return std::optional<Frame>(std::nullopt);
  uint8_t* header = buffer_.data() + consumed_;
  const uint32_t body_len = ReadU32At(header + 8);

  auto poison = [&](Status status) -> Result<std::optional<Frame>> {
    poisoned_ = true;
    poison_status_ = status;
    return poison_status_;
  };

  // Validate everything that does not need the body first, so an oversize
  // length field is rejected before any buffering decision trusts it.
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return poison(Status::ParseError("wire: bad frame magic"));
  }
  if (!ValidWireVersion(header[4])) {
    return poison(Status::ParseError("wire: unsupported protocol version " +
                                     std::to_string(header[4])));
  }
  if (!ValidFrameType(header[4], header[5])) {
    return poison(Status::ParseError("wire: unknown frame type " +
                                     std::to_string(header[5])));
  }
  if (header[6] != 0 || header[7] != 0) {
    return poison(Status::ParseError("wire: nonzero reserved header bytes"));
  }
  if (body_len > max_body_bytes_) {
    return poison(Status::ParseError(
        "wire: frame body of " + std::to_string(body_len) +
        " bytes exceeds the " + std::to_string(max_body_bytes_) + " limit"));
  }
  if (buffered() < kHeaderBytes + body_len) {
    return std::optional<Frame>(std::nullopt);  // wait for the rest
  }

  // Fault site: flip a covered header bit of the complete pending frame, so
  // the CRC check below fails closed exactly as it would on hostile bytes.
  if (TREEWM_FAULT_FIRED("serve.wire.frame.corrupt")) {
    header[5] ^= 0x40;
  }

  const std::span<const uint8_t> body(header + kHeaderBytes, body_len);
  const uint32_t expect_crc = ReadU32At(header + 12);
  if (FrameCrc(header, body) != expect_crc) {
    return poison(Status::ParseError("wire: frame checksum mismatch"));
  }

  Frame frame;
  frame.type = static_cast<FrameType>(header[5]);
  frame.version = header[4];
  frame.body.assign(body.begin(), body.end());
  consumed_ += kHeaderBytes + body_len;
  return std::optional<Frame>(std::move(frame));
}

}  // namespace treewm::serve::wire
