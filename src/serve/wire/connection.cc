#include "serve/wire/connection.h"

#include <algorithm>

namespace treewm::serve::wire {
namespace {

/// Per-poll-round read cap: a single connection blasting bytes yields the
/// loop back after this much, keeping latency fair across connections.
constexpr size_t kMaxReadPerRound = 64 * 1024;

}  // namespace

Connection::Connection(uint64_t id, Fd fd, std::chrono::nanoseconds now,
                       size_t max_body_bytes)
    : id_(id), fd_(std::move(fd)), decoder_(max_body_bytes),
      last_activity_(now) {}

ReadEvent Connection::ReadAndDecode(std::chrono::nanoseconds now,
                                    std::vector<Frame>* frames, Status* error) {
  uint8_t chunk[4096];
  size_t read_this_round = 0;
  while (read_this_round < kMaxReadPerRound) {
    Result<IoOutcome> got = ReadSome(fd_, chunk, sizeof(chunk));
    if (!got.ok()) {
      *error = got.status();
      return ReadEvent::kError;
    }
    const IoOutcome outcome = got.value();
    if (outcome.would_block) break;
    if (outcome.eof) {
      // Decode whatever arrived before the close, then report EOF; frames
      // fully received before the close still deserve answers.
      while (true) {
        Result<std::optional<Frame>> next = decoder_.Next();
        if (!next.ok()) {
          *error = next.status();
          return ReadEvent::kError;
        }
        if (!next.value().has_value()) break;
        frames->push_back(std::move(*next.value()));
      }
      return ReadEvent::kEof;
    }
    last_activity_ = now;
    read_this_round += outcome.bytes;
    decoder_.Feed(std::span<const uint8_t>(chunk, outcome.bytes));
    while (true) {
      Result<std::optional<Frame>> next = decoder_.Next();
      if (!next.ok()) {
        *error = next.status();
        return ReadEvent::kError;
      }
      if (!next.value().has_value()) break;
      frames->push_back(std::move(*next.value()));
    }
  }
  return ReadEvent::kOk;
}

void Connection::QueueWrite(std::span<const uint8_t> bytes) {
  // Compact before growing: long keep-alive sessions must not accrete the
  // already-flushed prefix forever.
  if (write_pos_ > 0 &&
      (write_pos_ == write_buffer_.size() || write_pos_ >= 16 * 1024)) {
    write_buffer_.erase(write_buffer_.begin(),
                        write_buffer_.begin() + static_cast<ptrdiff_t>(write_pos_));
    write_pos_ = 0;
  }
  write_buffer_.insert(write_buffer_.end(), bytes.begin(), bytes.end());
}

Status Connection::FlushWrites(std::chrono::nanoseconds now) {
  while (write_pos_ < write_buffer_.size()) {
    Result<IoOutcome> wrote = WriteSome(fd_, write_buffer_.data() + write_pos_,
                                        write_buffer_.size() - write_pos_);
    if (!wrote.ok()) return wrote.status();
    const IoOutcome outcome = wrote.value();
    if (outcome.would_block) break;
    if (outcome.bytes == 0) break;  // defensive: no progress, try next round
    write_pos_ += outcome.bytes;
    last_activity_ = now;
  }
  return Status::OK();
}

}  // namespace treewm::serve::wire
