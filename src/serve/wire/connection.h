// Per-connection wire state for the socket server.
//
// A Connection owns one accepted socket, its frame reassembly decoder, and
// its pending-output buffer. It is DELIBERATELY lock-free: every Connection
// is owned and driven by exactly one thread (the server's event loop), the
// same externally-guarded-capability pattern the Batcher uses. The server
// never hands a Connection to another thread; completions produced on the
// collector thread are routed by connection id and applied by the loop.

#ifndef TREEWM_SERVE_WIRE_CONNECTION_H_
#define TREEWM_SERVE_WIRE_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "serve/wire/frame.h"
#include "serve/wire/sockets.h"

namespace treewm::serve::wire {

/// What one read round produced.
enum class ReadEvent {
  kOk,         ///< progress (possibly zero frames); keep polling
  kEof,        ///< orderly peer close
  kError,      ///< transport or framing failure; see the returned Status
};

class Connection {
 public:
  Connection(uint64_t id, Fd fd, std::chrono::nanoseconds now,
             size_t max_body_bytes);

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  uint64_t id() const { return id_; }
  int fd() const { return fd_.get(); }

  /// Reads until the socket would block (or a per-round byte cap, so one
  /// firehose connection cannot starve the loop), decoding complete frames
  /// into `frames`. On kError the connection must be torn down; a framing
  /// error (ParseError) still deserves a best-effort error frame first.
  [[nodiscard]] ReadEvent ReadAndDecode(std::chrono::nanoseconds now,
                                        std::vector<Frame>* frames,
                                        Status* error);

  /// Queues bytes for writing; call FlushWrites() to push them out.
  void QueueWrite(std::span<const uint8_t> bytes);

  /// Writes as much pending output as the socket accepts. Returns a
  /// transport error on failure; ok + wants_write() tells whether output
  /// remains.
  [[nodiscard]] Status FlushWrites(std::chrono::nanoseconds now);

  bool wants_write() const { return write_pos_ < write_buffer_.size(); }

  /// The peer closed mid-frame if the decoder holds a partial frame.
  bool HasPartialFrame() const { return decoder_.HasPartialFrame(); }

  /// Requests submitted to the front-end whose responses have not yet been
  /// queued for writing.
  size_t in_flight = 0;
  /// Close once the write buffer drains (set after a fatal error frame or
  /// when draining finds the connection idle).
  bool closing = false;

  std::chrono::nanoseconds last_activity() const { return last_activity_; }

 private:
  uint64_t id_;
  Fd fd_;
  FrameDecoder decoder_;
  std::vector<uint8_t> write_buffer_;
  size_t write_pos_ = 0;
  std::chrono::nanoseconds last_activity_;
};

}  // namespace treewm::serve::wire

#endif  // TREEWM_SERVE_WIRE_CONNECTION_H_
