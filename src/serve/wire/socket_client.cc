#include "serve/wire/socket_client.h"

#include <utility>

namespace treewm::serve::wire {

bool IsWireRetryableStatus(const Status& status) {
  return IsRetryableStatus(status) || IsTransportError(status);
}

SocketClient::SocketClient(SocketClientOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : Clock::System()),
      decoder_(options.max_body_bytes) {}

SocketClient::~SocketClient() { Close(); }

Status SocketClient::Connect() {
  if (fd_.valid()) return Status::OK();
  TREEWM_ASSIGN_OR_RETURN(
      fd_, ConnectTcpLoopback(options_.port, options_.recv_timeout));
  decoder_ = FrameDecoder(options_.max_body_bytes);
  round_trips_ = 0;
  return Status::OK();
}

void SocketClient::Close() {
  fd_.Close();
  decoder_ = FrameDecoder(options_.max_body_bytes);
}

Status SocketClient::WriteAll(std::span<const uint8_t> bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    Result<IoOutcome> wrote =
        WriteSome(fd_, bytes.data() + written, bytes.size() - written);
    if (!wrote.ok()) return wrote.status();
    if (wrote.value().would_block) continue;  // blocking socket: rare, retry
    if (wrote.value().bytes == 0) {
      return Status::IoError("wire: write made no progress");
    }
    written += wrote.value().bytes;
  }
  return Status::OK();
}

Result<Frame> SocketClient::ReadFrame() {
  while (true) {
    TREEWM_ASSIGN_OR_RETURN(std::optional<Frame> frame, decoder_.Next());
    if (frame.has_value()) return std::move(*frame);
    uint8_t chunk[4096];
    Result<IoOutcome> got = ReadSome(fd_, chunk, sizeof(chunk));
    if (!got.ok()) return got.status();
    if (got.value().would_block) {
      // Blocking socket with SO_RCVTIMEO: EAGAIN here means the timeout
      // expired with the response still missing.
      return Status::Timeout("wire: timed out waiting for a response frame");
    }
    if (got.value().eof) {
      return Status::IoError("wire: server closed the connection");
    }
    decoder_.Feed(std::span<const uint8_t>(chunk, got.value().bytes));
  }
}

Result<Frame> SocketClient::RoundTrip(std::span<const uint8_t> frame) {
  TREEWM_RETURN_IF_ERROR(Connect());
  Status outcome = WriteAll(frame);
  if (!outcome.ok()) {
    Close();
    return outcome;
  }
  Result<Frame> reply = ReadFrame();
  if (!reply.ok()) {
    Close();
    return reply.status();
  }
  round_trips_ += 1;
  return reply;
}

Result<PredictResult> SocketClient::Predict(std::span<const float> features,
                                            std::chrono::nanoseconds timeout) {
  if (options_.model_id.size() > kMaxModelIdBytes) {
    // Refused before encoding: the wire caps model ids, and silently
    // truncating one would address a different model.
    return Status::InvalidArgument("wire: model id is too long");
  }
  PredictRequestMsg request;
  request.request_id = next_request_id_++;
  request.timeout = timeout;
  request.model_id = options_.model_id;
  request.features.assign(features.begin(), features.end());
  const uint8_t version =
      options_.model_id.empty() ? kWireVersion : kWireVersionMultiModel;
  TREEWM_ASSIGN_OR_RETURN(Frame reply,
                          RoundTrip(EncodePredictRequest(request, version)));
  switch (reply.type) {
    case FrameType::kPredictResponse: {
      Result<PredictResponseMsg> msg = DecodePredictResponse(reply.body);
      if (!msg.ok()) {
        Close();
        return msg.status();
      }
      if (msg.value().request_id != request.request_id) {
        // Strict request/response: an id mismatch means the stream is
        // desynchronized and nothing further on it can be trusted.
        Close();
        return Status::ParseError("wire: response for a different request id");
      }
      PredictResult result;
      result.label = static_cast<int>(msg.value().label);
      result.votes = std::move(msg.value().votes);
      return result;
    }
    case FrameType::kError: {
      Result<ErrorMsg> msg = DecodeError(reply.body);
      if (!msg.ok()) {
        Close();
        return msg.status();
      }
      if (msg.value().request_id != 0 &&
          msg.value().request_id != request.request_id) {
        Close();
        return Status::ParseError("wire: error for a different request id");
      }
      // Connection-level errors (id 0) also cost the stream: the server
      // closes after sending one.
      if (msg.value().request_id == 0) Close();
      return msg.value().ToStatus();
    }
    default:
      Close();
      return Status::ParseError("wire: unexpected frame type in response");
  }
}

Result<PredictResult> SocketClient::PredictWithRetry(
    std::span<const float> features, const RetryPolicy& policy,
    std::chrono::nanoseconds timeout) {
  return RetryWithBackoffIf(
      policy, clock_, IsWireRetryableStatus,
      [&]() -> Result<PredictResult> { return Predict(features, timeout); });
}

Status SocketClient::Ping() {
  PingMsg ping;
  ping.token = next_request_id_++;
  TREEWM_ASSIGN_OR_RETURN(Frame reply,
                          RoundTrip(EncodePing(FrameType::kPing, ping)));
  if (reply.type == FrameType::kError) {
    Result<ErrorMsg> msg = DecodeError(reply.body);
    Close();
    if (!msg.ok()) return msg.status();
    return msg.value().ToStatus();
  }
  if (reply.type != FrameType::kPong) {
    Close();
    return Status::ParseError("wire: expected a pong frame");
  }
  Result<PingMsg> pong = DecodePing(reply.body);
  if (!pong.ok()) {
    Close();
    return pong.status();
  }
  if (pong.value().token != ping.token) {
    Close();
    return Status::ParseError("wire: pong echoed the wrong token");
  }
  return Status::OK();
}

Result<std::vector<ModelInfoMsg>> SocketClient::ListModels() {
  ModelsRequestMsg request;
  request.token = next_request_id_++;
  TREEWM_ASSIGN_OR_RETURN(Frame reply, RoundTrip(EncodeModelsRequest(request)));
  switch (reply.type) {
    case FrameType::kModelsResponse: {
      Result<ModelsResponseMsg> msg = DecodeModelsResponse(reply.body);
      if (!msg.ok()) {
        Close();
        return msg.status();
      }
      if (msg.value().token != request.token) {
        Close();
        return Status::ParseError("wire: models response for a different token");
      }
      return std::move(msg.value().models);
    }
    case FrameType::kError: {
      Result<ErrorMsg> msg = DecodeError(reply.body);
      if (!msg.ok()) {
        Close();
        return msg.status();
      }
      if (msg.value().request_id != 0 &&
          msg.value().request_id != request.token) {
        Close();
        return Status::ParseError("wire: error for a different request id");
      }
      if (msg.value().request_id == 0) Close();
      return msg.value().ToStatus();
    }
    default:
      Close();
      return Status::ParseError("wire: unexpected frame type in response");
  }
}

}  // namespace treewm::serve::wire
