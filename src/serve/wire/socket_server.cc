#include "serve/wire/socket_server.h"

#include <poll.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "serve/registry/model_registry.h"

namespace treewm::serve::wire {
namespace {

/// Cap on accepts per poll round so an accept storm cannot starve
/// established connections.
constexpr int kMaxAcceptsPerRound = 32;

/// Slice for the collector's future waits: short enough that shutdown's
/// abandon flag is honored promptly, long enough to cost nothing.
constexpr std::chrono::milliseconds kCollectorWaitSlice{5};

int ToPollTimeoutMs(std::chrono::nanoseconds wait) {
  if (wait.count() <= 0) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(wait);
  // Round up so a deadline 0.4ms away does not busy-spin at timeout 0.
  const int64_t rounded = ms.count() + (ms >= wait ? 0 : 1);
  return static_cast<int>(std::min<int64_t>(rounded, 60'000));
}

}  // namespace

Result<std::unique_ptr<SocketServer>> SocketServer::Create(
    ServingFrontEnd* front_end, SocketServerOptions options) {
  if (front_end == nullptr) {
    return Status::InvalidArgument("socket server needs a serving front-end");
  }
  return CreateImpl(front_end, nullptr, std::move(options));
}

Result<std::unique_ptr<SocketServer>> SocketServer::Create(
    ModelRegistry* registry, SocketServerOptions options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("socket server needs a model registry");
  }
  if (options.default_model.empty()) {
    return Status::InvalidArgument(
        "registry mode needs a default model for v1 clients");
  }
  if (options.default_model.size() > kMaxModelIdBytes) {
    return Status::InvalidArgument("default model id is too long for the wire");
  }
  return CreateImpl(nullptr, registry, std::move(options));
}

Result<std::unique_ptr<SocketServer>> SocketServer::CreateImpl(
    ServingFrontEnd* front_end, ModelRegistry* registry,
    SocketServerOptions options) {
  if (options.max_connections == 0) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  if (options.max_in_flight_per_connection == 0) {
    return Status::InvalidArgument("max_in_flight_per_connection must be >= 1");
  }
  if (options.max_body_bytes < kHeaderBytes) {
    return Status::InvalidArgument("max_body_bytes is too small for any frame");
  }
  if (options.clock == nullptr) options.clock = Clock::System();
  TREEWM_ASSIGN_OR_RETURN(Fd listener,
                          ListenTcpLoopback(options.port, options.backlog));
  TREEWM_ASSIGN_OR_RETURN(const uint16_t port, LocalPort(listener));
  TREEWM_ASSIGN_OR_RETURN(auto pipe_ends, MakeWakePipe());
  auto server = std::unique_ptr<SocketServer>(new SocketServer(
      front_end, registry, options, std::move(listener),
      std::move(pipe_ends.first), std::move(pipe_ends.second), port));
  return server;
}

SocketServer::SocketServer(ServingFrontEnd* front_end, ModelRegistry* registry,
                           SocketServerOptions options, Fd listener,
                           Fd wake_read, Fd wake_write, uint16_t port)
    : front_end_(front_end),
      registry_(registry),
      options_(options),
      clock_(options.clock),
      port_(port),
      listener_(std::move(listener)),
      wake_read_(std::move(wake_read)),
      wake_write_(std::move(wake_write)) {
  collector_pool_ = std::make_unique<ThreadPool>(1);
  loop_pool_ = std::make_unique<ThreadPool>(1);
  Status collector_started = collector_pool_->Submit([this] { CollectorLoop(); });
  Status loop_started = loop_pool_->Submit([this] { EventLoop(); });
  // Fresh 1-thread pools only reject under an injected thread_pool fault;
  // fall back to immediate-drain mode rather than serving half a server.
  if (!collector_started.ok() || !loop_started.ok()) {
    LogWarning("wire: server thread submit rejected, wire layer disabled: " +
               (collector_started.ok() ? loop_started : collector_started)
                   .ToString());
    drain_requested_.store(true, std::memory_order_release);
    abandon_completions_.store(true, std::memory_order_release);
    {
      MutexLock lock(&pending_mutex_);
      collector_stop_ = true;
    }
    pending_ready_.NotifyAll();
    listener_.Close();
  }
}

SocketServer::~SocketServer() { Shutdown(); }

WireStats SocketServer::stats() const {
  WireStats s;
  s.connections_accepted = connections_accepted_.load(std::memory_order_relaxed);
  s.connections_shed = connections_shed_.load(std::memory_order_relaxed);
  s.accept_failures = accept_failures_.load(std::memory_order_relaxed);
  s.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  s.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  s.closed_mid_frame = closed_mid_frame_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  s.transport_errors = transport_errors_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.pings = pings_.load(std::memory_order_relaxed);
  s.requests_received = requests_received_.load(std::memory_order_relaxed);
  s.models_requests = models_requests_.load(std::memory_order_relaxed);
  s.responses_sent = responses_sent_.load(std::memory_order_relaxed);
  s.refusals_sent = refusals_sent_.load(std::memory_order_relaxed);
  s.responses_dropped = responses_dropped_.load(std::memory_order_relaxed);
  s.active_connections = active_connections_.load(std::memory_order_relaxed);
  return s;
}

void SocketServer::SendErrorFrame(Connection* conn, uint64_t request_id,
                                  const Status& status, uint8_t version) {
  ErrorMsg msg;
  msg.request_id = request_id;
  msg.code = status.code();
  msg.message = status.message();
  const std::vector<uint8_t> frame = EncodeError(msg, version);
  conn->QueueWrite(frame);
}

void SocketServer::HandleModelsRequest(Connection* conn, const Frame& frame) {
  Result<ModelsRequestMsg> request = DecodeModelsRequest(frame.body);
  if (!request.ok()) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(conn, 0, request.status(), frame.version);
    conn->closing = true;
    return;
  }
  models_requests_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t token = request.value().token;
  if (registry_ == nullptr) {
    // Single-model server: a typed refusal (echoing the token as the
    // request id), connection kept — the client asked a fair question.
    refusals_sent_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(conn, token,
                   Status::FailedPrecondition(
                       "server has no model registry (single-model mode)"),
                   frame.version);
    return;
  }
  ModelsResponseMsg response;
  response.token = token;
  for (const ModelEntryInfo& entry : registry_->List()) {
    ModelInfoMsg info;
    info.id = entry.id;
    info.state = static_cast<uint8_t>(entry.state);
    info.checksum = entry.checksum;
    info.submitted = entry.serving.submitted;
    info.completed_ok = entry.serving.completed_ok;
    info.shed = entry.serving.rejected_full + entry.serving.rejected_shed;
    response.models.push_back(std::move(info));
  }
  conn->QueueWrite(EncodeModelsResponse(response));
  responses_sent_.fetch_add(1, std::memory_order_relaxed);
}

void SocketServer::EraseConnection(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  conns_.erase(it);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  active_connections_.store(conns_.size(), std::memory_order_relaxed);
}

void SocketServer::HandleFrame(Connection* conn, Frame frame) {
  frames_received_.fetch_add(1, std::memory_order_relaxed);
  switch (frame.type) {
    case FrameType::kPing: {
      Result<PingMsg> ping = DecodePing(frame.body);
      if (!ping.ok()) {
        parse_errors_.fetch_add(1, std::memory_order_relaxed);
        SendErrorFrame(conn, 0, ping.status(), frame.version);
        conn->closing = true;
        return;
      }
      pings_.fetch_add(1, std::memory_order_relaxed);
      const std::vector<uint8_t> pong =
          EncodePing(FrameType::kPong, ping.value(), frame.version);
      conn->QueueWrite(pong);
      return;
    }
    case FrameType::kPredictRequest: {
      Result<PredictRequestMsg> request =
          DecodePredictRequest(frame.body, frame.version);
      if (!request.ok()) {
        parse_errors_.fetch_add(1, std::memory_order_relaxed);
        SendErrorFrame(conn, 0, request.status(), frame.version);
        conn->closing = true;
        return;
      }
      requests_received_.fetch_add(1, std::memory_order_relaxed);
      const uint64_t request_id = request.value().request_id;
      if (drain_requested_.load(std::memory_order_acquire)) {
        refusals_sent_.fetch_add(1, std::memory_order_relaxed);
        SendErrorFrame(conn, request_id,
                       Status::FailedPrecondition("server is draining"),
                       frame.version);
        return;
      }
      if (conn->in_flight >= options_.max_in_flight_per_connection) {
        refusals_sent_.fetch_add(1, std::memory_order_relaxed);
        TREEWM_LOG_EVERY_N(LogLevel::kWarning, 256,
                           "wire: per-connection in-flight cap hit");
        SendErrorFrame(conn, request_id,
                       Status::ResourceExhausted(
                           "per-connection in-flight cap reached"),
                       frame.version);
        return;
      }
      RequestOptions req_options;
      req_options.timeout = request.value().timeout;
      std::future<Result<PredictResult>> future;
      if (registry_ != nullptr) {
        // Registry routing: empty id (every v1 frame, and v2 frames that
        // leave it blank) lands on the default model; an unknown id comes
        // back as an immediate NotFound future → typed error frame below,
        // connection kept.
        const std::string& model = request.value().model_id.empty()
                                       ? options_.default_model
                                       : request.value().model_id;
        future = registry_->SubmitPredict(model, request.value().features,
                                          req_options);
      } else if (!request.value().model_id.empty()) {
        // A v2 client naming a model at a single-model server: nothing it
        // could name exists here, so refuse typed rather than silently
        // serving a different model than it asked for.
        refusals_sent_.fetch_add(1, std::memory_order_relaxed);
        SendErrorFrame(conn, request_id,
                       Status::NotFound(
                           "server is single-model; no model registry"),
                       frame.version);
        return;
      } else {
        future = front_end_->SubmitPredict(request.value().features,
                                           req_options);
      }
      conn->in_flight += 1;
      {
        MutexLock lock(&pending_mutex_);
        PendingResponse pending;
        pending.conn_id = conn->id();
        pending.request_id = request_id;
        pending.version = frame.version;
        pending.future = std::move(future);
        pending_.push_back(std::move(pending));
      }
      pending_ready_.NotifyOne();
      return;
    }
    case FrameType::kModelsRequest: {
      // The decoder only admits type 6 on v2 frames (ValidFrameType), so
      // a v1 client can never reach this path.
      HandleModelsRequest(conn, frame);
      return;
    }
    case FrameType::kPredictResponse:
    case FrameType::kPong:
    case FrameType::kError:
    case FrameType::kModelsResponse: {
      // Server-to-client message types arriving AT the server: protocol
      // violation; fail the connection closed.
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      SendErrorFrame(
          conn, 0,
          Status::ParseError("wire: client sent a server-only frame type"),
          frame.version);
      conn->closing = true;
      return;
    }
  }
}

void SocketServer::ApplyCompletions() {
  std::deque<CompletedResponse> batch;
  {
    MutexLock lock(&completed_mutex_);
    batch.swap(completed_);
  }
  for (CompletedResponse& completion : batch) {
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) {
      responses_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Connection* conn = it->second.get();
    if (conn->in_flight > 0) conn->in_flight -= 1;
    if (completion.result.ok()) {
      PredictResponseMsg msg;
      msg.request_id = completion.request_id;
      msg.label = completion.result.value().label;
      msg.votes = std::move(completion.result.value().votes);
      conn->QueueWrite(EncodePredictResponse(msg, completion.version));
      responses_sent_.fetch_add(1, std::memory_order_relaxed);
    } else {
      refusals_sent_.fetch_add(1, std::memory_order_relaxed);
      SendErrorFrame(conn, completion.request_id, completion.result.status(),
                     completion.version);
    }
  }
}

void SocketServer::AcceptRound() {
  for (int i = 0; i < kMaxAcceptsPerRound; ++i) {
    Result<AcceptOutcome> accepted = AcceptConnection(listener_);
    if (!accepted.ok()) {
      accept_failures_.fetch_add(1, std::memory_order_relaxed);
      TREEWM_LOG_EVERY_N(LogLevel::kWarning, 256,
                         "wire: accept failed: " + accepted.status().ToString());
      continue;  // transient: keep draining the backlog
    }
    if (accepted.value().would_block) return;
    Fd fd = std::move(accepted.value().fd);
    const auto now = clock_->Now();
    if (conns_.size() >= options_.max_connections) {
      // Accept-shed: answer one typed refusal, then close. Best effort —
      // the socket buffer of a fresh connection takes a small frame.
      connections_shed_.fetch_add(1, std::memory_order_relaxed);
      TREEWM_LOG_EVERY_N(LogLevel::kWarning, 256,
                         "wire: connection high-water, shedding accept");
      ErrorMsg msg;
      msg.request_id = 0;
      msg.code = StatusCode::kResourceExhausted;
      msg.message = "connection limit reached";
      std::vector<uint8_t> frame = EncodeError(msg);
      size_t written = 0;
      while (written < frame.size()) {
        Result<IoOutcome> wrote =
            WriteSome(fd, frame.data() + written, frame.size() - written);
        if (!wrote.ok() || wrote.value().would_block) break;
        if (wrote.value().bytes == 0) break;
        written += wrote.value().bytes;
      }
      continue;
    }
    const uint64_t id = next_conn_id_++;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(id, std::make_unique<Connection>(id, std::move(fd), now,
                                                    options_.max_body_bytes));
    active_connections_.store(conns_.size(), std::memory_order_relaxed);
  }
}

void SocketServer::EventLoop() {
  std::vector<pollfd> poll_fds;
  std::vector<uint64_t> poll_conn_ids;  // parallel to poll_fds, 0 = not a conn
  std::vector<uint64_t> to_erase;
  std::vector<Frame> frames;

  while (true) {
    const bool draining = drain_requested_.load(std::memory_order_acquire);
    auto now = clock_->Now();
    if (draining) {
      if (listener_.valid()) listener_.Close();
      if (drain_deadline_at_ == kNoDeadline) {
        drain_deadline_at_ = options_.drain_deadline.count() > 0
                                 ? now + options_.drain_deadline
                                 : now;
      }
    }

    ApplyCompletions();

    // Close what is finished; during drain, idle connections are done too.
    to_erase.clear();
    for (auto& [id, conn] : conns_) {
      if (draining && conn->in_flight == 0 && !conn->wants_write()) {
        conn->closing = true;
      }
      if (conn->closing && !conn->wants_write()) to_erase.push_back(id);
    }
    for (uint64_t id : to_erase) EraseConnection(id);

    if (draining) {
      const bool deadline_passed = now >= drain_deadline_at_;
      if (conns_.empty()) return;
      if (deadline_passed) {
        // Force-close the stragglers; their in-flight answers surface as
        // responses_dropped when the collector abandons or delivers them.
        to_erase.clear();
        for (auto& [id, conn] : conns_) to_erase.push_back(id);
        for (uint64_t id : to_erase) EraseConnection(id);
        return;
      }
    }

    // ---- build the poll set ----
    poll_fds.clear();
    poll_conn_ids.clear();
    poll_fds.push_back(pollfd{wake_read_.get(), POLLIN, 0});
    poll_conn_ids.push_back(0);
    if (!draining && listener_.valid()) {
      poll_fds.push_back(pollfd{listener_.get(), POLLIN, 0});
      poll_conn_ids.push_back(0);
    }
    std::chrono::nanoseconds wait = std::chrono::nanoseconds::max();
    if (draining) wait = drain_deadline_at_ - now;
    for (auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (conn->wants_write()) events |= POLLOUT;
      poll_fds.push_back(pollfd{conn->fd(), events, 0});
      poll_conn_ids.push_back(id);
      if (options_.idle_timeout.count() > 0 && conn->in_flight == 0 &&
          !conn->wants_write()) {
        wait = std::min(wait,
                        conn->last_activity() + options_.idle_timeout - now);
      }
    }
    const int timeout_ms = wait == std::chrono::nanoseconds::max()
                               ? -1
                               : ToPollTimeoutMs(wait);
    int rc;
    do {
      rc = ::poll(poll_fds.data(), poll_fds.size(), timeout_ms);
    } while (rc < 0 && errno == EINTR);
    now = clock_->Now();
    if (poll_fds[0].revents != 0) DrainWakePipe(wake_read_);

    // ---- events ----
    for (size_t i = 1; i < poll_fds.size(); ++i) {
      const pollfd& entry = poll_fds[i];
      if (entry.revents == 0) continue;
      if (poll_conn_ids[i] == 0) {
        AcceptRound();
        continue;
      }
      auto it = conns_.find(poll_conn_ids[i]);
      if (it == conns_.end()) continue;
      Connection* conn = it->second.get();

      if ((entry.revents & (POLLIN | POLLERR | POLLHUP)) != 0 &&
          !conn->closing) {
        frames.clear();
        Status error = Status::OK();
        const ReadEvent event = conn->ReadAndDecode(now, &frames, &error);
        for (Frame& frame : frames) {
          if (conn->closing) break;  // a poisoned frame closed the stream
          HandleFrame(conn, std::move(frame));
        }
        if (event == ReadEvent::kEof) {
          if (conn->HasPartialFrame()) {
            closed_mid_frame_.fetch_add(1, std::memory_order_relaxed);
          }
          // Full close: the peer is gone, answers are undeliverable.
          EraseConnection(conn->id());
          continue;
        }
        if (event == ReadEvent::kError) {
          if (error.code() == StatusCode::kParseError) {
            parse_errors_.fetch_add(1, std::memory_order_relaxed);
            TREEWM_LOG_EVERY_N(LogLevel::kWarning, 256,
                               "wire: framing error: " + error.ToString());
            SendErrorFrame(conn, 0, error);
            // discard ok: best-effort farewell; the close below is the
            // real handling and a failed flush changes nothing
            (void)conn->FlushWrites(now);
          } else {
            transport_errors_.fetch_add(1, std::memory_order_relaxed);
            TREEWM_LOG_EVERY_N(LogLevel::kWarning, 256,
                               "wire: read failed: " + error.ToString());
          }
          EraseConnection(conn->id());
          continue;
        }
      }

      if (conn->wants_write()) {
        Status flushed = conn->FlushWrites(now);
        if (!flushed.ok()) {
          transport_errors_.fetch_add(1, std::memory_order_relaxed);
          TREEWM_LOG_EVERY_N(LogLevel::kWarning, 256,
                             "wire: write failed: " + flushed.ToString());
          EraseConnection(conn->id());
          continue;
        }
      }
      if (conn->closing && !conn->wants_write()) EraseConnection(conn->id());
    }

    // ---- idle sweep ----
    if (options_.idle_timeout.count() > 0) {
      to_erase.clear();
      for (auto& [id, conn] : conns_) {
        if (conn->in_flight == 0 && !conn->wants_write() &&
            now - conn->last_activity() >= options_.idle_timeout) {
          to_erase.push_back(id);
        }
      }
      for (uint64_t id : to_erase) {
        idle_closed_.fetch_add(1, std::memory_order_relaxed);
        EraseConnection(id);
      }
    }
  }
}

void SocketServer::CollectorLoop() {
  while (true) {
    PendingResponse item;
    {
      MutexLock lock(&pending_mutex_);
      while (pending_.empty() && !collector_stop_) pending_ready_.Wait(lock);
      if (pending_.empty()) return;  // stop requested and queue drained
      item = std::move(pending_.front());
      pending_.pop_front();
    }
    // Wait in slices: a wedged front-end must not pin shutdown — once the
    // loop has exited, answers are undeliverable and abandoning is correct.
    bool ready = false;
    while (!ready) {
      if (abandon_completions_.load(std::memory_order_acquire)) break;
      ready = item.future.wait_for(kCollectorWaitSlice) ==
              std::future_status::ready;
    }
    if (!ready) {
      responses_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    CompletedResponse completion{item.conn_id, item.request_id, item.version,
                                 item.future.get()};
    {
      MutexLock lock(&completed_mutex_);
      completed_.push_back(std::move(completion));
    }
    SignalWakePipe(wake_write_);
  }
}

void SocketServer::Shutdown() {
  bool expected = false;
  if (!shutdown_started_.compare_exchange_strong(expected, true)) return;
  drain_requested_.store(true, std::memory_order_release);
  SignalWakePipe(wake_write_);
  // Joins after EventLoop returns: drain complete or deadline hit.
  loop_pool_->Shutdown();
  // The loop is gone; nothing further can be delivered. Tell the collector
  // to finish the backlog (abandoning unresolved futures) and join it.
  abandon_completions_.store(true, std::memory_order_release);
  {
    MutexLock lock(&pending_mutex_);
    collector_stop_ = true;
  }
  pending_ready_.NotifyAll();
  collector_pool_->Shutdown();
  // Completions that raced in after the loop exited are undeliverable.
  std::deque<CompletedResponse> leftovers;
  {
    MutexLock lock(&completed_mutex_);
    leftovers.swap(completed_);
  }
  responses_dropped_.fetch_add(leftovers.size(), std::memory_order_relaxed);
}

}  // namespace treewm::serve::wire
