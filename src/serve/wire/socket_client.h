// Blocking keep-alive client for the wire protocol.
//
// One SocketClient owns one loopback connection and speaks strict
// request/response: Predict() writes a predict-request frame, then reads
// frames until the matching response or error arrives. The connection is
// reused across calls (keep-alive); any transport or framing failure closes
// it, and the next call reconnects.
//
// Retry discipline (PredictWithRetry): only overload pushback
// (ResourceExhausted) and connection-reset-class transport failures
// (IoError) are retried — predictions are pure functions of their features,
// so resending over a fresh connection is safe. Deadline, validation, and
// parse failures are terminal, exactly as in the in-process retry helper.

#ifndef TREEWM_SERVE_WIRE_SOCKET_CLIENT_H_
#define TREEWM_SERVE_WIRE_SOCKET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "serve/request.h"
#include "serve/retry.h"
#include "serve/serving_front_end.h"
#include "serve/wire/frame.h"
#include "serve/wire/sockets.h"

namespace treewm::serve::wire {

struct SocketClientOptions {
  /// Server's loopback port.
  uint16_t port = 0;
  /// Blocking-read ceiling per recv; expiry surfaces as Status::Timeout.
  /// Also bounds how long a Predict() call can hang on a silent server.
  std::chrono::nanoseconds recv_timeout = std::chrono::seconds(5);
  /// Frame-body ceiling for the response decoder.
  size_t max_body_bytes = kDefaultMaxBodyBytes;
  /// Time source for retry backoff (nullptr = system clock).
  Clock* clock = nullptr;
  /// Model to address predict requests to. Empty = speak protocol v1 (the
  /// server routes to its default model); non-empty = v2 frames carrying
  /// this id. ListModels() always speaks v2 regardless.
  std::string model_id;
};

/// True for failures PredictWithRetry resends: overload pushback or a
/// reset-class transport error (the request is idempotent).
bool IsWireRetryableStatus(const Status& status);

class SocketClient {
 public:
  explicit SocketClient(SocketClientOptions options);
  ~SocketClient();

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  /// Dials the server if not already connected. Predict()/Ping() call this
  /// implicitly; it exists so tests and the CLI can separate connection
  /// failures from protocol failures.
  [[nodiscard]] Status Connect();

  /// Drops the connection (next call reconnects).
  void Close();

  bool connected() const { return fd_.valid(); }

  /// One round-trip over the keep-alive connection. `timeout` rides the
  /// request frame and becomes the server-side RequestOptions deadline
  /// (kNoDeadline = none). Server refusals come back as their original
  /// typed Status (ResourceExhausted, DeadlineExceeded, ...); transport and
  /// framing failures close the connection and return IoError/ParseError.
  [[nodiscard]] Result<PredictResult> Predict(
      std::span<const float> features,
      std::chrono::nanoseconds timeout = kNoDeadline);

  /// Predict() wrapped in capped-backoff retries of ResourceExhausted and
  /// reset-class IoError (reconnecting first when the connection dropped).
  [[nodiscard]] Result<PredictResult> PredictWithRetry(
      std::span<const float> features, const RetryPolicy& policy,
      std::chrono::nanoseconds timeout = kNoDeadline);

  /// Liveness round-trip: sends a ping, expects the token echoed back.
  [[nodiscard]] Status Ping();

  /// Lists the server's models (always a v2 round-trip). A single-model
  /// server answers FailedPrecondition; rows come back in the server's
  /// deterministic (id-sorted) order.
  [[nodiscard]] Result<std::vector<ModelInfoMsg>> ListModels();

  /// Round-trips completed on the current connection (diagnostics).
  uint64_t round_trips() const { return round_trips_; }

 private:
  /// Writes `frame` fully, then reads until one complete frame arrives.
  [[nodiscard]] Result<Frame> RoundTrip(std::span<const uint8_t> frame);
  [[nodiscard]] Status WriteAll(std::span<const uint8_t> bytes);
  [[nodiscard]] Result<Frame> ReadFrame();

  SocketClientOptions options_;
  Clock* clock_;
  Fd fd_;
  FrameDecoder decoder_;
  uint64_t next_request_id_ = 1;
  uint64_t round_trips_ = 0;
};

}  // namespace treewm::serve::wire

#endif  // TREEWM_SERVE_WIRE_SOCKET_CLIENT_H_
