// Poll-based event-loop socket server over the in-process ServingFrontEnd.
//
// The wire half of the verification service (rspamd's scanning-daemon
// shape): one nonblocking listener + one poll loop own every connection;
// requests decoded off the wire are submitted to the UNCHANGED
// ServingFrontEnd (bounded admission, coalescing batcher, deadlines,
// shedding), and a collector thread turns the front-end's futures into
// response frames the loop writes back. Per-request deadlines travel in the
// request frame's timeout field, so the admission/dispatch/completion
// checks apply to wire traffic exactly as to in-process callers.
//
// Two serving modes, chosen at Create():
//   * single-model — requests go straight to one borrowed ServingFrontEnd
//     (the PR-9 shape, unchanged);
//   * registry — requests are routed by the v2 frame's model-id field into
//     a borrowed ModelRegistry. A v1 frame (or a v2 frame with an empty
//     model id) lands on options.default_model, so v1 clients keep working
//     against a multi-model server byte-for-byte; an unknown model id earns
//     a typed NotFound error frame and the connection is KEPT — picking a
//     missing model is the client's mistake, not a framing failure. The v2
//     kModelsRequest frame answers a kModelsResponse listing every model
//     (id, lifecycle state, image checksum, shed counters); on a
//     single-model server it earns a FailedPrecondition error frame.
// Response and error frames are stamped with the version of the request
// frame they answer, so a v1 client never sees a v2 frame.
//
// Robustness envelope at the wire:
//   * keep-alive connections with an idle timeout (a silent client cannot
//     hold a slot forever);
//   * per-connection in-flight cap — a pipelining client that overruns it
//     is refused ResourceExhausted per overflowing request, connection kept;
//   * connection-count high-water with accept-shedding: above
//     max_connections a fresh connection is answered one ResourceExhausted
//     error frame and closed (a typed refusal, not a silent backlog drop);
//   * fail-closed framing: a malformed frame earns a best-effort typed
//     error frame and the connection is closed — framing is unrecoverable
//     once lost (see frame.h);
//   * graceful drain: Shutdown() closes the listener, lets in-flight
//     requests finish (bounded by drain_deadline), flushes their responses,
//     then tears everything down. Every request received on the wire is
//     answered or refused exactly once; responses whose connection died are
//     counted in responses_dropped, never silently lost.
//
// Determinism contract (tests/test_wire.cc): completed responses are
// bit-identical to the in-process ServingFrontEnd result for the same
// feature vector, across connection counts × batch shapes × fault
// schedules. The wire can change WHICH requests complete, never the value
// a completed request is served.
//
// Threading: the poll loop and the collector run on 1-worker ThreadPools
// (the PR-6 dispatcher idiom; drain-on-shutdown is the join protocol).
// Connections and the conns_ map are loop-thread-only (externally-guarded
// capability, like Batcher); the pending/completed queues between loop and
// collector are Mutex-guarded and annotated; counters are atomics.

#ifndef TREEWM_SERVE_WIRE_SOCKET_SERVER_H_
#define TREEWM_SERVE_WIRE_SOCKET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/annotations.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "serve/serving_front_end.h"
#include "serve/wire/connection.h"
#include "serve/wire/frame.h"
#include "serve/wire/sockets.h"

namespace treewm::serve {
class ModelRegistry;
}  // namespace treewm::serve

namespace treewm::serve::wire {

struct SocketServerOptions {
  /// Loopback port to listen on (0 = kernel-assigned; read it back via
  /// port()).
  uint16_t port = 0;
  /// listen(2) backlog.
  int backlog = 64;
  /// Connection-count high-water: accepts above this are shed with one
  /// ResourceExhausted error frame. >= 1.
  size_t max_connections = 64;
  /// Per-connection cap on submitted-but-unanswered requests; overflowing
  /// requests are refused ResourceExhausted (connection kept). >= 1.
  size_t max_in_flight_per_connection = 64;
  /// Close connections with no in-flight work after this much quiet time
  /// (0 = never).
  std::chrono::nanoseconds idle_timeout = std::chrono::seconds(30);
  /// Shutdown() waits at most this long for in-flight requests to finish
  /// and their responses to flush.
  std::chrono::nanoseconds drain_deadline = std::chrono::seconds(5);
  /// Frame-body ceiling handed to each connection's decoder.
  size_t max_body_bytes = kDefaultMaxBodyBytes;
  /// Registry mode only: the model v1 frames (and v2 frames with an empty
  /// model id) are routed to. Must name a loaded model for such requests to
  /// complete — an unknown id is refused NotFound per request.
  std::string default_model;
  /// Time source for idle/drain arithmetic (nullptr = system clock). Real
  /// sockets need real time; FakeClock only suits unit tests that never
  /// poll.
  Clock* clock = nullptr;
};

/// Counter snapshot. After Shutdown() the wire accounting closes:
/// requests_received + models_requests ==
///     responses_sent + refusals_sent + responses_dropped.
struct WireStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_shed = 0;     ///< over max_connections
  uint64_t accept_failures = 0;      ///< transient accept errors (incl. fault)
  uint64_t connections_closed = 0;   ///< every close, any reason
  uint64_t idle_closed = 0;          ///< closed by the idle timeout
  uint64_t closed_mid_frame = 0;     ///< peer vanished inside a frame
  uint64_t parse_errors = 0;         ///< framing/body decode failures
  uint64_t transport_errors = 0;     ///< read/write resets and friends
  uint64_t frames_received = 0;
  uint64_t pings = 0;
  uint64_t requests_received = 0;    ///< well-formed predict requests
  uint64_t models_requests = 0;      ///< well-formed models-list requests
  uint64_t responses_sent = 0;       ///< predict responses queued to a socket
  uint64_t refusals_sent = 0;        ///< typed error frames for a request id
  uint64_t responses_dropped = 0;    ///< answers whose connection was gone
  uint64_t active_connections = 0;   ///< point-in-time
};

class SocketServer {
 public:
  /// Binds, starts the loop + collector, returns a serving server.
  /// `front_end` is borrowed and must outlive the server; use an
  /// OverflowPolicy::kReject queue (a blocking admission policy would stall
  /// the event loop — the wire's backpressure is the typed refusal).
  [[nodiscard]] static Result<std::unique_ptr<SocketServer>> Create(
      ServingFrontEnd* front_end, SocketServerOptions options);

  /// Registry mode: routes by the v2 model-id field (see file comment).
  /// `registry` is borrowed and must outlive the server;
  /// options.default_model must be non-empty — it is where every v1 frame
  /// lands.
  [[nodiscard]] static Result<std::unique_ptr<SocketServer>> Create(
      ModelRegistry* registry, SocketServerOptions options);

  /// Shuts down (drains) if the caller has not already.
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// The bound loopback port.
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, finish or refuse everything in flight
  /// (bounded by drain_deadline), close all connections, join the threads.
  /// Requires the front-end to be completing requests (dispatcher mode, or
  /// an owner pumping manually) — otherwise in-flight answers are abandoned
  /// at the drain deadline and counted dropped. Idempotent.
  void Shutdown();

  WireStats stats() const;

 private:
  SocketServer(ServingFrontEnd* front_end, ModelRegistry* registry,
               SocketServerOptions options, Fd listener, Fd wake_read,
               Fd wake_write, uint16_t port);

  /// Shared tail of both Create overloads (option validation, bind, spawn).
  [[nodiscard]] static Result<std::unique_ptr<SocketServer>> CreateImpl(
      ServingFrontEnd* front_end, ModelRegistry* registry,
      SocketServerOptions options);

  struct PendingResponse {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    uint8_t version = kWireVersion;  ///< answer stamped like the request
    std::future<Result<PredictResult>> future;
  };
  struct CompletedResponse {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    uint8_t version = kWireVersion;
    Result<PredictResult> result;
  };

  void EventLoop() TREEWM_EXCLUDES(pending_mutex_, completed_mutex_);
  void CollectorLoop() TREEWM_EXCLUDES(pending_mutex_, completed_mutex_);

  // --- loop-thread-only helpers (conns_ is externally synchronized by the
  // --- single loop driver; see class comment) ---
  void AcceptRound();
  void HandleFrame(Connection* conn, Frame frame)
      TREEWM_EXCLUDES(pending_mutex_);
  void ApplyCompletions() TREEWM_EXCLUDES(completed_mutex_);
  void SendErrorFrame(Connection* conn, uint64_t request_id,
                      const Status& status, uint8_t version = kWireVersion);
  void HandleModelsRequest(Connection* conn, const Frame& frame);
  void EraseConnection(uint64_t id);

  /// Exactly one of front_end_/registry_ is set (the other is nullptr).
  ServingFrontEnd* front_end_;
  ModelRegistry* registry_;
  SocketServerOptions options_;
  Clock* clock_;
  uint16_t port_;

  Fd listener_;        // loop thread closes it when draining begins
  Fd wake_read_;
  Fd wake_write_;

  /// Loop-thread-only (single driver — never touched off the event loop).
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;
  std::chrono::nanoseconds drain_deadline_at_{kNoDeadline};

  std::unique_ptr<ThreadPool> loop_pool_;
  std::unique_ptr<ThreadPool> collector_pool_;

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> shutdown_started_{false};
  /// Collector: stop waiting on unresolved futures and count them dropped
  /// (set once the loop has exited — answers are undeliverable by then).
  std::atomic<bool> abandon_completions_{false};

  mutable Mutex pending_mutex_;
  CondVar pending_ready_;
  std::deque<PendingResponse> pending_ TREEWM_GUARDED_BY(pending_mutex_);
  bool collector_stop_ TREEWM_GUARDED_BY(pending_mutex_) = false;

  mutable Mutex completed_mutex_;
  std::deque<CompletedResponse> completed_ TREEWM_GUARDED_BY(completed_mutex_);

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_shed_{0};
  std::atomic<uint64_t> accept_failures_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> idle_closed_{0};
  std::atomic<uint64_t> closed_mid_frame_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> transport_errors_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> pings_{0};
  std::atomic<uint64_t> requests_received_{0};
  std::atomic<uint64_t> models_requests_{0};
  std::atomic<uint64_t> responses_sent_{0};
  std::atomic<uint64_t> refusals_sent_{0};
  std::atomic<uint64_t> responses_dropped_{0};
  std::atomic<uint64_t> active_connections_{0};
};

}  // namespace treewm::serve::wire

#endif  // TREEWM_SERVE_WIRE_SOCKET_SERVER_H_
