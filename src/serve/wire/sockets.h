// Thin RAII + Status seam over the POSIX socket calls the wire layer uses.
//
// All socket I/O in src/serve/wire/ goes through these helpers for two
// reasons: (1) errno handling and EINTR retries live in exactly one place,
// mapped to typed Statuses (transport failures are IoError, programmer
// errors InvalidArgument); (2) the FaultInjection registry gains wire-level
// sites here, so tests can force the network weather that never happens on
// loopback:
//
//   serve.wire.accept.fail   accept succeeds at the syscall level but the
//                            connection is immediately closed (client sees a
//                            reset — the kernel-backlog flake)
//   serve.wire.read.short    a read is truncated to 1 byte (forces frame
//                            reassembly across arbitrary split points)
//   serve.wire.read.reset    a read fails as if the peer reset (ECONNRESET)
//   serve.wire.write.short   a write is truncated to 1 byte (forces the
//                            pending-output buffering path)
//
// ("serve.wire.frame.corrupt" lives in frame.cc — corruption is a framing
// event, not a syscall event.) Sites are hit by whichever side of a
// loopback test reads/writes through the seam; schedules therefore perturb
// both client and server, which is exactly what the determinism matrix in
// tests/test_wire.cc wants to survive.

#ifndef TREEWM_SERVE_WIRE_SOCKETS_H_
#define TREEWM_SERVE_WIRE_SOCKETS_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/status.h"

namespace treewm::serve::wire {

/// Move-only RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// Result of one read/write attempt on a (possibly nonblocking) fd.
struct IoOutcome {
  size_t bytes = 0;        ///< bytes transferred
  bool would_block = false;  ///< EAGAIN/EWOULDBLOCK (or rcv-timeout expiry)
  bool eof = false;        ///< orderly peer close (reads only)
};

/// Creates a loopback TCP listener on `port` (0 = kernel-assigned),
/// nonblocking, SO_REUSEADDR, listening with `backlog`.
[[nodiscard]] Result<Fd> ListenTcpLoopback(uint16_t port, int backlog);

/// The port a listener (or connected socket) is bound to.
[[nodiscard]] Result<uint16_t> LocalPort(const Fd& fd);

/// Blocking loopback connect. `recv_timeout` > 0 sets SO_RCVTIMEO, so later
/// reads surface `would_block` once it expires.
[[nodiscard]] Result<Fd> ConnectTcpLoopback(
    uint16_t port, std::chrono::nanoseconds recv_timeout = {});

/// Accepts one pending connection from a nonblocking listener. An invalid
/// Fd with would_block=true means no connection was pending. Fault site
/// "serve.wire.accept.fail": the accepted connection is closed on the spot
/// and IoError returned — the server treats it as a transient accept flake.
struct AcceptOutcome {
  Fd fd;
  bool would_block = false;
};
[[nodiscard]] Result<AcceptOutcome> AcceptConnection(const Fd& listener);

[[nodiscard]] Status SetNonBlocking(const Fd& fd);

/// One read(2) attempt. Fault sites "serve.wire.read.short" (truncates the
/// request to 1 byte) and "serve.wire.read.reset" (fails with IoError as if
/// ECONNRESET). EINTR is retried internally.
[[nodiscard]] Result<IoOutcome> ReadSome(const Fd& fd, uint8_t* buf, size_t len);

/// One write(2) attempt (MSG_NOSIGNAL; a reset peer yields IoError, not
/// SIGPIPE). Fault site "serve.wire.write.short" truncates the request to
/// 1 byte, forcing callers through their pending-output path.
[[nodiscard]] Result<IoOutcome> WriteSome(const Fd& fd, const uint8_t* buf,
                                          size_t len);

/// Nonblocking self-pipe for waking a poll loop: {read end, write end}.
[[nodiscard]] Result<std::pair<Fd, Fd>> MakeWakePipe();

/// Best-effort single-byte write to a wake pipe (full pipe is fine — the
/// loop is already due to wake).
void SignalWakePipe(const Fd& write_end);

/// Drains a nonblocking wake pipe's read end.
void DrainWakePipe(const Fd& read_end);

/// True when `status` looks like a peer reset / broken transport — the
/// class of failure a client may transparently reconnect-and-retry, since
/// predictions are pure functions of the feature vector (idempotent).
bool IsTransportError(const Status& status);

}  // namespace treewm::serve::wire

#endif  // TREEWM_SERVE_WIRE_SOCKETS_H_
