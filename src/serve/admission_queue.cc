#include "serve/admission_queue.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace treewm::serve {

AdmissionQueue::AdmissionQueue(AdmissionQueueOptions options)
    : options_([&] {
        AdmissionQueueOptions o = options;
        o.capacity = std::max<size_t>(1, o.capacity);
        return o;
      }()),
      clock_(options.clock != nullptr ? options.clock : Clock::System()) {}

Status AdmissionQueue::Push(QueuedRequest item) {
  if (TREEWM_FAULT_FIRED("serve.admission.full")) {
    MutexLock lock(&mutex_);
    ++stats_.rejected_full;
    return Status::ResourceExhausted("admission queue full (injected)");
  }
  {
    MutexLock lock(&mutex_);
    if (shutting_down_) {
      ++stats_.rejected_shutdown;
      return Status::FailedPrecondition("serving front-end is shutting down");
    }
    // Shedding outranks the overflow policy: past the high-water mark even a
    // blocking producer is turned away immediately — waiting would only add
    // latency to a request that is already late.
    if (options_.shed_high_water > 0 && items_.size() >= options_.shed_high_water) {
      ++stats_.rejected_shed;
      return Status::ResourceExhausted(
          StrFormat("load shed: queue depth %zu at high-water %zu", items_.size(),
                    options_.shed_high_water));
    }
    if (items_.size() >= options_.capacity) {
      if (options_.policy == OverflowPolicy::kReject) {
        ++stats_.rejected_full;
        return Status::ResourceExhausted(
            StrFormat("admission queue full (capacity %zu)", options_.capacity));
      }
      // kBlockWithDeadline: wait for a slot until the request's own deadline.
      while (items_.size() >= options_.capacity && !shutting_down_) {
        if (item.deadline == kNoDeadline) {
          space_ready_.Wait(lock);
          continue;
        }
        const auto now = clock_->Now();
        if (now >= item.deadline) {
          ++stats_.expired_blocking;
          return Status::DeadlineExceeded("admission queue full past request deadline");
        }
        // discard ok: timeout vs notify is re-derived from the loop condition
        (void)space_ready_.WaitFor(lock, item.deadline - now);
      }
      if (shutting_down_) {
        ++stats_.rejected_shutdown;
        return Status::FailedPrecondition("serving front-end is shutting down");
      }
    }
    items_.push_back(std::move(item));
    ++stats_.pushed;
    stats_.high_water = std::max<uint64_t>(stats_.high_water, items_.size());
  }
  item_ready_.NotifyOne();
  return Status::OK();
}

bool AdmissionQueue::PopLocked(QueuedRequest* out) {
  if (items_.empty()) return false;
  *out = std::move(items_.front());
  items_.pop_front();
  ++stats_.popped;
  return true;
}

bool AdmissionQueue::Pop(QueuedRequest* out) {
  bool popped = false;
  {
    MutexLock lock(&mutex_);
    while (!shutting_down_ && items_.empty()) item_ready_.Wait(lock);
    popped = PopLocked(out);
  }
  if (popped) space_ready_.NotifyOne();
  return popped;
}

bool AdmissionQueue::PopUntil(QueuedRequest* out, std::chrono::nanoseconds until) {
  bool popped = false;
  {
    MutexLock lock(&mutex_);
    while (items_.empty() && !shutting_down_) {
      if (until == kNoDeadline) {
        item_ready_.Wait(lock);
        continue;
      }
      const auto now = clock_->Now();
      if (now >= until) return false;
      // discard ok: timeout vs notify is re-derived from the loop condition
      (void)item_ready_.WaitFor(lock, until - now);
    }
    popped = PopLocked(out);
  }
  if (popped) space_ready_.NotifyOne();
  return popped;
}

bool AdmissionQueue::TryPop(QueuedRequest* out) {
  bool popped = false;
  {
    MutexLock lock(&mutex_);
    popped = PopLocked(out);
  }
  if (popped) space_ready_.NotifyOne();
  return popped;
}

void AdmissionQueue::Shutdown() {
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
  }
  item_ready_.NotifyAll();
  space_ready_.NotifyAll();
}

bool AdmissionQueue::IsShutdown() const {
  MutexLock lock(&mutex_);
  return shutting_down_;
}

size_t AdmissionQueue::depth() const {
  MutexLock lock(&mutex_);
  return items_.size();
}

AdmissionQueueStats AdmissionQueue::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

}  // namespace treewm::serve
