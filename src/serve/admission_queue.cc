#include "serve/admission_queue.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace treewm::serve {

AdmissionQueue::AdmissionQueue(AdmissionQueueOptions options)
    : options_([&] {
        AdmissionQueueOptions o = options;
        o.capacity = std::max<size_t>(1, o.capacity);
        return o;
      }()),
      clock_(options.clock != nullptr ? options.clock : Clock::System()) {}

Status AdmissionQueue::Push(QueuedRequest item) {
  if (TREEWM_FAULT_FIRED("serve.admission.full")) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rejected_full;
    return Status::ResourceExhausted("admission queue full (injected)");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (shutting_down_) {
    ++stats_.rejected_shutdown;
    return Status::FailedPrecondition("serving front-end is shutting down");
  }
  // Shedding outranks the overflow policy: past the high-water mark even a
  // blocking producer is turned away immediately — waiting would only add
  // latency to a request that is already late.
  if (options_.shed_high_water > 0 && items_.size() >= options_.shed_high_water) {
    ++stats_.rejected_shed;
    return Status::ResourceExhausted(
        StrFormat("load shed: queue depth %zu at high-water %zu", items_.size(),
                  options_.shed_high_water));
  }
  if (items_.size() >= options_.capacity) {
    if (options_.policy == OverflowPolicy::kReject) {
      ++stats_.rejected_full;
      return Status::ResourceExhausted(
          StrFormat("admission queue full (capacity %zu)", options_.capacity));
    }
    // kBlockWithDeadline: wait for a slot until the request's own deadline.
    while (items_.size() >= options_.capacity && !shutting_down_) {
      if (item.deadline == kNoDeadline) {
        space_ready_.wait(lock);
        continue;
      }
      const auto now = clock_->Now();
      if (now >= item.deadline) {
        ++stats_.expired_blocking;
        return Status::DeadlineExceeded("admission queue full past request deadline");
      }
      space_ready_.wait_for(lock, item.deadline - now);
    }
    if (shutting_down_) {
      ++stats_.rejected_shutdown;
      return Status::FailedPrecondition("serving front-end is shutting down");
    }
  }
  items_.push_back(std::move(item));
  ++stats_.pushed;
  stats_.high_water = std::max<uint64_t>(stats_.high_water, items_.size());
  lock.unlock();
  item_ready_.notify_one();
  return Status::OK();
}

bool AdmissionQueue::PopLocked(QueuedRequest* out,
                               std::unique_lock<std::mutex>& lock) {
  if (items_.empty()) return false;
  *out = std::move(items_.front());
  items_.pop_front();
  ++stats_.popped;
  lock.unlock();
  space_ready_.notify_one();
  return true;
}

bool AdmissionQueue::Pop(QueuedRequest* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  item_ready_.wait(lock, [this] { return shutting_down_ || !items_.empty(); });
  return PopLocked(out, lock);
}

bool AdmissionQueue::PopUntil(QueuedRequest* out, std::chrono::nanoseconds until) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (items_.empty() && !shutting_down_) {
    if (until == kNoDeadline) {
      item_ready_.wait(lock);
      continue;
    }
    const auto now = clock_->Now();
    if (now >= until) return false;
    item_ready_.wait_for(lock, until - now);
  }
  return PopLocked(out, lock);
}

bool AdmissionQueue::TryPop(QueuedRequest* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  return PopLocked(out, lock);
}

void AdmissionQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  item_ready_.notify_all();
  space_ready_.notify_all();
}

bool AdmissionQueue::IsShutdown() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutting_down_;
}

size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

AdmissionQueueStats AdmissionQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace treewm::serve
