#include "serve/retry.h"

#include <algorithm>
#include <cmath>

namespace treewm::serve {

Backoff::Backoff(const RetryPolicy& policy) : policy_(policy), rng_(policy.seed) {
  policy_.max_attempts = std::max<size_t>(1, policy_.max_attempts);
  policy_.multiplier = std::max(1.0, policy_.multiplier);
  policy_.jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  if (policy_.initial_backoff.count() < 0) policy_.initial_backoff = {};
  if (policy_.max_backoff < policy_.initial_backoff) {
    policy_.max_backoff = policy_.initial_backoff;
  }
}

std::optional<std::chrono::nanoseconds> Backoff::Next() {
  if (retries_ + 1 >= policy_.max_attempts) return std::nullopt;
  const double base = static_cast<double>(policy_.initial_backoff.count()) *
                      std::pow(policy_.multiplier, static_cast<double>(retries_));
  const double capped =
      std::min(base, static_cast<double>(policy_.max_backoff.count()));
  // One RNG draw per retry even when jitter is 0 keeps the stream position
  // (and thus any later jittered schedule) independent of the jitter knob.
  const double scale = 1.0 - policy_.jitter + 2.0 * policy_.jitter * rng_.UniformReal();
  ++retries_;
  return std::chrono::nanoseconds(
      static_cast<int64_t>(std::llround(capped * scale)));
}

void Backoff::Reset() {
  rng_ = Rng(policy_.seed);
  retries_ = 0;
}

bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted;
}

}  // namespace treewm::serve
