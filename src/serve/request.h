// Request/response shapes shared by the serving front-end components.
//
// A request is ONE instance (the single-query shape millions of clients
// send); the front-end coalesces admitted requests into row blocks for
// BatchPredictor. Each request carries its absolute deadline and the
// promise its result is delivered through — whoever drops a request MUST
// complete the promise with a typed Status (fail closed, never silently).

#ifndef TREEWM_SERVE_REQUEST_H_
#define TREEWM_SERVE_REQUEST_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "common/status.h"

namespace treewm::serve {

/// Sentinel for "no deadline".
inline constexpr std::chrono::nanoseconds kNoDeadline =
    std::chrono::nanoseconds::max();

/// Per-request knobs supplied by the client.
struct RequestOptions {
  /// Relative deadline; the front-end checks it at admission, dispatch and
  /// completion. Zero (default) = no deadline.
  std::chrono::nanoseconds timeout{0};
};

/// The served answer for one instance: the majority-vote label plus the
/// per-tree vote sequence (the `predict.all` shape watermark verification
/// scores on). Values are bit-identical regardless of how the request was
/// batched, which threads ran it, or which faults fired around it.
struct PredictResult {
  int label = 0;                ///< majority vote (±1, ties -> +1)
  std::vector<int8_t> votes;    ///< per-tree ±1 votes
};

/// One admitted in-flight request (internal to the serving layer).
struct QueuedRequest {
  uint64_t id = 0;
  std::vector<float> features;
  /// Absolute deadline on the front-end's clock (kNoDeadline = none).
  std::chrono::nanoseconds deadline = kNoDeadline;
  /// Admission timestamp; the batcher's flush delay counts from here.
  std::chrono::nanoseconds admitted_at{0};
  /// Completion channel; set exactly once with the result or a typed error.
  std::shared_ptr<std::promise<Result<PredictResult>>> promise;
};

}  // namespace treewm::serve

#endif  // TREEWM_SERVE_REQUEST_H_
