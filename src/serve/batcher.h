// Deadline/size-triggered request coalescing.
//
// Single-instance requests amortize the per-batch costs (FloatKey row
// transform, tree-arena streaming, pool fan-out) only when packed into row
// blocks. The batcher holds admitted requests until either max_batch_rows
// are pending or the OLDEST pending request has waited max_batch_delay
// since admission — whichever comes first — bounding the latency a request
// can pay waiting for co-travelers.
//
// The batcher is passive and single-threaded by design: the dispatcher (or
// a test) calls Add/ShouldFlush/TakeBatch and owns all timing decisions
// through the injected Clock, so every deadline path is unit-testable with
// a FakeClock and zero sleeps. Batch composition can never change results:
// BatchPredictor's per-row outputs are bit-exact and row-independent, so
// packing is purely a throughput/latency dial.
//
// Concurrency: the batcher carries no lock of its own — it is an
// EXTERNALLY guarded capability. ServingFrontEnd declares its instance
// `Batcher batcher_ TREEWM_GUARDED_BY(dispatch_mutex_)`, so clang's
// thread-safety analysis proves every access (dispatcher loop, manual
// Pump, shutdown drain) happens under that one mutex. A standalone Batcher
// (unit tests) needs no lock because there is exactly one driver.

#ifndef TREEWM_SERVE_BATCHER_H_
#define TREEWM_SERVE_BATCHER_H_

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "common/clock.h"
#include "serve/request.h"

namespace treewm::serve {

struct BatcherOptions {
  /// Flush as soon as this many requests are pending (>= 1).
  size_t max_batch_rows = 64;
  /// Flush once the oldest pending request has waited this long since its
  /// admission timestamp. Zero = flush immediately whenever non-empty.
  std::chrono::nanoseconds max_batch_delay = std::chrono::microseconds(500);
};

/// FIFO request coalescer. Not thread-safe: owned and driven by exactly one
/// dispatcher.
class Batcher {
 public:
  explicit Batcher(BatcherOptions options);

  /// Queues one admitted request.
  void Add(QueuedRequest request);

  size_t pending() const { return pending_.size(); }
  bool empty() const { return pending_.empty(); }

  /// True when a batch is due at `now`: max_batch_rows pending, or the
  /// oldest request's admission is older than the effective delay.
  bool ShouldFlush(std::chrono::nanoseconds now) const;

  /// Absolute time at which the pending batch becomes due even without new
  /// arrivals (kNoDeadline when empty) — what the dispatcher sleeps until.
  std::chrono::nanoseconds NextFlushAt() const;

  /// Removes and returns up to max_batch_rows requests in admission order.
  std::vector<QueuedRequest> TakeBatch();

  /// Graceful-degradation dial: overrides max_batch_delay (typically with 0
  /// while the admission queue is over its shed threshold, so batches fill
  /// from the backlog instead of waiting for the clock). nullopt restores
  /// the configured delay.
  void set_delay_override(std::optional<std::chrono::nanoseconds> delay) {
    delay_override_ = delay;
  }

  /// The delay currently in force (override or configured).
  std::chrono::nanoseconds effective_delay() const {
    return delay_override_.value_or(options_.max_batch_delay);
  }

  const BatcherOptions& options() const { return options_; }

 private:
  BatcherOptions options_;
  std::optional<std::chrono::nanoseconds> delay_override_;
  std::deque<QueuedRequest> pending_;
};

}  // namespace treewm::serve

#endif  // TREEWM_SERVE_BATCHER_H_
