#include "serve/batcher.h"

#include <algorithm>

namespace treewm::serve {

Batcher::Batcher(BatcherOptions options) : options_(options) {
  options_.max_batch_rows = std::max<size_t>(1, options_.max_batch_rows);
}

void Batcher::Add(QueuedRequest request) {
  pending_.push_back(std::move(request));
}

bool Batcher::ShouldFlush(std::chrono::nanoseconds now) const {
  if (pending_.empty()) return false;
  if (pending_.size() >= options_.max_batch_rows) return true;
  return now >= NextFlushAt();
}

std::chrono::nanoseconds Batcher::NextFlushAt() const {
  if (pending_.empty()) return kNoDeadline;
  // The FIFO front is the oldest admission; saturate instead of overflowing
  // when a request has no meaningful admission time.
  const auto delay = effective_delay();
  const auto oldest = pending_.front().admitted_at;
  if (kNoDeadline - delay < oldest) return kNoDeadline;
  return oldest + delay;
}

std::vector<QueuedRequest> Batcher::TakeBatch() {
  const size_t n = std::min(pending_.size(), options_.max_batch_rows);
  std::vector<QueuedRequest> batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return batch;
}

}  // namespace treewm::serve
