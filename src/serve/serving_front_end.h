// In-process verification/prediction serving front-end.
//
// Accepts single-instance requests, coalesces them into row blocks for the
// batched flat-ensemble engine, and returns per-request results — wrapped
// in a robustness envelope:
//
//   * bounded admission (AdmissionQueue): every request gets a slot or a
//     typed Status (ResourceExhausted / DeadlineExceeded /
//     FailedPrecondition) — no unbounded queues, no silent drops;
//   * per-request deadlines checked at admission, at dispatch (expired
//     requests are answered DeadlineExceeded instead of wasting a batch
//     slot) and at completion;
//   * load shedding + graceful degradation: past the queue's shed
//     high-water mark new arrivals are rejected AND the batcher's flush
//     delay collapses to zero so batches fill from the backlog;
//   * drain-on-shutdown: Shutdown() stops admission and answers every
//     in-flight request before returning — each accepted promise is
//     completed exactly once.
//
// Determinism contract: a request's successful PredictResult depends only
// on its feature vector — never on batch packing, thread schedule, queue
// depth, or armed faults — because BatchPredictor's per-row outputs are
// bit-exact and row-independent. Requests the envelope refuses fail closed
// with a typed Status. tests/test_serve.cc asserts this across thread
// counts × batch shapes × fault schedules.

#ifndef TREEWM_SERVE_SERVING_FRONT_END_H_
#define TREEWM_SERVE_SERVING_FRONT_END_H_

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "common/annotations.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "predict/batch_predictor.h"
#include "serve/admission_queue.h"
#include "serve/batcher.h"
#include "serve/request.h"

namespace treewm::serve {

struct ServingOptions {
  /// Admission bounds + backpressure policy. queue.clock is overridden by
  /// `clock` below so the whole front-end shares one time source.
  AdmissionQueueOptions queue;
  /// Batch coalescing shape.
  BatcherOptions batch;
  /// Queue depth at which the batcher's flush delay collapses to zero
  /// (0 = use queue.shed_high_water; both 0 disables degradation).
  size_t degrade_depth = 0;
  /// Kernel/tiling/threading for the batched predictor. Thread count only
  /// affects speed, never results.
  predict::BatchOptions predictor;
  /// Time source (nullptr = system clock). With a FakeClock, construct with
  /// start_dispatcher = false and drive Pump() manually — the background
  /// dispatcher parks on real condition variables.
  Clock* clock = nullptr;
  /// Spawn the background dispatcher thread. false = manual mode: the test
  /// (or embedding event loop) calls Pump() itself.
  bool start_dispatcher = true;
};

/// Point-in-time counters snapshot (all requests accounted: admitted ==
/// completed_ok + expired_* once drained; submitted == admitted + rejected).
struct ServingStats {
  uint64_t submitted = 0;            ///< SubmitPredict calls
  uint64_t admitted = 0;             ///< accepted into the queue
  uint64_t completed_ok = 0;         ///< answered with a PredictResult
  uint64_t rejected_full = 0;        ///< queue at capacity (ResourceExhausted)
  uint64_t rejected_shed = 0;        ///< over shed high-water (ResourceExhausted)
  uint64_t rejected_shutdown = 0;    ///< after Shutdown (FailedPrecondition)
  uint64_t rejected_invalid = 0;     ///< bad feature count (InvalidArgument)
  uint64_t expired_admission = 0;    ///< dead on arrival / blocking push timeout
  uint64_t expired_dispatch = 0;     ///< expired waiting in queue/batcher
  uint64_t expired_completion = 0;   ///< expired during batch compute
  uint64_t batches = 0;              ///< batches dispatched to the predictor
  uint64_t batched_rows = 0;         ///< rows across those batches
  uint64_t degraded_flushes = 0;     ///< flushes taken with delay collapsed
  uint64_t queue_high_water = 0;     ///< max admission-queue depth observed
  uint64_t max_batch_rows = 0;       ///< largest batch dispatched
};

/// The in-process serving front-end over one immutable ensemble image.
class ServingFrontEnd {
 public:
  /// Validates options and the ensemble (classification only — per-tree ±1
  /// votes are what verification consumes) and starts the dispatcher.
  [[nodiscard]] static Result<std::unique_ptr<ServingFrontEnd>> Create(
      std::shared_ptr<const predict::FlatEnsemble> ensemble,
      ServingOptions options);

  /// Shuts down (drains) if the caller has not already.
  ~ServingFrontEnd();

  ServingFrontEnd(const ServingFrontEnd&) = delete;
  ServingFrontEnd& operator=(const ServingFrontEnd&) = delete;

  /// Submits one instance. Returns a future that resolves to the result or
  /// a typed error; admission failures resolve immediately. Thread-safe.
  std::future<Result<PredictResult>> SubmitPredict(std::span<const float> x,
                                                   const RequestOptions& options = {});

  /// Blocking convenience wrapper over SubmitPredict.
  [[nodiscard]] Result<PredictResult> Predict(std::span<const float> x,
                                const RequestOptions& options = {});

  /// Stops admission, drains the queue and batcher (every accepted request
  /// is answered), and joins the dispatcher. Idempotent.
  void Shutdown() TREEWM_EXCLUDES(dispatch_mutex_);

  /// Manual-mode pump: moves every currently queued request into the
  /// batcher and flushes while a batch is due (always flushes a non-empty
  /// batcher when `force_flush`). Returns the number of requests answered.
  /// Only meaningful with start_dispatcher = false.
  size_t Pump(bool force_flush = false) TREEWM_EXCLUDES(dispatch_mutex_);

  ServingStats stats() const;

  size_t num_features() const { return ensemble_->num_features(); }
  size_t num_trees() const { return ensemble_->num_trees(); }

 private:
  ServingFrontEnd(std::shared_ptr<const predict::FlatEnsemble> ensemble,
                  ServingOptions options);

  void DispatcherLoop() TREEWM_EXCLUDES(dispatch_mutex_);
  /// Applies the degradation dial from the current queue depth.
  void UpdateDegradationLocked() TREEWM_REQUIRES(dispatch_mutex_);
  /// Dispatches one batch from the batcher: expires stale requests, runs
  /// the predictor, completes every promise. Returns requests answered.
  size_t FlushBatchLocked() TREEWM_REQUIRES(dispatch_mutex_);

  std::shared_ptr<const predict::FlatEnsemble> ensemble_;
  ServingOptions options_;
  Clock* clock_;
  predict::BatchPredictor predictor_;
  AdmissionQueue queue_;

  /// Serializes all batcher access. By design exactly one driver runs at a
  /// time (the dispatcher thread, OR manual Pump()/Shutdown-drain); the
  /// mutex makes that contract explicit to the analysis — and makes even a
  /// misuse (concurrent Pump calls) safe instead of a data race. Never held
  /// while blocking on the admission queue.
  mutable Mutex dispatch_mutex_;
  Batcher batcher_ TREEWM_GUARDED_BY(dispatch_mutex_);

  /// Hosts DispatcherLoop (1 worker); null in manual (Pump) mode. A pool,
  /// not a naked std::thread: drain-on-shutdown is the join protocol.
  std::unique_ptr<ThreadPool> dispatcher_pool_;
  std::atomic<bool> shutdown_started_{false};
  std::atomic<uint64_t> next_id_{1};

  // Counters not already tracked by the queue (see stats()).
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_invalid_{0};
  std::atomic<uint64_t> expired_admission_{0};
  std::atomic<uint64_t> expired_dispatch_{0};
  std::atomic<uint64_t> expired_completion_{0};
  std::atomic<uint64_t> completed_ok_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_rows_{0};
  std::atomic<uint64_t> degraded_flushes_{0};
  std::atomic<uint64_t> max_batch_rows_{0};
};

}  // namespace treewm::serve

#endif  // TREEWM_SERVE_SERVING_FRONT_END_H_
