#include "serve/serving_front_end.h"

#include <algorithm>
#include <utility>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "data/dataset.h"

namespace treewm::serve {

Result<std::unique_ptr<ServingFrontEnd>> ServingFrontEnd::Create(
    std::shared_ptr<const predict::FlatEnsemble> ensemble,
    ServingOptions options) {
  if (ensemble == nullptr) {
    return Status::InvalidArgument("serving front-end needs an ensemble");
  }
  if (ensemble->is_regression()) {
    return Status::InvalidArgument(
        "serving front-end serves classification ensembles (per-tree votes); "
        "got a regression ensemble");
  }
  if (ensemble->num_trees() == 0 || ensemble->num_features() == 0) {
    return Status::InvalidArgument("ensemble has no trees or no features");
  }
  if (options.queue.shed_high_water > options.queue.capacity) {
    return Status::InvalidArgument("shed_high_water exceeds queue capacity");
  }
  return std::unique_ptr<ServingFrontEnd>(
      new ServingFrontEnd(std::move(ensemble), std::move(options)));
}

ServingFrontEnd::ServingFrontEnd(
    std::shared_ptr<const predict::FlatEnsemble> ensemble, ServingOptions options)
    : ensemble_(std::move(ensemble)),
      options_([&] {
        ServingOptions o = std::move(options);
        if (o.clock == nullptr) o.clock = Clock::System();
        o.queue.clock = o.clock;  // one time source for the whole front-end
        if (o.degrade_depth == 0) o.degrade_depth = o.queue.shed_high_water;
        return o;
      }()),
      clock_(options_.clock),
      predictor_(ensemble_, options_.predictor),
      queue_(options_.queue),
      batcher_(options_.batch) {
  if (options_.start_dispatcher) {
    dispatcher_pool_ = std::make_unique<ThreadPool>(1);
    Status submitted = dispatcher_pool_->Submit([this] { DispatcherLoop(); });
    if (!submitted.ok()) {
      // A fresh 1-thread pool only rejects under an injected fault; fall
      // back to manual (Pump) mode rather than losing the dispatcher
      // silently — Shutdown() still drains every accepted request.
      LogWarning("serve: dispatcher submit rejected, falling back to manual mode: " +
                 submitted.ToString());
      dispatcher_pool_.reset();
    }
  }
}

ServingFrontEnd::~ServingFrontEnd() { Shutdown(); }

std::future<Result<PredictResult>> ServingFrontEnd::SubmitPredict(
    std::span<const float> x, const RequestOptions& request_options) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  auto promise = std::make_shared<std::promise<Result<PredictResult>>>();
  std::future<Result<PredictResult>> future = promise->get_future();

  if (x.size() != ensemble_->num_features()) {
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    promise->set_value(Status::InvalidArgument(
        "request has " + std::to_string(x.size()) + " features, model expects " +
        std::to_string(ensemble_->num_features())));
    return future;
  }

  const auto now = clock_->Now();
  QueuedRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.features.assign(x.begin(), x.end());
  request.deadline =
      request_options.timeout.count() > 0 ? now + request_options.timeout : kNoDeadline;
  request.admitted_at = now;
  request.promise = promise;

  Status admitted = queue_.Push(std::move(request));
  if (!admitted.ok()) {
    // Rejections arrive at traffic rate under overload — rate-limit the log
    // so reporting the shed never becomes the bottleneck being reported.
    TREEWM_LOG_EVERY_N(LogLevel::kWarning, 256,
                       "serve: admission rejected: " + admitted.ToString());
    promise->set_value(std::move(admitted));
  }
  return future;
}

Result<PredictResult> ServingFrontEnd::Predict(std::span<const float> x,
                                               const RequestOptions& options) {
  return SubmitPredict(x, options).get();
}

void ServingFrontEnd::UpdateDegradationLocked() {
  if (options_.degrade_depth == 0) return;
  if (queue_.depth() >= options_.degrade_depth) {
    batcher_.set_delay_override(std::chrono::nanoseconds{0});
  } else {
    batcher_.set_delay_override(std::nullopt);
  }
}

size_t ServingFrontEnd::FlushBatchLocked() {
  const bool degraded =
      batcher_.effective_delay() != batcher_.options().max_batch_delay;
  std::vector<QueuedRequest> batch = batcher_.TakeBatch();
  if (batch.empty()) return 0;
  if (degraded) degraded_flushes_.fetch_add(1, std::memory_order_relaxed);

  // Deadline check at dispatch: a request that already expired waiting in
  // the queue/batcher fails closed instead of occupying a batch slot.
  auto now = clock_->Now();
  std::vector<QueuedRequest> live;
  live.reserve(batch.size());
  size_t answered = 0;
  for (QueuedRequest& request : batch) {
    if (request.deadline != kNoDeadline && now >= request.deadline) {
      expired_dispatch_.fetch_add(1, std::memory_order_relaxed);
      TREEWM_LOG_EVERY_N(LogLevel::kWarning, 256,
                         "serve: request expired before dispatch");
      request.promise->set_value(
          Status::DeadlineExceeded("deadline expired before dispatch"));
      ++answered;
    } else {
      live.push_back(std::move(request));
    }
  }
  if (live.empty()) return answered;

  // Fault site: stall between batch formation and the predictor call —
  // where deadline-at-completion and mid-batch-shutdown races live.
  // discard ok: the stall's side effect is the point; firing is not an error
  (void)TREEWM_FAULT_FIRED("serve.batch.stall");

  data::Dataset rows(ensemble_->num_features());
  rows.Reserve(live.size());
  for (const QueuedRequest& request : live) {
    // Feature count was validated at submit; the label is a placeholder
    // (prediction never reads it).
    // discard ok: AddRow only fails on a feature-count mismatch, checked at
    // submit against the same immutable ensemble
    (void)rows.AddRow(request.features, data::kPositive);
  }
  const predict::VoteMatrix votes = predictor_.PredictAllVotes(rows);

  now = clock_->Now();
  for (size_t i = 0; i < live.size(); ++i) {
    QueuedRequest& request = live[i];
    if (request.deadline != kNoDeadline && now >= request.deadline) {
      expired_completion_.fetch_add(1, std::memory_order_relaxed);
      TREEWM_LOG_EVERY_N(LogLevel::kWarning, 256,
                         "serve: request expired during batch compute");
      request.promise->set_value(
          Status::DeadlineExceeded("deadline expired during batch compute"));
      continue;
    }
    const std::span<const int8_t> row = votes.row(i);
    PredictResult result;
    result.votes.assign(row.begin(), row.end());
    int sum = 0;
    for (int8_t v : row) sum += v;
    result.label = sum >= 0 ? +1 : -1;  // same tie rule as PredictLabels
    request.promise->set_value(std::move(result));
    completed_ok_.fetch_add(1, std::memory_order_relaxed);
  }
  answered += live.size();
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_rows_.fetch_add(live.size(), std::memory_order_relaxed);
  uint64_t seen = max_batch_rows_.load(std::memory_order_relaxed);
  while (live.size() > seen &&
         !max_batch_rows_.compare_exchange_weak(seen, live.size(),
                                                std::memory_order_relaxed)) {
  }
  return answered;
}

void ServingFrontEnd::DispatcherLoop() {
  while (true) {
    std::chrono::nanoseconds next_flush;
    {
      MutexLock lock(&dispatch_mutex_);
      UpdateDegradationLocked();
      if (batcher_.ShouldFlush(clock_->Now())) {
        FlushBatchLocked();
        continue;
      }
      next_flush = batcher_.NextFlushAt();
    }
    // Block on the queue WITHOUT dispatch_mutex_: admission must never wait
    // behind a batch in flight.
    QueuedRequest request;
    if (queue_.PopUntil(&request, next_flush)) {
      MutexLock lock(&dispatch_mutex_);
      batcher_.Add(std::move(request));
      continue;
    }
    // Woke without an item: either the pending batch came due (handled at
    // the top of the loop) or the queue is shut down and drained.
    if (queue_.IsShutdown() && queue_.depth() == 0) {
      MutexLock lock(&dispatch_mutex_);
      while (!batcher_.empty()) FlushBatchLocked();
      return;
    }
  }
}

void ServingFrontEnd::Shutdown() {
  bool expected = false;
  if (!shutdown_started_.compare_exchange_strong(expected, true)) return;
  queue_.Shutdown();
  if (dispatcher_pool_ != nullptr) {
    // Drain-on-shutdown joins the pool only after DispatcherLoop returns,
    // and the loop exits once the queue is shut down and drained.
    dispatcher_pool_->Shutdown();
  } else {
    // Manual mode: drain inline so every accepted promise is completed.
    MutexLock lock(&dispatch_mutex_);
    QueuedRequest request;
    while (queue_.TryPop(&request)) batcher_.Add(std::move(request));
    while (!batcher_.empty()) FlushBatchLocked();
  }
}

size_t ServingFrontEnd::Pump(bool force_flush) {
  MutexLock lock(&dispatch_mutex_);
  UpdateDegradationLocked();
  QueuedRequest request;
  while (queue_.TryPop(&request)) batcher_.Add(std::move(request));
  size_t answered = 0;
  while (batcher_.ShouldFlush(clock_->Now())) answered += FlushBatchLocked();
  if (force_flush) {
    while (!batcher_.empty()) answered += FlushBatchLocked();
  }
  return answered;
}

ServingStats ServingFrontEnd::stats() const {
  const AdmissionQueueStats queue_stats = queue_.stats();
  ServingStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = queue_stats.pushed;
  s.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  s.rejected_full = queue_stats.rejected_full;
  s.rejected_shed = queue_stats.rejected_shed;
  s.rejected_shutdown = queue_stats.rejected_shutdown;
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.expired_admission = queue_stats.expired_blocking;
  s.expired_dispatch = expired_dispatch_.load(std::memory_order_relaxed);
  s.expired_completion = expired_completion_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_rows = batched_rows_.load(std::memory_order_relaxed);
  s.degraded_flushes = degraded_flushes_.load(std::memory_order_relaxed);
  s.queue_high_water = queue_stats.high_water;
  s.max_batch_rows = max_batch_rows_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace treewm::serve
