// Bounded MPMC admission queue with explicit backpressure policy.
//
// The first robustness boundary of the serving front-end: every arriving
// request either gets a queue slot or a typed Status saying why not —
// ResourceExhausted when the queue is full (kReject) or past the shed
// high-water mark, DeadlineExceeded when a kBlockWithDeadline push timed
// out, FailedPrecondition after shutdown. Admission never blocks
// unboundedly and never drops an accepted item: Shutdown() closes admission
// but consumers drain every queued request (drain-on-shutdown), so each one
// is still answered.
//
// Load shedding starts BEFORE the queue is full: with shed_high_water set,
// pushes are rejected once depth reaches the mark, keeping queueing delay
// bounded under sustained overload instead of serving every request late
// (the classic full-queue collapse).
//
// Blocking operations (kBlockWithDeadline pushes, Pop waits) measure time
// on the injected Clock but park on real condition variables — use them
// with the SystemClock. Deadline arithmetic alone (expiry checks) is what
// FakeClock-driven unit tests exercise via TryPop/non-blocking paths.

#ifndef TREEWM_SERVE_ADMISSION_QUEUE_H_
#define TREEWM_SERVE_ADMISSION_QUEUE_H_

#include <chrono>
#include <cstdint>
#include <deque>

#include "common/annotations.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "serve/request.h"

namespace treewm::serve {

/// What Push does when the queue is at capacity.
enum class OverflowPolicy {
  /// Fail immediately with ResourceExhausted.
  kReject,
  /// Wait for space until the request's deadline, then DeadlineExceeded
  /// (requests without a deadline wait indefinitely).
  kBlockWithDeadline,
};

struct AdmissionQueueOptions {
  /// Maximum queued (not yet popped) requests; >= 1.
  size_t capacity = 1024;
  OverflowPolicy policy = OverflowPolicy::kReject;
  /// Queue depth at which load shedding begins (0 = disabled). Sheds are
  /// ResourceExhausted like full-queue rejects but counted separately.
  size_t shed_high_water = 0;
  /// Time source for deadline arithmetic (nullptr = system clock).
  Clock* clock = nullptr;
};

/// Counters snapshot; all monotonically increasing except high_water.
struct AdmissionQueueStats {
  uint64_t pushed = 0;             ///< accepted into the queue
  uint64_t rejected_full = 0;      ///< kReject policy, queue at capacity
  uint64_t rejected_shed = 0;      ///< over shed_high_water
  uint64_t rejected_shutdown = 0;  ///< push after Shutdown()
  uint64_t expired_blocking = 0;   ///< kBlockWithDeadline push timed out
  uint64_t popped = 0;
  uint64_t high_water = 0;         ///< max depth ever observed
};

/// Bounded FIFO of admitted requests; any number of producers/consumers.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionQueueOptions options);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits `item` under the configured backpressure policy. The item's own
  /// deadline bounds a kBlockWithDeadline wait. On a non-OK return the item
  /// was NOT admitted and the caller still owns its promise.
  /// Fault site "serve.admission.full": a fired hit behaves as an
  /// instantaneous full queue regardless of actual depth.
  [[nodiscard]] Status Push(QueuedRequest item) TREEWM_EXCLUDES(mutex_);

  /// Pops the oldest request, blocking until one is available or the queue
  /// is shut down AND drained (returns false — the consumer can stop).
  bool Pop(QueuedRequest* out) TREEWM_EXCLUDES(mutex_);

  /// Like Pop but gives up (returns false) once the clock passes `until`.
  /// A false return means timeout OR shutdown-and-drained; check
  /// IsShutdown()/depth() to distinguish.
  bool PopUntil(QueuedRequest* out, std::chrono::nanoseconds until)
      TREEWM_EXCLUDES(mutex_);

  /// Non-blocking Pop.
  bool TryPop(QueuedRequest* out) TREEWM_EXCLUDES(mutex_);

  /// Closes admission. Queued requests remain poppable; once empty, Pop
  /// returns false. Idempotent.
  void Shutdown() TREEWM_EXCLUDES(mutex_);

  bool IsShutdown() const TREEWM_EXCLUDES(mutex_);

  /// Current queue depth.
  size_t depth() const TREEWM_EXCLUDES(mutex_);

  AdmissionQueueStats stats() const TREEWM_EXCLUDES(mutex_);

 private:
  /// Pops the FIFO front into *out if non-empty. The caller notifies
  /// space_ready_ AFTER releasing the lock on a true return.
  bool PopLocked(QueuedRequest* out) TREEWM_REQUIRES(mutex_);

  const AdmissionQueueOptions options_;
  Clock* const clock_;

  mutable Mutex mutex_;
  CondVar item_ready_;
  CondVar space_ready_;
  std::deque<QueuedRequest> items_ TREEWM_GUARDED_BY(mutex_);
  bool shutting_down_ TREEWM_GUARDED_BY(mutex_) = false;
  AdmissionQueueStats stats_ TREEWM_GUARDED_BY(mutex_);
};

}  // namespace treewm::serve

#endif  // TREEWM_SERVE_ADMISSION_QUEUE_H_
