// Capped exponential backoff with jitter for serving clients.
//
// Shed and queue-full rejections (ResourceExhausted) are the front-end
// TELLING clients to back off; retrying them immediately re-creates the
// overload. This helper implements the standard discipline: exponential
// backoff with a cap, multiplicative jitter to decorrelate retry storms,
// and a hard attempt budget. Deadline/validation failures are not
// retryable — the request is dead or wrong, not unlucky.
//
// Determinism: the jitter stream comes from a seeded Rng and time flows
// through the injected Clock, so a retry schedule is reproducible
// bit-for-bit under FakeClock in tests (and instant — FakeClock's SleepFor
// advances instead of blocking).

#ifndef TREEWM_SERVE_RETRY_H_
#define TREEWM_SERVE_RETRY_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <utility>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"

namespace treewm::serve {

struct RetryPolicy {
  /// Total tries of the operation (first attempt included); >= 1.
  size_t max_attempts = 4;
  /// Backoff before the first retry.
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(1);
  /// Ceiling for the un-jittered backoff.
  std::chrono::nanoseconds max_backoff = std::chrono::milliseconds(100);
  /// Growth factor per retry (>= 1).
  double multiplier = 2.0;
  /// Backoff is scaled by a uniform draw from [1 - jitter, 1 + jitter];
  /// 0 disables jitter. Must be in [0, 1].
  double jitter = 0.25;
  /// Seed for the jitter stream.
  uint64_t seed = 0;
};

/// Deterministic backoff schedule generator for one operation.
class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy);

  /// The delay to sleep before the next retry, or nullopt when the attempt
  /// budget is spent. The k-th call returns jitter(min(initial * mult^k,
  /// max)) — identical for identical (policy, seed).
  std::optional<std::chrono::nanoseconds> Next();

  /// Restarts the schedule (same seed -> same delays again).
  void Reset();

  /// Retries consumed so far.
  size_t retries() const { return retries_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  size_t retries_ = 0;
};

/// True for errors a retry can fix: overload pushback (ResourceExhausted).
/// DeadlineExceeded/Timeout mean the caller's time budget is spent;
/// InvalidArgument/FailedPrecondition mean retrying cannot help.
bool IsRetryableStatus(const Status& status);

namespace internal {
inline const Status& StatusOf(const Status& status) { return status; }
template <typename T>
[[nodiscard]] Status StatusOf(const Result<T>& result) {
  return result.status();
}
}  // namespace internal

/// Like RetryWithBackoff below, but the caller chooses which failures are
/// worth another attempt via `retryable(status)`. Wire clients use this to
/// widen the default (overload pushback) with connection resets — transport
/// failures where the idempotent request may simply be resent — WITHOUT
/// widening it for anyone else: deadline and validation failures must stay
/// terminal everywhere.
template <typename Retryable, typename Fn>
auto RetryWithBackoffIf(const RetryPolicy& policy, Clock* clock,
                        Retryable&& retryable, Fn&& fn) -> decltype(fn()) {
  if (clock == nullptr) clock = Clock::System();
  Backoff backoff(policy);
  while (true) {
    auto outcome = fn();
    const Status status = internal::StatusOf(outcome);
    if (status.ok() || !retryable(status)) return outcome;
    const std::optional<std::chrono::nanoseconds> delay = backoff.Next();
    if (!delay.has_value()) return outcome;
    clock->SleepFor(*delay);
  }
}

/// Runs `fn` (returning Status or Result<T>) up to policy.max_attempts
/// times, sleeping the backoff schedule on `clock` between retryable
/// failures. Returns the last outcome.
template <typename Fn>
auto RetryWithBackoff(const RetryPolicy& policy, Clock* clock, Fn&& fn)
    -> decltype(fn()) {
  return RetryWithBackoffIf(
      policy, clock, [](const Status& s) { return IsRetryableStatus(s); },
      std::forward<Fn>(fn));
}

}  // namespace treewm::serve

#endif  // TREEWM_SERVE_RETRY_H_
