// Synthetic stand-ins for the paper's evaluation datasets.
//
// The paper evaluates on MNIST2-6 (13,866 × 784, 51%/49%), breast-cancer
// (569 × 30, 63%/37%) and a stratified 10,000-row subsample of ijcnn1
// (22 features, 10%/90%), all normalized to [0,1] (Table 1). The original
// data files are not available offline, so we generate datasets matching
// those statistics and the qualitative properties the experiments rely on
// (see DESIGN.md §1 for the substitution rationale):
//
//  * Mnist26Like — 28×28 grayscale stroke-rendered "2"-like vs "6"-like
//    digits with translation/intensity/pixel noise. High-dimensional, RF
//    accuracy ≈0.99, and perturbed instances can be visualised (Figure 5).
//  * BreastCancerLike — 30 correlated tabular features from two latent-factor
//    Gaussian classes, 63/37 imbalance, small n.
//  * Ijcnn1Like — 22 features, strongly imbalanced (10% positives), with a
//    rugged nonlinear decision surface that forces deep trees (the property
//    behind ijcnn1's forgery-hardness in §4.2.2).
//
// All generators are deterministic functions of the seed.

#ifndef TREEWM_DATA_SYNTHETIC_H_
#define TREEWM_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace treewm::data::synthetic {

/// Full-size row counts from Table 1 of the paper.
inline constexpr size_t kMnist26Rows = 13866;
inline constexpr size_t kBreastCancerRows = 569;
inline constexpr size_t kIjcnn1Rows = 10000;

/// 28×28 digit-like images, two classes ("2"-like = -1, "6"-like = +1),
/// 51%/49% positive/negative mix, pixels in [0,1].
Dataset MakeMnist26Like(uint64_t seed, size_t num_rows = kMnist26Rows);

/// 30 correlated tabular features, 63% positive / 37% negative, in [0,1].
Dataset MakeBreastCancerLike(uint64_t seed, size_t num_rows = kBreastCancerRows);

/// 22 features, 10% positive / 90% negative, rugged decision surface, [0,1].
Dataset MakeIjcnn1Like(uint64_t seed, size_t num_rows = kIjcnn1Rows);

/// Simple two-Gaussian blob problem — small, easy, for tests.
Dataset MakeBlobs(uint64_t seed, size_t num_rows, size_t num_features,
                  double class_separation = 2.0, double positive_fraction = 0.5);

/// MakeBlobs at million-row scale: bitwise-identical output to MakeBlobs for
/// the same (seed, rows, features, separation, fraction) — regression-tested
/// — but the storage is reserved up front and rows are generated into
/// `chunk_rows`-row blocks appended via Dataset::AppendBlock, so the hot
/// path pays no per-row validation or incremental reallocation.
Dataset MakeBlobsChunked(uint64_t seed, size_t num_rows, size_t num_features,
                         double class_separation = 2.0,
                         double positive_fraction = 0.5,
                         size_t chunk_rows = 65536);

/// XOR-like checkerboard over the first two features — needs depth ≥ 2 trees;
/// for tests of tree expressiveness.
Dataset MakeXor(uint64_t seed, size_t num_rows, size_t num_features = 2);

/// Names accepted by MakeByName: "mnist2-6", "breast-cancer", "ijcnn1".
std::vector<std::string> KnownDatasetNames();

/// Dispatch by paper dataset name; `num_rows` of 0 means the Table-1 size.
[[nodiscard]] Result<Dataset> MakeByName(const std::string& name, uint64_t seed, size_t num_rows = 0);

/// Renders a 28×28 instance as ASCII art (for Figure-5-style inspection).
/// `features.size()` must be 784.
std::string RenderImageAscii(const std::vector<float>& features);

}  // namespace treewm::data::synthetic

#endif  // TREEWM_DATA_SYNTHETIC_H_
