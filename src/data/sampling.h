// Dataset splitting and sampling utilities.
//
// Covers the paper's data handling: stratified train/test splits, the
// stratified subsample used to shrink ijcnn1 (§4), and the random trigger-set
// sampling of Algorithm 1 line 13.

#ifndef TREEWM_DATA_SAMPLING_H_
#define TREEWM_DATA_SAMPLING_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"

namespace treewm::data {

/// Index sets of a train/test partition.
struct SplitIndices {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Stratified split preserving the class ratio in both parts.
/// `test_fraction` in (0,1). Both parts are non-empty for any class that has
/// at least 2 members.
[[nodiscard]] Result<SplitIndices> StratifiedSplit(const Dataset& dataset, double test_fraction,
                                     Rng* rng);

/// Draws `k` rows preserving the class ratio (used to reduce ijcnn1).
[[nodiscard]] Result<std::vector<size_t>> StratifiedSubsample(const Dataset& dataset, size_t k,
                                                Rng* rng);

/// Uniform random sample of `k` distinct row indices — Algorithm 1's
/// Sample(D_train, k).
[[nodiscard]] Result<std::vector<size_t>> SampleTriggerIndices(const Dataset& dataset, size_t k,
                                                 Rng* rng);

/// Materializes a split into train/test datasets.
struct TrainTest {
  Dataset train;
  Dataset test;
};
[[nodiscard]] Result<TrainTest> MakeTrainTest(const Dataset& dataset, double test_fraction, Rng* rng);

}  // namespace treewm::data

#endif  // TREEWM_DATA_SAMPLING_H_
