// CSV import/export for Dataset.
//
// Format: one row per line, comma-separated floats, label in a designated
// column (default: last). Labels may be +1/-1 or 0/1 (0 maps to -1).

#ifndef TREEWM_DATA_CSV_H_
#define TREEWM_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace treewm::data {

/// Options controlling CSV parsing.
struct CsvOptions {
  /// If true, the first line is a header and is skipped.
  bool has_header = false;
  /// Column index holding the label; -1 means the last column.
  int label_column = -1;
};

/// Loads a dataset from `path`.
[[nodiscard]] Result<Dataset> LoadCsv(const std::string& path, const CsvOptions& options = {});

/// Parses a dataset from in-memory CSV `text`.
[[nodiscard]] Result<Dataset> ParseCsv(const std::string& text, const CsvOptions& options = {});

/// Writes `dataset` to `path` (features then label, no header).
[[nodiscard]] Status SaveCsv(const Dataset& dataset, const std::string& path);

}  // namespace treewm::data

#endif  // TREEWM_DATA_CSV_H_
