#include "data/dataset.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace treewm::data {

void Dataset::Reserve(size_t n) {
  values_.reserve(n * num_features_);
  labels_.reserve(n);
}

Status Dataset::AddRow(std::span<const float> features, int label) {
  if (features.size() != num_features_) {
    return Status::InvalidArgument(
        StrFormat("row has %zu features, dataset expects %zu", features.size(),
                  num_features_));
  }
  if (label != kPositive && label != kNegative) {
    return Status::InvalidArgument(StrFormat("label must be +1 or -1, got %d", label));
  }
  values_.insert(values_.end(), features.begin(), features.end());
  labels_.push_back(static_cast<int8_t>(label));
  return Status::OK();
}

Status Dataset::AppendBlock(std::span<const float> values,
                            std::span<const int8_t> labels) {
  if (num_features_ == 0) {
    return Status::InvalidArgument("AppendBlock requires num_features > 0");
  }
  if (values.size() != labels.size() * num_features_) {
    return Status::InvalidArgument(
        StrFormat("block has %zu values for %zu rows of %zu features",
                  values.size(), labels.size(), num_features_));
  }
  for (int8_t label : labels) {
    if (label != kPositive && label != kNegative) {
      return Status::InvalidArgument(
          StrFormat("label must be +1 or -1, got %d", static_cast<int>(label)));
    }
  }
  values_.insert(values_.end(), values.begin(), values.end());
  labels_.insert(labels_.end(), labels.begin(), labels.end());
  return Status::OK();
}

void Dataset::SetLabel(size_t i, int label) {
  assert(label == kPositive || label == kNegative);
  labels_[i] = static_cast<int8_t>(label);
}

size_t Dataset::NumPositive() const {
  return static_cast<size_t>(
      std::count(labels_.begin(), labels_.end(), static_cast<int8_t>(kPositive)));
}

double Dataset::PositiveFraction() const {
  if (labels_.empty()) return 0.0;
  return static_cast<double>(NumPositive()) / static_cast<double>(labels_.size());
}

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Dataset out(num_features_);
  out.set_name(name_);
  out.Reserve(indices.size());
  for (size_t idx : indices) {
    assert(idx < num_rows());
    out.values_.insert(out.values_.end(), values_.begin() + idx * num_features_,
                       values_.begin() + (idx + 1) * num_features_);
    out.labels_.push_back(labels_[idx]);
  }
  return out;
}

Status Dataset::Concat(const Dataset& other) {
  if (other.num_features_ != num_features_) {
    return Status::InvalidArgument("feature count mismatch in Concat");
  }
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
  return Status::OK();
}

Dataset Dataset::WithFlippedLabels() const {
  Dataset out = *this;
  for (auto& label : out.labels_) label = static_cast<int8_t>(-label);
  return out;
}

float Dataset::FeatureMin(size_t j) const {
  assert(num_rows() > 0);
  float lo = At(0, j);
  for (size_t i = 1; i < num_rows(); ++i) lo = std::min(lo, At(i, j));
  return lo;
}

float Dataset::FeatureMax(size_t j) const {
  assert(num_rows() > 0);
  float hi = At(0, j);
  for (size_t i = 1; i < num_rows(); ++i) hi = std::max(hi, At(i, j));
  return hi;
}

bool Dataset::AllValuesWithin(float lo, float hi) const {
  for (float v : values_) {
    if (v < lo || v > hi) return false;
  }
  return true;
}

}  // namespace treewm::data
