#include "data/sampling.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace treewm::data {

namespace {

/// Returns the row indices of each class: [positives, negatives].
std::pair<std::vector<size_t>, std::vector<size_t>> SplitByClass(const Dataset& dataset) {
  std::vector<size_t> pos;
  std::vector<size_t> neg;
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    (dataset.Label(i) == kPositive ? pos : neg).push_back(i);
  }
  return {std::move(pos), std::move(neg)};
}

}  // namespace

Result<SplitIndices> StratifiedSplit(const Dataset& dataset, double test_fraction,
                                     Rng* rng) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument(
        StrFormat("test_fraction must be in (0,1), got %f", test_fraction));
  }
  if (dataset.num_rows() < 2) {
    return Status::InvalidArgument("need at least 2 rows to split");
  }
  auto [pos, neg] = SplitByClass(dataset);
  SplitIndices out;
  for (auto* group : {&pos, &neg}) {
    if (group->empty()) continue;
    rng->Shuffle(group);
    size_t test_count = static_cast<size_t>(
        std::llround(test_fraction * static_cast<double>(group->size())));
    // Keep both sides non-empty when the class has >= 2 members.
    if (group->size() >= 2) {
      test_count = std::clamp<size_t>(test_count, 1, group->size() - 1);
    }
    for (size_t i = 0; i < group->size(); ++i) {
      (i < test_count ? out.test : out.train).push_back((*group)[i]);
    }
  }
  rng->Shuffle(&out.train);
  rng->Shuffle(&out.test);
  return out;
}

Result<std::vector<size_t>> StratifiedSubsample(const Dataset& dataset, size_t k,
                                                Rng* rng) {
  if (k > dataset.num_rows()) {
    return Status::InvalidArgument(
        StrFormat("cannot sample %zu rows from %zu", k, dataset.num_rows()));
  }
  auto [pos, neg] = SplitByClass(dataset);
  const double pos_fraction =
      dataset.num_rows() == 0
          ? 0.0
          : static_cast<double>(pos.size()) / static_cast<double>(dataset.num_rows());
  size_t pos_take = std::min<size_t>(
      pos.size(), static_cast<size_t>(std::llround(pos_fraction * static_cast<double>(k))));
  size_t neg_take = std::min(neg.size(), k - pos_take);
  // Top up from the other class if rounding left us short.
  if (pos_take + neg_take < k) pos_take = std::min(pos.size(), k - neg_take);

  std::vector<size_t> out;
  out.reserve(k);
  rng->Shuffle(&pos);
  rng->Shuffle(&neg);
  out.insert(out.end(), pos.begin(), pos.begin() + static_cast<ptrdiff_t>(pos_take));
  out.insert(out.end(), neg.begin(), neg.begin() + static_cast<ptrdiff_t>(neg_take));
  rng->Shuffle(&out);
  return out;
}

Result<std::vector<size_t>> SampleTriggerIndices(const Dataset& dataset, size_t k,
                                                 Rng* rng) {
  if (k == 0) return Status::InvalidArgument("trigger set must be non-empty");
  if (k > dataset.num_rows()) {
    return Status::InvalidArgument(
        StrFormat("trigger size %zu exceeds dataset size %zu", k, dataset.num_rows()));
  }
  return rng->SampleWithoutReplacement(dataset.num_rows(), k);
}

Result<TrainTest> MakeTrainTest(const Dataset& dataset, double test_fraction, Rng* rng) {
  TREEWM_ASSIGN_OR_RETURN(SplitIndices split,
                          StratifiedSplit(dataset, test_fraction, rng));
  TrainTest out{dataset.Subset(split.train), dataset.Subset(split.test)};
  return out;
}

}  // namespace treewm::data
