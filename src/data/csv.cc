#include "data/csv.h"

#include <cmath>
#include <sstream>

#include "common/json.h"
#include "common/string_util.h"

namespace treewm::data {

Result<Dataset> ParseCsv(const std::string& text, const CsvOptions& options) {
  std::vector<std::string> lines = StrSplit(text, '\n');
  Dataset dataset;
  bool initialized = false;
  size_t line_no = 0;
  std::vector<float> row;
  for (const std::string& raw_line : lines) {
    ++line_no;
    std::string_view line = StrTrim(raw_line);
    if (line.empty()) continue;
    if (options.has_header && line_no == 1) continue;
    std::vector<std::string> fields = StrSplit(line, ',');
    if (fields.size() < 2) {
      return Status::ParseError(
          StrFormat("line %zu: need at least one feature and a label", line_no));
    }
    size_t label_col = options.label_column < 0
                           ? fields.size() - 1
                           : static_cast<size_t>(options.label_column);
    if (label_col >= fields.size()) {
      return Status::ParseError(StrFormat("line %zu: label column out of range", line_no));
    }
    if (!initialized) {
      dataset = Dataset(fields.size() - 1);
      initialized = true;
    }
    row.clear();
    int label = 0;
    for (size_t i = 0; i < fields.size(); ++i) {
      double value;
      if (!ParseDouble(fields[i], &value)) {
        return Status::ParseError(StrFormat("line %zu: bad number '%s'", line_no,
                                            fields[i].c_str()));
      }
      if (i == label_col) {
        int y = static_cast<int>(std::llround(value));
        if (y == 0) y = kNegative;  // 0/1 convention
        if (y != kPositive && y != kNegative) {
          return Status::ParseError(StrFormat("line %zu: label %d not in {+1,-1,0,1}",
                                              line_no, y));
        }
        label = y;
      } else {
        row.push_back(static_cast<float>(value));
      }
    }
    TREEWM_RETURN_IF_ERROR(dataset.AddRow(row, label));
  }
  if (!initialized) return Status::ParseError("empty CSV input");
  return dataset;
}

Result<Dataset> LoadCsv(const std::string& path, const CsvOptions& options) {
  TREEWM_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseCsv(text, options);
}

Status SaveCsv(const Dataset& dataset, const std::string& path) {
  std::ostringstream out;
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    auto row = dataset.Row(i);
    for (size_t j = 0; j < row.size(); ++j) {
      out << StrFormat("%.9g", static_cast<double>(row[j])) << ',';
    }
    out << dataset.Label(i) << '\n';
  }
  return WriteStringToFile(path, out.str());
}

}  // namespace treewm::data
