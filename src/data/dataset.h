// In-memory tabular dataset for binary classification.
//
// Instances live in X ⊆ R^d with real-valued features (stored as float,
// normalized to [0,1] by convention throughout treewm) and labels in
// Y = {+1, -1}, matching the paper's setting (§2). Storage is row-major so a
// tree traversal touches one contiguous row.

#ifndef TREEWM_DATA_DATASET_H_
#define TREEWM_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace treewm::data {

/// Binary class labels used across treewm.
inline constexpr int kPositive = +1;
inline constexpr int kNegative = -1;

/// A labeled dataset: n rows of d float features plus ±1 labels.
class Dataset {
 public:
  /// Creates an empty dataset whose rows will have `num_features` features.
  explicit Dataset(size_t num_features = 0) : num_features_(num_features) {}

  /// Human-readable name (e.g. "mnist2-6-like"); used in reports.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Number of instances.
  size_t num_rows() const { return labels_.size(); }

  /// Number of features (d).
  size_t num_features() const { return num_features_; }

  /// Pre-allocates storage for `n` rows.
  void Reserve(size_t n);

  /// Appends one instance. `features.size()` must equal num_features() and
  /// `label` must be +1 or -1.
  [[nodiscard]] Status AddRow(std::span<const float> features, int label);

  /// Appends `labels.size()` rows at once from a row-major block;
  /// `values.size()` must equal labels.size() * num_features() and every
  /// label must be ±1. One bounds check and two bulk inserts for the whole
  /// block — the fast path chunked generators feed (AddRow validates and
  /// grows per row, which dominates at millions of rows).
  [[nodiscard]] Status AppendBlock(std::span<const float> values,
                                   std::span<const int8_t> labels);

  /// Feature j of row i (unchecked in release builds).
  float At(size_t i, size_t j) const {
    return values_[i * num_features_ + j];
  }

  /// Mutates feature j of row i.
  void SetAt(size_t i, size_t j, float v) { values_[i * num_features_ + j] = v; }

  /// Contiguous view of row i.
  std::span<const float> Row(size_t i) const {
    return {values_.data() + i * num_features_, num_features_};
  }

  /// Label of row i (+1 or -1).
  int Label(size_t i) const { return labels_[i]; }

  /// Overwrites the label of row i. `label` must be +1 or -1.
  void SetLabel(size_t i, int label);

  /// All labels.
  const std::vector<int8_t>& labels() const { return labels_; }

  /// Raw feature buffer (row-major, num_rows × num_features).
  const std::vector<float>& values() const { return values_; }

  /// Number of rows labeled +1.
  size_t NumPositive() const;

  /// Fraction of rows labeled +1 (0 when empty).
  double PositiveFraction() const;

  /// Returns a new dataset containing rows at `indices` (in that order).
  /// Indices may repeat; out-of-range indices are a programming error.
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// Appends all rows of `other`; feature counts must match.
  [[nodiscard]] Status Concat(const Dataset& other);

  /// Returns a copy with every label negated (used to build D'_trigger,
  /// Algorithm 1 line 16).
  Dataset WithFlippedLabels() const;

  /// Smallest/largest value of feature j; requires at least one row.
  float FeatureMin(size_t j) const;
  float FeatureMax(size_t j) const;

  /// True if every feature of every row lies in [lo, hi].
  bool AllValuesWithin(float lo, float hi) const;

 private:
  std::string name_;
  size_t num_features_;
  std::vector<float> values_;
  std::vector<int8_t> labels_;
};

/// One (features, label) pair — convenience for building trigger sets.
struct Instance {
  std::vector<float> features;
  int label = kPositive;
};

}  // namespace treewm::data

#endif  // TREEWM_DATA_DATASET_H_
