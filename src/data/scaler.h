// Min-max feature scaling to [0,1].
//
// The paper evaluates on datasets "normalized in the interval [0,1]" (§4);
// the forgery attack's ε-L∞-ball constraint (§4.2.2) assumes this range.

#ifndef TREEWM_DATA_SCALER_H_
#define TREEWM_DATA_SCALER_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace treewm::data {

/// Per-feature affine map onto [0,1] fitted on one dataset and applicable to
/// others (e.g. fit on train, apply to test).
class MinMaxScaler {
 public:
  /// Learns per-feature min/max from `dataset`. Constant features map to 0.
  [[nodiscard]] Status Fit(const Dataset& dataset);

  /// Applies the learned map in place, clamping to [0,1] so unseen data
  /// cannot escape the range.
  [[nodiscard]] Status Transform(Dataset* dataset) const;

  /// Fit followed by Transform on the same dataset.
  [[nodiscard]] Status FitTransform(Dataset* dataset);

  /// True once Fit succeeded.
  bool fitted() const { return !mins_.empty(); }

  const std::vector<float>& mins() const { return mins_; }
  const std::vector<float>& maxs() const { return maxs_; }

 private:
  std::vector<float> mins_;
  std::vector<float> maxs_;
};

}  // namespace treewm::data

#endif  // TREEWM_DATA_SCALER_H_
