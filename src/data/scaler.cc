#include "data/scaler.h"

#include <algorithm>

namespace treewm::data {

Status MinMaxScaler::Fit(const Dataset& dataset) {
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit scaler on empty dataset");
  }
  const size_t d = dataset.num_features();
  mins_.assign(d, 0.0f);
  maxs_.assign(d, 0.0f);
  for (size_t j = 0; j < d; ++j) {
    mins_[j] = dataset.FeatureMin(j);
    maxs_[j] = dataset.FeatureMax(j);
  }
  return Status::OK();
}

Status MinMaxScaler::Transform(Dataset* dataset) const {
  if (!fitted()) return Status::FailedPrecondition("scaler not fitted");
  if (dataset->num_features() != mins_.size()) {
    return Status::InvalidArgument("feature count mismatch in Transform");
  }
  const size_t d = dataset->num_features();
  for (size_t i = 0; i < dataset->num_rows(); ++i) {
    for (size_t j = 0; j < d; ++j) {
      const float span = maxs_[j] - mins_[j];
      float v = span > 0.0f ? (dataset->At(i, j) - mins_[j]) / span : 0.0f;
      v = std::clamp(v, 0.0f, 1.0f);
      dataset->SetAt(i, j, v);
    }
  }
  return Status::OK();
}

Status MinMaxScaler::FitTransform(Dataset* dataset) {
  TREEWM_RETURN_IF_ERROR(Fit(*dataset));
  return Transform(dataset);
}

}  // namespace treewm::data
