#include "data/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"
#include "data/scaler.h"

namespace treewm::data::synthetic {

namespace {

constexpr int kImageSide = 28;
constexpr size_t kImagePixels = static_cast<size_t>(kImageSide) * kImageSide;

/// A 2-D point in normalized [0,1]² image coordinates.
struct Point {
  double x;
  double y;
};

/// Squared distance from `p` to segment (a, b).
double SquaredDistanceToSegment(Point p, Point a, Point b) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double apx = p.x - a.x;
  const double apy = p.y - a.y;
  const double len2 = abx * abx + aby * aby;
  double t = len2 > 0.0 ? (apx * abx + apy * aby) / len2 : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  const double dx = apx - t * abx;
  const double dy = apy - t * aby;
  return dx * dx + dy * dy;
}

/// Stroke template for a "2"-like glyph (polyline control points).
std::vector<Point> TwoTemplate() {
  return {{0.26, 0.30}, {0.35, 0.18}, {0.55, 0.14}, {0.70, 0.22}, {0.72, 0.38},
          {0.58, 0.52}, {0.40, 0.64}, {0.27, 0.78}, {0.73, 0.78}};
}

/// Stroke template for a "6"-like glyph.
std::vector<Point> SixTemplate() {
  return {{0.66, 0.14}, {0.50, 0.22}, {0.37, 0.36}, {0.30, 0.54}, {0.31, 0.70},
          {0.42, 0.82}, {0.58, 0.82}, {0.68, 0.70}, {0.66, 0.58}, {0.52, 0.52},
          {0.38, 0.58}, {0.33, 0.68}};
}

/// Renders a jittered, translated, rotated copy of `base` into `pixels`.
void RenderGlyph(const std::vector<Point>& base, Rng* rng, float* pixels) {
  // Per-instance geometric nuisance parameters.
  const double dx = rng->UniformRealRange(-0.10, 0.10);
  const double dy = rng->UniformRealRange(-0.10, 0.10);
  const double angle = rng->UniformRealRange(-0.22, 0.22);
  const double scale = rng->UniformRealRange(0.80, 1.12);
  const double thickness = rng->UniformRealRange(0.035, 0.055);
  const double amplitude = rng->UniformRealRange(0.55, 1.0);
  const double cos_a = std::cos(angle);
  const double sin_a = std::sin(angle);

  std::vector<Point> pts;
  pts.reserve(base.size());
  for (const Point& p : base) {
    // Jitter control points slightly so strokes differ shape-wise too.
    double jx = p.x + rng->UniformRealRange(-0.03, 0.03);
    double jy = p.y + rng->UniformRealRange(-0.03, 0.03);
    // Rotate/scale around the glyph center, then translate.
    const double cx = jx - 0.5;
    const double cy = jy - 0.5;
    pts.push_back({0.5 + scale * (cos_a * cx - sin_a * cy) + dx,
                   0.5 + scale * (sin_a * cx + cos_a * cy) + dy});
  }

  const double inv_two_sigma2 = 1.0 / (2.0 * thickness * thickness);
  for (int row = 0; row < kImageSide; ++row) {
    for (int col = 0; col < kImageSide; ++col) {
      const Point pixel{(col + 0.5) / kImageSide, (row + 0.5) / kImageSide};
      double best = 1e9;
      for (size_t s = 0; s + 1 < pts.size(); ++s) {
        best = std::min(best, SquaredDistanceToSegment(pixel, pts[s], pts[s + 1]));
      }
      const double intensity = amplitude * std::exp(-best * inv_two_sigma2);
      pixels[row * kImageSide + col] = static_cast<float>(intensity);
    }
  }
}

/// Builds a label sequence with exactly round(positive_fraction * n)
/// positives, shuffled deterministically.
std::vector<int> MakeLabelSequence(size_t n, double positive_fraction, Rng* rng) {
  const size_t num_pos = static_cast<size_t>(
      std::llround(positive_fraction * static_cast<double>(n)));
  std::vector<int> labels(n, kNegative);
  for (size_t i = 0; i < std::min(num_pos, n); ++i) labels[i] = kPositive;
  rng->Shuffle(&labels);
  return labels;
}

}  // namespace

Dataset MakeMnist26Like(uint64_t seed, size_t num_rows) {
  Rng rng(seed);
  Dataset dataset(kImagePixels);
  dataset.set_name("mnist2-6-like");
  dataset.Reserve(num_rows);
  // Paper: 51%/49% distribution; make "6"-like the positive class.
  std::vector<int> labels = MakeLabelSequence(num_rows, 0.51, &rng);
  const std::vector<Point> two = TwoTemplate();
  const std::vector<Point> six = SixTemplate();
  std::vector<float> pixels(kImagePixels);
  for (size_t i = 0; i < num_rows; ++i) {
    RenderGlyph(labels[i] == kPositive ? six : two, &rng, pixels.data());
    for (float& v : pixels) {
      v = std::clamp(v + static_cast<float>(rng.Gaussian(0.0, 0.13)), 0.0f, 1.0f);
    }
    Status st = dataset.AddRow(pixels, labels[i]);
    assert(st.ok());
    (void)st;  // discard ok: asserted above; generator rows match the schema by construction
  }
  return dataset;
}

Dataset MakeBreastCancerLike(uint64_t seed, size_t num_rows) {
  constexpr size_t kFeatures = 30;
  constexpr size_t kLatent = 6;
  Rng rng(seed);
  Dataset dataset(kFeatures);
  dataset.set_name("breast-cancer-like");
  dataset.Reserve(num_rows);

  // Shared loading matrix creates inter-feature correlation (real tumor
  // measurements are strongly correlated, e.g. radius/area/perimeter).
  std::vector<double> loadings(kFeatures * kLatent);
  for (double& w : loadings) w = rng.Gaussian(0.0, 0.55);
  // Class-mean offset; magnitude tuned so an RF reaches ≈0.95 accuracy.
  std::vector<double> offset(kFeatures);
  for (double& o : offset) o = rng.Gaussian(0.0, 0.85);

  std::vector<int> labels = MakeLabelSequence(num_rows, 0.63, &rng);
  std::vector<double> latent(kLatent);
  std::vector<float> row(kFeatures);
  for (size_t i = 0; i < num_rows; ++i) {
    for (double& z : latent) z = rng.Gaussian();
    const double side = labels[i] == kPositive ? 0.75 : -0.75;
    for (size_t j = 0; j < kFeatures; ++j) {
      double v = side * offset[j];
      for (size_t k = 0; k < kLatent; ++k) v += loadings[j * kLatent + k] * latent[k];
      v += rng.Gaussian(0.0, 0.45);
      row[j] = static_cast<float>(v);
    }
    Status st = dataset.AddRow(row, labels[i]);
    assert(st.ok());
    (void)st;  // discard ok: asserted above; generator rows match the schema by construction
  }
  MinMaxScaler scaler;
  Status st = scaler.FitTransform(&dataset);
  assert(st.ok());
  (void)st;  // discard ok: asserted above; scaling a freshly built dataset cannot fail
  return dataset;
}

Dataset MakeIjcnn1Like(uint64_t seed, size_t num_rows) {
  constexpr size_t kFeatures = 22;
  constexpr size_t kLatent = 4;
  Rng rng(seed);
  Dataset dataset(kFeatures);
  dataset.set_name("ijcnn1-like");
  dataset.Reserve(num_rows);

  // Features are noisy mixtures of a low-dimensional latent state (real
  // ijcnn1 features are redundant sensor readings of one physical process).
  // Redundancy is what lets trees restricted to sqrt(d) features still see
  // the whole signal. The label is a rugged multi-frequency function of the
  // latents thresholded at the 90th percentile (Table 1: 10%/90% split),
  // which forces deep, leaf-hungry trees — the property behind ijcnn1's
  // forgery-hardness result (§4.2.2).
  struct Mix {
    size_t latent_a;
    size_t latent_b;
    double weight_a;
    double weight_b;
  };
  std::vector<Mix> mixes(kFeatures);
  for (size_t j = 0; j < kFeatures; ++j) {
    mixes[j] = {static_cast<size_t>(rng.UniformInt(kLatent)),
                static_cast<size_t>(rng.UniformInt(kLatent)),
                rng.UniformRealRange(0.6, 1.0), rng.UniformRealRange(0.0, 0.4)};
  }
  struct SineTerm {
    size_t latent;
    double amplitude;
    double frequency;
    double phase;
  };
  std::vector<SineTerm> sines;
  for (int t = 0; t < 6; ++t) {
    sines.push_back({static_cast<size_t>(rng.UniformInt(kLatent)),
                     rng.UniformRealRange(0.8, 1.4), rng.UniformRealRange(5.0, 11.0),
                     rng.UniformRealRange(0.0, 6.28318)});
  }

  std::vector<std::vector<float>> rows(num_rows, std::vector<float>(kFeatures));
  std::vector<double> scores(num_rows);
  std::vector<double> latent(kLatent);
  for (size_t i = 0; i < num_rows; ++i) {
    for (double& z : latent) z = rng.UniformReal();
    for (size_t j = 0; j < kFeatures; ++j) {
      const Mix& m = mixes[j];
      double v = m.weight_a * latent[m.latent_a] + m.weight_b * latent[m.latent_b] +
                 rng.Gaussian(0.0, 0.02);
      rows[i][j] = static_cast<float>(std::clamp(v, 0.0, 1.4));
    }
    double s = 0.0;
    for (const SineTerm& term : sines) {
      s += term.amplitude * std::sin(term.frequency * latent[term.latent] + term.phase);
    }
    s += 1.1 * latent[0] * latent[1];
    scores[i] = s;
  }
  // Threshold at the 90th percentile so exactly ~10% are positive (Table 1).
  std::vector<double> sorted = scores;
  const size_t cut = num_rows - num_rows / 10;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<ptrdiff_t>(cut),
                   sorted.end());
  const double threshold = sorted[cut];
  for (size_t i = 0; i < num_rows; ++i) {
    Status st = dataset.AddRow(rows[i], scores[i] >= threshold ? kPositive : kNegative);
    assert(st.ok());
    (void)st;  // discard ok: asserted above; generator rows match the schema by construction
  }
  MinMaxScaler scaler;
  Status st = scaler.FitTransform(&dataset);
  assert(st.ok());
  (void)st;  // discard ok: asserted above; scaling a freshly built dataset cannot fail
  return dataset;
}

Dataset MakeBlobs(uint64_t seed, size_t num_rows, size_t num_features,
                  double class_separation, double positive_fraction) {
  Rng rng(seed);
  Dataset dataset(num_features);
  dataset.set_name("blobs");
  dataset.Reserve(num_rows);
  std::vector<int> labels = MakeLabelSequence(num_rows, positive_fraction, &rng);
  std::vector<float> row(num_features);
  for (size_t i = 0; i < num_rows; ++i) {
    const double center = labels[i] == kPositive ? class_separation / 2.0
                                                 : -class_separation / 2.0;
    for (float& v : row) v = static_cast<float>(rng.Gaussian(center, 1.0));
    Status st = dataset.AddRow(row, labels[i]);
    assert(st.ok());
    (void)st;  // discard ok: asserted above; generator rows match the schema by construction
  }
  MinMaxScaler scaler;
  Status st = scaler.FitTransform(&dataset);
  assert(st.ok());
  (void)st;  // discard ok: asserted above; scaling a freshly built dataset cannot fail
  return dataset;
}

Dataset MakeBlobsChunked(uint64_t seed, size_t num_rows, size_t num_features,
                         double class_separation, double positive_fraction,
                         size_t chunk_rows) {
  assert(chunk_rows > 0);
  Rng rng(seed);
  Dataset dataset(num_features);
  dataset.set_name("blobs");
  dataset.Reserve(num_rows);
  // RNG consumption mirrors MakeBlobs exactly: the full label sequence
  // first, then num_features Gaussians per row in row order. Chunking only
  // changes how rows reach the Dataset, so the float stream is bitwise
  // identical to the unreserved per-row path.
  std::vector<int> labels = MakeLabelSequence(num_rows, positive_fraction, &rng);
  std::vector<float> block;
  block.reserve(chunk_rows * num_features);
  std::vector<int8_t> block_labels;
  block_labels.reserve(chunk_rows);
  for (size_t begin = 0; begin < num_rows; begin += chunk_rows) {
    const size_t end = std::min(begin + chunk_rows, num_rows);
    block.clear();
    block_labels.clear();
    for (size_t i = begin; i < end; ++i) {
      const double center = labels[i] == kPositive ? class_separation / 2.0
                                                   : -class_separation / 2.0;
      for (size_t j = 0; j < num_features; ++j) {
        block.push_back(static_cast<float>(rng.Gaussian(center, 1.0)));
      }
      block_labels.push_back(static_cast<int8_t>(labels[i]));
    }
    Status st = dataset.AppendBlock(block, block_labels);
    assert(st.ok());
    (void)st;  // discard ok: asserted above; block dimensions match by construction
  }
  MinMaxScaler scaler;
  Status st = scaler.FitTransform(&dataset);
  assert(st.ok());
  (void)st;  // discard ok: asserted above; scaling a freshly built dataset cannot fail
  return dataset;
}

Dataset MakeXor(uint64_t seed, size_t num_rows, size_t num_features) {
  assert(num_features >= 2);
  Rng rng(seed);
  Dataset dataset(num_features);
  dataset.set_name("xor");
  dataset.Reserve(num_rows);
  std::vector<float> row(num_features);
  for (size_t i = 0; i < num_rows; ++i) {
    for (float& v : row) v = static_cast<float>(rng.UniformReal());
    const bool a = row[0] > 0.5f;
    const bool b = row[1] > 0.5f;
    Status st = dataset.AddRow(row, (a != b) ? kPositive : kNegative);
    assert(st.ok());
    (void)st;  // discard ok: asserted above; generator rows match the schema by construction
  }
  return dataset;
}

std::vector<std::string> KnownDatasetNames() {
  return {"mnist2-6", "breast-cancer", "ijcnn1"};
}

Result<Dataset> MakeByName(const std::string& name, uint64_t seed, size_t num_rows) {
  const std::string key = StrToLower(name);
  if (key == "mnist2-6" || key == "mnist26" || key == "mnist2-6-like") {
    return MakeMnist26Like(seed, num_rows == 0 ? kMnist26Rows : num_rows);
  }
  if (key == "breast-cancer" || key == "breast_cancer" || key == "breast-cancer-like") {
    return MakeBreastCancerLike(seed, num_rows == 0 ? kBreastCancerRows : num_rows);
  }
  if (key == "ijcnn1" || key == "ijcnn1-like") {
    return MakeIjcnn1Like(seed, num_rows == 0 ? kIjcnn1Rows : num_rows);
  }
  return Status::NotFound("unknown dataset name: " + name);
}

std::string RenderImageAscii(const std::vector<float>& features) {
  assert(features.size() == kImagePixels);
  static constexpr const char kRamp[] = " .:-=+*#%@";
  constexpr int kRampMax = 9;
  std::string out;
  out.reserve(kImagePixels + kImageSide);
  for (int row = 0; row < kImageSide; ++row) {
    for (int col = 0; col < kImageSide; ++col) {
      const float v = std::clamp(features[static_cast<size_t>(row) * kImageSide + col],
                                 0.0f, 1.0f);
      out.push_back(kRamp[static_cast<int>(v * kRampMax + 0.5f)]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace treewm::data::synthetic
