#include <cassert>
#include "core/multiclass.h"

#include "common/string_util.h"
#include "predict/vote_matrix.h"

namespace treewm::core {

Status MultiClassDataset::AddRow(std::span<const float> features, int label) {
  if (features.size() != num_features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  if (label < 0 || label >= num_classes_) {
    return Status::InvalidArgument(StrFormat("label %d outside [0,%d)", label,
                                             num_classes_));
  }
  values_.insert(values_.end(), features.begin(), features.end());
  labels_.push_back(label);
  return Status::OK();
}

data::Dataset MultiClassDataset::BinaryView(int cls) const {
  data::Dataset out(num_features_);
  out.set_name(StrFormat("ovr-class-%d", cls));
  out.Reserve(num_rows());
  for (size_t i = 0; i < num_rows(); ++i) {
    Status st = out.AddRow(Row(i), labels_[i] == cls ? data::kPositive
                                                     : data::kNegative);
    assert(st.ok());
    (void)st;  // discard ok: asserted above; Row(i) width matches by construction
  }
  return out;
}

int MultiClassWatermarkedModel::Predict(std::span<const float> row) const {
  int best_class = 0;
  int best_votes = -1;
  for (size_t c = 0; c < per_class.size(); ++c) {
    int votes = 0;
    for (int v : per_class[c].model.PredictAll(row)) {
      if (v == data::kPositive) ++votes;
    }
    if (votes > best_votes) {
      best_votes = votes;
      best_class = static_cast<int>(c);
    }
  }
  return best_class;
}

std::vector<int> MultiClassWatermarkedModel::PredictBatch(
    const MultiClassDataset& dataset) const {
  const size_t n = dataset.num_rows();
  std::vector<int> best_class(n, 0);
  if (n == 0 || per_class.empty()) return best_class;

  // Materialize the features once as a binary dataset (the batch engine
  // ignores the placeholder labels) and sweep the per-class forests over it.
  data::Dataset features(dataset.num_features());
  features.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Status st = features.AddRow(dataset.Row(i), data::kPositive);
    assert(st.ok());
    (void)st;  // discard ok: asserted above; rows come from a dataset of the same width
  }

  // Argmax with the scalar tie rule: classes ascend, strictly more positive
  // votes wins, so ties keep the lower class id — bit-exact with Predict.
  std::vector<int> best_votes(n, -1);
  for (size_t c = 0; c < per_class.size(); ++c) {
    const predict::VoteMatrix votes = per_class[c].model.PredictAllVotes(features);
    for (size_t i = 0; i < n; ++i) {
      int positive = 0;
      for (int8_t v : votes.row(i)) {
        if (v == data::kPositive) ++positive;
      }
      if (positive > best_votes[i]) {
        best_votes[i] = positive;
        best_class[i] = static_cast<int>(c);
      }
    }
  }
  return best_class;
}

double MultiClassWatermarkedModel::Accuracy(const MultiClassDataset& dataset) const {
  if (dataset.num_rows() == 0) return 0.0;
  const std::vector<int> predictions = PredictBatch(dataset);
  size_t correct = 0;
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    if (predictions[i] == dataset.Label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.num_rows());
}

Result<MultiClassWatermarkedModel> MultiClassWatermarker::CreateWatermark(
    const MultiClassDataset& train, const std::vector<Signature>& signatures) const {
  if (static_cast<int>(signatures.size()) != train.num_classes()) {
    return Status::InvalidArgument("need exactly one signature per class");
  }
  MultiClassWatermarkedModel out;
  out.per_class.reserve(signatures.size());
  for (int cls = 0; cls < train.num_classes(); ++cls) {
    WatermarkConfig per_class_config = config_;
    per_class_config.seed = config_.seed + static_cast<uint64_t>(cls) * 0x9E3779B9ULL;
    Watermarker watermarker(per_class_config);
    TREEWM_ASSIGN_OR_RETURN(
        WatermarkedModel wm,
        watermarker.CreateWatermark(train.BinaryView(cls),
                                    signatures[static_cast<size_t>(cls)]));
    out.per_class.push_back(std::move(wm));
  }
  return out;
}

}  // namespace treewm::core
