#include "core/train_with_trigger.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace treewm::core {

bool AllTreesMatchTrigger(const forest::RandomForest& forest,
                          const data::Dataset& dataset,
                          const std::vector<size_t>& trigger_indices) {
  for (size_t idx : trigger_indices) {
    const auto row = dataset.Row(idx);
    const int target = dataset.Label(idx);
    for (const auto& t : forest.trees()) {
      if (t.Predict(row) != target) return false;
    }
  }
  return true;
}

Result<TriggerTrainingResult> TrainWithTrigger(
    const data::Dataset& dataset, const std::vector<size_t>& trigger_indices,
    const TriggerTrainingConfig& config) {
  if (trigger_indices.empty()) {
    return Status::InvalidArgument("trigger set must be non-empty");
  }
  for (size_t idx : trigger_indices) {
    if (idx >= dataset.num_rows()) {
      return Status::InvalidArgument(StrFormat("trigger index %zu out of range", idx));
    }
  }
  if (config.weight_increment <= 0.0) {
    return Status::InvalidArgument("weight_increment must be positive");
  }

  std::vector<double> weights(dataset.num_rows(), 1.0);  // Algorithm 1 line 3
  double trigger_weight = 1.0;

  // Sample weights never change the per-feature sort order, so the column
  // sort is paid once here and shared across EVERY weight-boosting retrain.
  // Validate the forest config first so a bad config fails before the sort,
  // and skip the sort entirely when the reference trainer is selected.
  TREEWM_RETURN_IF_ERROR(config.forest.Validate());
  std::shared_ptr<const tree::SortedColumns> sorted;
  if (!config.forest.use_reference_trainer) {
    sorted = tree::SortedColumns::Build(dataset);
  }

  forest::ForestConfig forest_config = config.forest;
  TREEWM_ASSIGN_OR_RETURN(
      forest::RandomForest model,
      forest::RandomForest::Fit(dataset, weights, forest_config, sorted));

  TriggerTrainingResult result{std::move(model)};
  for (size_t round = 0; round < config.max_boost_rounds; ++round) {
    if (AllTreesMatchTrigger(result.forest, dataset, trigger_indices)) {
      result.converged = true;
      result.final_trigger_weight = trigger_weight;
      return result;
    }
    // Algorithm 1 lines 6-8: bump every trigger weight, retrain everything.
    trigger_weight += config.weight_increment;
    for (size_t idx : trigger_indices) weights[idx] = trigger_weight;
    ++result.boost_rounds;
    TREEWM_ASSIGN_OR_RETURN(
        result.forest,
        forest::RandomForest::Fit(dataset, weights, forest_config, sorted));
  }
  result.converged = AllTreesMatchTrigger(result.forest, dataset, trigger_indices);
  result.final_trigger_weight = trigger_weight;
  if (!result.converged) {
    LogWarning(StrFormat(
        "TrainWithTrigger: %zu rounds exhausted without full trigger agreement",
        config.max_boost_rounds));
  }
  return result;
}

}  // namespace treewm::core
