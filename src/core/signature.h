// The model owner's multi-bit signature σ.
//
// A signature is a bit string of length m (one bit per ensemble tree). Bit 0
// forces tree i to classify the trigger set correctly, bit 1 forces it to
// misclassify (§3.2). Signatures can be random (the paper's experiments) or
// encode an owner identity string (multi-bit watermarking in the survey's
// taxonomy).

#ifndef TREEWM_CORE_SIGNATURE_H_
#define TREEWM_CORE_SIGNATURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "common/status.h"

namespace treewm::core {

/// An immutable bit string identifying the model owner.
class Signature {
 public:
  /// Wraps explicit bits (values must be 0/1).
  [[nodiscard]] static Result<Signature> FromBits(std::vector<uint8_t> bits);

  /// Random signature of `length` bits with exactly
  /// round(ones_fraction*length) ones, positions shuffled.
  static Signature Random(size_t length, double ones_fraction, Rng* rng);

  /// Parses "0101..." text.
  [[nodiscard]] static Result<Signature> FromBitString(const std::string& text);

  /// Encodes an identity string as its UTF-8 bytes, MSB first (8 bits per
  /// byte). The resulting length is 8*text.size().
  static Signature FromText(const std::string& text);

  /// Inverse of FromText (length must be a multiple of 8).
  [[nodiscard]] Result<std::string> ToText() const;

  /// Number of bits m.
  size_t length() const { return bits_.size(); }

  /// Number of bits set to 1 (trees forced to misclassify).
  size_t NumOnes() const;

  /// Number of bits set to 0 (the paper's m').
  size_t NumZeros() const { return length() - NumOnes(); }

  /// Bit accessor.
  uint8_t bit(size_t i) const { return bits_[i]; }
  const std::vector<uint8_t>& bits() const { return bits_; }

  /// "0101..." rendering.
  std::string ToBitString() const;

  /// Hamming distance to another signature of the same length.
  [[nodiscard]] Result<size_t> HammingDistance(const Signature& other) const;

  JsonValue ToJson() const;
  [[nodiscard]] static Result<Signature> FromJson(const JsonValue& json);

  bool operator==(const Signature& other) const { return bits_ == other.bits_; }

 private:
  explicit Signature(std::vector<uint8_t> bits) : bits_(std::move(bits)) {}
  std::vector<uint8_t> bits_;
};

}  // namespace treewm::core

#endif  // TREEWM_CORE_SIGNATURE_H_
