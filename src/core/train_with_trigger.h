// TrainWithTrigger (Algorithm 1, lines 1-9): sample-weight boosting until
// every tree shows the required behaviour on the trigger set.
//
// The paper's loop retrains the whole forest, adding 1 to the weight of every
// trigger instance whenever some tree still deviates, and has no termination
// bound. We bound it with `max_boost_rounds` and report convergence instead
// of hanging; non-convergence is surfaced to the caller.

#ifndef TREEWM_CORE_TRAIN_WITH_TRIGGER_H_
#define TREEWM_CORE_TRAIN_WITH_TRIGGER_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "forest/random_forest.h"

namespace treewm::core {

/// Knobs of the boosting loop.
struct TriggerTrainingConfig {
  /// Forest configuration (the adjusted H plus m).
  forest::ForestConfig forest;
  /// Upper bound on retraining rounds (paper: unbounded; the linear +1
  /// weight growth can legitimately need ~100 rounds on noisy data before
  /// trigger weights dominate every tree's split decisions).
  size_t max_boost_rounds = 150;
  /// Additive weight bump per round for each trigger instance (paper: 1).
  double weight_increment = 1.0;
};

/// Outcome of TrainWithTrigger.
struct TriggerTrainingResult {
  forest::RandomForest forest;
  /// Rounds actually used (0 = first training already satisfied the trigger).
  size_t boost_rounds = 0;
  /// True when every tree matches the trigger behaviour.
  bool converged = false;
  /// Final per-trigger-instance weight (parallel to trigger_indices).
  double final_trigger_weight = 1.0;
};

/// Trains a forest such that every tree classifies every trigger row of
/// `dataset` as labeled *in the dataset* (callers encode the desired
/// behaviour by flipping labels beforehand, per Algorithm 1 line 17).
/// `trigger_indices` index rows of `dataset`.
[[nodiscard]] Result<TriggerTrainingResult> TrainWithTrigger(
    const data::Dataset& dataset, const std::vector<size_t>& trigger_indices,
    const TriggerTrainingConfig& config);

/// True iff every tree of `forest` predicts the dataset label on every
/// trigger row.
bool AllTreesMatchTrigger(const forest::RandomForest& forest,
                          const data::Dataset& dataset,
                          const std::vector<size_t>& trigger_indices);

}  // namespace treewm::core

#endif  // TREEWM_CORE_TRAIN_WITH_TRIGGER_H_
