// Black-box watermark verification — the Alice/Bob/Charlie protocol (§3.2).
//
// Alice (owner) hands the legal authority Charlie her signature σ, the
// trigger set and a test set containing it. Charlie queries Bob's model
// black-box on the disguised batch (trigger rows shuffled among test rows,
// so Bob cannot special-case them — the suppression defence) and checks
// that every trigger instance is classified correctly by tree i iff σ_i = 0.

#ifndef TREEWM_CORE_VERIFICATION_H_
#define TREEWM_CORE_VERIFICATION_H_

#include <memory>
#include <span>
#include <vector>

#include "core/signature.h"
#include "data/dataset.h"
#include "forest/random_forest.h"
#include "predict/vote_matrix.h"

namespace treewm::core {

/// log10 of the binomial tail P[X >= k] for X ~ Binomial(n, p), summed
/// exactly in log space (n is a trigger size — tiny). Conventions:
/// k == 0 -> 0.0 (certain event); k > n -> -inf (impossible event — more
/// successes than trials); p <= 0 -> -inf (for k >= 1); p >= 1 -> 0.0.
/// Exposed for the verification statistics and their regression tests.
double Log10BinomialTail(size_t n, size_t k, double p);

/// Query-only access to a suspect model: per-tree predictions for one
/// instance (R's `predict.all` contract). Implementations must not expose
/// parameters — Charlie only sees outputs.
class BlackBoxModel {
 public:
  virtual ~BlackBoxModel() = default;

  /// Number of trees in the suspect ensemble (observable from any query).
  virtual size_t NumTrees() const = 0;

  /// Per-tree prediction sequence for `x`.
  virtual std::vector<int> QueryPredictAll(std::span<const float> x) const = 0;

  /// Per-tree predictions for every row of `batch` as one flat row-major
  /// vote matrix. The protocol submits the whole disguised batch through
  /// this entry point and scores directly off the matrix — no per-row
  /// vectors. The default loops QueryPredictAll row by row; implementations
  /// backed by a real ensemble override it with the batched flat-inference
  /// engine.
  virtual predict::VoteMatrix QueryPredictAllVotes(const data::Dataset& batch) const;

  /// Legacy nested shape; thin adapter over QueryPredictAllVotes kept for
  /// callers that still want vector<vector<int>>.
  virtual std::vector<std::vector<int>> QueryPredictAllBatch(
      const data::Dataset& batch) const;
};

/// Adapter exposing a RandomForest through the black-box interface.
class ForestBlackBox : public BlackBoxModel {
 public:
  explicit ForestBlackBox(const forest::RandomForest& forest) : forest_(forest) {}

  size_t NumTrees() const override { return forest_.num_trees(); }

  std::vector<int> QueryPredictAll(std::span<const float> x) const override {
    return forest_.PredictAll(x);
  }

  predict::VoteMatrix QueryPredictAllVotes(
      const data::Dataset& batch) const override {
    return forest_.PredictAllVotes(batch);  // batched flat-ensemble engine
  }

 private:
  const forest::RandomForest& forest_;
};

/// What Alice submits to Charlie.
struct VerificationRequest {
  Signature signature;
  data::Dataset trigger_set;  ///< original labels
  data::Dataset test_set;     ///< decoys drawn from the same distribution
};

/// Charlie's findings.
struct VerificationReport {
  /// True when every trigger instance matches the full per-tree pattern.
  bool verified = false;
  /// Trigger instances whose complete m-bit pattern matched.
  size_t matching_instances = 0;
  size_t trigger_size = 0;
  /// Fraction of (trigger instance, tree) pairs matching the required bit.
  double bit_match_rate = 0.0;
  /// Same statistic on the decoy test rows — the baseline an unrelated model
  /// would show. A watermark shows bit_match_rate 1.0 >> control_match_rate.
  double control_match_rate = 0.0;
  /// log10 of the probability that a signature-agnostic model (per-tree
  /// match probability = control_match_rate, independence across trees and
  /// instances) matches at least as many full patterns. Large negative =
  /// strong evidence of the watermark.
  double log10_p_value = 0.0;

  /// log10 of the probability that a signature-agnostic model matches at
  /// least as many individual (instance, tree) bits. The full-pattern
  /// statistic above is brittle against model modification (one flipped
  /// leaf voids a whole instance); the bit-level statistic degrades
  /// gracefully and is the right measure against tampering attackers.
  double log10_bit_p_value = 0.0;

  /// Practical ruling: the paper's check is strict (`verified` = every
  /// trigger instance matches), but a handful of misses still leaves
  /// overwhelming statistical evidence — e.g. after a partial embed, minor
  /// model drift, or a tampering attacker. Conclusive means either p-value
  /// is below 10^-10 under the null model.
  bool conclusive() const {
    return log10_p_value < -10.0 || log10_bit_p_value < -10.0;
  }
};

/// The legal authority's verification procedure.
class VerificationAuthority {
 public:
  /// Runs the protocol: builds the disguised batch, queries `model`, checks
  /// the per-tree pattern on the trigger rows. `rng` shuffles the batch.
  [[nodiscard]] static Result<VerificationReport> Verify(const BlackBoxModel& model,
                                           const VerificationRequest& request,
                                           Rng* rng);
};

}  // namespace treewm::core

#endif  // TREEWM_CORE_VERIFICATION_H_
