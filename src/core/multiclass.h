// Multi-class watermarking via one-vs-rest decomposition.
//
// The paper's scheme is binary; §3.2 notes that "multi-class classification
// can be supported by encoding it in terms of multiple binary classification
// tasks". This module implements that extension: one binary watermarked
// forest per class (positive = the class, negative = the rest), each carrying
// its own signature slice; prediction is argmax over per-class positive
// votes.

#ifndef TREEWM_CORE_MULTICLASS_H_
#define TREEWM_CORE_MULTICLASS_H_

#include <span>
#include <vector>

#include "core/watermark.h"
#include "data/dataset.h"

namespace treewm::core {

/// A dataset with integer class labels 0..num_classes-1.
class MultiClassDataset {
 public:
  MultiClassDataset(size_t num_features, int num_classes)
      : num_features_(num_features), num_classes_(num_classes) {}

  size_t num_rows() const { return labels_.size(); }
  size_t num_features() const { return num_features_; }
  int num_classes() const { return num_classes_; }

  /// Appends one instance; `label` must be in [0, num_classes).
  [[nodiscard]] Status AddRow(std::span<const float> features, int label);

  std::span<const float> Row(size_t i) const {
    return {values_.data() + i * num_features_, num_features_};
  }
  int Label(size_t i) const { return labels_[i]; }

  /// The one-vs-rest binary view for `cls`: label +1 iff Label(i) == cls.
  data::Dataset BinaryView(int cls) const;

 private:
  size_t num_features_;
  int num_classes_;
  std::vector<float> values_;
  std::vector<int> labels_;
};

/// One-vs-rest ensemble of watermarked binary forests.
struct MultiClassWatermarkedModel {
  std::vector<WatermarkedModel> per_class;

  /// Predicted class: argmax over classes of positive votes (ties -> lower
  /// class id, deterministic). Scalar per-row reference path.
  int Predict(std::span<const float> row) const;

  /// Predicted classes for every row through the batched flat-ensemble
  /// engine (one vote-matrix query per class instead of one scalar
  /// PredictAll per row per class). Bit-exact with per-row Predict,
  /// including the tie rule.
  std::vector<int> PredictBatch(const MultiClassDataset& dataset) const;

  /// Accuracy on a multi-class dataset (batched engine).
  double Accuracy(const MultiClassDataset& dataset) const;
};

/// Runs Algorithm 1 once per class.
class MultiClassWatermarker {
 public:
  explicit MultiClassWatermarker(WatermarkConfig config) : config_(std::move(config)) {}

  /// `signatures` holds one signature per class (all the same length m).
  [[nodiscard]] Result<MultiClassWatermarkedModel> CreateWatermark(
      const MultiClassDataset& train, const std::vector<Signature>& signatures) const;

 private:
  WatermarkConfig config_;
};

}  // namespace treewm::core

#endif  // TREEWM_CORE_MULTICLASS_H_
