// Watermark creation — the W atermark function of Algorithm 1.
//
// Pipeline: grid-search hyper-parameters H for an m-tree forest, sample a
// trigger set from the training data, adjust H so the misclassifying
// sub-ensemble cannot be told apart structurally (Adjust, §3.2), train T0
// (trees that must classify the trigger correctly) and T1 (trees that must
// misclassify it, trained on flipped trigger labels), and interleave their
// trees according to the signature bits.

#ifndef TREEWM_CORE_WATERMARK_H_
#define TREEWM_CORE_WATERMARK_H_

#include <cstdint>

#include "core/signature.h"
#include "core/train_with_trigger.h"
#include "data/dataset.h"
#include "forest/grid_search.h"
#include "forest/random_forest.h"

namespace treewm::core {

/// Configuration of the watermark creation pipeline.
struct WatermarkConfig {
  /// Trigger set size k as a fraction of |D_train| (paper sweeps 1%..4%;
  /// security evaluation fixes 2%). Ignored when trigger_size > 0.
  double trigger_fraction = 0.02;
  /// Absolute trigger size k; 0 defers to trigger_fraction.
  size_t trigger_size = 0;
  /// Grid search protocol (Algorithm 1 line 12).
  forest::GridSearchConfig grid;
  /// Boost-loop knobs shared by the T0 and T1 trainings.
  TriggerTrainingConfig trigger_training;
  /// Apply the Adjust(H) heuristic (§3.2). Off = ablation mode: T1 trees are
  /// free to overfit and may leak the signature structurally.
  bool adjust_hyperparameters = true;
  /// Skip grid search and use `trigger_training.forest.tree` as H directly
  /// (useful for tests and for callers that tuned H themselves).
  bool skip_grid_search = false;
  /// Master seed (trigger sampling, grid search, training).
  uint64_t seed = 11;
};

/// Everything W atermark returns (the pair ⟨T, D_trigger⟩ plus provenance).
struct WatermarkedModel {
  /// The watermarked ensemble T with trees interleaved by signature bit.
  forest::RandomForest model;
  /// The owner's signature σ.
  Signature signature;
  /// The trigger set with its *original* (correct) labels.
  data::Dataset trigger_set;
  /// Row indices of the trigger instances inside the training set.
  std::vector<size_t> trigger_indices;
  /// H found by grid search (before adjustment).
  tree::TreeConfig tuned_config;
  /// H actually used for T0/T1 (after Adjust, when enabled).
  tree::TreeConfig adjusted_config;
  /// Convergence provenance of the two boosting loops.
  bool t0_converged = true;
  bool t1_converged = true;
  size_t t0_boost_rounds = 0;
  size_t t1_boost_rounds = 0;
};

/// Watermark creation driver.
class Watermarker {
 public:
  explicit Watermarker(WatermarkConfig config) : config_(std::move(config)) {}

  /// Runs Algorithm 1 on `train` with signature `sigma`. The ensemble size m
  /// equals sigma.length().
  [[nodiscard]] Result<WatermarkedModel> CreateWatermark(const data::Dataset& train,
                                           const Signature& sigma) const;

  /// The Adjust(H) heuristic exposed for tests/ablation: trains a standard
  /// ensemble with `tuned` and lowers depth/leaf limits to mean − stddev of
  /// the observed per-tree statistics. `trigger_size` floors the limits so a
  /// tree can still isolate every trigger instance — §3.2 requires the
  /// shrunken trees to keep "overfitting the expected wrong output on the
  /// trigger set", which is impossible below ~one leaf per trigger point.
  [[nodiscard]] static Result<tree::TreeConfig> AdjustHyperparameters(
      const data::Dataset& train, const tree::TreeConfig& tuned,
      const forest::ForestConfig& forest_template, size_t num_trees, uint64_t seed,
      size_t trigger_size = 0);

 private:
  WatermarkConfig config_;
};

}  // namespace treewm::core

#endif  // TREEWM_CORE_WATERMARK_H_
