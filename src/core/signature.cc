#include "core/signature.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace treewm::core {

Result<Signature> Signature::FromBits(std::vector<uint8_t> bits) {
  if (bits.empty()) return Status::InvalidArgument("signature must be non-empty");
  for (uint8_t b : bits) {
    if (b != 0 && b != 1) return Status::InvalidArgument("signature bits must be 0/1");
  }
  return Signature(std::move(bits));
}

Signature Signature::Random(size_t length, double ones_fraction, Rng* rng) {
  const size_t ones = std::min(
      length, static_cast<size_t>(
                  std::llround(ones_fraction * static_cast<double>(length))));
  std::vector<uint8_t> bits(length, 0);
  for (size_t i = 0; i < ones; ++i) bits[i] = 1;
  rng->Shuffle(&bits);
  return Signature(std::move(bits));
}

Result<Signature> Signature::FromBitString(const std::string& text) {
  std::vector<uint8_t> bits;
  bits.reserve(text.size());
  for (char c : text) {
    if (c == '0') {
      bits.push_back(0);
    } else if (c == '1') {
      bits.push_back(1);
    } else {
      return Status::ParseError(StrFormat("invalid signature character '%c'", c));
    }
  }
  return FromBits(std::move(bits));
}

Signature Signature::FromText(const std::string& text) {
  std::vector<uint8_t> bits;
  bits.reserve(text.size() * 8);
  for (unsigned char byte : text) {
    for (int i = 7; i >= 0; --i) {
      bits.push_back(static_cast<uint8_t>((byte >> i) & 1));
    }
  }
  if (bits.empty()) bits.push_back(0);  // degenerate but non-empty
  return Signature(std::move(bits));
}

Result<std::string> Signature::ToText() const {
  if (bits_.size() % 8 != 0) {
    return Status::FailedPrecondition("signature length is not a multiple of 8");
  }
  std::string out;
  out.reserve(bits_.size() / 8);
  for (size_t i = 0; i < bits_.size(); i += 8) {
    unsigned char byte = 0;
    for (size_t j = 0; j < 8; ++j) byte = static_cast<unsigned char>((byte << 1) | bits_[i + j]);
    out.push_back(static_cast<char>(byte));
  }
  return out;
}

size_t Signature::NumOnes() const {
  return static_cast<size_t>(std::count(bits_.begin(), bits_.end(), uint8_t{1}));
}

std::string Signature::ToBitString() const {
  std::string out;
  out.reserve(bits_.size());
  for (uint8_t b : bits_) out.push_back(b ? '1' : '0');
  return out;
}

Result<size_t> Signature::HammingDistance(const Signature& other) const {
  if (other.length() != length()) {
    return Status::InvalidArgument("signature length mismatch");
  }
  size_t distance = 0;
  for (size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i] != other.bits_[i]) ++distance;
  }
  return distance;
}

JsonValue Signature::ToJson() const {
  JsonValue out = JsonValue::MakeObject();
  out.Set("bits", JsonValue(ToBitString()));
  return out;
}

Result<Signature> Signature::FromJson(const JsonValue& json) {
  TREEWM_ASSIGN_OR_RETURN(const JsonValue* bits, json.Get("bits"));
  if (!bits->is_string()) return Status::ParseError("'bits' must be a string");
  return FromBitString(bits->AsString());
}

}  // namespace treewm::core
