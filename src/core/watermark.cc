#include "core/watermark.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "data/sampling.h"

namespace treewm::core {

Result<tree::TreeConfig> Watermarker::AdjustHyperparameters(
    const data::Dataset& train, const tree::TreeConfig& tuned,
    const forest::ForestConfig& forest_template, size_t num_trees, uint64_t seed,
    size_t trigger_size) {
  // Train a standard ensemble with H and measure its structure (§3.2).
  forest::ForestConfig probe = forest_template;
  probe.num_trees = num_trees;
  probe.tree = tuned;
  probe.seed = seed;
  TREEWM_ASSIGN_OR_RETURN(forest::RandomForest standard,
                          forest::RandomForest::Fit(train, /*weights=*/{}, probe));

  RunningStats depth_stats;
  for (double v : standard.TreeDepths()) depth_stats.Add(v);
  RunningStats leaf_stats;
  for (double v : standard.TreeLeafCounts()) leaf_stats.Add(v);

  // H := mean − stddev for both depth and leaf count, floored at the
  // smallest legal values so tiny/pure trees cannot produce degenerate
  // configs.
  tree::TreeConfig adjusted = tuned;
  const double target_depth = depth_stats.Mean() - depth_stats.PopulationStdDev();
  const double target_leaves = leaf_stats.Mean() - leaf_stats.PopulationStdDev();
  // Capacity floor: a tree forced to misclassify k trigger points needs room
  // to isolate them (≈ one extra leaf each and a path deep enough to reach
  // it), otherwise the boosting loop of TrainWithTrigger cannot converge.
  int depth_floor = 2;
  int leaf_floor = 4;
  if (trigger_size > 0) {
    leaf_floor = static_cast<int>(trigger_size) + 4;
    depth_floor = static_cast<int>(
                      std::ceil(std::log2(static_cast<double>(trigger_size) + 1.0))) +
                  3;
  }
  adjusted.max_depth =
      std::max(depth_floor, static_cast<int>(std::llround(target_depth)));
  adjusted.max_leaf_nodes =
      std::max(leaf_floor, static_cast<int>(std::llround(target_leaves)));
  return adjusted;
}

Result<WatermarkedModel> Watermarker::CreateWatermark(const data::Dataset& train,
                                                      const Signature& sigma) const {
  if (train.num_rows() < 10) {
    return Status::InvalidArgument("training set too small to watermark");
  }
  const size_t m = sigma.length();
  Rng rng(config_.seed);

  // Line 12: H <- GridSearch(D_train, m).
  tree::TreeConfig tuned = config_.trigger_training.forest.tree;
  if (!config_.skip_grid_search) {
    forest::GridSearchConfig grid = config_.grid;
    grid.forest_template = config_.trigger_training.forest;
    grid.seed = rng.NextUint64();
    TREEWM_ASSIGN_OR_RETURN(forest::GridSearchOutcome outcome,
                            forest::GridSearch(train, m, grid));
    tuned = outcome.best;
  }

  // Line 13: D_trigger <- Sample(D_train, k).
  size_t k = config_.trigger_size;
  if (k == 0) {
    k = static_cast<size_t>(
        std::llround(config_.trigger_fraction * static_cast<double>(train.num_rows())));
    k = std::max<size_t>(k, 1);
  }
  TREEWM_ASSIGN_OR_RETURN(std::vector<size_t> trigger_indices,
                          data::SampleTriggerIndices(train, k, &rng));

  // Line 2 (inside TrainWithTrigger in the paper): Adjust(H). Computed once
  // here and shared by both trainings — the heuristic only depends on the
  // standard ensemble, so the two calls in the paper compute the same thing.
  tree::TreeConfig adjusted = tuned;
  if (config_.adjust_hyperparameters) {
    TREEWM_ASSIGN_OR_RETURN(
        adjusted,
        AdjustHyperparameters(train, tuned, config_.trigger_training.forest, m,
                              rng.NextUint64(), k));
  }

  const size_t m_zero = sigma.NumZeros();  // paper's m'
  const size_t m_one = m - m_zero;

  TriggerTrainingConfig t0_config = config_.trigger_training;
  t0_config.forest.tree = adjusted;

  WatermarkedModel result{
      /*model=*/forest::RandomForest::FromTrees(
          {tree::DecisionTree::FromNodes({tree::TreeNode{-1, 0, -1, -1, +1}}, 1)
               .MoveValue()})
          .MoveValue(),
      /*signature=*/sigma,
      /*trigger_set=*/train.Subset(trigger_indices),
      /*trigger_indices=*/trigger_indices,
      /*tuned_config=*/tuned,
      /*adjusted_config=*/adjusted};

  // Line 15: T0 — trees that must classify the trigger set correctly.
  std::vector<tree::DecisionTree> t0_trees;
  if (m_zero > 0) {
    t0_config.forest.num_trees = m_zero;
    t0_config.forest.seed = rng.NextUint64();
    TREEWM_ASSIGN_OR_RETURN(TriggerTrainingResult t0,
                            TrainWithTrigger(train, trigger_indices, t0_config));
    result.t0_converged = t0.converged;
    result.t0_boost_rounds = t0.boost_rounds;
    t0_trees = t0.forest.trees();
  }

  // Lines 16-18: flip the trigger labels inside the training set, then train
  // T1 — trees that must predict the flipped labels.
  std::vector<tree::DecisionTree> t1_trees;
  if (m_one > 0) {
    data::Dataset flipped = train;
    for (size_t idx : trigger_indices) flipped.SetLabel(idx, -train.Label(idx));
    TriggerTrainingConfig t1_config = t0_config;
    t1_config.forest.num_trees = m_one;
    t1_config.forest.seed = rng.NextUint64();
    TREEWM_ASSIGN_OR_RETURN(TriggerTrainingResult t1,
                            TrainWithTrigger(flipped, trigger_indices, t1_config));
    result.t1_converged = t1.converged;
    result.t1_boost_rounds = t1.boost_rounds;
    t1_trees = t1.forest.trees();
  }

  // Lines 19-22: interleave by signature bit.
  std::vector<tree::DecisionTree> interleaved;
  interleaved.reserve(m);
  size_t next_t0 = 0;
  size_t next_t1 = 0;
  for (size_t i = 0; i < m; ++i) {
    if (sigma.bit(i) == 0) {
      interleaved.push_back(std::move(t0_trees[next_t0++]));
    } else {
      interleaved.push_back(std::move(t1_trees[next_t1++]));
    }
  }
  TREEWM_ASSIGN_OR_RETURN(result.model,
                          forest::RandomForest::FromTrees(std::move(interleaved)));

  if (!result.t0_converged || !result.t1_converged) {
    LogWarning("watermark embedded with incomplete trigger agreement; "
               "verification may not match every trigger instance");
  }
  return result;
}

}  // namespace treewm::core
