#include "core/verification.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace treewm::core {

namespace {

/// Required tree output for a trigger instance with true label `y` under
/// signature bit `b`: correct when b = 0, flipped when b = 1.
int RequiredVote(int y, uint8_t b) { return b == 0 ? y : -y; }

}  // namespace

double Log10BinomialTail(size_t n, size_t k, double p) {
  if (k == 0) return 0.0;
  // More successes than trials is impossible. Without this guard the
  // max-shift below dereferences max_element of an empty `terms` vector —
  // undefined behavior.
  if (k > n) return -std::numeric_limits<double>::infinity();
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return 0.0;
  // log10 C(n,i) p^i (1-p)^(n-i), summed via max-shift for stability.
  std::vector<double> terms;
  double log10_p = std::log10(p);
  double log10_q = std::log10(1.0 - p);
  double log10_choose = 0.0;  // C(n,0)
  for (size_t i = 0; i <= n; ++i) {
    if (i >= k) {
      terms.push_back(log10_choose + static_cast<double>(i) * log10_p +
                      static_cast<double>(n - i) * log10_q);
    }
    // C(n,i+1) = C(n,i) * (n-i)/(i+1)
    log10_choose += std::log10(static_cast<double>(n - i)) -
                    std::log10(static_cast<double>(i + 1));
  }
  if (terms.empty()) return -std::numeric_limits<double>::infinity();
  const double max_term = *std::max_element(terms.begin(), terms.end());
  double sum = 0.0;
  for (double t : terms) sum += std::pow(10.0, t - max_term);
  return max_term + std::log10(sum);
}

predict::VoteMatrix BlackBoxModel::QueryPredictAllVotes(
    const data::Dataset& batch) const {
  predict::VoteMatrix out(batch.num_rows(), NumTrees());
  for (size_t i = 0; i < batch.num_rows(); ++i) {
    const std::vector<int> votes = QueryPredictAll(batch.Row(i));
    int8_t* row = out.mutable_row(i);
    for (size_t t = 0; t < votes.size() && t < out.num_trees(); ++t) {
      row[t] = static_cast<int8_t>(votes[t]);
    }
  }
  return out;
}

std::vector<std::vector<int>> BlackBoxModel::QueryPredictAllBatch(
    const data::Dataset& batch) const {
  return QueryPredictAllVotes(batch).ToNested();
}

Result<VerificationReport> VerificationAuthority::Verify(
    const BlackBoxModel& model, const VerificationRequest& request, Rng* rng) {
  const data::Dataset& trigger = request.trigger_set;
  const data::Dataset& decoys = request.test_set;
  if (trigger.num_rows() == 0) {
    return Status::InvalidArgument("empty trigger set");
  }
  if (trigger.num_features() != decoys.num_features()) {
    return Status::InvalidArgument("trigger/test feature mismatch");
  }
  const size_t m = request.signature.length();
  if (model.NumTrees() != m) {
    return Status::InvalidArgument(
        StrFormat("suspect model has %zu trees, signature has %zu bits",
                  model.NumTrees(), m));
  }

  // Build the disguised batch: trigger rows hidden among the decoys in a
  // random order, so the suspect cannot identify and special-case them.
  struct BatchRow {
    bool is_trigger;
    size_t source_row;
  };
  std::vector<BatchRow> batch;
  batch.reserve(trigger.num_rows() + decoys.num_rows());
  for (size_t i = 0; i < trigger.num_rows(); ++i) batch.push_back({true, i});
  for (size_t i = 0; i < decoys.num_rows(); ++i) batch.push_back({false, i});
  rng->Shuffle(&batch);

  // Materialize the disguised batch and query the suspect once; a batched
  // implementation answers all rows through the flat-inference engine. The
  // batch carries a CONSTANT placeholder label: the suspect is untrusted,
  // and true labels (especially the triggers' expected responses) must
  // never cross the black-box boundary. Scoring below reads labels from
  // the sources, not from this dataset.
  data::Dataset disguised(trigger.num_features());
  disguised.Reserve(batch.size());
  for (const BatchRow& row : batch) {
    const data::Dataset& source = row.is_trigger ? trigger : decoys;
    TREEWM_RETURN_IF_ERROR(
        disguised.AddRow(source.Row(row.source_row), data::kPositive));
  }
  const predict::VoteMatrix all_votes = model.QueryPredictAllVotes(disguised);

  VerificationReport report;
  report.trigger_size = trigger.num_rows();

  size_t trigger_bit_matches = 0;
  size_t control_bit_matches = 0;
  size_t control_bits = 0;
  for (size_t b = 0; b < batch.size(); ++b) {
    const BatchRow& row = batch[b];
    const data::Dataset& source = row.is_trigger ? trigger : decoys;
    const std::span<const int8_t> votes = all_votes.row(b);
    const int y = source.Label(row.source_row);
    size_t matches = 0;
    for (size_t t = 0; t < m; ++t) {
      if (votes[t] == RequiredVote(y, request.signature.bit(t))) ++matches;
    }
    if (row.is_trigger) {
      trigger_bit_matches += matches;
      if (matches == m) ++report.matching_instances;
    } else {
      control_bit_matches += matches;
      control_bits += m;
    }
  }

  report.verified = report.matching_instances == trigger.num_rows();
  report.bit_match_rate = static_cast<double>(trigger_bit_matches) /
                          static_cast<double>(trigger.num_rows() * m);
  report.control_match_rate =
      control_bits == 0
          ? 0.5
          : static_cast<double>(control_bit_matches) / static_cast<double>(control_bits);

  // Null model: each tree matches its required bit independently with
  // probability control_match_rate, so a full m-bit pattern matches with
  // probability control_match_rate^m.
  const double p_instance =
      std::pow(std::clamp(report.control_match_rate, 1e-9, 1.0 - 1e-9),
               static_cast<double>(m));
  report.log10_p_value = Log10BinomialTail(trigger.num_rows(),
                                           report.matching_instances, p_instance);
  report.log10_bit_p_value =
      Log10BinomialTail(trigger.num_rows() * m, trigger_bit_matches,
                        std::clamp(report.control_match_rate, 1e-9, 1.0 - 1e-9));
  return report;
}

}  // namespace treewm::core
