// Per-feature binned (quantized) columns — the substrate of the histogram
// training engine.
//
// The exact sort-once engine (sorted_columns.h + trainer_core.h) sweeps
// every row of a node per feature: O(rows) gain evaluations per split, the
// wrong asymptotic for the million-row regime. BinnedColumns applies the
// same cut-collection idea the inference side proved out in
// predict/quantized_ensemble.h — per-feature cut arrays, uint8/uint16 row
// codes — to TRAINING: each feature is binned ONCE per dataset, after which
// a split sweep is O(bins) over a per-node histogram (histogram_core.h)
// instead of O(rows) over a sorted column.
//
// Bin layout, per feature:
//   * when the feature has at most `max_bins` distinct values, every
//     distinct value gets its own bin — the candidate threshold set then
//     EQUALS the exact engine's (midpoints between adjacent distinct
//     values, same one-ulp-fallback formula), so on such features the two
//     engines search identical cuts;
//   * otherwise bins are equal-frequency (quantile) groups of whole
//     distinct-value runs, closed greedily at ceil(remaining_rows /
//     remaining_bins) — never more than `max_bins` bins, never an empty
//     bin, never a cut through a tied value run.
//
// Codes are uint8 when every feature fits in 256 bins (the default cap of
// 255 always does) and fall back to uint16 otherwise, mirroring the
// QuantizedEnsemble width rule. The object is immutable after Build and is
// shared across trees, boosting rounds and ThreadPool workers exactly like
// SortedColumns — for GBDT one binning pass serves every round.

#ifndef TREEWM_TREE_BINNED_COLUMNS_H_
#define TREEWM_TREE_BINNED_COLUMNS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "data/dataset.h"

namespace treewm::tree {

/// Which split-search engine a trainer runs on.
enum class TrainerMode {
  /// Sort-once column-index engine — the default and the executable spec;
  /// bit-identical to the retained naive reference.
  kExact,
  /// Binned-gradient histogram engine — approximate (accuracy-parity, not
  /// bit-identity, vs kExact), O(bins) split sweeps, opt-in.
  kHistogram,
};

/// Binning knobs for BinnedColumns::Build.
struct BinnedOptions {
  /// Maximum bins per feature, in [2, 65535]. 255 (the LightGBM default)
  /// keeps every code in uint8; above 256 codes widen to uint16.
  size_t max_bins = 255;
};

/// Immutable per-feature bin codes + cut arrays for one dataset.
class BinnedColumns {
 public:
  /// Bins every feature of `dataset`: sort the column, then one bin per
  /// distinct value (when they fit) or equal-frequency groups. O(d·n log n),
  /// paid once per dataset. `pool` fans the per-feature work out (nullptr =
  /// serial); the result is identical at every thread count — features are
  /// binned independently into disjoint slabs.
  static Result<std::shared_ptr<const BinnedColumns>> Build(
      const data::Dataset& dataset, const BinnedOptions& options = {},
      ThreadPool* pool = nullptr);

  size_t num_rows() const { return num_rows_; }
  size_t num_features() const { return num_features_; }

  /// The cap Build ran with (BinnedOptions::max_bins).
  size_t max_bins() const { return max_bins_; }

  /// True when codes are uint16 (some feature needed more than 256 bins).
  bool wide() const { return wide_; }

  /// Number of bins of feature `f` (>= 1; 1 means the feature is constant).
  uint32_t num_bins(size_t f) const { return num_bins_[f]; }

  /// Thresholds between adjacent bins of feature `f`: split_values(f)[b] is
  /// the "x <= t" threshold realizing the cut {bins <= b} | {bins > b},
  /// computed with the exact engine's midpoint-with-ulp-fallback formula so
  /// the training rows' partition and the inference-time comparison agree.
  /// Size num_bins(f) - 1, strictly increasing.
  std::span<const float> split_values(size_t f) const { return splits_[f]; }

  /// Raw code column of feature `f` (call the variant matching wide()).
  const uint8_t* codes8(size_t f) const {
    return codes8_.data() + f * num_rows_;
  }
  const uint16_t* codes16(size_t f) const {
    return codes16_.data() + f * num_rows_;
  }

  /// Width-agnostic single-code accessor (tests / cold paths).
  uint16_t code(size_t f, size_t row) const {
    return wide_ ? codes16(f)[row] : codes8(f)[row];
  }

 private:
  BinnedColumns() = default;

  size_t num_rows_ = 0;
  size_t num_features_ = 0;
  size_t max_bins_ = 0;
  bool wide_ = false;
  std::vector<uint32_t> num_bins_;          // per feature
  std::vector<std::vector<float>> splits_;  // per feature, num_bins - 1 cuts
  std::vector<uint8_t> codes8_;             // feature-major d × n (narrow)
  std::vector<uint16_t> codes16_;           // feature-major d × n (wide)
};

/// InvalidArgument unless `binned` is non-null and was built for a dataset
/// of exactly `dataset`'s shape — the shape contract every histogram-mode
/// trainer enforces (histogram mode cannot run without binned columns, so
/// unlike ValidateColumnsMatch a null pointer is only accepted by trainers
/// that build internally; they validate after building).
[[nodiscard]] Status ValidateBinnedMatch(const BinnedColumns* binned,
                                         const data::Dataset& dataset);

}  // namespace treewm::tree

#endif  // TREEWM_TREE_BINNED_COLUMNS_H_
