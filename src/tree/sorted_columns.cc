#include "tree/sorted_columns.h"

#include <algorithm>

#include "common/string_util.h"

namespace treewm::tree {

Status ValidateColumnsMatch(const SortedColumns* sorted,
                            const data::Dataset& dataset) {
  if (sorted != nullptr && (sorted->num_rows() != dataset.num_rows() ||
                            sorted->num_features() != dataset.num_features())) {
    return Status::InvalidArgument(
        StrFormat("sorted columns shape (%zu x %zu) does not match dataset "
                  "(%zu x %zu)",
                  sorted->num_rows(), sorted->num_features(), dataset.num_rows(),
                  dataset.num_features()));
  }
  return Status::OK();
}

std::shared_ptr<const SortedColumns> SortedColumns::Build(
    const data::Dataset& dataset) {
  return Build(dataset, &ThreadPool::Global());
}

std::shared_ptr<const SortedColumns> SortedColumns::Build(
    const data::Dataset& dataset, ThreadPool* pool) {
  auto columns = std::shared_ptr<SortedColumns>(new SortedColumns());
  const size_t n = dataset.num_rows();
  const size_t d = dataset.num_features();
  columns->num_rows_ = n;
  columns->num_features_ = d;
  columns->entries_.resize(d * n);
  // Each feature task fills and sorts only its own n-entry slab, and the
  // sort itself is deterministic, so the built columns are bit-identical
  // at every thread count.
  ParallelFor(pool, d, [&](size_t f) {
    ColumnEntry* col = columns->entries_.data() + f * n;
    for (size_t i = 0; i < n; ++i) {
      col[i] = {static_cast<uint32_t>(i), dataset.At(i, f)};
    }
    // Stable: value ties stay in ascending row order. This IS the engine's
    // tie contract — stable partition preserves it at every node, and the
    // retained naive reference (splitter.cc) gathers rows in ascending
    // order and stable-sorts, so both sides accumulate value-tied runs in
    // the same left-to-right order and FP sums match bit-for-bit.
    std::stable_sort(col, col + n, [](const ColumnEntry& a, const ColumnEntry& b) {
      return a.value < b.value;
    });
  });
  return columns;
}

}  // namespace treewm::tree
