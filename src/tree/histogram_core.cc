#include "tree/histogram_core.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "tree/splitter.h"

namespace treewm::tree {

namespace {

// Accumulation kernels, templated on code width so the hot loop reads one
// byte (or two) per row with no branch. Rows arrive in ascending original
// order (the partition is stable), so weight sums accumulate in the same
// row order at every thread count — determinism needs no reduction tricks
// here because each feature's histogram is built by exactly one task.
template <typename Code>
void AccumulateClass(const Code* codes, const uint32_t* rows, size_t count,
                     const int8_t* labels, const double* weights,
                     ClassHistBin* bins) {
  for (size_t i = 0; i < count; ++i) {
    const uint32_t r = rows[i];
    ClassHistBin& bin = bins[codes[r]];
    if (labels[r] > 0) {
      bin.positive += weights[r];
    } else {
      bin.negative += weights[r];
    }
    ++bin.count;
  }
}

template <typename Code>
void AccumulateSse(const Code* codes, const uint32_t* rows, size_t count,
                   const double* targets, SseHistBin* bins) {
  for (size_t i = 0; i < count; ++i) {
    const uint32_t r = rows[i];
    SseHistBin& bin = bins[codes[r]];
    bin.sum += targets[r];
    ++bin.count;
  }
}

}  // namespace

void BestClassSplitOnHistogram(std::span<const ClassHistBin> bins, int feature,
                               std::span<const float> split_values,
                               SplitCriterion criterion,
                               const ClassWeights& node_weights,
                               size_t node_count, size_t min_samples_leaf,
                               std::optional<HistClassSplit>* best) {
  ClassWeights left;
  size_t left_count = 0;
  // Cut b sends bins [0, b] left. The last bin is never a cut (right side
  // would be empty).
  for (size_t b = 0; b + 1 < bins.size(); ++b) {
    left.positive += bins[b].positive;
    left.negative += bins[b].negative;
    left_count += bins[b].count;
    // An empty bin yields the same row partition as the previous cut (or an
    // empty left side at b == 0) — skip it so each distinct partition is
    // scored once, at its lowest bin.
    if (bins[b].count == 0) continue;
    if (left_count < min_samples_leaf) continue;
    const size_t right_count = node_count - left_count;
    // right_count only shrinks from here on.
    if (right_count < min_samples_leaf) break;
    ClassWeights right;
    right.positive = node_weights.positive - left.positive;
    right.negative = node_weights.negative - left.negative;
    const double gain = ImpurityDecrease(criterion, node_weights, left, right);
    if (gain > kMinSplitGain && (!*best || gain > (*best)->gain)) {
      HistClassSplit& s = best->emplace();
      s.feature = feature;
      s.split_bin = static_cast<uint32_t>(b);
      s.threshold = split_values[b];
      s.gain = gain;
      s.left_weights = left;
      s.right_weights = right;
      s.left_count = left_count;
      s.right_count = right_count;
    }
  }
}

void BestSseSplitOnHistogram(std::span<const SseHistBin> bins, int feature,
                             std::span<const float> split_values,
                             double total_sum, double parent_term,
                             size_t node_count, size_t min_samples_leaf,
                             double min_gain, HistSseSplit* best) {
  double left_sum = 0.0;
  size_t left_count = 0;
  for (size_t b = 0; b + 1 < bins.size(); ++b) {
    left_sum += bins[b].sum;
    left_count += bins[b].count;
    if (bins[b].count == 0) continue;
    if (left_count < min_samples_leaf) continue;
    const size_t right_count = node_count - left_count;
    if (right_count < min_samples_leaf) break;
    const double right_sum = total_sum - left_sum;
    const double gain = left_sum * left_sum / static_cast<double>(left_count) +
                        right_sum * right_sum / static_cast<double>(right_count) -
                        parent_term;
    if (gain > min_gain && gain > best->gain) {
      best->feature = feature;
      best->split_bin = static_cast<uint32_t>(b);
      best->threshold = split_values[b];
      best->gain = gain;
      best->left_sum = left_sum;
      best->left_count = left_count;
    }
  }
}

ThreadPool* ResolveTrainerPool(size_t num_threads,
                               std::unique_ptr<ThreadPool>* local_pool) {
  if (num_threads == 1) return nullptr;
  if (num_threads == 0) return &ThreadPool::Global();
  *local_pool = std::make_unique<ThreadPool>(num_threads);
  return local_pool->get();
}

HistogramCore::HistogramCore(const BinnedColumns& binned,
                             const std::vector<int>& features,
                             ThreadPool* pool)
    : binned_(&binned), features_(features), pool_(pool),
      n_(binned.num_rows()) {
  slot_offset_.resize(features_.size());
  size_t offset = 0;
  for (size_t s = 0; s < features_.size(); ++s) {
    slot_offset_[s] = offset;
    offset += binned.num_bins(static_cast<size_t>(features_[s]));
  }
  total_bins_ = offset;
  rows_.resize(n_);
  std::iota(rows_.begin(), rows_.end(), 0u);
  scratch_.resize(n_);
  class_fresh_.resize(features_.size());
  class_remainder_.resize(features_.size());
  sse_fresh_.resize(features_.size());
  sse_remainder_.resize(features_.size());
}

size_t HistogramCore::ApplySplit(size_t begin, size_t end, int feature,
                                 uint32_t split_bin) {
  const size_t f = static_cast<size_t>(feature);
  size_t lp = begin;
  size_t rp = 0;
  if (binned_->wide()) {
    const uint16_t* codes = binned_->codes16(f);
    for (size_t i = begin; i < end; ++i) {
      const uint32_t r = rows_[i];
      if (codes[r] <= split_bin) {
        rows_[lp++] = r;
      } else {
        scratch_[rp++] = r;
      }
    }
  } else {
    const uint8_t* codes = binned_->codes8(f);
    for (size_t i = begin; i < end; ++i) {
      const uint32_t r = rows_[i];
      if (codes[r] <= split_bin) {
        rows_[lp++] = r;
      } else {
        scratch_[rp++] = r;
      }
    }
  }
  std::copy(scratch_.begin(), scratch_.begin() + static_cast<ptrdiff_t>(rp),
            rows_.begin() + static_cast<ptrdiff_t>(lp));
  return lp;
}

void HistogramCore::ClassOp(const ClassSweepConfig& config,
                            const int8_t* labels, const double* weights,
                            std::vector<ClassHistBin>* fresh,
                            std::vector<ClassHistBin>* parent,
                            size_t fresh_begin, size_t fresh_end,
                            const ClassNodeStats& fresh_stats,
                            const ClassNodeStats& remainder_stats,
                            bool sweep_fresh, bool sweep_remainder,
                            std::optional<HistClassSplit>* best_fresh,
                            std::optional<HistClassSplit>* best_remainder) {
  assert(parent != nullptr || !sweep_remainder);
  fresh->resize(total_bins_);
  const uint32_t* rows = rows_.data() + fresh_begin;
  const size_t count = fresh_end - fresh_begin;
  ParallelFor(pool_, features_.size(), [&](size_t s) {
    const size_t f = static_cast<size_t>(features_[s]);
    const size_t nb = binned_->num_bins(f);
    ClassHistBin* fb = fresh->data() + slot_offset_[s];
    std::fill(fb, fb + nb, ClassHistBin{});
    if (binned_->wide()) {
      AccumulateClass(binned_->codes16(f), rows, count, labels, weights, fb);
    } else {
      AccumulateClass(binned_->codes8(f), rows, count, labels, weights, fb);
    }
    ClassHistBin* pb = nullptr;
    if (parent != nullptr) {
      pb = parent->data() + slot_offset_[s];
      for (size_t b = 0; b < nb; ++b) {
        pb[b].positive -= fb[b].positive;
        pb[b].negative -= fb[b].negative;
        pb[b].count -= fb[b].count;
      }
    }
    class_fresh_[s].reset();
    class_remainder_[s].reset();
    const std::span<const float> cuts =
        binned_->split_values(f);
    if (sweep_fresh) {
      BestClassSplitOnHistogram({fb, nb}, features_[s], cuts, config.criterion,
                                fresh_stats.weights, fresh_stats.count,
                                config.min_samples_leaf, &class_fresh_[s]);
    }
    if (sweep_remainder) {
      BestClassSplitOnHistogram({pb, nb}, features_[s], cuts, config.criterion,
                                remainder_stats.weights, remainder_stats.count,
                                config.min_samples_leaf, &class_remainder_[s]);
    }
  });
  // Serial reduction in slot order with strict ">": the winner is the lowest
  // slot reaching the maximal gain, independent of how the tasks above were
  // scheduled.
  best_fresh->reset();
  if (best_remainder != nullptr) best_remainder->reset();
  for (size_t s = 0; s < features_.size(); ++s) {
    if (class_fresh_[s] &&
        (!*best_fresh || class_fresh_[s]->gain > (*best_fresh)->gain)) {
      *best_fresh = class_fresh_[s];
    }
    if (best_remainder != nullptr && class_remainder_[s] &&
        (!*best_remainder ||
         class_remainder_[s]->gain > (*best_remainder)->gain)) {
      *best_remainder = class_remainder_[s];
    }
  }
}

void HistogramCore::SseOp(const SseSweepConfig& config, const double* targets,
                          std::vector<SseHistBin>* fresh,
                          std::vector<SseHistBin>* parent, size_t fresh_begin,
                          size_t fresh_end, const SseNodeStats& fresh_stats,
                          const SseNodeStats& remainder_stats, bool sweep_fresh,
                          bool sweep_remainder, HistSseSplit* best_fresh,
                          HistSseSplit* best_remainder) {
  assert(parent != nullptr || !sweep_remainder);
  fresh->resize(total_bins_);
  const uint32_t* rows = rows_.data() + fresh_begin;
  const size_t count = fresh_end - fresh_begin;
  const double fresh_term =
      fresh_stats.count == 0
          ? 0.0
          : fresh_stats.sum * fresh_stats.sum /
                static_cast<double>(fresh_stats.count);
  const double remainder_term =
      remainder_stats.count == 0
          ? 0.0
          : remainder_stats.sum * remainder_stats.sum /
                static_cast<double>(remainder_stats.count);
  ParallelFor(pool_, features_.size(), [&](size_t s) {
    const size_t f = static_cast<size_t>(features_[s]);
    const size_t nb = binned_->num_bins(f);
    SseHistBin* fb = fresh->data() + slot_offset_[s];
    std::fill(fb, fb + nb, SseHistBin{});
    if (binned_->wide()) {
      AccumulateSse(binned_->codes16(f), rows, count, targets, fb);
    } else {
      AccumulateSse(binned_->codes8(f), rows, count, targets, fb);
    }
    SseHistBin* pb = nullptr;
    if (parent != nullptr) {
      pb = parent->data() + slot_offset_[s];
      for (size_t b = 0; b < nb; ++b) {
        pb[b].sum -= fb[b].sum;
        pb[b].count -= fb[b].count;
      }
    }
    sse_fresh_[s] = HistSseSplit{};
    sse_remainder_[s] = HistSseSplit{};
    const std::span<const float> cuts = binned_->split_values(f);
    if (sweep_fresh) {
      BestSseSplitOnHistogram({fb, nb}, features_[s], cuts, fresh_stats.sum,
                              fresh_term, fresh_stats.count,
                              config.min_samples_leaf, config.min_gain,
                              &sse_fresh_[s]);
    }
    if (sweep_remainder) {
      BestSseSplitOnHistogram({pb, nb}, features_[s], cuts, remainder_stats.sum,
                              remainder_term, remainder_stats.count,
                              config.min_samples_leaf, config.min_gain,
                              &sse_remainder_[s]);
    }
  });
  *best_fresh = HistSseSplit{};
  if (best_remainder != nullptr) *best_remainder = HistSseSplit{};
  for (size_t s = 0; s < features_.size(); ++s) {
    if (sse_fresh_[s].feature >= 0 && sse_fresh_[s].gain > best_fresh->gain) {
      *best_fresh = sse_fresh_[s];
    }
    if (best_remainder != nullptr && sse_remainder_[s].feature >= 0 &&
        sse_remainder_[s].gain > best_remainder->gain) {
      *best_remainder = sse_remainder_[s];
    }
  }
}

}  // namespace treewm::tree
