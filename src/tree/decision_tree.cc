#include "tree/decision_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <queue>

#include "common/string_util.h"
#include "predict/batch_predictor.h"
#include "predict/flat_cache.h"
#include "tree/histogram_core.h"
#include "tree/splitter.h"
#include "tree/trainer_core.h"

namespace treewm::tree {

Status TreeConfig::Validate() const {
  if (max_depth < -1 || max_depth == 0) {
    return Status::InvalidArgument("max_depth must be -1 (unlimited) or >= 1");
  }
  if (max_leaf_nodes < -1 || max_leaf_nodes == 0 || max_leaf_nodes == 1) {
    return Status::InvalidArgument("max_leaf_nodes must be -1 (unlimited) or >= 2");
  }
  if (min_samples_split < 2) {
    return Status::InvalidArgument("min_samples_split must be >= 2");
  }
  if (min_samples_leaf < 1) {
    return Status::InvalidArgument("min_samples_leaf must be >= 1");
  }
  if (max_bins < 2 || max_bins > 65535) {
    return Status::InvalidArgument("max_bins must be in [2, 65535]");
  }
  return Status::OK();
}

namespace {

/// A frontier node awaiting expansion in best-first growth. The sort-once
/// engine addresses node membership as a range [begin, end) into the
/// TrainerCore columns; the retained reference path owns an index vector.
struct FrontierEntry {
  double gain;
  uint64_t sequence;  // deterministic FIFO tie-break
  int node_index;
  int depth;
  size_t begin;
  size_t end;
  std::vector<size_t> indices;  // reference path only (ranges otherwise)
  SplitCandidate split;
};

struct FrontierCompare {
  bool operator()(const FrontierEntry& a, const FrontierEntry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;  // max-heap on gain
    return a.sequence > b.sequence;                // then FIFO
  }
};

/// Shared argument validation for both trainers; also resolves the feature
/// sweep order (subset as given, else all features ascending).
Status ValidateFitInputs(const data::Dataset& dataset,
                         const std::vector<double>& weights,
                         const TreeConfig& config,
                         const std::vector<int>& feature_subset,
                         std::vector<int>* features) {
  TREEWM_RETURN_IF_ERROR(config.Validate());
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit a tree on an empty dataset");
  }
  if (!weights.empty() && weights.size() != dataset.num_rows()) {
    return Status::InvalidArgument(
        StrFormat("weights size %zu != rows %zu", weights.size(), dataset.num_rows()));
  }
  for (int f : feature_subset) {
    if (f < 0 || static_cast<size_t>(f) >= dataset.num_features()) {
      return Status::InvalidArgument(StrFormat("feature %d out of range", f));
    }
  }
  *features = feature_subset;
  if (features->empty()) {
    features->resize(dataset.num_features());
    for (size_t j = 0; j < dataset.num_features(); ++j) {
      (*features)[j] = static_cast<int>(j);
    }
  }
  return Status::OK();
}

/// Frontier entry of the histogram engine: same (gain, sequence) best-first
/// ordering as the exact engine, but each queued node OWNS its histogram
/// buffer — the subtraction trick needs the parent's histogram alive at
/// expansion time. Buffers are recycled through a freelist, so peak memory
/// is O(frontier size × Σ bins), bounded by max_leaf_nodes when it is set.
struct HistFrontierEntry {
  double gain;
  uint64_t sequence;
  int node_index;
  int depth;
  size_t begin;
  size_t end;
  std::unique_ptr<std::vector<ClassHistBin>> hist;
  HistClassSplit split;
};

struct HistFrontierCompare {
  bool operator()(const HistFrontierEntry& a, const HistFrontierEntry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;  // max-heap on gain
    return a.sequence > b.sequence;                // then FIFO
  }
};

/// The histogram-mode grower. Mirrors the exact engine's control flow
/// (same expansion gates, same best-first (gain, sequence) order, so on
/// inputs where the two engines agree on every gain the node NUMBERING
/// matches too); per level, only the smaller child of each split is
/// accumulated from rows — the larger child's histogram is the parent's
/// minus the sibling's, computed in place.
Status GrowHistogramNodes(const data::Dataset& dataset,
                          const double* row_weights, const TreeConfig& config,
                          const std::vector<int>& features,
                          const BinnedColumns* binned, ThreadPool* pool,
                          std::vector<TreeNode>* nodes) {
  HistogramCore core(*binned, features, pool);
  const size_t n = dataset.num_rows();
  const int8_t* labels = dataset.labels().data();

  // Same accumulation order as the exact engines: ascending rows.
  ClassWeights root_weights;
  for (size_t i = 0; i < n; ++i) root_weights.Add(labels[i], row_weights[i]);

  TreeNode root;
  root.label = root_weights.MajorityLabel();
  nodes->push_back(root);

  using Buffer = std::vector<ClassHistBin>;
  std::vector<std::unique_ptr<Buffer>> free_buffers;
  auto take_buffer = [&]() -> std::unique_ptr<Buffer> {
    if (!free_buffers.empty()) {
      std::unique_ptr<Buffer> buffer = std::move(free_buffers.back());
      free_buffers.pop_back();
      return buffer;
    }
    return std::make_unique<Buffer>();
  };
  auto recycle = [&](std::unique_ptr<Buffer> buffer) {
    if (buffer != nullptr) free_buffers.push_back(std::move(buffer));
  };

  const HistogramCore::ClassSweepConfig sweep{config.criterion,
                                              config.min_samples_leaf};

  // The exact engine's try_enqueue gates, verbatim.
  auto expandable = [&](int depth, size_t count, const ClassWeights& weights) {
    if (config.max_depth != -1 && depth >= config.max_depth) return false;
    if (count < config.min_samples_split) return false;
    if (weights.positive <= 0.0 || weights.negative <= 0.0) return false;  // pure
    if (count < 2) return false;
    return true;
  };

  std::priority_queue<HistFrontierEntry, std::vector<HistFrontierEntry>,
                      HistFrontierCompare>
      frontier;
  uint64_t sequence = 0;

  if (expandable(0, n, root_weights)) {
    std::unique_ptr<Buffer> hist = take_buffer();
    std::optional<HistClassSplit> best;
    core.ClassOp(sweep, labels, row_weights, hist.get(), /*parent=*/nullptr,
                 0, n, {root_weights, n}, {}, /*sweep_fresh=*/true,
                 /*sweep_remainder=*/false, &best, nullptr);
    if (best) {
      frontier.push(HistFrontierEntry{best->gain, sequence++, 0, 0, 0, n,
                                      std::move(hist), *best});
    } else {
      recycle(std::move(hist));
    }
  }

  int64_t splits_remaining = config.max_leaf_nodes == -1
                                 ? std::numeric_limits<int64_t>::max()
                                 : config.max_leaf_nodes - 1;

  while (!frontier.empty() && splits_remaining > 0) {
    HistFrontierEntry entry =
        std::move(const_cast<HistFrontierEntry&>(frontier.top()));
    frontier.pop();
    --splits_remaining;

    const size_t mid = core.ApplySplit(entry.begin, entry.end,
                                       entry.split.feature,
                                       entry.split.split_bin);
    assert(mid == entry.begin + entry.split.left_count);

    const int left_index = static_cast<int>(nodes->size());
    TreeNode left_node;
    left_node.label = entry.split.left_weights.MajorityLabel();
    nodes->push_back(left_node);

    const int right_index = static_cast<int>(nodes->size());
    TreeNode right_node;
    right_node.label = entry.split.right_weights.MajorityLabel();
    nodes->push_back(right_node);

    TreeNode& parent = (*nodes)[static_cast<size_t>(entry.node_index)];
    parent.feature = entry.split.feature;
    parent.threshold = entry.split.threshold;
    parent.left = left_index;
    parent.right = right_index;

    const int child_depth = entry.depth + 1;
    const bool left_exp =
        expandable(child_depth, entry.split.left_count, entry.split.left_weights);
    const bool right_exp = expandable(child_depth, entry.split.right_count,
                                      entry.split.right_weights);

    std::unique_ptr<Buffer> left_hist;
    std::unique_ptr<Buffer> right_hist;
    std::optional<HistClassSplit> left_best;
    std::optional<HistClassSplit> right_best;
    if (left_exp || right_exp) {
      // Accumulate only the smaller child (ties go left); the sibling's
      // histogram is the parent's buffer after in-place subtraction.
      const bool left_small = entry.split.left_count <= entry.split.right_count;
      std::unique_ptr<Buffer> fresh = take_buffer();
      std::optional<HistClassSplit> best_fresh;
      std::optional<HistClassSplit> best_remainder;
      const HistogramCore::ClassNodeStats left_stats{entry.split.left_weights,
                                                     entry.split.left_count};
      const HistogramCore::ClassNodeStats right_stats{entry.split.right_weights,
                                                      entry.split.right_count};
      if (left_small) {
        core.ClassOp(sweep, labels, row_weights, fresh.get(), entry.hist.get(),
                     entry.begin, mid, left_stats, right_stats, left_exp,
                     right_exp, &best_fresh, &best_remainder);
        left_hist = std::move(fresh);
        right_hist = std::move(entry.hist);
        left_best = best_fresh;
        right_best = best_remainder;
      } else {
        core.ClassOp(sweep, labels, row_weights, fresh.get(), entry.hist.get(),
                     mid, entry.end, right_stats, left_stats, right_exp,
                     left_exp, &best_fresh, &best_remainder);
        right_hist = std::move(fresh);
        left_hist = std::move(entry.hist);
        right_best = best_fresh;
        left_best = best_remainder;
      }
    }

    if (left_best) {
      frontier.push(HistFrontierEntry{left_best->gain, sequence++, left_index,
                                      child_depth, entry.begin, mid,
                                      std::move(left_hist), *left_best});
    } else {
      recycle(std::move(left_hist));
    }
    if (right_best) {
      frontier.push(HistFrontierEntry{right_best->gain, sequence++, right_index,
                                      child_depth, mid, entry.end,
                                      std::move(right_hist), *right_best});
    } else {
      recycle(std::move(right_hist));
    }
    recycle(std::move(entry.hist));  // null unless both children went leaf
  }

  return Status::OK();
}

}  // namespace

Result<DecisionTree> DecisionTree::Fit(const data::Dataset& dataset,
                                       const std::vector<double>& weights,
                                       const TreeConfig& config,
                                       const std::vector<int>& feature_subset,
                                       const SortedColumns* sorted,
                                       const BinnedColumns* binned) {
  std::vector<int> features;
  TREEWM_RETURN_IF_ERROR(
      ValidateFitInputs(dataset, weights, config, feature_subset, &features));

  const std::vector<double> unit_weights =
      weights.empty() ? std::vector<double>(dataset.num_rows(), 1.0)
                      : std::vector<double>();
  const std::vector<double>& w = weights.empty() ? unit_weights : weights;

  if (config.trainer_mode == TrainerMode::kHistogram) {
    if (sorted != nullptr) {
      return Status::InvalidArgument(
          "histogram trainer mode takes binned columns, not sorted columns");
    }
    std::unique_ptr<ThreadPool> local_pool;
    ThreadPool* pool = ResolveTrainerPool(config.num_threads, &local_pool);
    std::shared_ptr<const BinnedColumns> owned_binned;
    if (binned == nullptr) {
      TREEWM_ASSIGN_OR_RETURN(
          owned_binned,
          BinnedColumns::Build(dataset, BinnedOptions{config.max_bins}, pool));
      binned = owned_binned.get();
    }
    TREEWM_RETURN_IF_ERROR(ValidateBinnedMatch(binned, dataset));
    DecisionTree tree;
    tree.num_features_ = dataset.num_features();
    tree.feature_subset_ = feature_subset;
    TREEWM_RETURN_IF_ERROR(GrowHistogramNodes(dataset, w.data(), config,
                                              features, binned, pool,
                                              &tree.nodes_));
    return tree;
  }
  if (binned != nullptr) {
    return Status::InvalidArgument(
        "binned columns passed but trainer_mode is exact");
  }
  TREEWM_RETURN_IF_ERROR(ValidateColumnsMatch(sorted, dataset));

  std::shared_ptr<const SortedColumns> owned_sorted;
  if (sorted == nullptr) {
    owned_sorted = SortedColumns::Build(dataset);
    sorted = owned_sorted.get();
  }
  TrainerCore core(*sorted, features, /*with_identity=*/false);

  DecisionTree tree;
  tree.num_features_ = dataset.num_features();
  tree.feature_subset_ = feature_subset;

  const size_t n = dataset.num_rows();
  const int8_t* labels = dataset.labels().data();
  const double* row_weights = w.data();

  // Same accumulation order as Splitter::ComputeWeights over ascending rows.
  ClassWeights root_weights;
  for (size_t i = 0; i < n; ++i) root_weights.Add(labels[i], row_weights[i]);

  TreeNode root;
  root.label = root_weights.MajorityLabel();
  tree.nodes_.push_back(root);

  // Best-first frontier. With max_leaf_nodes == -1 the expansion order does
  // not change the final tree (greedy splits are node-local), so a single
  // code path serves both growth modes. Queued candidates stay valid while
  // other nodes are expanded: node ranges are disjoint, so partitions never
  // disturb a sibling's columns.
  std::priority_queue<FrontierEntry, std::vector<FrontierEntry>, FrontierCompare>
      frontier;
  uint64_t sequence = 0;

  auto try_enqueue = [&](int node_index, int depth, size_t begin, size_t end,
                         const ClassWeights& node_weights) {
    if (config.max_depth != -1 && depth >= config.max_depth) return;
    if (end - begin < config.min_samples_split) return;
    if (node_weights.positive <= 0.0 || node_weights.negative <= 0.0) return;  // pure
    if (end - begin < 2) return;
    std::optional<SplitCandidate> split;
    for (size_t slot = 0; slot < core.num_slots(); ++slot) {
      BestSplitOnColumn(core.Column(slot, begin, end), core.feature_at(slot),
                        labels, row_weights, config.criterion, node_weights,
                        config.min_samples_leaf, &split);
    }
    if (!split) return;
    frontier.push(FrontierEntry{split->gain, sequence++, node_index, depth, begin,
                                end, {}, *split});
  };

  try_enqueue(0, 0, 0, n, root_weights);

  int64_t splits_remaining = config.max_leaf_nodes == -1
                                 ? std::numeric_limits<int64_t>::max()
                                 : config.max_leaf_nodes - 1;

  while (!frontier.empty() && splits_remaining > 0) {
    const FrontierEntry entry = frontier.top();
    frontier.pop();
    --splits_remaining;

    const size_t mid = core.ApplySplit(entry.begin, entry.end,
                                       core.SlotOf(entry.split.feature),
                                       entry.split.left_count);
    assert(mid > entry.begin && mid < entry.end);

    const int left_index = static_cast<int>(tree.nodes_.size());
    TreeNode left_node;
    left_node.label = entry.split.left_weights.MajorityLabel();
    tree.nodes_.push_back(left_node);

    const int right_index = static_cast<int>(tree.nodes_.size());
    TreeNode right_node;
    right_node.label = entry.split.right_weights.MajorityLabel();
    tree.nodes_.push_back(right_node);

    TreeNode& parent = tree.nodes_[static_cast<size_t>(entry.node_index)];
    parent.feature = entry.split.feature;
    parent.threshold = entry.split.threshold;
    parent.left = left_index;
    parent.right = right_index;

    try_enqueue(left_index, entry.depth + 1, entry.begin, mid,
                entry.split.left_weights);
    try_enqueue(right_index, entry.depth + 1, mid, entry.end,
                entry.split.right_weights);
  }

  return tree;
}

Result<DecisionTree> DecisionTree::FitReference(const data::Dataset& dataset,
                                                const std::vector<double>& weights,
                                                const TreeConfig& config,
                                                const std::vector<int>& feature_subset) {
  std::vector<int> features;
  TREEWM_RETURN_IF_ERROR(
      ValidateFitInputs(dataset, weights, config, feature_subset, &features));
  if (config.trainer_mode != TrainerMode::kExact) {
    return Status::InvalidArgument(
        "the reference trainer is the exact-mode spec; it has no histogram mode");
  }

  const std::vector<double> unit_weights =
      weights.empty() ? std::vector<double>(dataset.num_rows(), 1.0)
                      : std::vector<double>();
  const std::vector<double>& w = weights.empty() ? unit_weights : weights;

  Splitter splitter(dataset, w, config.criterion);

  DecisionTree tree;
  tree.num_features_ = dataset.num_features();
  tree.feature_subset_ = feature_subset;

  std::vector<size_t> root_indices(dataset.num_rows());
  for (size_t i = 0; i < dataset.num_rows(); ++i) root_indices[i] = i;
  const ClassWeights root_weights = splitter.ComputeWeights(root_indices);

  TreeNode root;
  root.label = root_weights.MajorityLabel();
  tree.nodes_.push_back(root);

  std::priority_queue<FrontierEntry, std::vector<FrontierEntry>, FrontierCompare>
      frontier;
  uint64_t sequence = 0;

  auto try_enqueue = [&](int node_index, int depth, std::vector<size_t> indices,
                         const ClassWeights& node_weights) {
    if (config.max_depth != -1 && depth >= config.max_depth) return;
    if (indices.size() < config.min_samples_split) return;
    if (node_weights.positive <= 0.0 || node_weights.negative <= 0.0) return;  // pure
    std::optional<SplitCandidate> split = splitter.FindBestSplit(
        indices, features, node_weights, config.min_samples_leaf);
    if (!split) return;
    frontier.push(FrontierEntry{split->gain, sequence++, node_index, depth, 0, 0,
                                std::move(indices), *split});
  };

  try_enqueue(0, 0, std::move(root_indices), root_weights);

  int64_t splits_remaining = config.max_leaf_nodes == -1
                                 ? std::numeric_limits<int64_t>::max()
                                 : config.max_leaf_nodes - 1;

  std::vector<size_t> left_indices;
  std::vector<size_t> right_indices;
  while (!frontier.empty() && splits_remaining > 0) {
    // priority_queue::top returns const&; copy out the small fields and move
    // the index vector via const_cast-free re-pop pattern.
    FrontierEntry entry = std::move(const_cast<FrontierEntry&>(frontier.top()));
    frontier.pop();
    --splits_remaining;

    splitter.Partition(entry.indices, entry.split, &left_indices, &right_indices);
    assert(!left_indices.empty() && !right_indices.empty());

    const int left_index = static_cast<int>(tree.nodes_.size());
    TreeNode left_node;
    left_node.label = entry.split.left_weights.MajorityLabel();
    tree.nodes_.push_back(left_node);

    const int right_index = static_cast<int>(tree.nodes_.size());
    TreeNode right_node;
    right_node.label = entry.split.right_weights.MajorityLabel();
    tree.nodes_.push_back(right_node);

    TreeNode& parent = tree.nodes_[static_cast<size_t>(entry.node_index)];
    parent.feature = entry.split.feature;
    parent.threshold = entry.split.threshold;
    parent.left = left_index;
    parent.right = right_index;

    try_enqueue(left_index, entry.depth + 1, std::move(left_indices),
                entry.split.left_weights);
    try_enqueue(right_index, entry.depth + 1, std::move(right_indices),
                entry.split.right_weights);
    left_indices = {};
    right_indices = {};
  }

  return tree;
}

int DecisionTree::Predict(std::span<const float> row) const {
  return nodes_[static_cast<size_t>(LeafIndexFor(row))].label;
}

int DecisionTree::LeafIndexFor(std::span<const float> row) const {
  assert(row.size() == num_features_);
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].feature != -1) {
    const TreeNode& n = nodes_[static_cast<size_t>(node)];
    node = row[static_cast<size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  return node;
}

std::shared_ptr<const predict::FlatEnsemble> DecisionTree::Flat() const {
  return predict::LazyFlat(&flat_cache_, [this] {
    return predict::FlatEnsemble::FromClassificationTree(*this);
  });
}

std::vector<int> DecisionTree::PredictBatch(const data::Dataset& dataset) const {
  // A one-tree "ensemble": the majority vote is the tree's own label.
  return predict::BatchPredictor(Flat()).PredictLabels(dataset);
}

double DecisionTree::Accuracy(const data::Dataset& dataset) const {
  return predict::BatchPredictor(Flat()).LabelAccuracy(dataset);
}

int DecisionTree::Depth() const {
  // Iterative DFS carrying depth; nodes_ is acyclic by construction.
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack{{0, 0}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes_[static_cast<size_t>(node)];
    if (n.feature == -1) {
      max_depth = std::max(max_depth, depth);
    } else {
      stack.push_back({n.left, depth + 1});
      stack.push_back({n.right, depth + 1});
    }
  }
  return max_depth;
}

size_t DecisionTree::NumLeaves() const {
  size_t leaves = 0;
  for (const TreeNode& n : nodes_) {
    if (n.feature == -1) ++leaves;
  }
  return leaves;
}

std::vector<DecisionTree::LeafInfo> DecisionTree::ExtractLeaves() const {
  std::vector<LeafInfo> leaves;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  struct Frame {
    int node;
    std::map<int, std::pair<double, double>> bounds;  // feature -> (lo, hi]
  };
  std::vector<Frame> stack{{0, {}}};
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const TreeNode& n = nodes_[static_cast<size_t>(frame.node)];
    if (n.feature == -1) {
      LeafInfo leaf;
      leaf.node_index = frame.node;
      leaf.label = n.label;
      leaf.constraints.reserve(frame.bounds.size());
      for (const auto& [feature, interval] : frame.bounds) {
        leaf.constraints.push_back({feature, interval.first, interval.second});
      }
      leaves.push_back(std::move(leaf));
      continue;
    }
    const double v = static_cast<double>(n.threshold);
    Frame left{n.left, frame.bounds};
    {
      auto [it, inserted] = left.bounds.try_emplace(n.feature, -kInf, v);
      if (!inserted) it->second.second = std::min(it->second.second, v);
    }
    Frame right{n.right, std::move(frame.bounds)};
    {
      auto [it, inserted] = right.bounds.try_emplace(n.feature, v, kInf);
      if (!inserted) it->second.first = std::max(it->second.first, v);
    }
    stack.push_back(std::move(left));
    stack.push_back(std::move(right));
  }
  return leaves;
}

JsonValue DecisionTree::ToJson() const {
  JsonValue out = JsonValue::MakeObject();
  out.Set("num_features", JsonValue(num_features_));
  JsonValue subset = JsonValue::MakeArray();
  for (int f : feature_subset_) subset.Append(JsonValue(f));
  out.Set("feature_subset", std::move(subset));
  JsonValue nodes = JsonValue::MakeArray();
  for (const TreeNode& n : nodes_) {
    JsonValue node = JsonValue::MakeObject();
    node.Set("f", JsonValue(n.feature));
    if (n.feature != -1) {
      node.Set("t", JsonValue(static_cast<double>(n.threshold)));
      node.Set("l", JsonValue(n.left));
      node.Set("r", JsonValue(n.right));
    }
    node.Set("y", JsonValue(n.label));
    nodes.Append(std::move(node));
  }
  out.Set("nodes", std::move(nodes));
  return out;
}

Result<DecisionTree> DecisionTree::FromJson(const JsonValue& json) {
  if (!json.is_object()) return Status::ParseError("tree JSON must be an object");
  // Checked accessors throughout: a truncated or hand-corrupted model file
  // must surface ParseError, never trip a typed-accessor assert or read a
  // garbage cast (registry cold-start fails closed).
  TREEWM_ASSIGN_OR_RETURN(int64_t num_features, json.GetInt64("num_features"));
  if (num_features < 0) {
    return Status::ParseError("'num_features' must be non-negative");
  }
  TREEWM_ASSIGN_OR_RETURN(const JsonValue* nodes_json, json.GetArray("nodes"));

  std::vector<TreeNode> nodes;
  nodes.reserve(nodes_json->AsArray().size());
  for (const JsonValue& node_json : nodes_json->AsArray()) {
    if (!node_json.is_object()) return Status::ParseError("node must be an object");
    TreeNode n;
    TREEWM_ASSIGN_OR_RETURN(int64_t feature, node_json.GetInt64("f"));
    n.feature = static_cast<int>(feature);
    TREEWM_ASSIGN_OR_RETURN(int64_t label, node_json.GetInt64("y"));
    n.label = static_cast<int>(label);
    if (n.feature != -1) {
      TREEWM_ASSIGN_OR_RETURN(double threshold, node_json.GetDouble("t"));
      TREEWM_ASSIGN_OR_RETURN(int64_t left, node_json.GetInt64("l"));
      TREEWM_ASSIGN_OR_RETURN(int64_t right, node_json.GetInt64("r"));
      n.threshold = static_cast<float>(threshold);
      n.left = static_cast<int>(left);
      n.right = static_cast<int>(right);
    }
    nodes.push_back(n);
  }
  TREEWM_ASSIGN_OR_RETURN(
      DecisionTree tree,
      FromNodes(std::move(nodes), static_cast<size_t>(num_features)));
  if (json.Find("feature_subset") != nullptr) {
    TREEWM_ASSIGN_OR_RETURN(const JsonValue* subset, json.GetArray("feature_subset"));
    for (const JsonValue& f : subset->AsArray()) {
      TREEWM_ASSIGN_OR_RETURN(int64_t index, f.ToInt64());
      tree.feature_subset_.push_back(static_cast<int>(index));
    }
  }
  return tree;
}

Result<DecisionTree> DecisionTree::FromNodes(std::vector<TreeNode> nodes,
                                             size_t num_features) {
  if (nodes.empty()) return Status::InvalidArgument("tree needs at least one node");
  std::vector<int> reference_count(nodes.size(), 0);
  for (size_t i = 0; i < nodes.size(); ++i) {
    const TreeNode& n = nodes[i];
    if (n.feature == -1) {
      if (n.label != 1 && n.label != -1) {
        return Status::InvalidArgument(StrFormat("leaf %zu label must be +1/-1", i));
      }
      continue;
    }
    if (n.feature < 0 || static_cast<size_t>(n.feature) >= num_features) {
      return Status::InvalidArgument(StrFormat("node %zu: feature out of range", i));
    }
    for (int child : {n.left, n.right}) {
      if (child <= static_cast<int>(i) || child >= static_cast<int>(nodes.size())) {
        return Status::InvalidArgument(
            StrFormat("node %zu: child index %d invalid (must be > parent)", i, child));
      }
      ++reference_count[static_cast<size_t>(child)];
    }
  }
  if (reference_count[0] != 0) {
    return Status::InvalidArgument("root must not be referenced as a child");
  }
  for (size_t i = 1; i < nodes.size(); ++i) {
    if (reference_count[i] != 1) {
      return Status::InvalidArgument(
          StrFormat("node %zu referenced %d times (want exactly 1)", i,
                    reference_count[i]));
    }
  }
  DecisionTree tree;
  tree.nodes_ = std::move(nodes);
  tree.num_features_ = num_features;
  return tree;
}

bool DecisionTree::StructurallyEqual(const DecisionTree& other) const {
  if (num_features_ != other.num_features_ || nodes_.size() != other.nodes_.size()) {
    return false;
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& a = nodes_[i];
    const TreeNode& b = other.nodes_[i];
    if (a.feature != b.feature || a.left != b.left || a.right != b.right ||
        a.label != b.label) {
      return false;
    }
    if (a.feature != -1 && a.threshold != b.threshold) return false;
  }
  return true;
}

}  // namespace treewm::tree
