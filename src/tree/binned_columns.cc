#include "tree/binned_columns.h"

#include <algorithm>
#include <utility>

#include "common/mutex.h"
#include "common/string_util.h"
#include "tree/sorted_columns.h"

namespace treewm::tree {

namespace {

// The exact engine's threshold formula (trainer_core.cc): midpoint between
// two adjacent distinct values, falling back to the lower value when the
// midpoint rounds up to the upper one — so `x <= t` puts the lower run left
// and the upper run right for BOTH values of the adjacent pair, always.
float MidpointThreshold(float lo, float hi) {
  float t = lo + (hi - lo) * 0.5f;
  if (t >= hi) t = lo;
  return t;
}

// Sort scratch recycled across the per-feature binning tasks. ParallelFor
// may run more feature tasks than worker threads; pooling the (row, value)
// buffers caps allocation at one n-entry buffer per concurrent task instead
// of one per feature.
struct ScratchPool {
  Mutex mutex;
  std::vector<std::vector<ColumnEntry>> free TREEWM_GUARDED_BY(mutex);
};

std::vector<ColumnEntry> TakeScratch(ScratchPool* pool) {
  MutexLock lock(&pool->mutex);
  if (pool->free.empty()) return {};
  std::vector<ColumnEntry> scratch = std::move(pool->free.back());
  pool->free.pop_back();
  return scratch;
}

void RecycleScratch(ScratchPool* pool, std::vector<ColumnEntry> scratch) {
  MutexLock lock(&pool->mutex);
  pool->free.push_back(std::move(scratch));
}

}  // namespace

Status ValidateBinnedMatch(const BinnedColumns* binned,
                           const data::Dataset& dataset) {
  if (binned == nullptr) {
    return Status::InvalidArgument(
        "histogram trainer mode requires binned columns");
  }
  if (binned->num_rows() != dataset.num_rows() ||
      binned->num_features() != dataset.num_features()) {
    return Status::InvalidArgument(
        StrFormat("binned columns shape (%zu x %zu) does not match dataset "
                  "(%zu x %zu)",
                  binned->num_rows(), binned->num_features(),
                  dataset.num_rows(), dataset.num_features()));
  }
  return Status::OK();
}

Result<std::shared_ptr<const BinnedColumns>> BinnedColumns::Build(
    const data::Dataset& dataset, const BinnedOptions& options,
    ThreadPool* pool) {
  if (options.max_bins < 2 || options.max_bins > 65535) {
    return Status::InvalidArgument(
        StrFormat("max_bins must be in [2, 65535], got %zu", options.max_bins));
  }
  const size_t n = dataset.num_rows();
  const size_t d = dataset.num_features();
  if (n == 0) {
    return Status::InvalidArgument("cannot bin an empty dataset");
  }

  auto binned = std::shared_ptr<BinnedColumns>(new BinnedColumns());
  binned->num_rows_ = n;
  binned->num_features_ = d;
  binned->max_bins_ = options.max_bins;
  binned->num_bins_.assign(d, 0);
  binned->splits_.resize(d);
  // Bin wide first; narrow to uint8 afterwards when every feature fits.
  // Codes, bin counts and cut arrays are written into per-feature slots, so
  // the feature tasks are independent and the result is thread-count
  // invariant by construction.
  binned->codes16_.resize(d * n);

  ScratchPool scratch_pool;
  const size_t max_bins = options.max_bins;
  ParallelFor(pool, d, [&](size_t f) {
    std::vector<ColumnEntry> entries = TakeScratch(&scratch_pool);
    entries.resize(n);
    for (size_t i = 0; i < n; ++i) {
      entries[i] = {static_cast<uint32_t>(i), dataset.At(i, f)};
    }
    // Same comparator as SortedColumns::Build; the row-id tie order is
    // irrelevant here (codes ignore it) but keeping the idiom keeps the two
    // substrates trivially comparable.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const ColumnEntry& a, const ColumnEntry& b) {
                       return a.value < b.value;
                     });

    size_t distinct = 1;
    for (size_t i = 1; i < n; ++i) {
      if (entries[i].value != entries[i - 1].value) ++distinct;
    }

    uint16_t* codes = binned->codes16_.data() + f * n;
    std::vector<float>& splits = binned->splits_[f];
    uint32_t bin = 0;
    if (distinct <= max_bins) {
      // One bin per distinct value: the candidate cut set equals the exact
      // engine's on this feature.
      codes[entries[0].row] = 0;
      for (size_t i = 1; i < n; ++i) {
        if (entries[i].value != entries[i - 1].value) {
          splits.push_back(
              MidpointThreshold(entries[i - 1].value, entries[i].value));
          ++bin;
        }
        codes[entries[i].row] = static_cast<uint16_t>(bin);
      }
    } else {
      // Equal-frequency (quantile) bins over whole distinct-value runs:
      // close the current bin once it holds ceil(rows_left / bins_left)
      // rows, re-deriving the target after each close so late runs of tied
      // values cannot starve the remaining bins.
      size_t rows_left = n;
      size_t bins_left = max_bins;
      size_t target = (rows_left + bins_left - 1) / bins_left;
      size_t in_bin = 0;
      size_t i = 0;
      while (i < n) {
        size_t j = i + 1;
        while (j < n && entries[j].value == entries[i].value) ++j;
        for (size_t k = i; k < j; ++k) {
          codes[entries[k].row] = static_cast<uint16_t>(bin);
        }
        const size_t run = j - i;
        in_bin += run;
        rows_left -= run;
        if (j < n && in_bin >= target && bins_left > 1) {
          splits.push_back(
              MidpointThreshold(entries[j - 1].value, entries[j].value));
          ++bin;
          --bins_left;
          in_bin = 0;
          target = (rows_left + bins_left - 1) / bins_left;
        }
        i = j;
      }
    }
    binned->num_bins_[f] = bin + 1;
    RecycleScratch(&scratch_pool, std::move(entries));
  });

  uint32_t widest = 0;
  for (size_t f = 0; f < d; ++f) widest = std::max(widest, binned->num_bins_[f]);
  binned->wide_ = widest > 256;
  if (!binned->wide_) {
    binned->codes8_.resize(d * n);
    for (size_t i = 0; i < d * n; ++i) {
      binned->codes8_[i] = static_cast<uint8_t>(binned->codes16_[i]);
    }
    binned->codes16_.clear();
    binned->codes16_.shrink_to_fit();
  }
  return std::shared_ptr<const BinnedColumns>(std::move(binned));
}

}  // namespace treewm::tree
