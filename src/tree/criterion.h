// Split-quality criteria for weighted binary classification.
//
// Impurities operate on the total positive/negative *sample weight* reaching
// a node, because Algorithm 1 embeds the watermark by inflating trigger
// sample weights (TrainWithTrigger) — the tree learner must honor weights
// exactly as sklearn's does.

#ifndef TREEWM_TREE_CRITERION_H_
#define TREEWM_TREE_CRITERION_H_

#include <string>

#include "common/status.h"

namespace treewm::tree {

/// Impurity function selector.
enum class SplitCriterion { kGini, kEntropy };

/// Parses "gini" / "entropy".
[[nodiscard]] Result<SplitCriterion> SplitCriterionFromName(const std::string& name);

/// Stable name for serialization.
const char* SplitCriterionName(SplitCriterion criterion);

/// Weighted class mass at a node.
struct ClassWeights {
  double positive = 0.0;
  double negative = 0.0;

  double Total() const { return positive + negative; }

  void Add(int label, double weight) {
    if (label > 0) {
      positive += weight;
    } else {
      negative += weight;
    }
  }

  void Remove(int label, double weight) {
    if (label > 0) {
      positive -= weight;
    } else {
      negative -= weight;
    }
  }

  /// Majority label by weight; ties break positive (stable, documented).
  int MajorityLabel() const { return positive >= negative ? +1 : -1; }
};

/// Gini impurity 2p(1-p) of a weighted class distribution; 0 for empty nodes.
double GiniImpurity(const ClassWeights& w);

/// Shannon entropy (nats) of a weighted class distribution; 0 for empty nodes.
double EntropyImpurity(const ClassWeights& w);

/// Dispatches on `criterion`.
double Impurity(SplitCriterion criterion, const ClassWeights& w);

/// Weighted impurity decrease of splitting `parent` into `left` + `right`:
///   imp(parent) - (w_l/w_p) imp(left) - (w_r/w_p) imp(right).
/// Returns 0 for an empty parent.
double ImpurityDecrease(SplitCriterion criterion, const ClassWeights& parent,
                        const ClassWeights& left, const ClassWeights& right);

}  // namespace treewm::tree

#endif  // TREEWM_TREE_CRITERION_H_
