#include "tree/splitter.h"

#include <algorithm>

namespace treewm::tree {

namespace {

// A value/label/weight triple for one instance under one feature.
struct Entry {
  float value;
  int8_t label;
  double weight;
};

}  // namespace

Splitter::Splitter(const data::Dataset& dataset, const std::vector<double>& weights,
                   SplitCriterion criterion)
    : dataset_(dataset), weights_(weights), criterion_(criterion) {}

ClassWeights Splitter::ComputeWeights(const std::vector<size_t>& indices) const {
  ClassWeights w;
  for (size_t idx : indices) w.Add(dataset_.Label(idx), weights_[idx]);
  return w;
}

std::optional<SplitCandidate> Splitter::FindBestSplit(
    const std::vector<size_t>& indices, const std::vector<int>& features,
    const ClassWeights& node_weights, size_t min_samples_leaf) const {
  const size_t n = indices.size();
  if (n < 2) return std::nullopt;

  std::optional<SplitCandidate> best;
  std::vector<Entry> entries(n);

  for (int feature : features) {
    const size_t f = static_cast<size_t>(feature);
    for (size_t i = 0; i < n; ++i) {
      const size_t idx = indices[i];
      entries[i] = {dataset_.At(idx, f), static_cast<int8_t>(dataset_.Label(idx)),
                    weights_[idx]};
    }
    // Stable: value ties keep `indices` order. This pins the accumulation
    // order of tied runs (a *specified* contract, where plain sort left it
    // to the introsort permutation), and it is the order the presorted
    // engine reproduces — required for bit-identical FP sums when weights
    // differ within a tie run.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) { return a.value < b.value; });
    if (entries.front().value == entries.back().value) continue;  // constant feature

    ClassWeights left;
    ClassWeights right = node_weights;
    size_t left_count = 0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left.Add(entries[i].label, entries[i].weight);
      right.Remove(entries[i].label, entries[i].weight);
      ++left_count;
      // Only cut between distinct values.
      if (entries[i].value == entries[i + 1].value) continue;
      if (left_count < min_samples_leaf || n - left_count < min_samples_leaf) continue;
      const double gain = ImpurityDecrease(criterion_, node_weights, left, right);
      if (gain > kMinSplitGain && (!best || gain > best->gain)) {
        SplitCandidate candidate;
        candidate.feature = feature;
        // Midpoint threshold; guaranteed >= left value and < right value.
        candidate.threshold =
            entries[i].value + (entries[i + 1].value - entries[i].value) * 0.5f;
        // Degenerate float midpoints (values one ulp apart) collapse onto the
        // right value; fall back to the left value so "x <= t" still separates.
        if (candidate.threshold >= entries[i + 1].value) {
          candidate.threshold = entries[i].value;
        }
        candidate.gain = gain;
        candidate.left_weights = left;
        candidate.right_weights = right;
        candidate.left_count = left_count;
        candidate.right_count = n - left_count;
        best = candidate;
      }
    }
  }
  return best;
}

void Splitter::Partition(const std::vector<size_t>& indices, const SplitCandidate& split,
                         std::vector<size_t>* left, std::vector<size_t>* right) const {
  left->clear();
  right->clear();
  const size_t f = static_cast<size_t>(split.feature);
  for (size_t idx : indices) {
    if (dataset_.At(idx, f) <= split.threshold) {
      left->push_back(idx);
    } else {
      right->push_back(idx);
    }
  }
}

}  // namespace treewm::tree
