// Per-feature presorted index columns — the sort-once substrate for tree
// training.
//
// Every trainer in the repo used to re-sort each (node, feature) pair from
// scratch, paying O(k·n log n) per node. SortedColumns sorts each feature
// column ONCE per dataset (ties broken by ascending row id, i.e. stably);
// tree induction then maintains node membership by stable in-place partition
// of the index arrays (see trainer_core.h), so every node's split sweep is a
// linear pass over presorted runs and no sort ever happens again.
//
// The object is immutable after Build and is shared across trees, boosting
// rounds and ThreadPool workers via shared_ptr, exactly the way FlatEnsemble
// images are shared on the inference side: the row set of a dataset is fixed
// for the lifetime of a forest fit, every tree of every GBDT stage, and —
// crucially for TrainWithTrigger — every weight-boosting round (sample
// weights never change the sort order).

#ifndef TREEWM_TREE_SORTED_COLUMNS_H_
#define TREEWM_TREE_SORTED_COLUMNS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "data/dataset.h"

namespace treewm::tree {

/// One instance under one feature: the row id and its feature value, packed
/// so a split sweep reads contiguous 8-byte records instead of gathering
/// from the row-major dataset.
struct ColumnEntry {
  uint32_t row;
  float value;
};

/// Immutable per-feature sorted index columns for one dataset.
class SortedColumns {
 public:
  /// Sorts every feature column of `dataset` (ascending by value, ties by
  /// ascending row id). O(d·n log n), paid once per dataset. Fans the
  /// per-feature sorts out across the global ThreadPool — each task fills
  /// and sorts its own disjoint slab of the feature-major array, so the
  /// result is bit-identical at every thread count (regression-tested in
  /// tests/test_trainer_core.cc).
  static std::shared_ptr<const SortedColumns> Build(const data::Dataset& dataset);

  /// Same, on an explicit pool (nullptr = serial). Build(dataset) is
  /// Build(dataset, &ThreadPool::Global()).
  static std::shared_ptr<const SortedColumns> Build(const data::Dataset& dataset,
                                                    ThreadPool* pool);

  size_t num_rows() const { return num_rows_; }
  size_t num_features() const { return num_features_; }

  /// Sorted column of feature `f`: n entries, ascending by value, value ties
  /// in ascending row order.
  std::span<const ColumnEntry> Column(size_t f) const {
    return {entries_.data() + f * num_rows_, num_rows_};
  }

 private:
  SortedColumns() = default;

  size_t num_rows_ = 0;
  size_t num_features_ = 0;
  std::vector<ColumnEntry> entries_;  // feature-major, d × n
};

/// InvalidArgument unless `sorted` (when non-null) was built for a dataset
/// of exactly `dataset`'s shape — the one shape contract every trainer that
/// accepts prebuilt columns enforces.
[[nodiscard]] Status ValidateColumnsMatch(const SortedColumns* sorted,
                            const data::Dataset& dataset);

}  // namespace treewm::tree

#endif  // TREEWM_TREE_SORTED_COLUMNS_H_
