// Exact best-split search over sorted feature values — the RETAINED NAIVE
// REFERENCE for the sort-once training engine.
//
// This is the original per-node re-sorting splitter: every FindBestSplit
// call gathers the node's (value, label, weight) triples and sorts them,
// O(n log n) per (node, feature). Production training runs on the presorted
// engine (sorted_columns.h + trainer_core.h); this class is kept — like
// predict/reference.h on the inference side — as the executable
// specification the property tests compare against (DecisionTree::Fit must
// produce bit-identical trees to DecisionTree::FitReference, which uses
// this splitter).

#ifndef TREEWM_TREE_SPLITTER_H_
#define TREEWM_TREE_SPLITTER_H_

#include <optional>
#include <vector>

#include "data/dataset.h"
#include "tree/criterion.h"

namespace treewm::tree {

/// Minimum weighted impurity decrease for a split to count — guards against
/// FP-noise "improvements". Shared by the naive reference and the presorted
/// sweep (trainer_core.cc) so their gain gates are identical.
inline constexpr double kMinSplitGain = 1e-12;

/// A candidate axis-aligned split "feature <= threshold".
struct SplitCandidate {
  int feature = -1;
  float threshold = 0.0f;
  double gain = 0.0;          // weighted impurity decrease
  ClassWeights left_weights;  // mass going left (x_f <= threshold)
  ClassWeights right_weights;
  size_t left_count = 0;  // unweighted instance counts
  size_t right_count = 0;
};

/// Stateless split finder bound to one dataset + weight vector.
class Splitter {
 public:
  /// `weights` must have one entry per dataset row. Both referents must
  /// outlive the Splitter.
  Splitter(const data::Dataset& dataset, const std::vector<double>& weights,
           SplitCriterion criterion);

  /// Finds the best split of `indices` among `features`, or nullopt when no
  /// split has positive gain or satisfies `min_samples_leaf`.
  ///
  /// Thresholds are midpoints between consecutive distinct feature values
  /// (the sklearn convention), so they never coincide with a data value.
  /// Value ties are swept in `indices` order (stable sort), which is the
  /// documented accumulation-order contract the presorted engine matches.
  std::optional<SplitCandidate> FindBestSplit(const std::vector<size_t>& indices,
                                              const std::vector<int>& features,
                                              const ClassWeights& node_weights,
                                              size_t min_samples_leaf) const;

  /// Partitions `indices` by the split (stable). Outputs are cleared first.
  void Partition(const std::vector<size_t>& indices, const SplitCandidate& split,
                 std::vector<size_t>* left, std::vector<size_t>* right) const;

  /// Total class weights over `indices`.
  ClassWeights ComputeWeights(const std::vector<size_t>& indices) const;

 private:
  const data::Dataset& dataset_;
  const std::vector<double>& weights_;
  SplitCriterion criterion_;
};

}  // namespace treewm::tree

#endif  // TREEWM_TREE_SPLITTER_H_
