// Histogram training core: per-node gradient/count histograms over
// BinnedColumns, the parent−sibling subtraction trick, and intra-tree
// parallel split sweeps.
//
// Where the exact TrainerCore keeps a sorted working copy of every column
// and sweeps O(rows) entries per (node, feature), HistogramCore keeps ONE
// row-index array for the whole tree: node membership is a range
// [begin, end) of `rows`, split application is a single stable partition of
// that range by bin code (O(node) total, not O(node × features)), and a
// split sweep walks an O(bins) histogram instead of the rows.
//
// Subtraction trick: a parent's histogram is the elementwise sum of its
// children's. When a node splits, only the SMALLER child's histogram is
// accumulated from rows; the larger child's is obtained by subtracting it
// from the parent's buffer in place. Every row therefore contributes to at
// most one accumulation per tree LEVEL on the small side — about half the
// work of the exact engine's every-row-every-level sweeps before the
// O(bins) vs O(rows) sweep gap even starts counting.
//
// Intra-tree parallelism: the per-feature accumulate/subtract/sweep loop
// fans out across a ThreadPool, one task per feature slot. Each task writes
// only its own histogram slice and its own slot of the candidate arrays;
// the winning split is then reduced SERIALLY in slot order with the strict
// ">" rule. Chosen splits are therefore invariant across thread counts by
// construction (tested at 1/2/5 in tests/test_histogram_train.cc).
//
// Approximation contract: this engine is gated by accuracy parity with the
// exact engine, NOT bit-identity — see src/tree/README.md. (On features
// where every distinct value got its own bin the cut sets coincide and
// integer-weight fits match the exact engine exactly; the tests exploit
// this for a deterministic structural check.)

#ifndef TREEWM_TREE_HISTOGRAM_CORE_H_
#define TREEWM_TREE_HISTOGRAM_CORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "tree/binned_columns.h"
#include "tree/criterion.h"

namespace treewm::tree {

/// One histogram bin of a classification node: class-weight mass + row count.
struct ClassHistBin {
  double positive = 0.0;
  double negative = 0.0;
  uint32_t count = 0;
};

/// One histogram bin of a regression node: target sum + row count.
struct SseHistBin {
  double sum = 0.0;
  uint32_t count = 0;
};

/// Best classification split found on a node's histograms. `split_bin` is
/// the last bin of the left child on `feature`; `threshold` is the matching
/// cut from BinnedColumns::split_values, so inference reproduces exactly
/// the training-row partition.
struct HistClassSplit {
  int feature = -1;
  uint32_t split_bin = 0;
  float threshold = 0.0f;
  double gain = 0.0;
  ClassWeights left_weights;
  ClassWeights right_weights;
  size_t left_count = 0;
  size_t right_count = 0;
};

/// Best SSE split found on a node's histograms. feature == -1 means "no
/// split" (the node becomes a leaf). `left_sum` lets the trainer carry
/// child target sums down by subtraction instead of re-accumulating.
struct HistSseSplit {
  int feature = -1;
  uint32_t split_bin = 0;
  float threshold = 0.0f;
  double gain = 0.0;
  double left_sum = 0.0;
  size_t left_count = 0;
};

/// Sweeps one feature's classification histogram for the best cut. Visits
/// cuts in ascending bin order with the exact engine's gates (kMinSplitGain,
/// strict ">" so the first maximal cut wins, min_samples_leaf on both
/// sides); cuts after node-empty bins are skipped (same partition as the
/// previous cut). Updates `best` in place.
void BestClassSplitOnHistogram(std::span<const ClassHistBin> bins, int feature,
                               std::span<const float> split_values,
                               SplitCriterion criterion,
                               const ClassWeights& node_weights,
                               size_t node_count, size_t min_samples_leaf,
                               std::optional<HistClassSplit>* best);

/// Regression twin: maximizes sum_l²/n_l + sum_r²/n_r − parent_term (the
/// same SSE-decrease identity as the exact sweep). `total_sum` is the
/// node's target sum, `parent_term` = total_sum² / node_count.
void BestSseSplitOnHistogram(std::span<const SseHistBin> bins, int feature,
                             std::span<const float> split_values,
                             double total_sum, double parent_term,
                             size_t node_count, size_t min_samples_leaf,
                             double min_gain, HistSseSplit* best);

/// Resolves the trainer-config thread count shared by every histogram-mode
/// Fit: 0 = the process-global pool, 1 = serial (returns nullptr), N > 1 =
/// a caller-owned local pool handed back via `local_pool`.
ThreadPool* ResolveTrainerPool(size_t num_threads,
                               std::unique_ptr<ThreadPool>* local_pool);

/// Per-tree mutable workspace over shared immutable BinnedColumns: the row
/// partition array plus per-slot candidate scratch. One instance per tree
/// being grown. Not thread-safe across calls; WITHIN a call the per-slot
/// fan-out is internal and writes disjoint state only.
class HistogramCore {
 public:
  /// Sweep config for classification ops.
  struct ClassSweepConfig {
    SplitCriterion criterion = SplitCriterion::kGini;
    size_t min_samples_leaf = 1;
  };
  /// What a classification node knows about itself before sweeping.
  struct ClassNodeStats {
    ClassWeights weights;
    size_t count = 0;
  };
  /// Sweep config for regression ops.
  struct SseSweepConfig {
    size_t min_samples_leaf = 1;
    double min_gain = 0.0;
  };
  struct SseNodeStats {
    double sum = 0.0;
    size_t count = 0;
  };

  /// `features` lists the dataset feature ids this tree may split on, in
  /// sweep order. `binned` must outlive the core; `pool` (may be nullptr =
  /// serial) drives the per-slot fan-out of every op.
  HistogramCore(const BinnedColumns& binned, const std::vector<int>& features,
                ThreadPool* pool);

  size_t num_rows() const { return n_; }
  size_t num_slots() const { return features_.size(); }

  /// Total histogram length: one buffer spans Σ_slot num_bins(feature).
  size_t total_bins() const { return total_bins_; }

  /// Stable-partitions rows [begin, end) by `code(feature) <= split_bin`
  /// (left first, relative order — and thus ascending-row order — is
  /// preserved). Returns the boundary; children own [begin, mid), [mid, end).
  size_t ApplySplit(size_t begin, size_t end, int feature, uint32_t split_bin);

  /// The fused per-level classification operation, one parallel fan-out over
  /// feature slots: (1) accumulate rows [fresh_begin, fresh_end) — the
  /// SMALLER child, or the root — into `fresh` (resized/zeroed here);
  /// (2) when `parent` is non-null, subtract `fresh` from it in place, so
  /// `parent` BECOMES the larger sibling's histogram; (3) sweep either or
  /// both histograms for their best splits. Candidates land in per-slot
  /// arrays and are reduced serially in slot order. `labels`/`weights` are
  /// per-row arrays (weights never null here; the trainer resolves unit
  /// weights first).
  void ClassOp(const ClassSweepConfig& config, const int8_t* labels,
               const double* weights, std::vector<ClassHistBin>* fresh,
               std::vector<ClassHistBin>* parent, size_t fresh_begin,
               size_t fresh_end, const ClassNodeStats& fresh_stats,
               const ClassNodeStats& remainder_stats, bool sweep_fresh,
               bool sweep_remainder, std::optional<HistClassSplit>* best_fresh,
               std::optional<HistClassSplit>* best_remainder);

  /// Regression twin of ClassOp over target sums.
  void SseOp(const SseSweepConfig& config, const double* targets,
             std::vector<SseHistBin>* fresh, std::vector<SseHistBin>* parent,
             size_t fresh_begin, size_t fresh_end,
             const SseNodeStats& fresh_stats, const SseNodeStats& remainder_stats,
             bool sweep_fresh, bool sweep_remainder, HistSseSplit* best_fresh,
             HistSseSplit* best_remainder);

  /// The node-membership row array (ascending original-row order within
  /// every node range — histogram accumulation visits rows in that order).
  std::span<const uint32_t> rows() const { return rows_; }

 private:
  const BinnedColumns* binned_;
  std::vector<int> features_;
  ThreadPool* pool_;
  size_t n_ = 0;
  size_t total_bins_ = 0;
  std::vector<size_t> slot_offset_;  // slot -> first bin in a histogram buffer
  std::vector<uint32_t> rows_;       // the tree's row partition
  std::vector<uint32_t> scratch_;    // right-side staging for ApplySplit
  // Per-slot sweep results; each parallel task writes ONLY its own slot.
  std::vector<std::optional<HistClassSplit>> class_fresh_;
  std::vector<std::optional<HistClassSplit>> class_remainder_;
  std::vector<HistSseSplit> sse_fresh_;
  std::vector<HistSseSplit> sse_remainder_;
};

}  // namespace treewm::tree

#endif  // TREEWM_TREE_HISTOGRAM_CORE_H_
