// Binary classification decision tree (weighted CART).
//
// Matches the paper's definition (§2): a tree is a leaf L(y) or an internal
// node N(f <= v, t_l, t_r); traversal goes left when x_f <= v. Trees support
// the hyper-parameters Algorithm 1 manipulates (max depth, max leaf count)
// plus the usual stopping rules, honor per-instance sample weights, and can
// grow best-first (needed when max_leaf_nodes binds, as after Adjust(H)).

#ifndef TREEWM_TREE_DECISION_TREE_H_
#define TREEWM_TREE_DECISION_TREE_H_

#include <memory>
#include <span>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "data/dataset.h"
#include "predict/flat_cache.h"
#include "tree/binned_columns.h"
#include "tree/criterion.h"
#include "tree/sorted_columns.h"

namespace treewm::tree {

/// One node of a flattened tree. Leaves have feature == -1.
struct TreeNode {
  int feature = -1;        ///< split feature; -1 marks a leaf
  float threshold = 0.0f;  ///< split threshold (go left iff x_f <= threshold)
  int left = -1;           ///< index of left child (-1 for leaves)
  int right = -1;          ///< index of right child (-1 for leaves)
  int label = 0;           ///< leaf prediction (+1/-1); majority label otherwise
};

/// Tree induction hyper-parameters (the H of Algorithm 1).
struct TreeConfig {
  SplitCriterion criterion = SplitCriterion::kGini;
  /// Maximum tree depth; -1 means unlimited. Root has depth 0.
  int max_depth = -1;
  /// Maximum number of leaves; -1 means unlimited. When set, growth is
  /// best-first by impurity decrease (the sklearn semantics).
  int max_leaf_nodes = -1;
  /// Minimum instances required to consider splitting a node.
  size_t min_samples_split = 2;
  /// Minimum instances each child must receive.
  size_t min_samples_leaf = 1;

  /// Which split engine Fit runs. kExact (default) is the sort-once
  /// column-index engine, bit-identical to FitReference. kHistogram is the
  /// approximate binned-gradient engine (binned_columns.h +
  /// histogram_core.h) — accuracy parity, not bit-identity.
  TrainerMode trainer_mode = TrainerMode::kExact;
  /// Histogram mode only: bins per feature for an internally built binning
  /// (ignored when prebuilt BinnedColumns are passed — their own cap rules).
  size_t max_bins = 255;
  /// Histogram mode only: intra-tree parallelism of the per-feature
  /// histogram/sweep fan-out. 0 = the process-global pool, 1 = serial
  /// (default), N > 1 = a private pool of N workers. Chosen splits are
  /// invariant across thread counts.
  size_t num_threads = 1;

  /// Validates parameter ranges.
  [[nodiscard]] Status Validate() const;
};

/// An immutable trained decision tree.
class DecisionTree {
 public:
  /// Trains a tree on `dataset` with per-row `weights` (empty means all 1.0),
  /// restricted to splitting on `feature_subset` (empty means all features).
  ///
  /// Runs on the sort-once column-index engine (sorted_columns.h +
  /// trainer_core.h). Pass a prebuilt `sorted` for the same dataset to
  /// amortize the one-time column sort across many trees (forests, boosting
  /// rounds, weight-boosting retrains); nullptr builds it internally.
  /// Bit-identical to FitReference by the trainer equivalence contract.
  ///
  /// With config.trainer_mode == kHistogram the approximate binned-gradient
  /// engine runs instead: pass prebuilt `binned` for the same dataset to
  /// amortize the one-time binning (nullptr bins internally with
  /// config.max_bins), and leave `sorted` null — the engines' substrates
  /// are not interchangeable, and mixing them is an InvalidArgument (as is
  /// passing `binned` in exact mode).
  [[nodiscard]] static Result<DecisionTree> Fit(const data::Dataset& dataset,
                                  const std::vector<double>& weights,
                                  const TreeConfig& config,
                                  const std::vector<int>& feature_subset = {},
                                  const SortedColumns* sorted = nullptr,
                                  const BinnedColumns* binned = nullptr);

  /// The retained naive trainer (per-node re-sorting Splitter) — the
  /// executable specification Fit is property-tested against, kept the way
  /// predict/reference.h keeps the scalar inference loops.
  [[nodiscard]] static Result<DecisionTree> FitReference(const data::Dataset& dataset,
                                           const std::vector<double>& weights,
                                           const TreeConfig& config,
                                           const std::vector<int>& feature_subset = {});

  /// Predicts the label (+1/-1) for one instance.
  int Predict(std::span<const float> row) const;

  /// Predicts labels for every row of `dataset`.
  std::vector<int> PredictBatch(const data::Dataset& dataset) const;

  /// Index (into nodes()) of the leaf `row` reaches.
  int LeafIndexFor(std::span<const float> row) const;

  /// Fraction of rows of `dataset` whose prediction equals their label.
  double Accuracy(const data::Dataset& dataset) const;

  /// Depth of the tree (a lone root leaf has depth 0).
  int Depth() const;

  /// Number of leaf nodes.
  size_t NumLeaves() const;

  /// Total node count.
  size_t NumNodes() const { return nodes_.size(); }

  /// Flattened node storage; index 0 is the root.
  const std::vector<TreeNode>& nodes() const { return nodes_; }

  /// Features this tree was allowed to split on (empty = all).
  const std::vector<int>& feature_subset() const { return feature_subset_; }

  /// Number of features of the training data (for validation on predict).
  size_t num_features() const { return num_features_; }

  /// Half-open interval constraint lo < x_f <= hi collected along a root-leaf
  /// path. Only features actually tested appear.
  struct PathConstraint {
    int feature;
    double lo;  ///< exclusive lower bound (-inf when unconstrained)
    double hi;  ///< inclusive upper bound (+inf when unconstrained)
  };

  /// A leaf together with the conjunction of constraints reaching it.
  struct LeafInfo {
    int node_index;
    int label;
    std::vector<PathConstraint> constraints;  ///< one entry per tested feature
  };

  /// Enumerates all leaves with per-feature merged path constraints. Used by
  /// the forgery solver (a leaf is an axis-aligned box).
  std::vector<LeafInfo> ExtractLeaves() const;

  /// Serialization.
  JsonValue ToJson() const;
  [[nodiscard]] static Result<DecisionTree> FromJson(const JsonValue& json);

  /// Builds a tree directly from nodes (used by the 3SAT reduction and
  /// tests). Validates structural well-formedness.
  [[nodiscard]] static Result<DecisionTree> FromNodes(std::vector<TreeNode> nodes,
                                        size_t num_features);

  /// Structural equality (same nodes in the same order).
  bool StructurallyEqual(const DecisionTree& other) const;

 private:
  DecisionTree() = default;

  /// Packed one-tree inference image, built lazily on the first batch call
  /// and shared across calls (and copies) — nodes_ is immutable after
  /// construction, so the cache can never go stale. The image in turn
  /// caches its quantized sibling, so per-call kernel dispatch (see
  /// batch_predictor.h) never rebuilds either.
  std::shared_ptr<const predict::FlatEnsemble> Flat() const;

  std::vector<TreeNode> nodes_;
  std::vector<int> feature_subset_;
  size_t num_features_ = 0;
  mutable predict::FlatCacheSlot flat_cache_;
};

}  // namespace treewm::tree

#endif  // TREEWM_TREE_DECISION_TREE_H_
