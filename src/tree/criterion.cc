#include "tree/criterion.h"

#include <cmath>

#include "common/string_util.h"

namespace treewm::tree {

Result<SplitCriterion> SplitCriterionFromName(const std::string& name) {
  const std::string key = StrToLower(name);
  if (key == "gini") return SplitCriterion::kGini;
  if (key == "entropy") return SplitCriterion::kEntropy;
  return Status::InvalidArgument("unknown criterion: " + name);
}

const char* SplitCriterionName(SplitCriterion criterion) {
  switch (criterion) {
    case SplitCriterion::kGini:
      return "gini";
    case SplitCriterion::kEntropy:
      return "entropy";
  }
  return "?";
}

double GiniImpurity(const ClassWeights& w) {
  const double total = w.Total();
  if (total <= 0.0) return 0.0;
  const double p = w.positive / total;
  return 2.0 * p * (1.0 - p);
}

double EntropyImpurity(const ClassWeights& w) {
  const double total = w.Total();
  if (total <= 0.0) return 0.0;
  const double p = w.positive / total;
  double h = 0.0;
  if (p > 0.0) h -= p * std::log(p);
  if (p < 1.0) h -= (1.0 - p) * std::log(1.0 - p);
  return h;
}

double Impurity(SplitCriterion criterion, const ClassWeights& w) {
  switch (criterion) {
    case SplitCriterion::kGini:
      return GiniImpurity(w);
    case SplitCriterion::kEntropy:
      return EntropyImpurity(w);
  }
  return 0.0;
}

double ImpurityDecrease(SplitCriterion criterion, const ClassWeights& parent,
                        const ClassWeights& left, const ClassWeights& right) {
  const double total = parent.Total();
  if (total <= 0.0) return 0.0;
  return Impurity(criterion, parent) -
         (left.Total() / total) * Impurity(criterion, left) -
         (right.Total() / total) * Impurity(criterion, right);
}

}  // namespace treewm::tree
