// Shared training core: per-tree column workspace over SortedColumns plus
// the presorted split sweeps for classification (ClassWeights) and
// regression (SSE).
//
// A TrainerCore owns a working copy of the sorted index columns for one
// tree's feature subset. Tree induction addresses node membership as a range
// [begin, end) that is valid in EVERY column simultaneously; splitting a
// node stable-partitions each column's range in place (left rows first,
// relative order preserved), so two invariants hold at every node forever:
//
//   1. each column range is sorted by feature value;
//   2. value ties appear in ascending original-row order (the global
//      stable-sort order survives stable partition).
//
// Invariant 2 is what makes the engine bit-identical to the retained naive
// reference (splitter.cc / the naive regression sweep): both sides add the
// same rows to the same accumulators in the same left-to-right order, so
// floating-point sums — and therefore gains, gain comparisons and chosen
// thresholds — match exactly. See src/tree/README.md for the full contract.

#ifndef TREEWM_TREE_TRAINER_CORE_H_
#define TREEWM_TREE_TRAINER_CORE_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "tree/sorted_columns.h"
#include "tree/splitter.h"

namespace treewm::tree {

/// Per-tree mutable workspace: working index columns for a feature subset,
/// an optional identity column (node members in ascending row order — the
/// regression learner needs per-node target sums in that order), and the
/// scratch needed for stable in-place partition. One instance per tree
/// being grown; the underlying SortedColumns is shared and immutable.
class TrainerCore {
 public:
  /// `features` lists the dataset feature ids this tree may split on, in
  /// sweep order (the order the learner would have searched them). The
  /// workspace copies only those columns. `sorted` must outlive the core.
  TrainerCore(const SortedColumns& sorted, const std::vector<int>& features,
              bool with_identity);

  /// Restores every column to the full-dataset sorted state (fresh tree on
  /// the same dataset — e.g. the next boosting round).
  void Reset();

  size_t num_rows() const { return n_; }
  size_t num_slots() const { return features_.size(); }
  int feature_at(size_t slot) const { return features_[slot]; }

  /// Slot index of a dataset feature id (must be in the subset).
  size_t SlotOf(int feature) const {
    return static_cast<size_t>(slot_of_[static_cast<size_t>(feature)]);
  }

  /// Node range of one feature column: sorted by value, ties by row.
  std::span<const ColumnEntry> Column(size_t slot, size_t begin, size_t end) const {
    return {cols_.data() + slot * n_ + begin, end - begin};
  }

  /// Node members in ascending original-row order (requires with_identity).
  std::span<const ColumnEntry> Members(size_t begin, size_t end) const {
    assert(with_identity_);
    return {cols_.data() + identity_slot_ * n_ + begin, end - begin};
  }

  /// Splits node [begin, end): the first `left_count` entries of
  /// `split_slot`'s range (the value-sorted prefix, i.e. exactly the rows
  /// with x_f <= threshold) go left. Stable-partitions every column's range
  /// in place and returns the boundary `begin + left_count`; the children
  /// own [begin, mid) and [mid, end).
  size_t ApplySplit(size_t begin, size_t end, size_t split_slot, size_t left_count);

 private:
  const SortedColumns* sorted_;
  std::vector<int> features_;
  std::vector<int32_t> slot_of_;  // feature id -> slot (-1 when absent)
  size_t n_ = 0;
  size_t num_columns_ = 0;   // feature slots + optional identity column
  size_t identity_slot_ = 0;  // == num_slots() when present
  bool with_identity_ = false;
  std::vector<ColumnEntry> cols_;     // slot-major, num_columns_ × n
  std::vector<ColumnEntry> scratch_;  // right side staging for partition
  std::vector<uint8_t> goes_left_;    // per-row mark, cleared after each split
};

/// Sweeps one presorted column for the best weighted-impurity split,
/// updating `best` in place. Mirrors Splitter::FindBestSplit's inner loop
/// operation-for-operation (accumulation order, kMinSplitGain gate, strict
/// ">" tie behavior, midpoint threshold with the one-ulp fallback), so the
/// result is bit-identical to the naive reference on the same rows.
/// `labels`/`weights` are per-row arrays indexed by ColumnEntry::row.
void BestSplitOnColumn(std::span<const ColumnEntry> column, int feature,
                       const int8_t* labels, const double* weights,
                       SplitCriterion criterion, const ClassWeights& node_weights,
                       size_t min_samples_leaf,
                       std::optional<SplitCandidate>* best);

/// Best SSE-reducing split of one presorted column (the regression-tree /
/// GBDT sweep). `total_sum` is the node's target sum accumulated in
/// ascending row order; `parent_term` = total_sum² / n as computed by the
/// caller. Mirrors the naive regression sweep exactly. Tracks `left_count`
/// so the caller can ApplySplit without re-deriving the prefix.
struct RegressionSplitCandidate {
  int feature = -1;
  float threshold = 0.0f;
  double gain = 0.0;
  size_t left_count = 0;
};

void BestSseSplitOnColumn(std::span<const ColumnEntry> column, int feature,
                          const double* targets, double total_sum,
                          double parent_term, size_t min_samples_leaf,
                          double min_gain, RegressionSplitCandidate* best);

}  // namespace treewm::tree

#endif  // TREEWM_TREE_TRAINER_CORE_H_
