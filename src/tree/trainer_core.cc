#include "tree/trainer_core.h"

#include <algorithm>
#include <cassert>

namespace treewm::tree {

TrainerCore::TrainerCore(const SortedColumns& sorted,
                         const std::vector<int>& features, bool with_identity)
    : sorted_(&sorted),
      features_(features),
      slot_of_(sorted.num_features(), -1),
      n_(sorted.num_rows()),
      with_identity_(with_identity) {
  for (size_t s = 0; s < features_.size(); ++s) {
    slot_of_[static_cast<size_t>(features_[s])] = static_cast<int32_t>(s);
  }
  identity_slot_ = features_.size();
  num_columns_ = features_.size() + (with_identity_ ? 1 : 0);
  cols_.resize(num_columns_ * n_);
  scratch_.resize(n_);
  goes_left_.assign(n_, 0);
  Reset();
}

void TrainerCore::Reset() {
  for (size_t s = 0; s < features_.size(); ++s) {
    const auto src = sorted_->Column(static_cast<size_t>(features_[s]));
    std::copy(src.begin(), src.end(), cols_.data() + s * n_);
  }
  if (with_identity_) {
    ColumnEntry* id = cols_.data() + identity_slot_ * n_;
    for (size_t i = 0; i < n_; ++i) id[i] = {static_cast<uint32_t>(i), 0.0f};
  }
}

size_t TrainerCore::ApplySplit(size_t begin, size_t end, size_t split_slot,
                               size_t left_count) {
  assert(left_count > 0 && left_count < end - begin);
  const ColumnEntry* split_col = cols_.data() + split_slot * n_;
  for (size_t i = begin; i < begin + left_count; ++i) {
    goes_left_[split_col[i].row] = 1;
  }
  for (size_t c = 0; c < num_columns_; ++c) {
    // The split column is already exactly partitioned: its first left_count
    // entries ARE the left rows and both sides keep their order, so the
    // stable pass would be a no-op.
    if (c == split_slot) continue;
    ColumnEntry* col = cols_.data() + c * n_;
    size_t lp = begin;
    size_t rp = 0;
    for (size_t i = begin; i < end; ++i) {
      const ColumnEntry e = col[i];
      if (goes_left_[e.row]) {
        col[lp++] = e;
      } else {
        scratch_[rp++] = e;
      }
    }
    std::copy(scratch_.data(), scratch_.data() + rp, col + lp);
  }
  // The split column's left rows are still its first left_count entries.
  for (size_t i = begin; i < begin + left_count; ++i) {
    goes_left_[split_col[i].row] = 0;
  }
  return begin + left_count;
}

void BestSplitOnColumn(std::span<const ColumnEntry> column, int feature,
                       const int8_t* labels, const double* weights,
                       SplitCriterion criterion, const ClassWeights& node_weights,
                       size_t min_samples_leaf,
                       std::optional<SplitCandidate>* best) {
  const size_t n = column.size();
  if (column.front().value == column.back().value) return;  // constant feature

  ClassWeights left;
  ClassWeights right = node_weights;
  size_t left_count = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    const ColumnEntry e = column[i];
    left.Add(labels[e.row], weights[e.row]);
    right.Remove(labels[e.row], weights[e.row]);
    ++left_count;
    // Only cut between distinct values.
    if (e.value == column[i + 1].value) continue;
    if (left_count < min_samples_leaf || n - left_count < min_samples_leaf) continue;
    const double gain = ImpurityDecrease(criterion, node_weights, left, right);
    if (gain > kMinSplitGain && (!*best || gain > (*best)->gain)) {
      SplitCandidate candidate;
      candidate.feature = feature;
      // Midpoint threshold; guaranteed >= left value and < right value.
      candidate.threshold = e.value + (column[i + 1].value - e.value) * 0.5f;
      // Degenerate float midpoints (values one ulp apart) collapse onto the
      // right value; fall back to the left value so "x <= t" still separates.
      if (candidate.threshold >= column[i + 1].value) {
        candidate.threshold = e.value;
      }
      candidate.gain = gain;
      candidate.left_weights = left;
      candidate.right_weights = right;
      candidate.left_count = left_count;
      candidate.right_count = n - left_count;
      *best = candidate;
    }
  }
}

void BestSseSplitOnColumn(std::span<const ColumnEntry> column, int feature,
                          const double* targets, double total_sum,
                          double parent_term, size_t min_samples_leaf,
                          double min_gain, RegressionSplitCandidate* best) {
  const size_t n = column.size();
  if (column.front().value == column.back().value) return;

  // SSE(parent) - SSE(children) = sum_l^2/n_l + sum_r^2/n_r - sum^2/n.
  double left_sum = 0.0;
  for (size_t i = 0; i + 1 < n; ++i) {
    const ColumnEntry e = column[i];
    left_sum += targets[e.row];
    if (e.value == column[i + 1].value) continue;
    const size_t left_count = i + 1;
    const size_t right_count = n - left_count;
    if (left_count < min_samples_leaf || right_count < min_samples_leaf) continue;
    const double right_sum = total_sum - left_sum;
    const double gain = left_sum * left_sum / static_cast<double>(left_count) +
                        right_sum * right_sum / static_cast<double>(right_count) -
                        parent_term;
    if (gain > min_gain && gain > best->gain) {
      float threshold = e.value + (column[i + 1].value - e.value) * 0.5f;
      if (threshold >= column[i + 1].value) threshold = e.value;
      best->feature = feature;
      best->threshold = threshold;
      best->gain = gain;
      best->left_count = left_count;
    }
  }
}

}  // namespace treewm::tree
