// Blocked, multi-threaded batch traversal over a FlatEnsemble.
//
// Work is tiled as row-blocks × tree-blocks: a block of rows (default 64,
// ~5 KB of features) is pinned while tree-blocks stream through it, so both
// the rows and each tree's arena segment stay cache-resident. Row blocks fan
// out across a ThreadPool; every block writes a disjoint output slice and
// per-block tallies are integers, so results are identical for any thread
// count and any schedule (see src/predict/README.md).
//
// Within a tile, four rows are traversed per dependency chain (inactive
// lanes hold their leaf until all four finish), hiding the dependent-load
// latency that dominates one-row-at-a-time traversal.
//
// For regression (GBDT) ensembles every per-row accumulation runs in
// ascending tree order with the same `score += lr * leaf` operation sequence
// as the scalar Gbdt::Score, so scores — not just predictions — are
// bit-exact with the reference path.

#ifndef TREEWM_PREDICT_BATCH_PREDICTOR_H_
#define TREEWM_PREDICT_BATCH_PREDICTOR_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "predict/flat_ensemble.h"
#include "predict/vote_matrix.h"

namespace treewm::predict {

/// Which traversal kernel a batch call runs on. Both kernels are bit-exact
/// with the scalar reference, so the choice only affects speed.
enum class PredictKernel : uint8_t {
  /// Resolve at call time: the TREEWM_PREDICT_KERNEL env override if set
  /// ("quantized" / "floatkey"), else FloatKey — the quantized traversal
  /// only reaches parity while its binning transform costs more than the
  /// key transform on every measured fixture shape (see bench/README.md),
  /// so it must be opted into per call or per process.
  kAuto = 0,
  /// The 32-byte-record FloatKey kernel (flat_ensemble.h) — always
  /// available, and the fallback when quantization is ineligible.
  kFloatKey,
  /// The 8/16-byte binned-record kernel (quantized_ensemble.h). Falls back
  /// to FloatKey if the ensemble is ineligible even when forced.
  kQuantized,
};

/// Tiling and parallelism knobs. Defaults are safe everywhere; they only
/// affect speed, never results.
struct BatchOptions {
  /// 0 = process-global pool, 1 = serial, k > 1 = private pool of k threads.
  size_t num_threads = 0;
  /// Rows per tile; 0 = auto (a few blocks per worker thread, so each
  /// tree's arena segment is loaded as few times as possible while keeping
  /// every worker fed).
  size_t row_block = 0;
  /// Trees per tile (clamped to >= 1).
  size_t tree_block = 16;
  /// Traversal kernel; kAuto consults TREEWM_PREDICT_KERNEL, then
  /// eligibility. An explicit kFloatKey/kQuantized beats the env override.
  PredictKernel kernel = PredictKernel::kAuto;
};

/// Stateless batch-inference driver over a FlatEnsemble (owned or shared —
/// the immutable model classes cache one flat image and share it across
/// calls, so repeated batches pay the packing cost once).
class BatchPredictor {
 public:
  /// Sentinel for "use every tree".
  static constexpr size_t kAllTrees = static_cast<size_t>(-1);

  explicit BatchPredictor(FlatEnsemble ensemble, BatchOptions options = {});
  explicit BatchPredictor(std::shared_ptr<const FlatEnsemble> ensemble,
                          BatchOptions options = {});

  /// Majority-vote labels (±1, ties -> +1) per row. Classification only.
  std::vector<int> PredictLabels(const data::Dataset& dataset) const;

  /// Per-tree votes as a flat row-major matrix — the hot-path output shape:
  /// one allocation for the whole batch, votes written straight from the
  /// traversal staging buffers. Classification only.
  VoteMatrix PredictAllVotes(const data::Dataset& dataset) const;

  /// Per-tree votes; result[i][t] is tree t's vote on row i. Thin adapter
  /// over PredictAllVotes for callers that need the legacy nested shape —
  /// pays one heap row per instance. Classification only.
  std::vector<std::vector<int>> PredictAllLabels(const data::Dataset& dataset) const;

  /// Majority-vote accuracy (0.0 on an empty dataset). Classification only.
  double LabelAccuracy(const data::Dataset& dataset) const;

  /// Additive scores initial + lr * Σ leaf over the first `prefix_trees`
  /// trees (bit-exact with scalar accumulation). Regression only.
  std::vector<double> Scores(const data::Dataset& dataset,
                             size_t prefix_trees = kAllTrees) const;

  /// Accuracy of sign(score) over the first `prefix_trees` trees (0.0 on an
  /// empty dataset). Regression only.
  double ScoreAccuracy(const data::Dataset& dataset,
                       size_t prefix_trees = kAllTrees) const;

  /// result[k] = accuracy using only the first k trees, for every
  /// k in [0, num_trees], computed in a single traversal pass via per-tree
  /// partial sums. Regression only.
  std::vector<double> StagedAccuracyCurve(const data::Dataset& dataset) const;

  const FlatEnsemble& ensemble() const { return *ensemble_; }
  const BatchOptions& options() const { return options_; }

  /// The kernel the next batch call will traverse with (never kAuto):
  /// resolves the option, the TREEWM_PREDICT_KERNEL override, and quantized
  /// eligibility. Builds the quantized image if resolution needs it.
  PredictKernel ChosenKernel() const;

 private:
  std::shared_ptr<const FlatEnsemble> ensemble_;
  BatchOptions options_;
};

/// Parses a TREEWM_PREDICT_KERNEL value: "quantized" -> kQuantized,
/// "floatkey"/"flat" -> kFloatKey, anything else (or unset) -> kAuto.
/// Exposed for tests; the env var itself is read once per process.
PredictKernel KernelChoiceFromString(const char* value);

}  // namespace treewm::predict

#endif  // TREEWM_PREDICT_BATCH_PREDICTOR_H_
