// Lock-free lazy construction of a model's packed inference image.
//
// The model classes (DecisionTree, RandomForest, Gbdt) are immutable after
// construction, so each carries a `mutable FlatCacheSlot` filled on the
// first batch call. Publication uses the shared_ptr atomic free functions
// (still provided in C++20, though deprecated in favour of
// std::atomic<shared_ptr>, which this toolchain's library predates): a
// cache hit is one acquire-load, concurrent first calls may both build
// (the images are identical; last writer wins and the loser's copy is
// dropped), and — unlike a global mutex — unrelated models never serialize
// against each other. FlatCacheSlot also makes the models' value semantics
// race-free: copying/moving a model reads the source slot atomically, so a
// copy taken while another thread publishes the first image is well
// defined (the copy sees the image or an empty slot, never a torn one).
//
// This header is intentionally light (no flat_ensemble.h) so the model
// headers can embed the slot; LazyFlat is instantiated from .cc files that
// see the complete FlatEnsemble.

#ifndef TREEWM_PREDICT_FLAT_CACHE_H_
#define TREEWM_PREDICT_FLAT_CACHE_H_

#include <memory>
#include <utility>

namespace treewm::predict {

class FlatEnsemble;

/// Holder for the lazily built image with atomic publication and
/// copy/move that goes through the same atomics.
class FlatCacheSlot {
 public:
  FlatCacheSlot() = default;
  FlatCacheSlot(const FlatCacheSlot& other)
      : ptr_(std::atomic_load_explicit(&other.ptr_, std::memory_order_acquire)) {}
  /// Moving shares rather than steals: the source stays usable and the
  /// slot stays race-free without a distinct move protocol.
  FlatCacheSlot(FlatCacheSlot&& other) noexcept
      : FlatCacheSlot(static_cast<const FlatCacheSlot&>(other)) {}
  FlatCacheSlot& operator=(const FlatCacheSlot& other) {
    std::atomic_store_explicit(
        &ptr_, std::atomic_load_explicit(&other.ptr_, std::memory_order_acquire),
        std::memory_order_release);
    return *this;
  }
  FlatCacheSlot& operator=(FlatCacheSlot&& other) noexcept {
    return *this = static_cast<const FlatCacheSlot&>(other);
  }

  std::shared_ptr<const FlatEnsemble> Load() const {
    return std::atomic_load_explicit(&ptr_, std::memory_order_acquire);
  }
  void Store(std::shared_ptr<const FlatEnsemble> value) {
    std::atomic_store_explicit(&ptr_, std::move(value), std::memory_order_release);
  }

 private:
  std::shared_ptr<const FlatEnsemble> ptr_;
};

template <typename BuildFn>
std::shared_ptr<const FlatEnsemble> LazyFlat(FlatCacheSlot* slot,
                                             const BuildFn& build) {
  std::shared_ptr<const FlatEnsemble> cached = slot->Load();
  if (cached != nullptr) return cached;
  auto built = std::make_shared<const FlatEnsemble>(build());
  slot->Store(built);
  return built;
}

}  // namespace treewm::predict

#endif  // TREEWM_PREDICT_FLAT_CACHE_H_
