// Lock-free lazy construction of a model's packed inference images.
//
// The model classes (DecisionTree, RandomForest, Gbdt) are immutable after
// construction, so each carries a `mutable ImageCacheSlot<FlatEnsemble>`
// filled on the first batch call; the FlatEnsemble in turn carries an
// `ImageCacheSlot<QuantizedEnsemble>` for its quantized sibling, so one
// model caches both kernel images lazily. Publication uses the shared_ptr
// atomic free functions (still provided in C++20, though deprecated in
// favour of std::atomic<shared_ptr>, which this toolchain's library
// predates): a cache hit is one acquire-load, concurrent first calls may
// both build (the images are identical; last writer wins and the loser's
// copy is dropped), and — unlike a global mutex — unrelated models never
// serialize against each other. ImageCacheSlot also makes the holders'
// value semantics race-free: copying/moving reads the source slot
// atomically, so a copy taken while another thread publishes the first
// image is well defined (the copy sees the image or an empty slot, never a
// torn one).
//
// This header is intentionally light (no flat_ensemble.h) so the model
// headers can embed the slot; LazyImage is instantiated from .cc files that
// see the complete image type.
//
// Concurrency: deliberately OUTSIDE the TREEWM_GUARDED_BY capability model
// (src/common/annotations.h) — there is no lock for the analysis to track;
// correctness rests on the acquire/release pairs above, which TSan (CI's
// tsan job) checks instead. New shared state should prefer the annotated
// common/mutex.h wrappers; atomics are for proven hot paths like this one.

#ifndef TREEWM_PREDICT_FLAT_CACHE_H_
#define TREEWM_PREDICT_FLAT_CACHE_H_

#include <memory>
#include <utility>

namespace treewm::predict {

class FlatEnsemble;

/// Holder for a lazily built image of type T with atomic publication and
/// copy/move that goes through the same atomics.
template <typename T>
class ImageCacheSlot {
 public:
  ImageCacheSlot() = default;
  ImageCacheSlot(const ImageCacheSlot& other)
      : ptr_(std::atomic_load_explicit(&other.ptr_, std::memory_order_acquire)) {}
  /// Moving shares rather than steals: the source stays usable and the
  /// slot stays race-free without a distinct move protocol.
  ImageCacheSlot(ImageCacheSlot&& other) noexcept
      : ImageCacheSlot(static_cast<const ImageCacheSlot&>(other)) {}
  ImageCacheSlot& operator=(const ImageCacheSlot& other) {
    std::atomic_store_explicit(
        &ptr_, std::atomic_load_explicit(&other.ptr_, std::memory_order_acquire),
        std::memory_order_release);
    return *this;
  }
  ImageCacheSlot& operator=(ImageCacheSlot&& other) noexcept {
    return *this = static_cast<const ImageCacheSlot&>(other);
  }

  std::shared_ptr<const T> Load() const {
    return std::atomic_load_explicit(&ptr_, std::memory_order_acquire);
  }
  void Store(std::shared_ptr<const T> value) {
    std::atomic_store_explicit(&ptr_, std::move(value), std::memory_order_release);
  }

 private:
  std::shared_ptr<const T> ptr_;
};

/// Back-compat alias for the model classes' flat-image slot.
using FlatCacheSlot = ImageCacheSlot<FlatEnsemble>;

template <typename T, typename BuildFn>
std::shared_ptr<const T> LazyImage(ImageCacheSlot<T>* slot, const BuildFn& build) {
  std::shared_ptr<const T> cached = slot->Load();
  if (cached != nullptr) return cached;
  auto built = std::make_shared<const T>(build());
  slot->Store(built);
  return built;
}

/// Back-compat name used by the model classes for their FlatEnsemble slot.
template <typename BuildFn>
std::shared_ptr<const FlatEnsemble> LazyFlat(FlatCacheSlot* slot,
                                             const BuildFn& build) {
  return LazyImage(slot, build);
}

}  // namespace treewm::predict

#endif  // TREEWM_PREDICT_FLAT_CACHE_H_
