#include "predict/batch_predictor.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string_view>

#include "common/thread_pool.h"
#include "predict/quantized_ensemble.h"

namespace treewm::predict {

namespace {

// --------------------------------------------------------------------------
// FloatKey kernel: 32-byte records, rows transformed to uint32 key space.
// --------------------------------------------------------------------------

/// One traversal step from byte-scaled arena entry rn (>= 0), over a row
/// pre-transformed into FloatKey space: `key <= threshold_key` (unsigned) is
/// exactly the scalar paths' `x <= v`, so key comparison preserves bit-exact
/// routing (see FloatKey for the NaN contract). One 8-byte load yields
/// feature and threshold key together; the two pre-scaled child words load
/// OFF the critical path and a register cmov picks the taken one, so the
/// dependency chain is node-load -> key-load -> cmp -> cmov, with no float
/// unit, no shift and no sign-extend in the chain (little-endian layout, as
/// everywhere treewm runs).
inline int64_t Step(const uint32_t* xk, int64_t rn, const char* nodes) {
  uint64_t ft;
  int64_t left, right;
  std::memcpy(&ft, nodes + rn, 8);
  std::memcpy(&left, nodes + rn + 8, 8);
  std::memcpy(&right, nodes + rn + 16, 8);
  const uint32_t key = xk[static_cast<uint32_t>(ft)];
  return key > static_cast<uint32_t>(ft >> 32) ? right : left;
}

/// Walks one row from entry `rn` (>= 0) to its leaf payload index.
inline int64_t WalkFrom(const uint32_t* xk, int64_t rn, const char* nodes) {
  while (rn >= 0) rn = Step(xk, rn, nodes);
  return ~rn;
}

/// Transforms rows [r0, r1) into FloatKey space — one linear pass whose cost
/// is amortized over every tree of the ensemble traversing the block. Each
/// row occupies stride + 1 entries: its feature keys followed by its
/// block-relative row id, so a traversal lane can recover the row from its
/// key offset alone. The buffer is a grow-only thread-local scratch: blocks
/// run sequentially on each worker, so reuse is safe and repeated batch
/// calls skip the (large) per-call allocation.
const uint32_t* MakeRowKeys(const data::Dataset& data, size_t r0, size_t r1) {
  static thread_local std::vector<uint32_t> scratch;
  const size_t stride = data.num_features();
  const float* base = data.values().data() + r0 * stride;
  if (scratch.size() < (r1 - r0) * (stride + 1)) {
    scratch.resize((r1 - r0) * (stride + 1));
  }
  size_t o = 0;
  for (size_t r = 0; r < r1 - r0; ++r) {
    for (size_t j = 0; j < stride; ++j) {
      scratch[o++] = FloatKey(base[r * stride + j]);
    }
    scratch[o++] = static_cast<uint32_t>(r);
  }
  return scratch.data();
}

/// Rows traversed concurrently per tree. The walk is latency-bound (every
/// step is a dependent load), so several independent chains keep the load
/// ports busy while each lane's chain waits. A lane is two registers: the
/// arena cursor and the row's key pointer.
constexpr size_t kLanes = 6;

/// Streams trees [t0, t1) over rows [r0, r1), invoking fn(t, row, leaf) with
/// t ascending in the outer loop — per-row visit order is ascending tree
/// order, which regression accumulation relies on for bit-exactness (per-row
/// state is independent, so row completion order within a tree is free).
///
/// kLanes rows descend the tree concurrently; the moment a lane reaches its
/// leaf it emits and is refilled with the block's next row, so — unlike a
/// fixed row-quad — no lane idles behind the deepest row of its group. The
/// refill branch is taken once per ~depth steps and predicts well.
/// `block_keys` is the MakeRowKeys image of rows [r0, r1); a lane recovers
/// its row id from the trailing entry of its key row.
template <typename LeafFn>
inline void TraverseTile(const FlatEnsemble& e, const uint32_t* block_keys,
                         size_t stride, size_t r0, size_t r1, size_t t0,
                         size_t t1, const LeafFn& fn) {
  const char* nodes = reinterpret_cast<const char*>(e.nodes());
  const size_t stride1 = stride + 1;
  const size_t num_rows = r1 - r0;
  for (size_t t = t0; t < t1; ++t) {
    const int64_t entry = e.root(t);
    if (entry < 0) {  // single-leaf tree: every row lands on the same leaf
      for (size_t r = r0; r < r1; ++r) fn(t, r, ~entry);
      continue;
    }

    int64_t cursor[kLanes];
    const uint32_t* xk[kLanes];
    size_t next = 0;  // next unstarted row, relative to r0
    size_t filled = 0;
    for (size_t l = 0; l < kLanes; ++l) xk[l] = nullptr;
    for (; filled < kLanes && next < num_rows; ++filled, ++next) {
      cursor[filled] = entry;
      xk[filled] = block_keys + next * stride1;
    }

    // Steady state: all lanes hold live rows. Stepping and leaf handling
    // stay in separate loops — fusing them serializes the chains.
    while (filled == kLanes) {
      for (size_t l = 0; l < kLanes; ++l) {
        cursor[l] = Step(xk[l], cursor[l], nodes);
      }
      for (size_t l = 0; l < kLanes; ++l) {
        if (cursor[l] < 0) {
          fn(t, r0 + xk[l][stride], ~cursor[l]);
          if (next < num_rows) {
            cursor[l] = entry;
            xk[l] = block_keys + next * stride1;
            ++next;
          } else {
            xk[l] = nullptr;
            filled = l;  // any value != kLanes exits the loop
          }
        }
      }
    }

    // Drain: finish the remaining live lanes one at a time.
    for (size_t l = 0; l < kLanes; ++l) {
      if (xk[l] != nullptr) {
        fn(t, r0 + xk[l][stride], WalkFrom(xk[l], cursor[l], nodes));
      }
    }
  }
}

// --------------------------------------------------------------------------
// Quantized kernel: 8/16-byte binned records, rows transformed to uint8/16
// bin space (see quantized_ensemble.h for the exactness argument).
// --------------------------------------------------------------------------

/// Trailing entries per bin row holding the block-relative row id as a raw
/// uint32 (bins can be narrower than an id, so it spans several entries; a
/// row id in a separate per-lane register measured ~25% slower — the third
/// lane array spilled the bin pointers to the stack in the steady loop).
template <typename BinT>
constexpr size_t kRowIdEntries = sizeof(uint32_t) / sizeof(BinT);

template <typename BinT>
inline uint32_t RowIdAt(const BinT* bin_row, size_t stride) {
  uint32_t id;
  std::memcpy(&id, bin_row + stride, sizeof(id));
  return id;
}

/// Transforms rows [r0, r1) into bin space: one branchless lower bound per
/// (row, feature) over the per-feature cut arrays, amortized over every tree
/// of the ensemble exactly like the FloatKey transform. Each row occupies
/// stride + kRowIdEntries entries: its feature bins followed by its
/// block-relative row id, so a traversal lane recovers the row from its bin
/// pointer alone (same discipline as MakeRowKeys).
template <typename BinT>
const BinT* MakeRowBins(const QuantizedEnsemble& q, const data::Dataset& data,
                        size_t r0, size_t r1) {
  static thread_local std::vector<BinT> scratch;  // grow-only, per BinT
  const size_t stride = data.num_features();
  const size_t stride1 = stride + kRowIdEntries<BinT>;
  const float* base = data.values().data() + r0 * stride;
  if (scratch.size() < (r1 - r0) * stride1) scratch.resize((r1 - r0) * stride1);
  q.BinBlock(base, stride, r1 - r0, scratch.data(), stride1);
  for (size_t r = 0; r < r1 - r0; ++r) {
    const uint32_t id = static_cast<uint32_t>(r);
    std::memcpy(scratch.data() + r * stride1 + stride, &id, sizeof(id));
  }
  return scratch.data();
}

/// One quantized step from tree-local byte-scaled entry rn (>= 0). One
/// 4-byte load yields feature and bin together; the two children are
/// loaded as separate PLAIN values (sign-extending at load time, off the
/// critical path) so the ternary if-converts to a register cmov —
/// selecting between two shift-extractions of one quadword made gcc emit a
/// 50%-mispredicting branch instead (the codegen pitfall PR 1's notes call
/// "ternary-cmov without shift/force"), which cost more than the entire
/// arena-size win. Children are pre-scaled byte offsets and the cursor is
/// int64, so — exactly like the FloatKey Step — no shift and no
/// sign-extend lands in the chain (an int32 node-index cursor paid a
/// movslq per step). `bin(x) <= node bin` routes identically to the scalar
/// `x <= v` (the bin boundary sits exactly at the training threshold).
/// Chain: node-load -> bin-load -> cmp -> cmov, the FloatKey shape against
/// an arena 2-4x smaller.
template <typename BinT>
inline int64_t QStep(const BinT* xb, int64_t rn, const QNode16* nodes) {
  const char* rec = reinterpret_cast<const char*>(nodes) + rn;
  uint32_t fb;
  int16_t c0, c1;
  std::memcpy(&fb, rec, 4);
  std::memcpy(&c0, rec + 4, 2);
  std::memcpy(&c1, rec + 6, 2);
  const int64_t left = c0, right = c1;
  return xb[static_cast<uint16_t>(fb)] <= fb >> 16 ? left : right;
}

template <typename BinT>
inline int64_t QStep(const BinT* xb, int64_t rn, const QNode32* nodes) {
  const char* rec = reinterpret_cast<const char*>(nodes) + rn;
  uint32_t fb;
  int32_t c0, c1;
  std::memcpy(&fb, rec, 4);
  std::memcpy(&c0, rec + 4, 4);
  std::memcpy(&c1, rec + 8, 4);
  const int64_t left = c0, right = c1;
  return xb[static_cast<uint16_t>(fb)] <= fb >> 16 ? left : right;
}

template <typename BinT, typename Node>
inline int64_t QWalkFrom(const BinT* xb, int64_t rn, const Node* nodes) {
  while (rn >= 0) rn = QStep(xb, rn, nodes);
  return ~rn;
}

/// Quantized twin of TraverseTile: same refill-on-leaf lane discipline and
/// the same ascending-tree emit order (regression bit-exactness), but
/// cursors are tree-local node indices against a per-tree base pointer, and
/// leaf payloads are rebased through the tree's leaf base. `bins` is the
/// MakeRowBins image of rows [r0, r1); a lane recovers its row id from the
/// trailing entries of its bin row.
template <typename BinT, typename Node, typename LeafFn>
inline void QTraverseTile(const QuantizedEnsemble& q, const Node* arena,
                          const BinT* bins, size_t stride, size_t r0,
                          size_t r1, size_t t0, size_t t1, const LeafFn& fn) {
  const size_t stride1 = stride + kRowIdEntries<BinT>;
  const size_t num_rows = r1 - r0;
  for (size_t t = t0; t < t1; ++t) {
    const Node* nodes = arena + q.tree_node_base(t);
    const int64_t leaf_base = q.tree_leaf_base(t);
    const int64_t entry = q.root(t);
    if (entry < 0) {  // single-leaf tree
      for (size_t r = r0; r < r1; ++r) fn(t, r, leaf_base + ~entry);
      continue;
    }

    int64_t cursor[kLanes];
    const BinT* xb[kLanes];
    size_t next = 0;
    size_t filled = 0;
    for (size_t l = 0; l < kLanes; ++l) xb[l] = nullptr;
    for (; filled < kLanes && next < num_rows; ++filled, ++next) {
      cursor[filled] = entry;
      xb[filled] = bins + next * stride1;
    }

    while (filled == kLanes) {
      for (size_t l = 0; l < kLanes; ++l) {
        cursor[l] = QStep(xb[l], cursor[l], nodes);
      }
      for (size_t l = 0; l < kLanes; ++l) {
        if (cursor[l] < 0) {
          fn(t, r0 + RowIdAt(xb[l], stride), leaf_base + ~cursor[l]);
          if (next < num_rows) {
            cursor[l] = entry;
            xb[l] = bins + next * stride1;
            ++next;
          } else {
            xb[l] = nullptr;
            filled = l;  // any value != kLanes exits the loop
          }
        }
      }
    }

    for (size_t l = 0; l < kLanes; ++l) {
      if (xb[l] != nullptr) {
        fn(t, r0 + RowIdAt(xb[l], stride),
           leaf_base + QWalkFrom(xb[l], cursor[l], nodes));
      }
    }
  }
}

// --------------------------------------------------------------------------
// Kernel objects: a uniform MakeBlock/Traverse/leaf-payload surface so every
// BatchPredictor method body is written once and instantiated per kernel.
// --------------------------------------------------------------------------

struct FloatKeyKernel {
  const FlatEnsemble& e;
  struct Block {
    const uint32_t* keys;
    size_t stride;
  };
  Block MakeBlock(const data::Dataset& d, size_t r0, size_t r1) const {
    return Block{MakeRowKeys(d, r0, r1), d.num_features()};
  }
  template <typename LeafFn>
  void Traverse(const Block& b, size_t r0, size_t r1, size_t t0, size_t t1,
                const LeafFn& fn) const {
    TraverseTile(e, b.keys, b.stride, r0, r1, t0, t1, fn);
  }
  const int8_t* leaf_labels() const { return e.leaf_labels(); }
  const double* leaf_values() const { return e.leaf_values(); }
};

template <typename BinT, typename Node>
struct QuantizedKernel {
  const QuantizedEnsemble& q;
  const Node* arena;
  struct Block {
    const BinT* bins;
    size_t stride;
  };
  Block MakeBlock(const data::Dataset& d, size_t r0, size_t r1) const {
    return Block{MakeRowBins<BinT>(q, d, r0, r1), d.num_features()};
  }
  template <typename LeafFn>
  void Traverse(const Block& b, size_t r0, size_t r1, size_t t0, size_t t1,
                const LeafFn& fn) const {
    QTraverseTile(q, arena, b.bins, b.stride, r0, r1, t0, t1, fn);
  }
  const int8_t* leaf_labels() const { return q.leaf_labels(); }
  const double* leaf_values() const { return q.leaf_values(); }
};

// --------------------------------------------------------------------------
// Execution planning (kernel-independent).
// --------------------------------------------------------------------------

/// Resolved execution shape for one batch call: pool + row-block geometry.
struct Plan {
  ThreadPool* pool = nullptr;                // nullptr = run inline
  std::unique_ptr<ThreadPool> local_pool;    // owned when num_threads > 1
  size_t row_block = 1;
  size_t num_blocks = 0;
};

Plan MakePlan(const BatchOptions& options, size_t num_rows) {
  Plan plan;
  if (options.num_threads == 0) {
    plan.pool = &ThreadPool::Global();
  } else if (options.num_threads > 1) {
    plan.local_pool = std::make_unique<ThreadPool>(options.num_threads);
    plan.pool = plan.local_pool.get();
  }
  size_t row_block = options.row_block;
  if (row_block == 0) {
    // Auto: a handful of blocks per worker balances load while loading each
    // tree's arena segment as few times as possible (each block streams the
    // whole ensemble once). Execution that will run inline — serial pools,
    // or a caller already on one of this pool's workers (nested
    // ParallelFor) — gets one block = pure tree-major traversal.
    const size_t workers =
        plan.pool != nullptr && !plan.pool->OnWorkerThread()
            ? plan.pool->num_threads()
            : 1;
    const size_t target_blocks = workers == 1 ? 1 : workers * 4;
    row_block = std::max<size_t>(64, (num_rows + target_blocks - 1) / target_blocks);
  }
  plan.row_block = std::max<size_t>(1, row_block);
  plan.num_blocks = (num_rows + plan.row_block - 1) / plan.row_block;
  return plan;
}

/// Runs fn(block_index, row0, row1) over the plan's row blocks. Blocks touch
/// disjoint rows, so any schedule yields identical results.
template <typename BlockFn>
void RunPlan(const Plan& plan, size_t num_rows, const BlockFn& fn) {
  ParallelFor(plan.pool, plan.num_blocks, [&](size_t b) {
    fn(b, b * plan.row_block, std::min(num_rows, (b + 1) * plan.row_block));
  });
}

// --------------------------------------------------------------------------
// Method bodies, written once over the kernel surface.
// --------------------------------------------------------------------------

template <typename Kernel>
std::vector<int> PredictLabelsImpl(const Kernel& kernel, size_t m,
                                   const BatchOptions& options,
                                   const data::Dataset& dataset) {
  const int8_t* labels = kernel.leaf_labels();
  std::vector<int> out(dataset.num_rows());
  const Plan plan = MakePlan(options, dataset.num_rows());
  RunPlan(plan, dataset.num_rows(), [&](size_t, size_t r0, size_t r1) {
    const auto block = kernel.MakeBlock(dataset, r0, r1);
    std::vector<int32_t> votes(r1 - r0, 0);
    for (size_t tb = 0; tb < m; tb += options.tree_block) {
      kernel.Traverse(block, r0, r1, tb, std::min(m, tb + options.tree_block),
                      [&](size_t, size_t r, int64_t leaf) {
                        votes[r - r0] += labels[leaf];
                      });
    }
    for (size_t r = r0; r < r1; ++r) {
      out[r] = votes[r - r0] >= 0 ? data::kPositive : data::kNegative;
    }
  });
  return out;
}

template <typename Kernel>
VoteMatrix PredictAllVotesImpl(const Kernel& kernel, size_t m,
                               const BatchOptions& options,
                               const data::Dataset& dataset) {
  const int8_t* labels = kernel.leaf_labels();
  VoteMatrix out(dataset.num_rows(), m);
  const Plan plan = MakePlan(options, dataset.num_rows());
  RunPlan(plan, dataset.num_rows(), [&](size_t, size_t r0, size_t r1) {
    const auto block = kernel.MakeBlock(dataset, r0, r1);
    int8_t* base = out.mutable_row(0);
    const size_t rows = r1 - r0;
    // Per tree: emit into a 1-byte-per-row L1 stage (the same cheap store
    // the walk already pays in the vote-count paths), then scatter the
    // stage into the matrix column with a tight strided-store loop. Strided
    // STORES retire off the critical path; the row-wise transpose of a full
    // tree-major stage (strided byte-GATHER loads) measured ~20% slower
    // end-to-end, and direct strided emit (r * m + t inside the walk)
    // measured no better than this split while complicating the emit.
    static thread_local std::vector<int8_t> stage_storage;  // grow-only
    if (stage_storage.size() < rows) stage_storage.resize(rows);
    // Hot-loop capture must be the raw pointer: indexing the thread_local
    // vector inside the emit lambda re-reads TLS every leaf.
    int8_t* const stage = stage_storage.data();
    for (size_t t = 0; t < m; ++t) {
      kernel.Traverse(block, r0, r1, t, t + 1,
                      [&](size_t, size_t r, int64_t leaf) {
                        stage[r - r0] = labels[leaf];
                      });
      int8_t* dst = base + r0 * m + t;
      for (size_t i = 0; i < rows; ++i) dst[i * m] = stage[i];
    }
  });
  return out;
}

template <typename Kernel>
double LabelAccuracyImpl(const Kernel& kernel, size_t m,
                         const BatchOptions& options,
                         const data::Dataset& dataset) {
  const int8_t* labels = kernel.leaf_labels();
  const Plan plan = MakePlan(options, dataset.num_rows());
  std::vector<size_t> block_correct(plan.num_blocks, 0);
  RunPlan(plan, dataset.num_rows(), [&](size_t b, size_t r0, size_t r1) {
    const auto block = kernel.MakeBlock(dataset, r0, r1);
    std::vector<int32_t> votes(r1 - r0, 0);
    for (size_t tb = 0; tb < m; tb += options.tree_block) {
      kernel.Traverse(block, r0, r1, tb, std::min(m, tb + options.tree_block),
                      [&](size_t, size_t r, int64_t leaf) {
                        votes[r - r0] += labels[leaf];
                      });
    }
    size_t correct = 0;
    for (size_t r = r0; r < r1; ++r) {
      const int prediction = votes[r - r0] >= 0 ? data::kPositive : data::kNegative;
      if (prediction == dataset.Label(r)) ++correct;
    }
    block_correct[b] = correct;
  });
  size_t correct = 0;
  for (size_t c : block_correct) correct += c;
  return static_cast<double>(correct) / static_cast<double>(dataset.num_rows());
}

template <typename Kernel>
std::vector<double> ScoresImpl(const Kernel& kernel, size_t m, double initial,
                               double lr, const BatchOptions& options,
                               const data::Dataset& dataset) {
  const double* values = kernel.leaf_values();
  std::vector<double> out(dataset.num_rows(), initial);
  const Plan plan = MakePlan(options, dataset.num_rows());
  RunPlan(plan, dataset.num_rows(), [&](size_t, size_t r0, size_t r1) {
    const auto block = kernel.MakeBlock(dataset, r0, r1);
    for (size_t tb = 0; tb < m; tb += options.tree_block) {
      kernel.Traverse(block, r0, r1, tb, std::min(m, tb + options.tree_block),
                      [&](size_t, size_t r, int64_t leaf) {
                        out[r] += lr * values[leaf];
                      });
    }
  });
  return out;
}

template <typename Kernel>
std::vector<double> StagedAccuracyCurveImpl(const Kernel& kernel, size_t m,
                                            double initial, double lr,
                                            const BatchOptions& options,
                                            const data::Dataset& dataset) {
  const double* values = kernel.leaf_values();
  const Plan plan = MakePlan(options, dataset.num_rows());
  const size_t num_blocks = plan.num_blocks;
  // Per-block stage tallies, merged after the fan-out (integer sums, so the
  // merge is schedule-independent).
  std::vector<size_t> block_correct(num_blocks * (m + 1), 0);
  RunPlan(plan, dataset.num_rows(), [&](size_t b, size_t r0, size_t r1) {
    size_t* correct = block_correct.data() + b * (m + 1);
    const auto block = kernel.MakeBlock(dataset, r0, r1);
    std::vector<double> acc(r1 - r0, initial);
    const int stage0 = initial >= 0.0 ? data::kPositive : data::kNegative;
    for (size_t r = r0; r < r1; ++r) {
      if (stage0 == dataset.Label(r)) ++correct[0];
    }
    for (size_t tb = 0; tb < m; tb += options.tree_block) {
      kernel.Traverse(block, r0, r1, tb, std::min(m, tb + options.tree_block),
                      [&](size_t t, size_t r, int64_t leaf) {
                        double& score = acc[r - r0];
                        score += lr * values[leaf];
                        const int p = score >= 0.0 ? data::kPositive : data::kNegative;
                        if (p == dataset.Label(r)) ++correct[t + 1];
                      });
    }
  });
  std::vector<double> out(m + 1, 0.0);
  for (size_t k = 0; k <= m; ++k) {
    size_t correct = 0;
    for (size_t b = 0; b < num_blocks; ++b) correct += block_correct[b * (m + 1) + k];
    out[k] = static_cast<double>(correct) / static_cast<double>(dataset.num_rows());
  }
  return out;
}

// --------------------------------------------------------------------------
// Kernel dispatch.
// --------------------------------------------------------------------------

/// The process-wide TREEWM_PREDICT_KERNEL override, read once.
PredictKernel EnvKernel() {
  static const PredictKernel kernel = KernelChoiceFromString(
      // Read-only, once, under the static's init guard; nothing in this
      // process calls setenv.
      std::getenv("TREEWM_PREDICT_KERNEL"));  // NOLINT(concurrency-mt-unsafe)
  return kernel;
}

/// The single resolution chain — option, then env override, then the
/// FloatKey default (quantized measured slower end-to-end on every micro
/// shape, see ROADMAP / bench/README.md, so it must be selected
/// explicitly), with a forced kQuantized falling back to FloatKey on an
/// ineligible ensemble rather than failing. Both DispatchKernel and
/// BatchPredictor::ChosenKernel resolve through here, so the reported
/// kernel can never diverge from the kernel that runs.
PredictKernel ResolveKernel(const FlatEnsemble& e, PredictKernel choice) {
  if (choice == PredictKernel::kAuto) choice = EnvKernel();
  if (choice != PredictKernel::kQuantized) return PredictKernel::kFloatKey;
  return e.Quantized()->eligible() ? PredictKernel::kQuantized
                                   : PredictKernel::kFloatKey;
}

/// Invokes fn with the kernel object the resolved choice selects.
template <typename Fn>
auto DispatchKernel(const FlatEnsemble& e, PredictKernel choice, const Fn& fn) {
  if (ResolveKernel(e, choice) == PredictKernel::kQuantized) {
    const std::shared_ptr<const QuantizedEnsemble> q = e.Quantized();
    const bool u8 = q->bin_width() == QuantizedEnsemble::BinWidth::kU8;
    if (q->child_width() == QuantizedEnsemble::ChildWidth::kI16) {
      return u8 ? fn(QuantizedKernel<uint8_t, QNode16>{*q, q->nodes16()})
                : fn(QuantizedKernel<uint16_t, QNode16>{*q, q->nodes16()});
    }
    return u8 ? fn(QuantizedKernel<uint8_t, QNode32>{*q, q->nodes32()})
              : fn(QuantizedKernel<uint16_t, QNode32>{*q, q->nodes32()});
  }
  return fn(FloatKeyKernel{e});
}

}  // namespace

PredictKernel KernelChoiceFromString(const char* value) {
  if (value == nullptr) return PredictKernel::kAuto;
  const std::string_view v(value);
  if (v == "quantized") return PredictKernel::kQuantized;
  if (v == "floatkey" || v == "flat") return PredictKernel::kFloatKey;
  return PredictKernel::kAuto;
}

BatchPredictor::BatchPredictor(FlatEnsemble ensemble, BatchOptions options)
    : BatchPredictor(std::make_shared<const FlatEnsemble>(std::move(ensemble)),
                     options) {}

BatchPredictor::BatchPredictor(std::shared_ptr<const FlatEnsemble> ensemble,
                               BatchOptions options)
    : ensemble_(std::move(ensemble)), options_(options) {
  options_.tree_block = std::max<size_t>(1, options_.tree_block);
}

PredictKernel BatchPredictor::ChosenKernel() const {
  return ResolveKernel(*ensemble_, options_.kernel);
}

std::vector<int> BatchPredictor::PredictLabels(const data::Dataset& dataset) const {
  assert(!ensemble_->is_regression());
  assert(dataset.num_rows() == 0 || dataset.num_features() == ensemble_->num_features());
  return DispatchKernel(*ensemble_, options_.kernel, [&](const auto& kernel) {
    return PredictLabelsImpl(kernel, ensemble_->num_trees(), options_, dataset);
  });
}

VoteMatrix BatchPredictor::PredictAllVotes(const data::Dataset& dataset) const {
  assert(!ensemble_->is_regression());
  assert(dataset.num_rows() == 0 || dataset.num_features() == ensemble_->num_features());
  const size_t m = ensemble_->num_trees();
  // The per-block output state here is m bytes/row (vs 4 bytes/row for the
  // vote-count paths), so cap the auto block size: each block's matrix
  // slice is rewritten once per tree by the scatter below and must stay
  // cache-resident across those m passes, which one giant serial block
  // would not on large batches. Explicit row_block requests are honored
  // as-is.
  BatchOptions options = options_;
  if (options.row_block == 0 && m > 0) {
    constexpr size_t kSliceBytes = 512 * 1024;  // comfortably L2-resident
    options.row_block = std::max<size_t>(64, kSliceBytes / m);
  }
  return DispatchKernel(*ensemble_, options_.kernel, [&](const auto& kernel) {
    return PredictAllVotesImpl(kernel, m, options, dataset);
  });
}

std::vector<std::vector<int>> BatchPredictor::PredictAllLabels(
    const data::Dataset& dataset) const {
  return PredictAllVotes(dataset).ToNested();
}

double BatchPredictor::LabelAccuracy(const data::Dataset& dataset) const {
  assert(!ensemble_->is_regression());
  if (dataset.num_rows() == 0) return 0.0;
  assert(dataset.num_features() == ensemble_->num_features());
  return DispatchKernel(*ensemble_, options_.kernel, [&](const auto& kernel) {
    return LabelAccuracyImpl(kernel, ensemble_->num_trees(), options_, dataset);
  });
}

std::vector<double> BatchPredictor::Scores(const data::Dataset& dataset,
                                           size_t prefix_trees) const {
  assert(ensemble_->is_regression());
  assert(dataset.num_rows() == 0 || dataset.num_features() == ensemble_->num_features());
  const size_t m = std::min(prefix_trees, ensemble_->num_trees());
  return DispatchKernel(*ensemble_, options_.kernel, [&](const auto& kernel) {
    return ScoresImpl(kernel, m, ensemble_->initial_score(),
                      ensemble_->learning_rate(), options_, dataset);
  });
}

double BatchPredictor::ScoreAccuracy(const data::Dataset& dataset,
                                     size_t prefix_trees) const {
  if (dataset.num_rows() == 0) return 0.0;
  const std::vector<double> scores = Scores(dataset, prefix_trees);
  size_t correct = 0;
  for (size_t r = 0; r < dataset.num_rows(); ++r) {
    const int prediction = scores[r] >= 0.0 ? data::kPositive : data::kNegative;
    if (prediction == dataset.Label(r)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.num_rows());
}

std::vector<double> BatchPredictor::StagedAccuracyCurve(
    const data::Dataset& dataset) const {
  assert(ensemble_->is_regression());
  const size_t m = ensemble_->num_trees();
  if (dataset.num_rows() == 0) return std::vector<double>(m + 1, 0.0);
  assert(dataset.num_features() == ensemble_->num_features());
  return DispatchKernel(*ensemble_, options_.kernel, [&](const auto& kernel) {
    return StagedAccuracyCurveImpl(kernel, m, ensemble_->initial_score(),
                                   ensemble_->learning_rate(), options_, dataset);
  });
}

}  // namespace treewm::predict
