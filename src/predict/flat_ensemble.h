// Cache-friendly flattened ensemble — the batch-inference memory layout.
//
// Every batch prediction path in treewm (watermark verification's
// `QueryPredictAll` sweeps, accuracy evaluations, grid search, the attack
// benchmarks) is dominated by ensemble traversal. The per-model node vectors
// are 20-byte records whose label field pads every node across cache lines,
// and every step pays a "is this a leaf?" branch plus a data-dependent
// branch on the float comparison. FlatEnsemble repacks all trees of an
// ensemble into one contiguous arena of 32-byte, 32-aligned records tuned
// for the branchless batch kernel in batch_predictor.cc:
//
//   nodes_[n].ft        split feature | FloatKey(threshold) << 32
//   nodes_[n].child[b]  pre-scaled BYTE offset of the child record
//   roots_[t]           entry of tree t
//
// Thresholds are stored as order-preserving integer keys (FloatKey) and rows
// are transformed into the same key space once per batch, so a traversal
// step needs no float unit. Only internal nodes occupy arena slots. A child
// entry c < 0 encodes a leaf as the bitwise complement ~c of its payload
// index, so the traversal loop is a branchless step with no per-node leaf
// test:
//
//   while (n >= 0) n = taken-child(nodes at byte offset n);  // cmp + cmov
//   payload = ~n;
//
// Leaf payloads live in struct-of-arrays side arrays: `leaf_labels_` (±1
// votes) for classification forests, `leaf_values_` (doubles) for boosted
// regression trees. Traversal order and comparison semantics match the
// scalar `Predict` paths, so flat results are bit-exact with the reference
// implementations (see src/predict/README.md for the exact contract).

#ifndef TREEWM_PREDICT_FLAT_ENSEMBLE_H_
#define TREEWM_PREDICT_FLAT_ENSEMBLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "boosting/regression_tree.h"
#include "common/status.h"
#include "predict/flat_cache.h"
#include "tree/decision_tree.h"

namespace treewm::predict {

class QuantizedEnsemble;

/// Order-preserving integer image of a float: for all non-NaN a, b (with
/// -0.0 first normalized to +0.0), a <= b iff FloatKey(a) <= FloatKey(b) as
/// uint32. Every NaN — either sign bit, any payload — is first normalized
/// to the canonical quiet NaN, so all NaNs map above +inf and a NaN feature
/// takes the right child exactly like the scalar paths' `!(x <= v)` (a raw
/// sign-bit NaN would otherwise map low and diverge). Comparing keys
/// instead of floats keeps the traversal step an integer cmp+cmov chain;
/// the quantized row transform bins the same keys, so both kernels share
/// one NaN rule.
inline uint32_t FloatKey(float f) {
  uint32_t bits;
  static_assert(sizeof(bits) == sizeof(f));
  __builtin_memcpy(&bits, &f, sizeof(bits));
  bits = (bits & 0x7FFFFFFFu) > 0x7F800000u ? 0x7FC00000u : bits;  // NaN
  bits = bits == 0x80000000u ? 0u : bits;  // -0.0 == +0.0 must map equal
  return bits ^ (static_cast<uint32_t>(static_cast<int32_t>(bits) >> 31) |
                 0x80000000u);
}

/// One internal node of the packed arena: everything a traversal step needs
/// on a single 32-byte, 32-aligned record (two nodes per cache line, never
/// straddling one). `ft` packs the split feature (low half) with the
/// threshold's FloatKey (high half) so one load feeds both the feature
/// lookup and the comparison. Children are pre-sign-extended, pre-scaled
/// BYTE offsets into the arena (child = index * sizeof(FlatNode)), so the
/// traversal step is addr-add + cmov with no shift/extend in the dependency
/// chain; child < 0 encodes leaf ~child. The two child words load off the
/// critical path and a register cmov picks the taken one.
struct alignas(32) FlatNode {
  uint64_t ft;       ///< split feature | (FloatKey(threshold) << 32)
  int64_t child[2];  ///< byte-scaled arena offsets; < 0 is leaf ~child
  int64_t pad = 0;   ///< keeps nodes cache-line aligned

  int32_t feature() const { return static_cast<int32_t>(static_cast<uint32_t>(ft)); }
  uint32_t threshold_key() const { return static_cast<uint32_t>(ft >> 32); }
};
static_assert(sizeof(FlatNode) == 32);

/// An immutable packed ensemble ready for batch traversal.
class FlatEnsemble {
 public:
  /// Packs classification trees (±1 leaf votes). Every tree must agree on
  /// num_features; a RandomForest's trees() span can be passed directly.
  static FlatEnsemble FromClassificationTrees(
      std::span<const tree::DecisionTree> trees);

  /// Packs one classification tree (DecisionTree batch paths).
  static FlatEnsemble FromClassificationTree(const tree::DecisionTree& tree);

  /// Packs boosted regression trees (double leaf values) together with the
  /// additive-model constants, so Score(x) = initial_score + lr * Σ leaf_t(x)
  /// can be reproduced in exactly the scalar accumulation order.
  static FlatEnsemble FromRegressionTrees(
      std::span<const boosting::RegressionTree> trees, double initial_score,
      double learning_rate);

  /// Rebuilds an ensemble from a raw packed arena — the binary-snapshot load
  /// path (io/ensemble_snapshot), which hands it attacker-controllable
  /// bytes. Validates everything traversal safety depends on before
  /// accepting: every root and child entry is either a 32-byte-aligned
  /// in-arena offset or the complement of an in-range leaf payload, every
  /// internal child offset is strictly greater than its parent's (the
  /// packer's invariant — source trees index children after parents — which
  /// guarantees every traversal terminates), every split feature is in
  /// [0, num_features), classification leaves are ±1, and exactly the leaf
  /// array matching `is_regression` is populated. Rejects with
  /// InvalidArgument; it does NOT re-derive which arena range belongs to
  /// which tree (roots may share subtrees without breaking safety).
  static Result<FlatEnsemble> FromParts(
      std::vector<FlatNode> nodes, std::vector<int64_t> roots,
      std::vector<int8_t> leaf_labels, std::vector<double> leaf_values,
      size_t num_features, bool is_regression, double initial_score,
      double learning_rate);

  size_t num_trees() const { return roots_.size(); }
  size_t num_features() const { return num_features_; }
  /// True when leaves carry double values (GBDT), false for ±1 votes.
  bool is_regression() const { return is_regression_; }
  double initial_score() const { return initial_score_; }
  double learning_rate() const { return learning_rate_; }
  /// Total internal nodes across all trees.
  size_t num_internal_nodes() const { return nodes_.size(); }
  /// Total leaves across all trees.
  size_t num_leaves() const {
    return is_regression_ ? leaf_values_.size() : leaf_labels_.size();
  }

  /// Raw arena for the traversal kernels (empty => all-leaf trees).
  const FlatNode* nodes() const { return nodes_.data(); }
  /// Entry of tree t: >= 0 is a byte-scaled arena offset, < 0 encodes leaf
  /// ~entry.
  int64_t root(size_t t) const { return roots_[t]; }
  const int8_t* leaf_labels() const { return leaf_labels_.data(); }
  const double* leaf_values() const { return leaf_values_.data(); }

  /// The quantized sibling image, built lazily on first use and cached (one
  /// acquire-load per hit; copies of this ensemble share it). Always
  /// non-null — check `eligible()` on the result before traversing it.
  std::shared_ptr<const QuantizedEnsemble> Quantized() const;

 private:
  FlatEnsemble() = default;

  /// Appends one tree's nodes to the arena; NodeView adapts the two source
  /// node types. `entry_scratch` is a caller-owned remap buffer reused
  /// across trees. Returns the entry for roots_.
  template <typename Node>
  int64_t PackTree(std::span<const Node> nodes, std::vector<int64_t>* entry_scratch);

  std::vector<FlatNode> nodes_;
  std::vector<int64_t> roots_;
  std::vector<int8_t> leaf_labels_;
  std::vector<double> leaf_values_;
  size_t num_features_ = 0;
  bool is_regression_ = false;
  double initial_score_ = 0.0;
  double learning_rate_ = 0.0;
  /// Lazily built quantized image (self-contained — owns copies of the leaf
  /// arrays, so sharing it across ensemble copies can never dangle).
  mutable ImageCacheSlot<QuantizedEnsemble> quantized_cache_;
};

}  // namespace treewm::predict

#endif  // TREEWM_PREDICT_FLAT_ENSEMBLE_H_
