#include "predict/flat_ensemble.h"

#include <algorithm>
#include <cassert>
#include <type_traits>

#include "predict/flat_cache.h"
#include "predict/quantized_ensemble.h"

namespace treewm::predict {

std::shared_ptr<const QuantizedEnsemble> FlatEnsemble::Quantized() const {
  return LazyImage(&quantized_cache_, [this] { return QuantizedEnsemble::Build(*this); });
}

template <typename Node>
int64_t FlatEnsemble::PackTree(std::span<const Node> nodes,
                               std::vector<int64_t>* entry_scratch) {
  assert(!nodes.empty());
  const int64_t base_internal = static_cast<int64_t>(nodes_.size());

  // Pass 1: assign arena entries (internal nodes get byte-scaled offsets,
  // leaves get ~payload) in source order, keeping each tree's nodes
  // contiguous in the arena.
  std::vector<int64_t>& entry_of = *entry_scratch;
  entry_of.resize(nodes.size());
  int64_t next_internal = base_internal;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].feature == -1) {
      if constexpr (std::is_same_v<Node, tree::TreeNode>) {
        entry_of[i] = ~static_cast<int64_t>(leaf_labels_.size());
        leaf_labels_.push_back(static_cast<int8_t>(nodes[i].label));
      } else {
        entry_of[i] = ~static_cast<int64_t>(leaf_values_.size());
        leaf_values_.push_back(nodes[i].value);
      }
    } else {
      entry_of[i] = (next_internal++) * static_cast<int64_t>(sizeof(FlatNode));
    }
  }

  // Pass 2: fill the packed records with remapped child entries.
  nodes_.resize(static_cast<size_t>(next_internal));
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].feature == -1) continue;
    FlatNode& n = nodes_[static_cast<size_t>(entry_of[i]) / sizeof(FlatNode)];
    n.ft = static_cast<uint64_t>(FloatKey(nodes[i].threshold)) << 32 |
           static_cast<uint32_t>(nodes[i].feature);
    n.child[0] = entry_of[static_cast<size_t>(nodes[i].left)];
    n.child[1] = entry_of[static_cast<size_t>(nodes[i].right)];
  }
  return entry_of[0];  // node 0 is the root in both source formats
}

FlatEnsemble FlatEnsemble::FromClassificationTrees(
    std::span<const tree::DecisionTree> trees) {
  FlatEnsemble out;
  out.is_regression_ = false;
  out.roots_.reserve(trees.size());
  size_t total_nodes = 0;
  size_t total_leaves = 0;
  size_t max_nodes = 0;
  for (const auto& t : trees) {
    total_nodes += t.NumNodes();
    total_leaves += t.NumLeaves();
    max_nodes = std::max(max_nodes, t.NumNodes());
  }
  out.nodes_.reserve(total_nodes - total_leaves);
  out.leaf_labels_.reserve(total_leaves);
  std::vector<int64_t> scratch;
  scratch.reserve(max_nodes);
  for (const auto& t : trees) {
    if (out.roots_.empty()) out.num_features_ = t.num_features();
    assert(t.num_features() == out.num_features_);
    out.roots_.push_back(out.PackTree<tree::TreeNode>(t.nodes(), &scratch));
  }
  return out;
}

FlatEnsemble FlatEnsemble::FromClassificationTree(const tree::DecisionTree& tree) {
  return FromClassificationTrees({&tree, 1});
}

Result<FlatEnsemble> FlatEnsemble::FromParts(
    std::vector<FlatNode> nodes, std::vector<int64_t> roots,
    std::vector<int8_t> leaf_labels, std::vector<double> leaf_values,
    size_t num_features, bool is_regression, double initial_score,
    double learning_rate) {
  if (roots.empty()) return Status::InvalidArgument("flat ensemble has no trees");
  if (num_features == 0) {
    return Status::InvalidArgument("flat ensemble needs at least one feature");
  }
  const size_t num_leaves = is_regression ? leaf_values.size() : leaf_labels.size();
  if (num_leaves == 0) {
    return Status::InvalidArgument("flat ensemble has no leaf payloads");
  }
  if (is_regression ? !leaf_labels.empty() : !leaf_values.empty()) {
    return Status::InvalidArgument(
        "flat ensemble carries the wrong leaf payload kind");
  }
  if (!is_regression && (initial_score != 0.0 || learning_rate != 0.0)) {
    return Status::InvalidArgument(
        "classification ensemble carries additive-model constants");
  }
  const int64_t arena_bytes =
      static_cast<int64_t>(nodes.size()) * static_cast<int64_t>(sizeof(FlatNode));
  auto valid_entry = [&](int64_t e) {
    if (e < 0) return static_cast<uint64_t>(~e) < num_leaves;
    return e % static_cast<int64_t>(sizeof(FlatNode)) == 0 && e < arena_bytes;
  };
  for (int64_t r : roots) {
    if (!valid_entry(r)) {
      return Status::InvalidArgument("flat ensemble root entry out of range");
    }
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    const FlatNode& n = nodes[i];
    const int32_t feature = n.feature();
    if (feature < 0 || static_cast<size_t>(feature) >= num_features) {
      return Status::InvalidArgument("flat ensemble split feature out of range");
    }
    const int64_t own = static_cast<int64_t>(i) * static_cast<int64_t>(sizeof(FlatNode));
    for (int64_t c : {n.child[0], n.child[1]}) {
      // Forward-only internal edges are what makes traversal termination a
      // load-time fact instead of a runtime hope.
      if (!valid_entry(c) || (c >= 0 && c <= own)) {
        return Status::InvalidArgument("flat ensemble child entry out of range");
      }
    }
  }
  if (!is_regression) {
    for (int8_t label : leaf_labels) {
      if (label != 1 && label != -1) {
        return Status::InvalidArgument("flat ensemble leaf label must be +1/-1");
      }
    }
  }
  FlatEnsemble out;
  out.nodes_ = std::move(nodes);
  out.roots_ = std::move(roots);
  out.leaf_labels_ = std::move(leaf_labels);
  out.leaf_values_ = std::move(leaf_values);
  out.num_features_ = num_features;
  out.is_regression_ = is_regression;
  out.initial_score_ = initial_score;
  out.learning_rate_ = learning_rate;
  return out;
}

FlatEnsemble FlatEnsemble::FromRegressionTrees(
    std::span<const boosting::RegressionTree> trees, double initial_score,
    double learning_rate) {
  FlatEnsemble out;
  out.is_regression_ = true;
  out.initial_score_ = initial_score;
  out.learning_rate_ = learning_rate;
  out.roots_.reserve(trees.size());
  size_t total_nodes = 0;
  size_t total_leaves = 0;
  size_t max_nodes = 0;
  for (const auto& t : trees) {
    total_nodes += t.nodes().size();
    total_leaves += t.NumLeaves();
    max_nodes = std::max(max_nodes, t.nodes().size());
  }
  out.nodes_.reserve(total_nodes - total_leaves);
  out.leaf_values_.reserve(total_leaves);
  std::vector<int64_t> scratch;
  scratch.reserve(max_nodes);
  for (const auto& t : trees) {
    if (out.roots_.empty()) out.num_features_ = t.num_features();
    assert(t.num_features() == out.num_features_);
    out.roots_.push_back(out.PackTree<boosting::RegressionNode>(t.nodes(), &scratch));
  }
  return out;
}

}  // namespace treewm::predict
