#include "predict/quantized_ensemble.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <type_traits>

#include "predict/flat_ensemble.h"

namespace treewm::predict {

namespace {

/// Per-tree arena geometry recovered from the flat image. PackTree appends
/// each tree's internal nodes (and leaves) contiguously in root order and
/// the root is always its tree's first packed record, so tree t's internal
/// range is [root(t)/32, next internal root/32) and — every source tree
/// being a full binary tree — its leaf count is internal count + 1.
struct TreeRanges {
  std::vector<int64_t> node_base;  ///< flat arena index of first record
  std::vector<int64_t> node_count;
  std::vector<int64_t> leaf_base;  ///< payload index of first leaf
};

TreeRanges RecoverRanges(const FlatEnsemble& flat) {
  const size_t num_trees = flat.num_trees();
  TreeRanges r;
  r.node_base.resize(num_trees);
  r.node_count.resize(num_trees);
  r.leaf_base.resize(num_trees);
  int64_t end = static_cast<int64_t>(flat.num_internal_nodes());
  for (size_t t = num_trees; t-- > 0;) {
    const int64_t root = flat.root(t);
    if (root >= 0) {
      r.node_base[t] = root / static_cast<int64_t>(sizeof(FlatNode));
      r.node_count[t] = end - r.node_base[t];
      end = r.node_base[t];
    } else {
      r.node_base[t] = end;
      r.node_count[t] = 0;
    }
  }
  int64_t leaves = 0;
  for (size_t t = 0; t < num_trees; ++t) {
    r.leaf_base[t] = leaves;
    leaves += r.node_count[t] + 1;  // full binary tree
  }
  assert(leaves == static_cast<int64_t>(flat.num_leaves()));
  return r;
}

/// Remaps one flat child entry (byte-scaled arena offset or ~global-leaf)
/// into the tree-local encoding: a byte offset pre-scaled for `node_size`
/// records, or ~local-leaf (unscaled).
int64_t LocalChild(int64_t flat_child, int64_t node_base, int64_t leaf_base,
                   int64_t node_size) {
  if (flat_child >= 0) {
    return (flat_child / static_cast<int64_t>(sizeof(FlatNode)) - node_base) *
           node_size;
  }
  return ~(~flat_child - leaf_base);
}

template <typename Node>
void FillArena(const FlatEnsemble& flat, const TreeRanges& ranges,
               const std::vector<uint32_t>& cut_keys,
               const std::vector<uint32_t>& cut_begin, std::vector<Node>* out) {
  out->resize(flat.num_internal_nodes());
  for (size_t t = 0; t < flat.num_trees(); ++t) {
    const int64_t base = ranges.node_base[t];
    for (int64_t i = 0; i < ranges.node_count[t]; ++i) {
      const FlatNode& src = flat.nodes()[base + i];
      const uint32_t f = static_cast<uint32_t>(src.feature());
      const uint32_t* cuts = cut_keys.data() + cut_begin[f];
      const uint32_t n = cut_begin[f + 1] - cut_begin[f];
      // The threshold is one of the cuts by construction, so its bin id is
      // its exact index in the feature's cut array.
      const uint32_t bin = internal::LowerBoundIdx(cuts, n, src.threshold_key());
      assert(bin < n && cuts[bin] == src.threshold_key());
      using ChildT = std::remove_extent_t<decltype(Node::child)>;
      Node& dst = (*out)[base + i];
      dst.feature = static_cast<uint16_t>(f);
      dst.bin = static_cast<uint16_t>(bin);
      dst.child[0] = static_cast<ChildT>(
          LocalChild(src.child[0], base, ranges.leaf_base[t], sizeof(Node)));
      dst.child[1] = static_cast<ChildT>(
          LocalChild(src.child[1], base, ranges.leaf_base[t], sizeof(Node)));
    }
  }
}

}  // namespace

QuantizedEnsemble QuantizedEnsemble::Build(const FlatEnsemble& flat) {
  QuantizedEnsemble out;
  out.num_features_ = flat.num_features();
  out.is_regression_ = flat.is_regression();
  out.initial_score_ = flat.initial_score();
  out.learning_rate_ = flat.learning_rate();

  // The node record stores the feature as u16.
  if (flat.num_features() > std::numeric_limits<uint16_t>::max()) return out;

  // Binning pass: per-feature sorted distinct threshold keys.
  const size_t d = flat.num_features();
  std::vector<std::vector<uint32_t>> per_feature(d);
  for (size_t i = 0; i < flat.num_internal_nodes(); ++i) {
    const FlatNode& n = flat.nodes()[i];
    per_feature[static_cast<uint32_t>(n.feature())].push_back(n.threshold_key());
  }
  out.cut_begin_.resize(d + 1, 0);
  size_t max_cuts = 0;
  for (size_t f = 0; f < d; ++f) {
    auto& cuts = per_feature[f];
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    max_cuts = std::max(max_cuts, cuts.size());
    out.cut_begin_[f + 1] = out.cut_begin_[f] + static_cast<uint32_t>(cuts.size());
  }
  out.max_cuts_ = max_cuts;
  // bin(x) ranges over [0, cuts], so the cut COUNT itself must fit the bin
  // type: <= 255 distinct thresholds quantizes to uint8 rows, <= 65535 to
  // uint16; beyond that this ensemble stays on the FloatKey kernel.
  if (max_cuts > 65535) return out;
  out.bin_width_ = max_cuts <= 255 ? BinWidth::kU8 : BinWidth::kU16;
  out.cut_keys_.reserve(out.cut_begin_[d]);
  for (size_t f = 0; f < d; ++f) {
    out.cut_keys_.insert(out.cut_keys_.end(), per_feature[f].begin(),
                         per_feature[f].end());
  }

  // Tree geometry + child width: i16 children hold pre-scaled byte offsets
  // (index × 8 <= 32767 => up to 4095 internal nodes per tree; the ~leaf
  // encoding then fits too, leaves = nodes + 1 <= 4096 <= 32768).
  const TreeRanges ranges = RecoverRanges(flat);
  int64_t max_tree_nodes = 0;
  for (int64_t c : ranges.node_count) max_tree_nodes = std::max(max_tree_nodes, c);
  const bool narrow = max_tree_nodes <= 4095;
  out.child_width_ = narrow ? ChildWidth::kI16 : ChildWidth::kI32;
  if (narrow) {
    FillArena(flat, ranges, out.cut_keys_, out.cut_begin_, &out.nodes16_);
  } else {
    FillArena(flat, ranges, out.cut_keys_, out.cut_begin_, &out.nodes32_);
  }

  const size_t num_trees = flat.num_trees();
  out.tree_node_base_.resize(num_trees);
  out.tree_leaf_base_.resize(num_trees);
  out.roots_.resize(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    out.tree_node_base_[t] = static_cast<int32_t>(ranges.node_base[t]);
    out.tree_leaf_base_[t] = static_cast<int32_t>(ranges.leaf_base[t]);
    const int64_t root = flat.root(t);
    out.roots_[t] = root >= 0
                        ? 0  // the root is always its tree's first record
                        : static_cast<int32_t>(~(~root - ranges.leaf_base[t]));
  }

  // Self-contained payload copies: the quantized image may be shared across
  // copies of the flat ensemble, so it must not point into flat's arrays.
  if (flat.is_regression()) {
    out.leaf_values_.assign(flat.leaf_values(), flat.leaf_values() + flat.num_leaves());
  } else {
    out.leaf_labels_.assign(flat.leaf_labels(), flat.leaf_labels() + flat.num_leaves());
  }
  out.eligible_ = true;
  return out;
}

}  // namespace treewm::predict
