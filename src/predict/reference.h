// Scalar reference batch loops — the ground truth the flat engine must match.
//
// These are the original per-row, per-tree batch implementations, kept as
// free functions so equivalence tests and benchmarks can compare the
// BatchPredictor against them bit for bit. The model classes' batch methods
// (DecisionTree::PredictBatch, RandomForest::Accuracy, Gbdt::Accuracy, ...)
// now route through predict::BatchPredictor; these loops call only the
// scalar per-row APIs (Predict / PredictAll / Score), which are unchanged.

#ifndef TREEWM_PREDICT_REFERENCE_H_
#define TREEWM_PREDICT_REFERENCE_H_

#include <algorithm>
#include <vector>

#include "boosting/gbdt.h"
#include "data/dataset.h"
#include "forest/random_forest.h"
#include "tree/decision_tree.h"

namespace treewm::predict::reference {

inline std::vector<int> PredictBatch(const tree::DecisionTree& tree,
                                     const data::Dataset& dataset) {
  std::vector<int> out(dataset.num_rows());
  for (size_t i = 0; i < dataset.num_rows(); ++i) out[i] = tree.Predict(dataset.Row(i));
  return out;
}

inline double Accuracy(const tree::DecisionTree& tree, const data::Dataset& dataset) {
  if (dataset.num_rows() == 0) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    if (tree.Predict(dataset.Row(i)) == dataset.Label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.num_rows());
}

inline std::vector<int> PredictBatch(const forest::RandomForest& forest,
                                     const data::Dataset& dataset) {
  std::vector<int> out(dataset.num_rows());
  for (size_t i = 0; i < dataset.num_rows(); ++i) out[i] = forest.Predict(dataset.Row(i));
  return out;
}

inline std::vector<std::vector<int>> PredictAllBatch(const forest::RandomForest& forest,
                                                     const data::Dataset& dataset) {
  std::vector<std::vector<int>> out(dataset.num_rows());
  for (size_t i = 0; i < dataset.num_rows(); ++i) out[i] = forest.PredictAll(dataset.Row(i));
  return out;
}

inline double Accuracy(const forest::RandomForest& forest, const data::Dataset& dataset) {
  if (dataset.num_rows() == 0) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    if (forest.Predict(dataset.Row(i)) == dataset.Label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.num_rows());
}

inline double Accuracy(const boosting::Gbdt& model, const data::Dataset& dataset) {
  if (dataset.num_rows() == 0) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    if (model.Predict(dataset.Row(i)) == dataset.Label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.num_rows());
}

/// Accuracy of the k-tree prefix, re-scoring every row from scratch (the
/// original O(k) per call StagedAccuracy loop).
inline double StagedAccuracy(const boosting::Gbdt& model, const data::Dataset& dataset,
                             size_t k) {
  if (dataset.num_rows() == 0) return 0.0;
  k = std::min(k, model.num_trees());
  size_t correct = 0;
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    double score = model.initial_score();
    for (size_t t = 0; t < k; ++t) {
      score += model.learning_rate() * model.trees()[t].Predict(dataset.Row(i));
    }
    const int prediction = score >= 0.0 ? data::kPositive : data::kNegative;
    if (prediction == dataset.Label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.num_rows());
}

}  // namespace treewm::predict::reference

#endif  // TREEWM_PREDICT_REFERENCE_H_
