// Quantized-threshold inference image — LightGBM-style binned node records.
//
// The FloatKey kernel (flat_ensemble.h) pays 32 bytes per node and 4 bytes
// per (row, feature). Almost all of that width is threshold precision the
// traversal does not need: a node only ever compares its threshold against
// feature values, and the ensemble uses a *finite* set of thresholds per
// feature. QuantizedEnsemble exploits that: a binning pass collects the
// distinct training thresholds of every feature (as FloatKey images, sorted
// ascending — the per-feature "cut" array) and replaces
//
//   x_f <= v                 with      bin_f(x) <= bin_id_f(v)
//
// where bin_id_f(v) is v's index in feature f's cut array and bin_f(x) is
// the number of cuts strictly below FloatKey(x) (a lower-bound index).
// Because every bin boundary sits exactly at a training threshold, the two
// comparisons are equivalent for every float x — including NaNs, which bin
// above every cut exactly like the scalar `!(x <= v)` rule — so quantized
// predictions are bit-identical to the scalar reference, not approximately
// equal (tests/test_quantized_predict.cc proves this property-style).
//
// The payoff is record width: a node shrinks to
//
//   { feature : u16, bin : u16, child[2] : i16 }   = 8 bytes   (QNode16)
//   { feature : u16, bin : u16, child[2] : i32 }   = 16 bytes  (QNode32)
//
// and a transformed row block shrinks from 4 bytes to 1-2 bytes per feature
// (uint8 bins when every feature has <= 255 cuts, uint16 up to 65535 cuts;
// beyond that the ensemble is ineligible and dispatch stays on the FloatKey
// kernel). A 32-tree forest whose flat arena is ~400 KB fits its quantized
// arena in ~100 KB.
//
// Measured outcome on the bench host (see bench/README.md): the quantized
// traversal reaches parity with the FloatKey kernel — the 6-lane
// refill-on-leaf walk already hides the L1/L2 latency the smaller arena
// targets — while the binning transform, although batched into lockstep
// branchless searches, stays ~3-4x the cost of the FloatKey transform's
// single xor per value. Net: quantized runs 0-45% slower end-to-end across
// the fixture shapes (parity at best, on uint8 bins), so kernel dispatch
// keeps FloatKey as the default and this
// kernel is opt-in (TREEWM_PREDICT_KERNEL=quantized or
// BatchOptions::kernel) — the working-set headroom matters only beyond
// what that host's caches can show, e.g. SIMD gather traversal reading
// 8-16 bins per vector.
//
// Children are *tree-local*, pre-scaled BYTE offsets (child node index ×
// record size): every tree's records are contiguous in the arena, so a
// traversal keeps one base pointer per tree and an int64 byte cursor —
// like the FlatNode kernel, no shift and no sign-extend lands in the
// step's dependency chain (the i16/i32 children sign-extend at load time,
// off the chain). child < 0 encodes a leaf as ~(tree-local leaf index),
// unscaled; per-tree leaf bases map local indices back into the shared SoA
// payload arrays (±1 labels / double leaf values, identical copies of the
// flat image's arrays so the quantized image is self-contained and never
// dangles into a moved-from ensemble). QNode16 is used when every tree
// fits the i16 byte-offset range (<= 4095 internal nodes, and leaves'
// ~local-index >= -32768); QNode32 (padded to 16 bytes so offsets stay
// 16-byte-scaled) covers everything else.

#ifndef TREEWM_PREDICT_QUANTIZED_ENSEMBLE_H_
#define TREEWM_PREDICT_QUANTIZED_ENSEMBLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "predict/flat_ensemble.h"

namespace treewm::predict {

/// 8-byte binned node: one aligned quadword holds feature, bin and both
/// children. Children are tree-local pre-scaled byte offsets (index × 8);
/// < 0 is ~local-leaf, unscaled.
struct QNode16 {
  uint16_t feature;
  uint16_t bin;
  int16_t child[2];
};
static_assert(sizeof(QNode16) == 8);

/// Wide variant for trees whose byte offsets or leaf counts overflow i16.
/// Padded to 16 bytes so child offsets stay index × 16 (a power of two).
struct alignas(16) QNode32 {
  uint16_t feature;
  uint16_t bin;
  int32_t child[2];
};
static_assert(sizeof(QNode32) == 16);

/// An immutable quantized image of a FlatEnsemble, built lazily by
/// FlatEnsemble::Quantized() and cached alongside it.
class QuantizedEnsemble {
 public:
  enum class BinWidth : uint8_t { kU8, kU16 };
  enum class ChildWidth : uint8_t { kI16, kI32 };

  /// Builds the quantized image of `flat`. Always returns an object: when
  /// the ensemble exceeds the bin-width limits (> 65535 distinct thresholds
  /// on some feature, or > 65535 features) the result has
  /// `eligible() == false` and empty arenas, and kernel dispatch falls back
  /// to the FloatKey kernel.
  static QuantizedEnsemble Build(const FlatEnsemble& flat);

  bool eligible() const { return eligible_; }
  BinWidth bin_width() const { return bin_width_; }
  ChildWidth child_width() const { return child_width_; }

  size_t num_trees() const { return roots_.size(); }
  size_t num_features() const { return num_features_; }
  bool is_regression() const { return is_regression_; }
  double initial_score() const { return initial_score_; }
  double learning_rate() const { return learning_rate_; }

  /// Distinct training thresholds of feature f (0 when f is never split on).
  size_t num_cuts(size_t f) const { return cut_begin_[f + 1] - cut_begin_[f]; }
  /// Largest per-feature cut count — what selected the bin width.
  size_t max_cuts() const { return max_cuts_; }

  /// Node arenas: exactly one is non-empty (per child_width()) unless the
  /// ensemble is all leaves.
  const QNode16* nodes16() const { return nodes16_.data(); }
  const QNode32* nodes32() const { return nodes32_.data(); }
  /// Arena index of tree t's first record.
  int32_t tree_node_base(size_t t) const { return tree_node_base_[t]; }
  /// Payload index of tree t's first leaf.
  int32_t tree_leaf_base(size_t t) const { return tree_leaf_base_[t]; }
  /// Entry of tree t: >= 0 is a tree-local byte offset (always 0 for trees
  /// with internal nodes), < 0 encodes a single-leaf tree as ~local-leaf.
  int32_t root(size_t t) const { return roots_[t]; }
  const int8_t* leaf_labels() const { return leaf_labels_.data(); }
  const double* leaf_values() const { return leaf_values_.data(); }

  /// Transforms a block of `num_rows` contiguous rows (row-major, `stride`
  /// floats per row) into bin space: out[r * out_stride + f] = number of
  /// feature-f cuts strictly below FloatKey(x) — a lower-bound index, so
  /// for every node `bin(x) <= node.bin` iff `x <= threshold` under the
  /// scalar rule. `out_stride >= stride` lets the caller reserve trailing
  /// entries per row (the batch kernel stores the row id there). Runs
  /// column-major in 64-row tiles: one feature's cut array stays
  /// L1-resident for the whole pass, every search in a tile takes the same
  /// fixed number of branchless steps (the step schedule depends only on
  /// the cut count), and the tile's 64 independent search chains pipeline —
  /// a naive per-row std::lower_bound measured ~5 ms on the 4000×20 micro
  /// fixture, worse than the whole FloatKey batch.
  template <typename BinT>
  void BinBlock(const float* rows, size_t stride, size_t num_rows, BinT* out,
                size_t out_stride) const;

 private:
  QuantizedEnsemble() = default;

  std::vector<QNode16> nodes16_;
  std::vector<QNode32> nodes32_;
  std::vector<int32_t> tree_node_base_;
  std::vector<int32_t> tree_leaf_base_;
  std::vector<int32_t> roots_;
  std::vector<uint32_t> cut_keys_;   ///< ascending FloatKeys, per feature
  std::vector<uint32_t> cut_begin_;  ///< num_features + 1 offsets into cut_keys_
  std::vector<int8_t> leaf_labels_;
  std::vector<double> leaf_values_;
  size_t num_features_ = 0;
  size_t max_cuts_ = 0;
  bool is_regression_ = false;
  bool eligible_ = false;
  BinWidth bin_width_ = BinWidth::kU8;
  ChildWidth child_width_ = ChildWidth::kI16;
  double initial_score_ = 0.0;
  double learning_rate_ = 0.0;
};

namespace internal {
/// Branchless ("monobound") lower bound over `n` ascending keys: number of
/// entries < key. The length trajectory depends only on n — never on the
/// data — which is what lets BinBlock run many searches in lockstep.
inline uint32_t LowerBoundIdx(const uint32_t* a, uint32_t n, uint32_t key) {
  if (n == 0) return 0;
  const uint32_t* base = a;
  for (uint32_t len = n; len > 1; len -= len >> 1) {
    const uint32_t half = len >> 1;
    base += base[half - 1] < key ? half : 0;  // cmov
  }
  return static_cast<uint32_t>(base - a) + (*base < key ? 1 : 0);
}
}  // namespace internal

template <typename BinT>
void QuantizedEnsemble::BinBlock(const float* rows, size_t stride,
                                 size_t num_rows, BinT* out,
                                 size_t out_stride) const {
  constexpr size_t kTile = 64;
  uint32_t keys[kTile];
  uint32_t pos[kTile];
  for (size_t f = 0; f < num_features_; ++f) {
    const uint32_t* cuts = cut_keys_.data() + cut_begin_[f];
    const uint32_t n = cut_begin_[f + 1] - cut_begin_[f];
    if (n == 0) {  // never split on: every value bins to 0
      for (size_t r = 0; r < num_rows; ++r) out[r * out_stride + f] = 0;
      continue;
    }
    for (size_t r0 = 0; r0 < num_rows; r0 += kTile) {
      const size_t count = num_rows - r0 < kTile ? num_rows - r0 : kTile;
      for (size_t i = 0; i < count; ++i) {
        keys[i] = FloatKey(rows[(r0 + i) * stride + f]);
        pos[i] = 0;
      }
      // All `count` searches share the same length schedule, so the inner
      // loop is `count` independent load->cmp->cmov chains per step — the
      // same latency-hiding trick the traversal lanes use. The bool
      // multiply (not a ternary on a pointer) is what makes gcc emit cmov
      // instead of a 50%-mispredicting branch.
      for (uint32_t len = n; len > 1; len -= len >> 1) {
        const uint32_t half = len >> 1;
        for (size_t i = 0; i < count; ++i) {
          pos[i] += (cuts[pos[i] + half - 1] < keys[i]) * half;
        }
      }
      for (size_t i = 0; i < count; ++i) {
        out[(r0 + i) * out_stride + f] = static_cast<BinT>(
            pos[i] + (cuts[pos[i]] < keys[i] ? 1 : 0));
      }
    }
  }
}

}  // namespace treewm::predict

#endif  // TREEWM_PREDICT_QUANTIZED_ENSEMBLE_H_
