// Flat per-tree vote matrix — the canonical batched `predict.all` output.
//
// The original PredictAllBatch contract (`vector<vector<int>>`) costs one
// heap allocation per instance plus an int per vote; on the micro fixture
// that materialization alone capped the flat engine's end-to-end win at
// ~4.5-5× while Accuracy (no per-row output) ran 5-6×. VoteMatrix stores all
// votes of a batch in ONE contiguous row-major allocation of int8 (±1)
// entries, so producing it costs the same stores the traversal kernel makes
// anyway and consuming it is a linear scan:
//
//   vote(r, t)  ==  tree t's vote on row r  ==  data()[r * num_trees + t]
//
// Hot consumers (verification scoring, witness validation, the attacks
// layer) read rows in place; `ToNested()` materializes the legacy
// vector<vector<int>> shape for callers that still need it (the model-class
// PredictAllBatch entry points are thin adapters over this).

#ifndef TREEWM_PREDICT_VOTE_MATRIX_H_
#define TREEWM_PREDICT_VOTE_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

namespace treewm::predict {

/// Row-major (num_rows × num_trees) matrix of ±1 votes in one allocation.
class VoteMatrix {
 public:
  VoteMatrix() = default;
  VoteMatrix(size_t num_rows, size_t num_trees)
      : num_rows_(num_rows),
        num_trees_(num_trees),
        votes_(num_rows * num_trees) {}

  size_t num_rows() const { return num_rows_; }
  size_t num_trees() const { return num_trees_; }
  bool empty() const { return num_rows_ == 0; }

  /// Tree t's vote (+1/-1) on row r.
  int8_t vote(size_t r, size_t t) const { return votes_[r * num_trees_ + t]; }

  /// Contiguous per-tree votes of row r.
  std::span<const int8_t> row(size_t r) const {
    return {votes_.data() + r * num_trees_, num_trees_};
  }
  int8_t* mutable_row(size_t r) { return votes_.data() + r * num_trees_; }

  /// Raw row-major storage (num_rows × num_trees).
  const int8_t* data() const { return votes_.data(); }

  /// Majority vote of row r with the ensemble tie rule (ties -> +1).
  int MajorityLabel(size_t r) const {
    int sum = 0;
    for (int8_t v : row(r)) sum += v;
    return sum >= 0 ? +1 : -1;
  }

  /// Legacy adapter: the vector<vector<int>> shape of PredictAllBatch.
  std::vector<std::vector<int>> ToNested() const {
    std::vector<std::vector<int>> out(num_rows_);
    for (size_t r = 0; r < num_rows_; ++r) {
      const std::span<const int8_t> votes = row(r);
      out[r].assign(votes.begin(), votes.end());
    }
    return out;
  }

  friend bool operator==(const VoteMatrix& a, const VoteMatrix& b) {
    return a.num_rows_ == b.num_rows_ && a.num_trees_ == b.num_trees_ &&
           a.votes_ == b.votes_;
  }

 private:
  size_t num_rows_ = 0;
  size_t num_trees_ = 0;
  std::vector<int8_t> votes_;
};

}  // namespace treewm::predict

#endif  // TREEWM_PREDICT_VOTE_MATRIX_H_
