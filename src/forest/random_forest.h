// Random forest without bootstrap.
//
// Matches the model class of the paper (§3.2): every tree trains on the full
// training set (no bagging) restricted to a random subset of the features;
// the ensemble prediction aggregates individual votes, and — crucially for
// black-box watermark verification — the per-tree prediction sequence is
// exposed (the role R's `predict.all` plays in the paper).

#ifndef TREEWM_FOREST_RANDOM_FOREST_H_
#define TREEWM_FOREST_RANDOM_FOREST_H_

#include <memory>
#include <span>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "predict/flat_cache.h"
#include "predict/vote_matrix.h"
#include "tree/decision_tree.h"

namespace treewm::forest {

/// Forest-level hyper-parameters (contains the per-tree H of Algorithm 1).
struct ForestConfig {
  /// Number of trees m.
  size_t num_trees = 50;
  /// Per-tree induction hyper-parameters.
  tree::TreeConfig tree;
  /// Fraction of features each tree may use; 0 means sqrt(d)/d (the common
  /// random-forest default). Each tree draws its own subset.
  double feature_fraction = 0.0;
  /// Seed driving feature-subset draws (one fork per tree; training is
  /// deterministic regardless of thread scheduling).
  uint64_t seed = 1;
  /// Degrees of parallelism: 0 uses the process-global pool, 1 is serial.
  size_t num_threads = 0;
  /// Fit member trees with the retained naive trainer
  /// (DecisionTree::FitReference) instead of the sort-once engine. Slow;
  /// exists so the bit-identical equivalence contract is testable end to
  /// end through forest training (and as the bench baseline).
  bool use_reference_trainer = false;

  [[nodiscard]] Status Validate() const;
};

/// An immutable trained forest.
class RandomForest {
 public:
  /// Trains `config.num_trees` trees on `dataset` with shared per-row
  /// `weights` (empty = all ones).
  ///
  /// Training runs on the sort-once column engine: each feature column of
  /// `dataset` is sorted once and the immutable SortedColumns is shared
  /// across the ThreadPool workers (like FlatEnsemble images on the
  /// inference side); each tree copies only its feature subset's columns.
  /// Pass a prebuilt `sorted` to amortize the sort across many fits on the
  /// same rows (weight-boosting rounds, grid-search points on one fold);
  /// nullptr builds it internally.
  ///
  /// With config.tree.trainer_mode == kHistogram the approximate
  /// binned-gradient engine runs instead, sharing one immutable
  /// BinnedColumns across workers (pass prebuilt `binned` or nullptr to bin
  /// internally with config.tree.max_bins). Mixing the substrates — or
  /// passing `binned` in exact mode — is an InvalidArgument.
  [[nodiscard]] static Result<RandomForest> Fit(
      const data::Dataset& dataset, const std::vector<double>& weights,
      const ForestConfig& config,
      std::shared_ptr<const tree::SortedColumns> sorted = nullptr,
      std::shared_ptr<const tree::BinnedColumns> binned = nullptr);

  /// Assembles a forest from pre-trained trees (Algorithm 1's interleave
  /// step). All trees must agree on num_features.
  [[nodiscard]] static Result<RandomForest> FromTrees(std::vector<tree::DecisionTree> trees);

  /// Majority-vote label for one instance; ties predict +1 (documented,
  /// deterministic).
  int Predict(std::span<const float> row) const;

  /// Per-tree prediction sequence for one instance (the `predict.all`
  /// behaviour watermark verification relies on).
  std::vector<int> PredictAll(std::span<const float> row) const;

  /// Majority-vote labels for every row.
  std::vector<int> PredictBatch(const data::Dataset& dataset) const;

  /// Per-tree predictions for every row as one flat row-major vote matrix —
  /// the hot-path shape hot consumers (verification scoring, witness
  /// validation) read in place.
  predict::VoteMatrix PredictAllVotes(const data::Dataset& dataset) const;

  /// Per-tree predictions for every row; result[i][t] is tree t's vote on
  /// row i. Thin compatibility adapter over PredictAllVotes — pays one heap
  /// row per instance; prefer PredictAllVotes on hot paths.
  std::vector<std::vector<int>> PredictAllBatch(const data::Dataset& dataset) const;

  /// Majority-vote accuracy on `dataset`.
  double Accuracy(const data::Dataset& dataset) const;

  /// Number of trees m.
  size_t num_trees() const { return trees_.size(); }

  /// Feature dimensionality d.
  size_t num_features() const { return num_features_; }

  const std::vector<tree::DecisionTree>& trees() const { return trees_; }

  /// Per-tree depths / leaf counts — the structural statistics the detection
  /// attack (§4.2.1) inspects.
  std::vector<double> TreeDepths() const;
  std::vector<double> TreeLeafCounts() const;

  /// Serialization.
  JsonValue ToJson() const;
  [[nodiscard]] static Result<RandomForest> FromJson(const JsonValue& json);

 private:
  RandomForest() = default;

  /// Packed inference image, built lazily on the first batch call and shared
  /// across calls (and copies) — trees_ is immutable after construction, so
  /// the cache can never go stale. The image in turn caches its quantized
  /// sibling, so per-call kernel dispatch (see batch_predictor.h) never
  /// rebuilds either.
  std::shared_ptr<const predict::FlatEnsemble> Flat() const;

  std::vector<tree::DecisionTree> trees_;
  size_t num_features_ = 0;
  mutable predict::FlatCacheSlot flat_cache_;
};

}  // namespace treewm::forest

#endif  // TREEWM_FOREST_RANDOM_FOREST_H_
