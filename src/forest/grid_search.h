// Hyper-parameter grid search with stratified k-fold cross-validation.
//
// Algorithm 1 line 12: H <- GridSearch(D_train, m). The search scores
// (max_depth, max_leaf_nodes) combinations by CV accuracy of an m-tree
// forest and returns the best tree config.

#ifndef TREEWM_FOREST_GRID_SEARCH_H_
#define TREEWM_FOREST_GRID_SEARCH_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "forest/random_forest.h"

namespace treewm::forest {

/// Search space and protocol for GridSearch.
struct GridSearchConfig {
  /// Candidate max_depth values (-1 = unlimited).
  std::vector<int> max_depth_grid = {6, 10, 14, -1};
  /// Candidate max_leaf_nodes values (-1 = unlimited).
  std::vector<int> max_leaf_nodes_grid = {-1};
  /// Stratified CV folds (>= 2).
  size_t num_folds = 3;
  /// Template for fields not being searched (criterion, min_samples_*).
  ForestConfig forest_template;
  /// Seed for fold assignment and forest training.
  uint64_t seed = 7;
  /// Parallelism across (max_depth × max_leaf_nodes) grid points: 0 uses the
  /// process-global pool, 1 is serial. Per-point forest seeds are pre-drawn
  /// in grid order and results land in fixed slots, so the accuracy table is
  /// bit-identical at every thread count.
  size_t num_threads = 0;
};

/// One evaluated grid point.
struct GridPoint {
  tree::TreeConfig config;
  double cv_accuracy = 0.0;
};

/// Outcome of a grid search.
struct GridSearchOutcome {
  tree::TreeConfig best;       ///< highest CV accuracy (ties: first in grid order)
  double best_accuracy = 0.0;  ///< its CV accuracy
  std::vector<GridPoint> evaluated;
};

/// Stratified k-fold assignment: fold id per row, each fold class-balanced.
[[nodiscard]] Result<std::vector<size_t>> StratifiedFolds(const data::Dataset& dataset,
                                            size_t num_folds, Rng* rng);

/// Runs the search for an ensemble of `num_trees` trees.
[[nodiscard]] Result<GridSearchOutcome> GridSearch(const data::Dataset& dataset, size_t num_trees,
                                     const GridSearchConfig& config);

}  // namespace treewm::forest

#endif  // TREEWM_FOREST_GRID_SEARCH_H_
