#include "forest/random_forest.h"

#include <cassert>
#include <cmath>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "predict/batch_predictor.h"
#include "predict/flat_cache.h"

namespace treewm::forest {

Status ForestConfig::Validate() const {
  if (num_trees == 0) return Status::InvalidArgument("num_trees must be >= 1");
  if (feature_fraction < 0.0 || feature_fraction > 1.0) {
    return Status::InvalidArgument("feature_fraction must be in [0,1]");
  }
  if (use_reference_trainer &&
      tree.trainer_mode != tree::TrainerMode::kExact) {
    return Status::InvalidArgument(
        "the reference trainer is the exact-mode spec; it has no histogram mode");
  }
  return tree.Validate();
}

namespace {

/// Number of features each tree sees: fraction of d, or sqrt(d) when 0.
size_t FeaturesPerTree(double fraction, size_t d) {
  size_t k;
  if (fraction <= 0.0) {
    k = static_cast<size_t>(std::llround(std::sqrt(static_cast<double>(d))));
  } else {
    k = static_cast<size_t>(std::llround(fraction * static_cast<double>(d)));
  }
  if (k < 1) k = 1;
  if (k > d) k = d;
  return k;
}

}  // namespace

Result<RandomForest> RandomForest::Fit(
    const data::Dataset& dataset, const std::vector<double>& weights,
    const ForestConfig& config, std::shared_ptr<const tree::SortedColumns> sorted,
    std::shared_ptr<const tree::BinnedColumns> binned) {
  TREEWM_RETURN_IF_ERROR(config.Validate());
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit a forest on an empty dataset");
  }
  // Checked here (not just per tree) so a bad weight vector fails before any
  // column sort or thread fan-out happens.
  if (!weights.empty() && weights.size() != dataset.num_rows()) {
    return Status::InvalidArgument(
        StrFormat("weights size %zu != rows %zu", weights.size(), dataset.num_rows()));
  }
  const bool histogram =
      config.tree.trainer_mode == tree::TrainerMode::kHistogram;
  if (histogram) {
    if (sorted != nullptr) {
      return Status::InvalidArgument(
          "histogram trainer mode takes binned columns, not sorted columns");
    }
    if (binned != nullptr) {
      TREEWM_RETURN_IF_ERROR(tree::ValidateBinnedMatch(binned.get(), dataset));
    }
  } else {
    if (binned != nullptr) {
      return Status::InvalidArgument(
          "binned columns passed but trainer_mode is exact");
    }
    TREEWM_RETURN_IF_ERROR(tree::ValidateColumnsMatch(sorted.get(), dataset));
  }

  const size_t d = dataset.num_features();
  const size_t features_per_tree = FeaturesPerTree(config.feature_fraction, d);

  // Pre-draw every tree's feature subset so parallel scheduling cannot
  // change results.
  Rng rng(config.seed);
  std::vector<std::vector<int>> subsets(config.num_trees);
  for (auto& subset : subsets) {
    std::vector<size_t> picked = rng.SampleWithoutReplacement(d, features_per_tree);
    subset.reserve(picked.size());
    for (size_t f : picked) subset.push_back(static_cast<int>(f));
  }

  RandomForest forest;
  forest.num_features_ = d;
  forest.trees_.resize(config.num_trees, tree::DecisionTree::FromNodes(
                                             {tree::TreeNode{-1, 0, -1, -1, +1}}, d)
                                             .MoveValue());

  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> local_pool;
  if (config.num_threads == 0) {
    pool = &ThreadPool::Global();
  } else if (config.num_threads > 1) {
    local_pool = std::make_unique<ThreadPool>(config.num_threads);
    pool = local_pool.get();
  }

  // One preprocessing pass per dataset, shared immutably across all workers:
  // the column sort (exact engine; every tree's TrainerCore copies just its
  // subset's presorted columns) or the binning pass (histogram engine; trees
  // read the shared codes directly). Intra-tree parallelism nests safely —
  // ParallelFor runs inline on worker threads, so per-tree histogram
  // fan-outs degrade to serial inside forest workers instead of deadlocking.
  if (!config.use_reference_trainer) {
    if (histogram) {
      if (binned == nullptr) {
        TREEWM_ASSIGN_OR_RETURN(
            binned, tree::BinnedColumns::Build(
                        dataset, tree::BinnedOptions{config.tree.max_bins}, pool));
      }
    } else if (sorted == nullptr) {
      sorted = tree::SortedColumns::Build(dataset);
    }
  }

  Mutex error_mutex;
  Status first_error;  // guarded by error_mutex inside the fan-out
  ParallelFor(pool, config.num_trees, [&](size_t t) {
    Result<tree::DecisionTree> fitted =
        config.use_reference_trainer
            ? tree::DecisionTree::FitReference(dataset, weights, config.tree,
                                               subsets[t])
            : tree::DecisionTree::Fit(dataset, weights, config.tree, subsets[t],
                                      sorted.get(), binned.get());
    if (fitted.ok()) {
      forest.trees_[t] = std::move(fitted).MoveValue();
    } else {
      MutexLock lock(&error_mutex);
      if (first_error.ok()) first_error = fitted.status();
    }
  });
  if (!first_error.ok()) return first_error;
  return forest;
}

Result<RandomForest> RandomForest::FromTrees(std::vector<tree::DecisionTree> trees) {
  if (trees.empty()) return Status::InvalidArgument("forest needs at least one tree");
  const size_t d = trees.front().num_features();
  for (const auto& t : trees) {
    if (t.num_features() != d) {
      return Status::InvalidArgument("trees disagree on num_features");
    }
  }
  RandomForest forest;
  forest.trees_ = std::move(trees);
  forest.num_features_ = d;
  return forest;
}

int RandomForest::Predict(std::span<const float> row) const {
  int vote_sum = 0;
  for (const auto& t : trees_) vote_sum += t.Predict(row);
  return vote_sum >= 0 ? data::kPositive : data::kNegative;
}

std::vector<int> RandomForest::PredictAll(std::span<const float> row) const {
  std::vector<int> votes(trees_.size());
  for (size_t t = 0; t < trees_.size(); ++t) votes[t] = trees_[t].Predict(row);
  return votes;
}

// All batch paths route through the flat engine (scalar per-row Predict /
// PredictAll above remain the reference; see predict/reference.h).

std::shared_ptr<const predict::FlatEnsemble> RandomForest::Flat() const {
  return predict::LazyFlat(&flat_cache_, [this] {
    return predict::FlatEnsemble::FromClassificationTrees(trees_);
  });
}

std::vector<int> RandomForest::PredictBatch(const data::Dataset& dataset) const {
  return predict::BatchPredictor(Flat()).PredictLabels(dataset);
}

predict::VoteMatrix RandomForest::PredictAllVotes(const data::Dataset& dataset) const {
  return predict::BatchPredictor(Flat()).PredictAllVotes(dataset);
}

std::vector<std::vector<int>> RandomForest::PredictAllBatch(
    const data::Dataset& dataset) const {
  return PredictAllVotes(dataset).ToNested();
}

double RandomForest::Accuracy(const data::Dataset& dataset) const {
  return predict::BatchPredictor(Flat()).LabelAccuracy(dataset);
}

std::vector<double> RandomForest::TreeDepths() const {
  std::vector<double> out(trees_.size());
  for (size_t t = 0; t < trees_.size(); ++t) {
    out[t] = static_cast<double>(trees_[t].Depth());
  }
  return out;
}

std::vector<double> RandomForest::TreeLeafCounts() const {
  std::vector<double> out(trees_.size());
  for (size_t t = 0; t < trees_.size(); ++t) {
    out[t] = static_cast<double>(trees_[t].NumLeaves());
  }
  return out;
}

JsonValue RandomForest::ToJson() const {
  JsonValue out = JsonValue::MakeObject();
  out.Set("num_features", JsonValue(num_features_));
  JsonValue trees = JsonValue::MakeArray();
  for (const auto& t : trees_) trees.Append(t.ToJson());
  out.Set("trees", std::move(trees));
  return out;
}

Result<RandomForest> RandomForest::FromJson(const JsonValue& json) {
  if (!json.is_object()) return Status::ParseError("forest JSON must be an object");
  TREEWM_ASSIGN_OR_RETURN(const JsonValue* trees_json, json.Get("trees"));
  if (!trees_json->is_array() || trees_json->AsArray().empty()) {
    return Status::ParseError("'trees' must be a non-empty array");
  }
  std::vector<tree::DecisionTree> trees;
  trees.reserve(trees_json->AsArray().size());
  for (const JsonValue& tree_json : trees_json->AsArray()) {
    TREEWM_ASSIGN_OR_RETURN(tree::DecisionTree t, tree::DecisionTree::FromJson(tree_json));
    trees.push_back(std::move(t));
  }
  return FromTrees(std::move(trees));
}

}  // namespace treewm::forest
