#include "forest/grid_search.h"

#include <algorithm>

#include "common/string_util.h"

namespace treewm::forest {

Result<std::vector<size_t>> StratifiedFolds(const data::Dataset& dataset,
                                            size_t num_folds, Rng* rng) {
  if (num_folds < 2) return Status::InvalidArgument("num_folds must be >= 2");
  if (dataset.num_rows() < num_folds) {
    return Status::InvalidArgument(
        StrFormat("cannot make %zu folds from %zu rows", num_folds,
                  dataset.num_rows()));
  }
  std::vector<size_t> fold_of(dataset.num_rows());
  // Deal each class round-robin into folds after a shuffle.
  for (int label : {data::kPositive, data::kNegative}) {
    std::vector<size_t> members;
    for (size_t i = 0; i < dataset.num_rows(); ++i) {
      if (dataset.Label(i) == label) members.push_back(i);
    }
    rng->Shuffle(&members);
    for (size_t i = 0; i < members.size(); ++i) fold_of[members[i]] = i % num_folds;
  }
  return fold_of;
}

Result<GridSearchOutcome> GridSearch(const data::Dataset& dataset, size_t num_trees,
                                     const GridSearchConfig& config) {
  if (config.max_depth_grid.empty() || config.max_leaf_nodes_grid.empty()) {
    return Status::InvalidArgument("grid must be non-empty");
  }
  Rng rng(config.seed);
  TREEWM_ASSIGN_OR_RETURN(std::vector<size_t> fold_of,
                          StratifiedFolds(dataset, config.num_folds, &rng));

  // Materialize per-fold train/validation datasets once.
  std::vector<data::Dataset> fold_train;
  std::vector<data::Dataset> fold_valid;
  for (size_t fold = 0; fold < config.num_folds; ++fold) {
    std::vector<size_t> train_idx;
    std::vector<size_t> valid_idx;
    for (size_t i = 0; i < dataset.num_rows(); ++i) {
      (fold_of[i] == fold ? valid_idx : train_idx).push_back(i);
    }
    fold_train.push_back(dataset.Subset(train_idx));
    fold_valid.push_back(dataset.Subset(valid_idx));
  }

  GridSearchOutcome outcome;
  for (int max_depth : config.max_depth_grid) {
    for (int max_leaf_nodes : config.max_leaf_nodes_grid) {
      ForestConfig forest_config = config.forest_template;
      forest_config.num_trees = num_trees;
      forest_config.tree.max_depth = max_depth;
      forest_config.tree.max_leaf_nodes = max_leaf_nodes;
      forest_config.seed = rng.NextUint64();
      TREEWM_RETURN_IF_ERROR(forest_config.Validate());

      double accuracy_sum = 0.0;
      for (size_t fold = 0; fold < config.num_folds; ++fold) {
        TREEWM_ASSIGN_OR_RETURN(
            RandomForest forest,
            RandomForest::Fit(fold_train[fold], /*weights=*/{}, forest_config));
        // Fold evaluation runs through the batched flat-ensemble engine
        // (Accuracy routes to predict::BatchPredictor).
        accuracy_sum += forest.Accuracy(fold_valid[fold]);
      }
      GridPoint point;
      point.config = forest_config.tree;
      point.cv_accuracy = accuracy_sum / static_cast<double>(config.num_folds);
      if (outcome.evaluated.empty() || point.cv_accuracy > outcome.best_accuracy) {
        outcome.best = point.config;
        outcome.best_accuracy = point.cv_accuracy;
      }
      outcome.evaluated.push_back(point);
    }
  }
  return outcome;
}

}  // namespace treewm::forest
