#include "forest/grid_search.h"

#include <algorithm>
#include <memory>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "tree/sorted_columns.h"

namespace treewm::forest {

Result<std::vector<size_t>> StratifiedFolds(const data::Dataset& dataset,
                                            size_t num_folds, Rng* rng) {
  if (num_folds < 2) return Status::InvalidArgument("num_folds must be >= 2");
  if (dataset.num_rows() < num_folds) {
    return Status::InvalidArgument(
        StrFormat("cannot make %zu folds from %zu rows", num_folds,
                  dataset.num_rows()));
  }
  std::vector<size_t> fold_of(dataset.num_rows());
  // Deal each class round-robin into folds after a shuffle.
  for (int label : {data::kPositive, data::kNegative}) {
    std::vector<size_t> members;
    for (size_t i = 0; i < dataset.num_rows(); ++i) {
      if (dataset.Label(i) == label) members.push_back(i);
    }
    rng->Shuffle(&members);
    for (size_t i = 0; i < members.size(); ++i) fold_of[members[i]] = i % num_folds;
  }
  return fold_of;
}

Result<GridSearchOutcome> GridSearch(const data::Dataset& dataset, size_t num_trees,
                                     const GridSearchConfig& config) {
  if (config.max_depth_grid.empty() || config.max_leaf_nodes_grid.empty()) {
    return Status::InvalidArgument("grid must be non-empty");
  }
  Rng rng(config.seed);
  TREEWM_ASSIGN_OR_RETURN(std::vector<size_t> fold_of,
                          StratifiedFolds(dataset, config.num_folds, &rng));

  // Materialize per-fold train/validation datasets once, plus one sorted
  // column set per training fold — shared by every grid point (and every
  // tree) that fits on that fold.
  std::vector<data::Dataset> fold_train;
  std::vector<data::Dataset> fold_valid;
  std::vector<std::shared_ptr<const tree::SortedColumns>> fold_sorted;
  for (size_t fold = 0; fold < config.num_folds; ++fold) {
    std::vector<size_t> train_idx;
    std::vector<size_t> valid_idx;
    for (size_t i = 0; i < dataset.num_rows(); ++i) {
      (fold_of[i] == fold ? valid_idx : train_idx).push_back(i);
    }
    fold_train.push_back(dataset.Subset(train_idx));
    fold_valid.push_back(dataset.Subset(valid_idx));
    fold_sorted.push_back(config.forest_template.use_reference_trainer
                              ? nullptr
                              : tree::SortedColumns::Build(fold_train.back()));
  }

  // Pre-draw every grid point's forest seed in grid order (the same RNG
  // consumption sequence the serial loop used), then fan the points across
  // the pool with results written to fixed slots: the accuracy table — and
  // the argmax below — are bit-identical at every thread count.
  std::vector<ForestConfig> point_configs;
  for (int max_depth : config.max_depth_grid) {
    for (int max_leaf_nodes : config.max_leaf_nodes_grid) {
      ForestConfig forest_config = config.forest_template;
      forest_config.num_trees = num_trees;
      forest_config.tree.max_depth = max_depth;
      forest_config.tree.max_leaf_nodes = max_leaf_nodes;
      forest_config.seed = rng.NextUint64();
      TREEWM_RETURN_IF_ERROR(forest_config.Validate());
      point_configs.push_back(forest_config);
    }
  }

  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> local_pool;
  if (config.num_threads == 0) {
    pool = &ThreadPool::Global();
  } else if (config.num_threads > 1) {
    local_pool = std::make_unique<ThreadPool>(config.num_threads);
    pool = local_pool.get();
  }

  GridSearchOutcome outcome;
  outcome.evaluated.resize(point_configs.size());
  std::vector<Status> point_status(point_configs.size());
  ParallelFor(pool, point_configs.size(), [&](size_t p) {
    double accuracy_sum = 0.0;
    for (size_t fold = 0; fold < config.num_folds; ++fold) {
      Result<RandomForest> forest = RandomForest::Fit(
          fold_train[fold], /*weights=*/{}, point_configs[p], fold_sorted[fold]);
      if (!forest.ok()) {
        point_status[p] = forest.status();
        return;
      }
      // Fold evaluation runs through the batched flat-ensemble engine
      // (Accuracy routes to predict::BatchPredictor).
      accuracy_sum += forest.value().Accuracy(fold_valid[fold]);
    }
    outcome.evaluated[p].config = point_configs[p].tree;
    outcome.evaluated[p].cv_accuracy =
        accuracy_sum / static_cast<double>(config.num_folds);
  });
  // Deterministic error selection: first failing point in grid order, not
  // first observed by a worker.
  for (const Status& st : point_status) {
    if (!st.ok()) return st;
  }

  for (size_t p = 0; p < outcome.evaluated.size(); ++p) {
    const GridPoint& point = outcome.evaluated[p];
    if (p == 0 || point.cv_accuracy > outcome.best_accuracy) {
      outcome.best = point.config;
      outcome.best_accuracy = point.cv_accuracy;
    }
  }
  return outcome;
}

}  // namespace treewm::forest
