// Persistence for models and watermark bundles.
//
// A watermark bundle is what Alice stores in escrow: the watermarked
// ensemble, her signature and the trigger set (with original labels). All
// serialization is JSON — self-describing, versioned, diff-friendly.

#ifndef TREEWM_IO_MODEL_IO_H_
#define TREEWM_IO_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "core/signature.h"
#include "core/watermark.h"
#include "data/dataset.h"
#include "forest/random_forest.h"

namespace treewm::io {

/// Format version written into every file.
inline constexpr int kFormatVersion = 1;

/// Saves a bare forest to `path`.
[[nodiscard]] Status SaveForest(const forest::RandomForest& forest, const std::string& path);

/// Loads a bare forest from `path`.
[[nodiscard]] Result<forest::RandomForest> LoadForest(const std::string& path);

/// The escrow bundle: model + signature + trigger set.
struct WatermarkBundle {
  forest::RandomForest model;
  core::Signature signature;
  data::Dataset trigger_set;
};

/// Builds a bundle from a watermarking result.
WatermarkBundle BundleFrom(const core::WatermarkedModel& watermarked);

/// JSON (de)serialization of bundles.
JsonValue BundleToJson(const WatermarkBundle& bundle);
[[nodiscard]] Result<WatermarkBundle> BundleFromJson(const JsonValue& json);

/// File round-trip.
[[nodiscard]] Status SaveBundle(const WatermarkBundle& bundle, const std::string& path);
[[nodiscard]] Result<WatermarkBundle> LoadBundle(const std::string& path);

/// Dataset <-> JSON helpers (features + labels arrays).
JsonValue DatasetToJson(const data::Dataset& dataset);
[[nodiscard]] Result<data::Dataset> DatasetFromJson(const JsonValue& json);

}  // namespace treewm::io

#endif  // TREEWM_IO_MODEL_IO_H_
