// Versioned, CRC-checked binary snapshot of a packed FlatEnsemble — the
// model registry's cold-start format.
//
// The JSON model files (model_io) rebuild the pointer-tree forest and
// re-pack the flat arena on every process start; a snapshot instead stores
// the packed arena itself as length-prefixed POD sections, so loading is
// read + checksum + validate + adopt, no re-packing. Layout (all integers
// little-endian):
//
//   offset 0   u8[4]  magic "TWSN"
//   offset 4   u32le  format version (kSnapshotVersion)
//   offset 8   u32le  section count
//   offset 12  u32le  CRC-32 over header bytes [4, 12) + all section bytes
//   offset 16  sections, each:  u32le section id, u64le byte length, payload
//
// Sections (exactly one of each required section, in any order):
//   kMetaSection (1)        u64 num_features, u8 is_regression,
//                           f64 initial_score, f64 learning_rate,
//                           u64 num_nodes, u64 num_roots, u64 num_leaves
//   kRootsSection (2)       i64[num_roots] tree entries
//   kNodesSection (3)       FlatNode[num_nodes] raw 32-byte records
//   kLeafLabelsSection (4)  i8[num_leaves]  (classification only)
//   kLeafValuesSection (5)  f64[num_leaves] (regression only)
//
// Decoding follows the wire framing's discipline exactly: no length field
// is ever trusted (every section length is bounds-checked against the bytes
// present before anything is read), the CRC covers everything after the
// magic so any single flipped bit is detected, and every failure — short
// file, trailing bytes, unknown/duplicate/missing section, count mismatch,
// or an arena that fails FlatEnsemble::FromParts validation — is a typed
// ParseError, never a crash and never a silently different model
// (tests/test_snapshot.cc fuzzes every prefix and every byte flip).
//
// Fault site "serve.registry.snapshot.corrupt": when armed, a bit of the
// just-read file image is flipped before decoding, so the registry's
// cold-start path exercises exactly the corrupt-file failure mode.

#ifndef TREEWM_IO_ENSEMBLE_SNAPSHOT_H_
#define TREEWM_IO_ENSEMBLE_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "predict/flat_ensemble.h"

namespace treewm::io {

inline constexpr uint8_t kSnapshotMagic[4] = {'T', 'W', 'S', 'N'};
inline constexpr uint32_t kSnapshotVersion = 1;

/// Serializes the packed arena. The encoding is deterministic: the same
/// ensemble always produces the same bytes (and therefore the same CRC —
/// which is also what `EnsembleChecksum` reports).
std::vector<uint8_t> EncodeEnsembleSnapshot(const predict::FlatEnsemble& ensemble);

/// Decodes and validates a snapshot image. Fails closed with ParseError on
/// any malformed input.
[[nodiscard]] Result<predict::FlatEnsemble> DecodeEnsembleSnapshot(
    std::span<const uint8_t> bytes);

/// File round-trip. Load reads the file (IoError on filesystem failure)
/// and decodes it (ParseError on any corruption).
[[nodiscard]] Status SaveEnsembleSnapshot(const predict::FlatEnsemble& ensemble,
                                          const std::string& path);
[[nodiscard]] Result<predict::FlatEnsemble> LoadEnsembleSnapshot(
    const std::string& path);

/// CRC-32 identity of an ensemble's packed image — the checksum a snapshot
/// of it would carry, computable without writing one. The registry reports
/// it per model so operators can tell which image a server is actually
/// serving.
uint32_t EnsembleChecksum(const predict::FlatEnsemble& ensemble);

}  // namespace treewm::io

#endif  // TREEWM_IO_ENSEMBLE_SNAPSHOT_H_
