#include "io/model_io.h"

#include "common/string_util.h"

namespace treewm::io {

namespace {

Status CheckVersion(const JsonValue& json) {
  if (!json.is_object()) return Status::ParseError("model document must be an object");
  TREEWM_ASSIGN_OR_RETURN(int64_t version, json.GetInt64("format_version"));
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported format version %lld (expected %d)",
                  static_cast<long long>(version), kFormatVersion));
  }
  return Status::OK();
}

}  // namespace

Status SaveForest(const forest::RandomForest& forest, const std::string& path) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("format_version", JsonValue(kFormatVersion));
  doc.Set("kind", JsonValue("treewm.forest"));
  doc.Set("forest", forest.ToJson());
  return WriteStringToFile(path, doc.Dump());
}

Result<forest::RandomForest> LoadForest(const std::string& path) {
  TREEWM_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  TREEWM_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(text));
  TREEWM_RETURN_IF_ERROR(CheckVersion(doc));
  TREEWM_ASSIGN_OR_RETURN(const JsonValue* forest_json, doc.Get("forest"));
  return forest::RandomForest::FromJson(*forest_json);
}

JsonValue DatasetToJson(const data::Dataset& dataset) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("name", JsonValue(dataset.name()));
  out.Set("num_features", JsonValue(dataset.num_features()));
  JsonValue rows = JsonValue::MakeArray();
  JsonValue labels = JsonValue::MakeArray();
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    JsonValue row = JsonValue::MakeArray();
    for (float v : dataset.Row(i)) row.Append(JsonValue(static_cast<double>(v)));
    rows.Append(std::move(row));
    labels.Append(JsonValue(dataset.Label(i)));
  }
  out.Set("rows", std::move(rows));
  out.Set("labels", std::move(labels));
  return out;
}

Result<data::Dataset> DatasetFromJson(const JsonValue& json) {
  if (!json.is_object()) return Status::ParseError("dataset must be an object");
  // A truncated or bit-flipped bundle must surface ParseError, never trip a
  // typed-accessor assert: checked conversions throughout.
  TREEWM_ASSIGN_OR_RETURN(int64_t num_features, json.GetInt64("num_features"));
  if (num_features < 0) {
    return Status::ParseError("'num_features' must be non-negative");
  }
  TREEWM_ASSIGN_OR_RETURN(const JsonValue* rows, json.GetArray("rows"));
  TREEWM_ASSIGN_OR_RETURN(const JsonValue* labels, json.GetArray("labels"));
  if (rows->AsArray().size() != labels->AsArray().size()) {
    return Status::ParseError("rows/labels must be parallel arrays");
  }
  data::Dataset dataset(static_cast<size_t>(num_features));
  if (const JsonValue* name = json.Find("name"); name != nullptr && name->is_string()) {
    dataset.set_name(name->AsString());
  }
  std::vector<float> row;
  for (size_t i = 0; i < rows->AsArray().size(); ++i) {
    const JsonValue& row_json = rows->AsArray()[i];
    if (!row_json.is_array()) return Status::ParseError("row must be an array");
    row.clear();
    for (const JsonValue& v : row_json.AsArray()) {
      TREEWM_ASSIGN_OR_RETURN(double value, v.ToDouble());
      row.push_back(static_cast<float>(value));
    }
    TREEWM_ASSIGN_OR_RETURN(int64_t label, labels->AsArray()[i].ToInt64());
    TREEWM_RETURN_IF_ERROR(dataset.AddRow(row, static_cast<int>(label)));
  }
  return dataset;
}

WatermarkBundle BundleFrom(const core::WatermarkedModel& watermarked) {
  return WatermarkBundle{watermarked.model, watermarked.signature,
                         watermarked.trigger_set};
}

JsonValue BundleToJson(const WatermarkBundle& bundle) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("format_version", JsonValue(kFormatVersion));
  doc.Set("kind", JsonValue("treewm.watermark_bundle"));
  doc.Set("forest", bundle.model.ToJson());
  doc.Set("signature", bundle.signature.ToJson());
  doc.Set("trigger_set", DatasetToJson(bundle.trigger_set));
  return doc;
}

Result<WatermarkBundle> BundleFromJson(const JsonValue& json) {
  TREEWM_RETURN_IF_ERROR(CheckVersion(json));
  TREEWM_ASSIGN_OR_RETURN(const JsonValue* forest_json, json.Get("forest"));
  TREEWM_ASSIGN_OR_RETURN(const JsonValue* signature_json, json.Get("signature"));
  TREEWM_ASSIGN_OR_RETURN(const JsonValue* trigger_json, json.Get("trigger_set"));
  TREEWM_ASSIGN_OR_RETURN(forest::RandomForest model,
                          forest::RandomForest::FromJson(*forest_json));
  TREEWM_ASSIGN_OR_RETURN(core::Signature signature,
                          core::Signature::FromJson(*signature_json));
  TREEWM_ASSIGN_OR_RETURN(data::Dataset trigger, DatasetFromJson(*trigger_json));
  if (signature.length() != model.num_trees()) {
    return Status::ParseError("bundle signature length != model tree count");
  }
  return WatermarkBundle{std::move(model), std::move(signature), std::move(trigger)};
}

Status SaveBundle(const WatermarkBundle& bundle, const std::string& path) {
  return WriteStringToFile(path, BundleToJson(bundle).Dump());
}

Result<WatermarkBundle> LoadBundle(const std::string& path) {
  TREEWM_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  TREEWM_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(text));
  return BundleFromJson(doc);
}

}  // namespace treewm::io
