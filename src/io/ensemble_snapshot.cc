#include "io/ensemble_snapshot.h"

#include <bit>
#include <cstring>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/json.h"

namespace treewm::io {
namespace {

using predict::FlatEnsemble;
using predict::FlatNode;

enum SectionId : uint32_t {
  kMetaSection = 1,
  kRootsSection = 2,
  kNodesSection = 3,
  kLeafLabelsSection = 4,
  kLeafValuesSection = 5,
};

constexpr size_t kSnapshotHeaderBytes = 16;
constexpr size_t kSectionHeaderBytes = 12;  // u32 id + u64 length
constexpr size_t kMetaBytes = 49;

// ------------------------------------------------------------- primitives ----

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutF64(double v, std::vector<uint8_t>* out) {
  PutU64(std::bit_cast<uint64_t>(v), out);
}

uint32_t ReadU32At(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t ReadU64At(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

Status SnapshotError(const std::string& what) {
  return Status::ParseError("snapshot: " + what);
}

// ----------------------------------------------------------------- encode ----

void AppendSection(uint32_t id, std::span<const uint8_t> payload,
                   std::vector<uint8_t>* out) {
  PutU32(id, out);
  PutU64(payload.size(), out);
  out->insert(out->end(), payload.begin(), payload.end());
}

/// Everything after the 16-byte header, plus the section count — the bytes
/// the header CRC covers together with header bytes [4, 12).
std::pair<std::vector<uint8_t>, uint32_t> BuildSections(const FlatEnsemble& e) {
  std::vector<uint8_t> meta;
  meta.reserve(kMetaBytes);
  PutU64(e.num_features(), &meta);
  meta.push_back(e.is_regression() ? 1 : 0);
  PutF64(e.initial_score(), &meta);
  PutF64(e.learning_rate(), &meta);
  PutU64(e.num_internal_nodes(), &meta);
  PutU64(e.num_trees(), &meta);
  PutU64(e.num_leaves(), &meta);

  std::vector<uint8_t> roots;
  roots.reserve(8 * e.num_trees());
  for (size_t t = 0; t < e.num_trees(); ++t) {
    PutU64(static_cast<uint64_t>(e.root(t)), &roots);
  }

  std::vector<uint8_t> nodes;
  nodes.reserve(sizeof(FlatNode) * e.num_internal_nodes());
  for (size_t i = 0; i < e.num_internal_nodes(); ++i) {
    const FlatNode& n = e.nodes()[i];
    PutU64(n.ft, &nodes);
    PutU64(static_cast<uint64_t>(n.child[0]), &nodes);
    PutU64(static_cast<uint64_t>(n.child[1]), &nodes);
    PutU64(0, &nodes);  // pad word, kept zero so images are deterministic
  }

  std::vector<uint8_t> leaves;
  uint32_t section_count = 4;
  if (e.is_regression()) {
    leaves.reserve(8 * e.num_leaves());
    for (size_t i = 0; i < e.num_leaves(); ++i) PutF64(e.leaf_values()[i], &leaves);
  } else {
    leaves.reserve(e.num_leaves());
    for (size_t i = 0; i < e.num_leaves(); ++i) {
      leaves.push_back(static_cast<uint8_t>(e.leaf_labels()[i]));
    }
  }

  std::vector<uint8_t> out;
  out.reserve(4 * kSectionHeaderBytes + meta.size() + roots.size() +
              nodes.size() + leaves.size());
  AppendSection(kMetaSection, meta, &out);
  AppendSection(kRootsSection, roots, &out);
  AppendSection(kNodesSection, nodes, &out);
  AppendSection(e.is_regression() ? kLeafValuesSection : kLeafLabelsSection,
                leaves, &out);
  return {std::move(out), section_count};
}

uint32_t SnapshotCrc(uint32_t section_count, std::span<const uint8_t> sections) {
  std::vector<uint8_t> covered_header;
  PutU32(kSnapshotVersion, &covered_header);
  PutU32(section_count, &covered_header);
  uint32_t crc = Crc32Init();
  crc = Crc32Update(crc, covered_header);
  crc = Crc32Update(crc, sections);
  return Crc32Finish(crc);
}

}  // namespace

std::vector<uint8_t> EncodeEnsembleSnapshot(const FlatEnsemble& ensemble) {
  auto [sections, section_count] = BuildSections(ensemble);
  std::vector<uint8_t> out;
  out.reserve(kSnapshotHeaderBytes + sections.size());
  for (uint8_t b : kSnapshotMagic) out.push_back(b);
  PutU32(kSnapshotVersion, &out);
  PutU32(section_count, &out);
  PutU32(SnapshotCrc(section_count, sections), &out);
  out.insert(out.end(), sections.begin(), sections.end());
  return out;
}

uint32_t EnsembleChecksum(const FlatEnsemble& ensemble) {
  auto [sections, section_count] = BuildSections(ensemble);
  return SnapshotCrc(section_count, sections);
}

Result<FlatEnsemble> DecodeEnsembleSnapshot(std::span<const uint8_t> bytes) {
  if (bytes.size() < kSnapshotHeaderBytes) {
    return SnapshotError("file shorter than the header");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return SnapshotError("bad magic");
  }
  const uint32_t version = ReadU32At(bytes.data() + 4);
  if (version != kSnapshotVersion) {
    return SnapshotError("unsupported format version " + std::to_string(version));
  }
  const uint32_t section_count = ReadU32At(bytes.data() + 8);
  const uint32_t expect_crc = ReadU32At(bytes.data() + 12);
  const std::span<const uint8_t> sections = bytes.subspan(kSnapshotHeaderBytes);
  if (SnapshotCrc(section_count, sections) != expect_crc) {
    return SnapshotError("checksum mismatch");
  }

  // The CRC proves the bytes arrived intact; everything below defends the
  // decoder against a snapshot that was CRAFTED malformed (a correct CRC
  // over hostile content costs an attacker nothing).
  std::span<const uint8_t> payloads[kLeafValuesSection + 1] = {};
  bool present[kLeafValuesSection + 1] = {};
  size_t pos = 0;
  for (uint32_t s = 0; s < section_count; ++s) {
    if (sections.size() - pos < kSectionHeaderBytes) {
      return SnapshotError("truncated section header");
    }
    const uint32_t id = ReadU32At(sections.data() + pos);
    const uint64_t len = ReadU64At(sections.data() + pos + 4);
    pos += kSectionHeaderBytes;
    if (len > sections.size() - pos) {
      return SnapshotError("section length exceeds file size");
    }
    if (id < kMetaSection || id > kLeafValuesSection) {
      return SnapshotError("unknown section id " + std::to_string(id));
    }
    if (present[id]) return SnapshotError("duplicate section");
    present[id] = true;
    payloads[id] = sections.subspan(pos, static_cast<size_t>(len));
    pos += static_cast<size_t>(len);
  }
  if (pos != sections.size()) return SnapshotError("trailing bytes after sections");
  for (uint32_t id : {kMetaSection, kRootsSection, kNodesSection}) {
    if (!present[id]) return SnapshotError("missing required section");
  }
  if (present[kLeafLabelsSection] == present[kLeafValuesSection]) {
    return SnapshotError("need exactly one leaf payload section");
  }

  const std::span<const uint8_t> meta = payloads[kMetaSection];
  if (meta.size() != kMetaBytes) return SnapshotError("meta section size mismatch");
  const uint64_t num_features = ReadU64At(meta.data());
  const uint8_t regression_byte = meta[8];
  if (regression_byte > 1) return SnapshotError("invalid is_regression byte");
  const bool is_regression = regression_byte == 1;
  const double initial_score = std::bit_cast<double>(ReadU64At(meta.data() + 9));
  const double learning_rate = std::bit_cast<double>(ReadU64At(meta.data() + 17));
  const uint64_t num_nodes = ReadU64At(meta.data() + 25);
  const uint64_t num_roots = ReadU64At(meta.data() + 33);
  const uint64_t num_leaves = ReadU64At(meta.data() + 41);

  // Counts are attacker-controlled: every section size must equal what the
  // meta promises (divide, never multiply, so nothing can overflow).
  const std::span<const uint8_t> roots_bytes = payloads[kRootsSection];
  if (roots_bytes.size() % 8 != 0 || roots_bytes.size() / 8 != num_roots) {
    return SnapshotError("roots section size mismatch");
  }
  const std::span<const uint8_t> nodes_bytes = payloads[kNodesSection];
  if (nodes_bytes.size() % sizeof(FlatNode) != 0 ||
      nodes_bytes.size() / sizeof(FlatNode) != num_nodes) {
    return SnapshotError("nodes section size mismatch");
  }
  if (is_regression) {
    const std::span<const uint8_t> values = payloads[kLeafValuesSection];
    if (!present[kLeafValuesSection] || values.size() % 8 != 0 ||
        values.size() / 8 != num_leaves) {
      return SnapshotError("leaf values section size mismatch");
    }
  } else {
    const std::span<const uint8_t> labels = payloads[kLeafLabelsSection];
    if (!present[kLeafLabelsSection] || labels.size() != num_leaves) {
      return SnapshotError("leaf labels section size mismatch");
    }
  }

  std::vector<int64_t> roots;
  roots.reserve(num_roots);
  for (uint64_t i = 0; i < num_roots; ++i) {
    roots.push_back(static_cast<int64_t>(ReadU64At(roots_bytes.data() + 8 * i)));
  }
  std::vector<FlatNode> nodes(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    const uint8_t* rec = nodes_bytes.data() + sizeof(FlatNode) * i;
    nodes[i].ft = ReadU64At(rec);
    nodes[i].child[0] = static_cast<int64_t>(ReadU64At(rec + 8));
    nodes[i].child[1] = static_cast<int64_t>(ReadU64At(rec + 16));
    nodes[i].pad = 0;
  }
  std::vector<int8_t> leaf_labels;
  std::vector<double> leaf_values;
  if (is_regression) {
    leaf_values.reserve(num_leaves);
    for (uint64_t i = 0; i < num_leaves; ++i) {
      leaf_values.push_back(std::bit_cast<double>(
          ReadU64At(payloads[kLeafValuesSection].data() + 8 * i)));
    }
  } else {
    const std::span<const uint8_t> labels = payloads[kLeafLabelsSection];
    leaf_labels.reserve(num_leaves);
    for (uint8_t b : labels) leaf_labels.push_back(static_cast<int8_t>(b));
  }

  Result<FlatEnsemble> ensemble = FlatEnsemble::FromParts(
      std::move(nodes), std::move(roots), std::move(leaf_labels),
      std::move(leaf_values), static_cast<size_t>(num_features), is_regression,
      initial_score, learning_rate);
  if (!ensemble.ok()) {
    // Structural rejection of intact bytes is still a decode failure: the
    // snapshot API's whole contract is ParseError on any bad input.
    return SnapshotError("invalid arena: " + ensemble.status().message());
  }
  return std::move(ensemble);
}

Status SaveEnsembleSnapshot(const FlatEnsemble& ensemble, const std::string& path) {
  const std::vector<uint8_t> bytes = EncodeEnsembleSnapshot(ensemble);
  return WriteStringToFile(
      path, std::string_view(reinterpret_cast<const char*>(bytes.data()),
                             bytes.size()));
}

Result<FlatEnsemble> LoadEnsembleSnapshot(const std::string& path) {
  TREEWM_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  std::vector<uint8_t> bytes(contents.begin(), contents.end());
  // Fault site: flip one bit of the file image between read and decode, so
  // the registry cold-start path can rehearse a corrupt model file without
  // one existing on disk.
  if (!bytes.empty() && TREEWM_FAULT_FIRED("serve.registry.snapshot.corrupt")) {
    bytes[bytes.size() / 2] ^= 0x10;
  }
  return DecodeEnsembleSnapshot(bytes);
}

}  // namespace treewm::io
