// Watermark suppression analysis (paper §3.3, threat 2).
//
// The scheme defends against suppression by construction: the trigger set is
// sampled from the training distribution, so an attacker watching
// verification queries cannot tell trigger instances from ordinary test
// instances. This module quantifies that indistinguishability with a
// nearest-neighbour two-sample statistic: if trigger rows were
// distributionally distinct from test rows, their nearest neighbours would
// disproportionately be other trigger rows.

#ifndef TREEWM_ATTACKS_SUPPRESSION_H_
#define TREEWM_ATTACKS_SUPPRESSION_H_

#include "common/status.h"
#include "data/dataset.h"

namespace treewm::attacks {

/// Outcome of the two-sample probe.
struct SuppressionProbeReport {
  size_t trigger_size = 0;
  size_t decoy_size = 0;
  /// Fraction of trigger rows whose nearest neighbour (in the pooled batch,
  /// L2) is another trigger row. Under indistinguishability this approaches
  /// the trigger share of the pool; a value near 1 would let the attacker
  /// cluster the verification batch and suppress the watermark.
  double trigger_nn_fraction = 0.0;
  /// The null expectation (trigger share of the pooled batch).
  double expected_fraction = 0.0;
  /// trigger_nn_fraction / expected_fraction — ≈1 means safe.
  double separation_ratio = 0.0;
};

/// Pools trigger and decoy rows and measures nearest-neighbour affinity.
[[nodiscard]] Result<SuppressionProbeReport> ProbeSuppression(const data::Dataset& trigger,
                                                const data::Dataset& decoys);

}  // namespace treewm::attacks

#endif  // TREEWM_ATTACKS_SUPPRESSION_H_
