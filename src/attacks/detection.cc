#include "attacks/detection.h"

#include <span>

#include "common/stats.h"
#include "predict/vote_matrix.h"

namespace treewm::attacks {

const char* TreeStatisticName(TreeStatistic statistic) {
  switch (statistic) {
    case TreeStatistic::kDepth:
      return "Depth";
    case TreeStatistic::kLeafCount:
      return "#leaves";
    case TreeStatistic::kErrorRate:
      return "error rate";
  }
  return "?";
}

std::vector<double> MeasureStatistic(const forest::RandomForest& forest,
                                     TreeStatistic statistic) {
  switch (statistic) {
    case TreeStatistic::kDepth:
      return forest.TreeDepths();
    case TreeStatistic::kLeafCount:
      return forest.TreeLeafCounts();
    case TreeStatistic::kErrorRate:
      break;  // needs a reference dataset — see MeasureErrorRates
  }
  return {};
}

namespace {

DetectionReport Tally(TreeStatistic statistic, const std::vector<double>& values,
                      const std::vector<BitGuess>& guesses,
                      const core::Signature& truth) {
  DetectionReport report;
  report.statistic = statistic;
  RunningStats stats;
  for (double v : values) stats.Add(v);
  report.mean = stats.Mean();
  report.stddev = stats.PopulationStdDev();
  report.guesses = guesses;
  for (size_t t = 0; t < guesses.size(); ++t) {
    if (guesses[t] == BitGuess::kUncertain) {
      ++report.num_uncertain;
    } else if (static_cast<uint8_t>(guesses[t]) == truth.bit(t)) {
      ++report.num_correct;
    } else {
      ++report.num_wrong;
    }
  }
  return report;
}

}  // namespace

DetectionReport DetectByBand(const forest::RandomForest& forest,
                             TreeStatistic statistic,
                             const core::Signature& true_signature) {
  const std::vector<double> values = MeasureStatistic(forest, statistic);
  RunningStats stats;
  for (double v : values) stats.Add(v);
  const double lo = stats.Mean() - stats.PopulationStdDev();
  const double hi = stats.Mean() + stats.PopulationStdDev();
  std::vector<BitGuess> guesses(values.size(), BitGuess::kUncertain);
  for (size_t t = 0; t < values.size(); ++t) {
    if (values[t] < lo) {
      guesses[t] = BitGuess::kZero;  // "small" trees look unforced
    } else if (values[t] > hi) {
      guesses[t] = BitGuess::kOne;  // "large" trees look like overfitters
    }
  }
  return Tally(statistic, values, guesses, true_signature);
}

DetectionReport DetectByThreshold(const forest::RandomForest& forest,
                                  TreeStatistic statistic,
                                  const core::Signature& true_signature) {
  const std::vector<double> values = MeasureStatistic(forest, statistic);
  RunningStats stats;
  for (double v : values) stats.Add(v);
  std::vector<BitGuess> guesses(values.size());
  for (size_t t = 0; t < values.size(); ++t) {
    guesses[t] = values[t] <= stats.Mean() ? BitGuess::kZero : BitGuess::kOne;
  }
  return Tally(statistic, values, guesses, true_signature);
}

std::vector<double> MeasureErrorRates(const forest::RandomForest& forest,
                                      const data::Dataset& reference) {
  std::vector<double> rates(forest.num_trees(), 0.0);
  if (reference.num_rows() == 0) return rates;
  // One flat-engine query answers every (row, tree) vote; the per-tree error
  // tally is then a column scan of the matrix.
  const predict::VoteMatrix votes = forest.PredictAllVotes(reference);
  std::vector<size_t> errors(forest.num_trees(), 0);
  for (size_t i = 0; i < reference.num_rows(); ++i) {
    const std::span<const int8_t> row = votes.row(i);
    const int8_t label = static_cast<int8_t>(reference.Label(i));
    for (size_t t = 0; t < rates.size(); ++t) {
      if (row[t] != label) ++errors[t];
    }
  }
  for (size_t t = 0; t < rates.size(); ++t) {
    rates[t] = static_cast<double>(errors[t]) /
               static_cast<double>(reference.num_rows());
  }
  return rates;
}

DetectionReport DetectByErrorRate(const forest::RandomForest& forest,
                                  const data::Dataset& reference,
                                  const core::Signature& true_signature) {
  const std::vector<double> values = MeasureErrorRates(forest, reference);
  RunningStats stats;
  for (double v : values) stats.Add(v);
  std::vector<BitGuess> guesses(values.size());
  for (size_t t = 0; t < values.size(); ++t) {
    guesses[t] = values[t] <= stats.Mean() ? BitGuess::kZero : BitGuess::kOne;
  }
  return Tally(TreeStatistic::kErrorRate, values, guesses, true_signature);
}

Result<core::Signature> GuessesToSignature(const DetectionReport& report,
                                           uint8_t uncertain_fill) {
  if (uncertain_fill > 1) {
    return Status::InvalidArgument("uncertain_fill must be 0 or 1");
  }
  std::vector<uint8_t> bits;
  bits.reserve(report.guesses.size());
  for (BitGuess g : report.guesses) {
    bits.push_back(g == BitGuess::kUncertain ? uncertain_fill
                                             : static_cast<uint8_t>(g));
  }
  return core::Signature::FromBits(std::move(bits));
}

}  // namespace treewm::attacks
