// Model-modification attacks (the paper's future work, §5).
//
// The paper's threat model assumes the attacker does not modify the stolen
// model; its conclusion names "attackers able to modify the watermarked
// model" as the next analysis step. This module implements the three natural
// white-box modification attacks an IP thief would try — each trades model
// fidelity against watermark damage — so the trade-off can be measured:
//
//  * depth pruning     — truncate every tree at depth d, replacing subtrees
//                        with their majority-leaf label (coarse but cheap);
//  * leaf re-labeling  — flip the labels of a random fraction of leaves
//                        (hopes to hit trigger-carrying leaves);
//  * tree replacement  — retrain a random fraction of trees on surrogate
//                        data (partial model distillation).
//
// The companion harness (bench/ext_model_modification) sweeps each attack's
// strength and reports accuracy cost vs verification survival.

#ifndef TREEWM_ATTACKS_MODIFICATION_H_
#define TREEWM_ATTACKS_MODIFICATION_H_

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "forest/random_forest.h"

namespace treewm::attacks {

/// Truncates every tree of `forest` at `max_depth`: each surviving internal
/// node deeper than the cut becomes a leaf labeled with the majority label
/// of the leaves below it (ties break positive). `max_depth` >= 0; 0 reduces
/// each tree to a single leaf.
[[nodiscard]] Result<forest::RandomForest> PruneToDepth(const forest::RandomForest& forest,
                                          int max_depth);

/// Flips the label of each leaf independently with probability `fraction`
/// (in [0,1]). The attacker cannot tell trigger-carrying leaves apart, so
/// random flipping is their best untargeted strategy.
[[nodiscard]] Result<forest::RandomForest> RelabelRandomLeaves(const forest::RandomForest& forest,
                                                 double fraction, Rng* rng);

/// Replaces round(fraction*m) randomly chosen trees with fresh trees trained
/// on `surrogate` (the attacker's own data, assumed same distribution) using
/// `config`. The replaced trees lose their watermark bits entirely.
[[nodiscard]] Result<forest::RandomForest> ReplaceRandomTrees(const forest::RandomForest& forest,
                                                double fraction,
                                                const data::Dataset& surrogate,
                                                const tree::TreeConfig& config,
                                                Rng* rng);

/// Fraction of (row, tree) votes on `dataset` that differ between two
/// same-shape models — the attacker's dial: a modification with a low flip
/// rate preserves fidelity but leaves the watermark bits intact, a high flip
/// rate destroys evidence along with accuracy. Both models are evaluated
/// with one batched vote-matrix query each (no per-row PredictAll). Returns
/// 0 on an empty dataset; error when the models disagree on shape.
[[nodiscard]] Result<double> VoteFlipRate(const forest::RandomForest& original,
                            const forest::RandomForest& modified,
                            const data::Dataset& dataset);

}  // namespace treewm::attacks

#endif  // TREEWM_ATTACKS_MODIFICATION_H_
