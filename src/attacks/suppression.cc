#include "attacks/suppression.h"

#include <cmath>
#include <limits>

namespace treewm::attacks {

namespace {

double SquaredL2(std::span<const float> a, std::span<const float> b) {
  double sum = 0.0;
  for (size_t f = 0; f < a.size(); ++f) {
    const double diff = static_cast<double>(a[f]) - static_cast<double>(b[f]);
    sum += diff * diff;
  }
  return sum;
}

}  // namespace

Result<SuppressionProbeReport> ProbeSuppression(const data::Dataset& trigger,
                                                const data::Dataset& decoys) {
  if (trigger.num_rows() == 0 || decoys.num_rows() == 0) {
    return Status::InvalidArgument("both trigger and decoy sets must be non-empty");
  }
  if (trigger.num_features() != decoys.num_features()) {
    return Status::InvalidArgument("feature count mismatch");
  }

  SuppressionProbeReport report;
  report.trigger_size = trigger.num_rows();
  report.decoy_size = decoys.num_rows();

  const size_t pool = trigger.num_rows() + decoys.num_rows();
  size_t trigger_nn = 0;
  for (size_t i = 0; i < trigger.num_rows(); ++i) {
    const auto anchor = trigger.Row(i);
    double best = std::numeric_limits<double>::infinity();
    bool best_is_trigger = false;
    for (size_t j = 0; j < trigger.num_rows(); ++j) {
      if (j == i) continue;
      const double d = SquaredL2(anchor, trigger.Row(j));
      if (d < best) {
        best = d;
        best_is_trigger = true;
      }
    }
    for (size_t j = 0; j < decoys.num_rows(); ++j) {
      const double d = SquaredL2(anchor, decoys.Row(j));
      if (d < best) {
        best = d;
        best_is_trigger = false;
      }
    }
    if (best_is_trigger) ++trigger_nn;
  }
  report.trigger_nn_fraction =
      static_cast<double>(trigger_nn) / static_cast<double>(trigger.num_rows());
  report.expected_fraction = static_cast<double>(trigger.num_rows() - 1) /
                             static_cast<double>(pool - 1);
  report.separation_ratio =
      report.expected_fraction > 0.0
          ? report.trigger_nn_fraction / report.expected_fraction
          : 0.0;
  return report;
}

}  // namespace treewm::attacks
