// Watermark detection attack (paper §4.2.1).
//
// A white-box attacker inspects per-tree structural statistics (depth,
// number of leaves) hoping to reconstruct the signature: trees forced to
// misclassify (bit 1) might have grown larger. Two strategies from the
// paper:
//   Strategy 1 ("band"): bit 0 below mean − σ, bit 1 above mean + σ,
//     everything in between is uncertain.
//   Strategy 2 ("threshold"): the mean is a sharp cut; no uncertainty.
// Table 2 reports #correct / #wrong / #uncertain for both.

#ifndef TREEWM_ATTACKS_DETECTION_H_
#define TREEWM_ATTACKS_DETECTION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/signature.h"
#include "data/dataset.h"
#include "forest/random_forest.h"

namespace treewm::attacks {

/// Which per-tree statistic the attacker measures. kDepth/kLeafCount are the
/// paper's structural statistics; kErrorRate is the behavioral extension
/// (per-tree error on a reference sample, one batched vote-matrix query).
enum class TreeStatistic { kDepth, kLeafCount, kErrorRate };

/// "Depth" / "#leaves" (Table 2 row labels).
const char* TreeStatisticName(TreeStatistic statistic);

/// The attacker's per-tree guess.
enum class BitGuess : int8_t { kZero = 0, kOne = 1, kUncertain = 2 };

/// Outcome of one detection attempt against a known ground-truth signature.
struct DetectionReport {
  TreeStatistic statistic = TreeStatistic::kDepth;
  double mean = 0.0;    ///< mean of the statistic over the ensemble
  double stddev = 0.0;  ///< population standard deviation
  /// Per-tree guesses, parallel to the ensemble.
  std::vector<BitGuess> guesses;
  /// Tallies against the true signature.
  size_t num_correct = 0;
  size_t num_wrong = 0;
  size_t num_uncertain = 0;
};

/// Extracts the chosen structural statistic per tree. kErrorRate needs a
/// reference dataset and returns an empty vector here — use
/// MeasureErrorRates / DetectByErrorRate for the behavioral statistic.
std::vector<double> MeasureStatistic(const forest::RandomForest& forest,
                                     TreeStatistic statistic);

/// Strategy 1: mean ± stddev band with uncertain middle.
DetectionReport DetectByBand(const forest::RandomForest& forest,
                             TreeStatistic statistic,
                             const core::Signature& true_signature);

/// Strategy 2: sharp threshold at the mean (<= mean -> bit 0).
DetectionReport DetectByThreshold(const forest::RandomForest& forest,
                                  TreeStatistic statistic,
                                  const core::Signature& true_signature);

/// Per-tree error rates on `reference`, measured through one batched
/// vote-matrix query (no per-row PredictAll loop).
std::vector<double> MeasureErrorRates(const forest::RandomForest& forest,
                                      const data::Dataset& reference);

/// Behavioral strategy (extension): trees forced to misclassify their
/// trigger rows (bit 1) tend to show higher error on real data, so threshold
/// the per-tree error rate at the ensemble mean (<= mean -> bit 0), like
/// Strategy 2 does for structural statistics. Errors come from a single
/// batched vote-matrix query over `reference`.
DetectionReport DetectByErrorRate(const forest::RandomForest& forest,
                                  const data::Dataset& reference,
                                  const core::Signature& true_signature);

/// Best signature reconstruction the attacker could submit from a report:
/// uncertain trees are filled with `uncertain_fill` (0 or 1).
[[nodiscard]] Result<core::Signature> GuessesToSignature(const DetectionReport& report,
                                           uint8_t uncertain_fill);

}  // namespace treewm::attacks

#endif  // TREEWM_ATTACKS_DETECTION_H_
