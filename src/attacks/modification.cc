#include "attacks/modification.h"

#include <cmath>
#include <functional>

#include "common/string_util.h"
#include "predict/vote_matrix.h"

namespace treewm::attacks {

namespace {

using tree::DecisionTree;
using tree::TreeNode;

/// Counts +1 / -1 leaves below `node` in the original tree.
void CountLeafLabels(const std::vector<TreeNode>& nodes, int node, int* positive,
                     int* negative) {
  const TreeNode& n = nodes[static_cast<size_t>(node)];
  if (n.feature == -1) {
    (n.label > 0 ? *positive : *negative) += 1;
    return;
  }
  CountLeafLabels(nodes, n.left, positive, negative);
  CountLeafLabels(nodes, n.right, positive, negative);
}

/// Rebuilds `node` (from the original tree) into `out`, truncating below
/// `remaining_depth`. Returns the index of the rebuilt node in `out`.
int RebuildTruncated(const std::vector<TreeNode>& nodes, int node,
                     int remaining_depth, std::vector<TreeNode>* out) {
  const TreeNode& n = nodes[static_cast<size_t>(node)];
  const int self = static_cast<int>(out->size());
  out->push_back(TreeNode{});
  if (n.feature == -1 || remaining_depth == 0) {
    int positive = 0;
    int negative = 0;
    CountLeafLabels(nodes, node, &positive, &negative);
    TreeNode& leaf = (*out)[static_cast<size_t>(self)];
    leaf.feature = -1;
    leaf.label = positive >= negative ? +1 : -1;
    return self;
  }
  const int left = RebuildTruncated(nodes, n.left, remaining_depth - 1, out);
  const int right = RebuildTruncated(nodes, n.right, remaining_depth - 1, out);
  TreeNode& internal = (*out)[static_cast<size_t>(self)];
  internal.feature = n.feature;
  internal.threshold = n.threshold;
  internal.left = left;
  internal.right = right;
  internal.label = 0;
  return self;
}

}  // namespace

Result<forest::RandomForest> PruneToDepth(const forest::RandomForest& forest,
                                          int max_depth) {
  if (max_depth < 0) return Status::InvalidArgument("max_depth must be >= 0");
  std::vector<DecisionTree> pruned;
  pruned.reserve(forest.num_trees());
  for (const auto& t : forest.trees()) {
    std::vector<TreeNode> nodes;
    RebuildTruncated(t.nodes(), 0, max_depth, &nodes);
    TREEWM_ASSIGN_OR_RETURN(
        DecisionTree rebuilt,
        DecisionTree::FromNodes(std::move(nodes), t.num_features()));
    pruned.push_back(std::move(rebuilt));
  }
  return forest::RandomForest::FromTrees(std::move(pruned));
}

Result<forest::RandomForest> RelabelRandomLeaves(const forest::RandomForest& forest,
                                                 double fraction, Rng* rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in [0,1]");
  }
  std::vector<DecisionTree> tampered;
  tampered.reserve(forest.num_trees());
  for (const auto& t : forest.trees()) {
    std::vector<TreeNode> nodes = t.nodes();
    for (TreeNode& n : nodes) {
      if (n.feature == -1 && rng->Bernoulli(fraction)) n.label = -n.label;
    }
    TREEWM_ASSIGN_OR_RETURN(
        DecisionTree rebuilt,
        DecisionTree::FromNodes(std::move(nodes), t.num_features()));
    tampered.push_back(std::move(rebuilt));
  }
  return forest::RandomForest::FromTrees(std::move(tampered));
}

Result<forest::RandomForest> ReplaceRandomTrees(const forest::RandomForest& forest,
                                                double fraction,
                                                const data::Dataset& surrogate,
                                                const tree::TreeConfig& config,
                                                Rng* rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in [0,1]");
  }
  if (surrogate.num_features() != forest.num_features()) {
    return Status::InvalidArgument("surrogate feature count mismatch");
  }
  const size_t replace_count = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(forest.num_trees())));
  std::vector<size_t> victims =
      rng->SampleWithoutReplacement(forest.num_trees(), replace_count);

  std::vector<DecisionTree> trees = forest.trees();
  const size_t d = forest.num_features();
  const size_t features_per_tree = std::max<size_t>(
      1, static_cast<size_t>(std::llround(std::sqrt(static_cast<double>(d)))));
  for (size_t victim : victims) {
    std::vector<size_t> picked = rng->SampleWithoutReplacement(d, features_per_tree);
    std::vector<int> subset;
    subset.reserve(picked.size());
    for (size_t f : picked) subset.push_back(static_cast<int>(f));
    TREEWM_ASSIGN_OR_RETURN(DecisionTree fresh,
                            DecisionTree::Fit(surrogate, {}, config, subset));
    trees[victim] = std::move(fresh);
  }
  return forest::RandomForest::FromTrees(std::move(trees));
}

Result<double> VoteFlipRate(const forest::RandomForest& original,
                            const forest::RandomForest& modified,
                            const data::Dataset& dataset) {
  if (original.num_trees() != modified.num_trees()) {
    return Status::InvalidArgument("models disagree on number of trees");
  }
  if (original.num_features() != modified.num_features() ||
      dataset.num_features() != original.num_features()) {
    return Status::InvalidArgument("feature count mismatch");
  }
  if (dataset.num_rows() == 0) return 0.0;
  const predict::VoteMatrix before = original.PredictAllVotes(dataset);
  const predict::VoteMatrix after = modified.PredictAllVotes(dataset);
  const size_t total = dataset.num_rows() * original.num_trees();
  size_t flipped = 0;
  const int8_t* a = before.data();
  const int8_t* b = after.data();
  for (size_t i = 0; i < total; ++i) {
    if (a[i] != b[i]) ++flipped;
  }
  return static_cast<double>(flipped) / static_cast<double>(total);
}

}  // namespace treewm::attacks
