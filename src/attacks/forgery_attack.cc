#include "attacks/forgery_attack.h"

#include <algorithm>
#include <cmath>

namespace treewm::attacks {

namespace {

/// Anchors per SolveBatch call. Chunking (instead of one batch over the
/// whole test set) preserves the sequential loop's early-stop semantics:
/// once max_forged is reached mid-chunk the remaining solved outcomes are
/// discarded, so at most kAnchorChunk - 1 solves are wasted while attempts,
/// verdict counts and forged instances stay bit-identical to the scalar
/// loop (witness-validation failures excepted — see RunForgeryAttack's
/// header contract).
constexpr size_t kAnchorChunk = 32;

}  // namespace

Result<data::Dataset> ForgeryAttackReport::ToDataset(size_t num_features) const {
  data::Dataset out(num_features);
  out.set_name("forged-trigger");
  out.Reserve(instances.size());
  for (const ForgedInstance& inst : instances) {
    TREEWM_RETURN_IF_ERROR(out.AddRow(inst.features, inst.label));
  }
  return out;
}

Result<ForgeryAttackReport> RunForgeryAttack(const forest::RandomForest& model,
                                             const core::Signature& fake_signature,
                                             const data::Dataset& test,
                                             const ForgeryAttackConfig& config) {
  if (fake_signature.length() != model.num_trees()) {
    return Status::InvalidArgument("fake signature length != number of trees");
  }
  // The attack-level narrowing of the solver's ε >= 0 domain — see the
  // ForgeryAttackConfig::epsilon contract.
  if (config.epsilon <= 0.0 || config.epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0,1)");
  }

  smt::ForgeryBatchQuery shared;
  shared.signature_bits = fake_signature.bits();
  shared.epsilon = config.epsilon;
  shared.max_nodes_per_anchor = config.max_nodes_per_instance;
  // Requirement arenas are compiled once per label here and reused across
  // every chunk of the run.
  smt::ForgeryArenaCache arenas;

  ForgeryAttackReport report;
  size_t next_row = 0;
  bool stop = false;
  while (!stop && next_row < test.num_rows()) {
    size_t chunk = std::min(kAnchorChunk, test.num_rows() - next_row);
    if (config.max_attempts != 0) {
      if (report.attempts >= config.max_attempts) break;
      chunk = std::min(chunk, config.max_attempts - report.attempts);
    }
    if (config.max_forged != 0 && report.forged >= config.max_forged) break;

    std::vector<size_t> indices(chunk);
    for (size_t j = 0; j < chunk; ++j) indices[j] = next_row + j;
    const data::Dataset anchors = test.Subset(indices);
    TREEWM_ASSIGN_OR_RETURN(
        std::vector<smt::ForgeryOutcome> outcomes,
        smt::ForgerySolver::SolveBatch(model, shared, anchors, &arenas));

    for (size_t j = 0; j < chunk; ++j) {
      if (config.max_forged != 0 && report.forged >= config.max_forged) {
        stop = true;
        break;
      }
      const size_t i = next_row + j;
      ++report.attempts;
      const smt::ForgeryOutcome& outcome = outcomes[j];
      report.total_nodes += outcome.nodes_explored;
      switch (outcome.result) {
        case sat::SatResult::kSat: {
          ForgedInstance inst;
          inst.features = outcome.witness;
          inst.label = test.Label(i);
          inst.source_row = i;
          const auto anchor = test.Row(i);
          double dist = 0.0;
          for (size_t f = 0; f < inst.features.size(); ++f) {
            dist = std::max(dist, std::fabs(static_cast<double>(inst.features[f]) -
                                            static_cast<double>(anchor[f])));
          }
          inst.linf_distance = dist;
          report.instances.push_back(std::move(inst));
          ++report.forged;
          break;
        }
        case sat::SatResult::kUnsat:
          ++report.unsat;
          break;
        case sat::SatResult::kUnknown:
          ++report.budget_exhausted;
          break;
      }
    }
    next_row += chunk;
  }

  // Re-run Charlie's acceptance test over the whole forged set in row blocks
  // through the flat engine — one batched query per target label instead of
  // a scalar PredictAll per witness.
  for (int label : {data::kPositive, data::kNegative}) {
    data::Dataset witnesses(model.num_features());
    for (const ForgedInstance& inst : report.instances) {
      if (inst.label != label) continue;
      TREEWM_RETURN_IF_ERROR(witnesses.AddRow(inst.features, label));
    }
    if (witnesses.num_rows() == 0) continue;
    const std::vector<uint8_t> holds = smt::ForgerySolver::PatternHoldsBatch(
        model, fake_signature.bits(), label, witnesses);
    for (uint8_t h : holds) {
      if (h != 0) ++report.revalidated;
    }
  }
  return report;
}

}  // namespace treewm::attacks
