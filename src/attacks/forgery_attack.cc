#include "attacks/forgery_attack.h"

#include <algorithm>
#include <cmath>

namespace treewm::attacks {

data::Dataset ForgeryAttackReport::ToDataset(size_t num_features) const {
  data::Dataset out(num_features);
  out.set_name("forged-trigger");
  out.Reserve(instances.size());
  for (const ForgedInstance& inst : instances) {
    Status st = out.AddRow(inst.features, inst.label);
    (void)st;
  }
  return out;
}

Result<ForgeryAttackReport> RunForgeryAttack(const forest::RandomForest& model,
                                             const core::Signature& fake_signature,
                                             const data::Dataset& test,
                                             const ForgeryAttackConfig& config) {
  if (fake_signature.length() != model.num_trees()) {
    return Status::InvalidArgument("fake signature length != number of trees");
  }
  if (config.epsilon <= 0.0 || config.epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0,1)");
  }

  ForgeryAttackReport report;
  for (size_t i = 0; i < test.num_rows(); ++i) {
    if (config.max_attempts != 0 && report.attempts >= config.max_attempts) break;
    if (config.max_forged != 0 && report.forged >= config.max_forged) break;
    ++report.attempts;

    smt::ForgeryQuery query;
    query.signature_bits = fake_signature.bits();
    query.target_label = test.Label(i);
    const auto row = test.Row(i);
    query.anchor.assign(row.begin(), row.end());
    query.epsilon = config.epsilon;
    query.max_nodes = config.max_nodes_per_instance;

    TREEWM_ASSIGN_OR_RETURN(smt::ForgeryOutcome outcome,
                            smt::ForgerySolver::Solve(model, query));
    report.total_nodes += outcome.nodes_explored;
    switch (outcome.result) {
      case sat::SatResult::kSat: {
        ForgedInstance inst;
        inst.features = outcome.witness;
        inst.label = query.target_label;
        inst.source_row = i;
        double dist = 0.0;
        for (size_t f = 0; f < inst.features.size(); ++f) {
          dist = std::max(dist, std::fabs(static_cast<double>(inst.features[f]) -
                                          static_cast<double>(query.anchor[f])));
        }
        inst.linf_distance = dist;
        report.instances.push_back(std::move(inst));
        ++report.forged;
        break;
      }
      case sat::SatResult::kUnsat:
        ++report.unsat;
        break;
      case sat::SatResult::kUnknown:
        ++report.budget_exhausted;
        break;
    }
  }

  // Re-run Charlie's acceptance test over the whole forged set in row blocks
  // through the flat engine — one batched query per target label instead of
  // a scalar PredictAll per witness.
  for (int label : {data::kPositive, data::kNegative}) {
    data::Dataset witnesses(model.num_features());
    for (const ForgedInstance& inst : report.instances) {
      if (inst.label != label) continue;
      TREEWM_RETURN_IF_ERROR(witnesses.AddRow(inst.features, label));
    }
    if (witnesses.num_rows() == 0) continue;
    const std::vector<uint8_t> holds = smt::ForgerySolver::PatternHoldsBatch(
        model, fake_signature.bits(), label, witnesses);
    for (uint8_t h : holds) {
      if (h != 0) ++report.revalidated;
    }
  }
  return report;
}

}  // namespace treewm::attacks
