// Watermark forgery attack simulation (paper §4.2.2).
//
// The attacker generates a fake signature σ' and tries to assemble a forged
// trigger set D'_trigger on which the stolen model exhibits σ''s output
// pattern. Following the paper: for each instance of the test set, solve the
// satisfiability problem "model output matches σ' within an L∞ ball of
// radius ε around the instance" (Z3 in the paper; smt::ForgerySolver here).
// The attack's success measure is |D'_trigger| relative to the legitimate
// trigger size.

#ifndef TREEWM_ATTACKS_FORGERY_ATTACK_H_
#define TREEWM_ATTACKS_FORGERY_ATTACK_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/signature.h"
#include "data/dataset.h"
#include "forest/random_forest.h"
#include "smt/forgery_solver.h"

namespace treewm::attacks {

/// Attack parameters.
struct ForgeryAttackConfig {
  /// L∞ distortion bound ε ∈ (0,1). This intentionally narrows the solver's
  /// ε >= 0 domain (smt::ValidateBallGeometry): anchors are normalized to
  /// the [0,1] feature domain, where ε >= 1 makes the ball cover the whole
  /// domain (no distortion bound left — the attack degenerates to an
  /// unconstrained query) and ε = 0 is an exact-match query that cannot
  /// forge anything the model does not already exhibit.
  double epsilon = 0.1;
  /// Stop once this many instances were forged (0 = no cap; the paper caps
  /// implicitly at the size of the original trigger set).
  size_t max_forged = 0;
  /// Per-instance solver node budget (stands in for Z3's timeout; 0 =
  /// unlimited).
  uint64_t max_nodes_per_instance = 200000;
  /// Cap on test instances attempted (0 = all).
  size_t max_attempts = 0;
};

/// One forged instance with its provenance.
struct ForgedInstance {
  std::vector<float> features;
  int label = 0;             ///< the target label y used in the query
  size_t source_row = 0;     ///< index of the anchor test instance
  double linf_distance = 0;  ///< achieved ‖x − anchor‖_∞
};

/// Aggregate attack outcome.
struct ForgeryAttackReport {
  size_t attempts = 0;
  size_t forged = 0;
  size_t unsat = 0;
  size_t budget_exhausted = 0;
  uint64_t total_nodes = 0;
  std::vector<ForgedInstance> instances;

  /// Forged instances that passed the end-of-run batched acceptance test
  /// (ForgerySolver::PatternHoldsBatch over the whole forged set at once —
  /// the check Charlie would run before a dispute). Always == forged unless
  /// the solver reported an invalid witness.
  size_t revalidated = 0;

  /// The attacker's forged trigger set as a Dataset (labels = target y).
  /// Fails if any instance does not fit a `num_features`-wide dataset (a
  /// mismatch used to be silently dropped, yielding a short dataset).
  [[nodiscard]] Result<data::Dataset> ToDataset(size_t num_features) const;
};

/// Runs the attack: iterate over `test` rows (as anchors), query the forgery
/// solver with σ' and the row's label as target, collect successes. Anchors
/// are solved in chunks through ForgerySolver::SolveBatch — one compiled
/// requirement arena per label for the whole run, watched-option search,
/// thread fan-out — with outcome accounting identical to the sequential
/// per-anchor loop (same stop conditions, same per-anchor verdicts). One
/// divergence: a witness failing ensemble validation (an internal solver
/// invariant violation) aborts the whole run even when it occurs on a
/// chunk-mate past the early-stop point that the sequential loop would
/// never have solved — an invariant violation anywhere is grounds to
/// distrust the report, so it fails loudly rather than being discarded.
[[nodiscard]] Result<ForgeryAttackReport> RunForgeryAttack(const forest::RandomForest& model,
                                             const core::Signature& fake_signature,
                                             const data::Dataset& test,
                                             const ForgeryAttackConfig& config);

}  // namespace treewm::attacks

#endif  // TREEWM_ATTACKS_FORGERY_ATTACK_H_
