#include "reduction/reduction.h"

#include <cassert>

#include "common/string_util.h"

namespace treewm::reduction {

namespace {

using tree::TreeNode;

/// Appends the paper's JlK / Jl ∨ ψ'K construction for the clause suffix
/// starting at `pos`; returns the index of the created subtree root.
int BuildClauseSubtree(const std::vector<sat::Lit>& clause, size_t pos,
                       std::vector<TreeNode>* nodes) {
  const sat::Lit l = clause[pos];
  const int self = static_cast<int>(nodes->size());
  nodes->push_back(TreeNode{});
  TreeNode& node = (*nodes)[static_cast<size_t>(self)];
  node.feature = l.var();
  node.threshold = 0.0f;

  auto add_leaf = [nodes](int label) {
    const int idx = static_cast<int>(nodes->size());
    TreeNode leaf;
    leaf.feature = -1;
    leaf.label = label;
    nodes->push_back(leaf);
    return idx;
  };

  const bool last = pos + 1 == clause.size();
  if (!l.negated()) {
    // J x K           = N(x<=0, L(-1), L(+1))
    // J x ∨ ψ' K      = N(x<=0, Jψ'K, L(+1))
    const int left = last ? add_leaf(-1) : BuildClauseSubtree(clause, pos + 1, nodes);
    const int right = add_leaf(+1);
    (*nodes)[static_cast<size_t>(self)].left = left;
    (*nodes)[static_cast<size_t>(self)].right = right;
  } else {
    // J ¬x K          = N(x<=0, L(+1), L(-1))
    // J ¬x ∨ ψ' K     = N(x<=0, L(+1), Jψ'K)
    const int left = add_leaf(+1);
    const int right = last ? add_leaf(-1) : BuildClauseSubtree(clause, pos + 1, nodes);
    (*nodes)[static_cast<size_t>(self)].left = left;
    (*nodes)[static_cast<size_t>(self)].right = right;
  }
  return self;
}

}  // namespace

Result<forest::RandomForest> FormulaToEnsemble(const ThreeCnf& formula) {
  TREEWM_RETURN_IF_ERROR(formula.Validate());
  if (formula.clauses.empty()) {
    return Status::InvalidArgument("formula needs at least one clause");
  }
  std::vector<tree::DecisionTree> trees;
  trees.reserve(formula.clauses.size());
  for (const auto& clause : formula.clauses) {
    std::vector<TreeNode> nodes;
    const int root = BuildClauseSubtree(clause, 0, &nodes);
    assert(root == 0);
    (void)root;  // discard ok: asserted above; the clause subtree roots at node 0
    TREEWM_ASSIGN_OR_RETURN(
        tree::DecisionTree t,
        tree::DecisionTree::FromNodes(std::move(nodes),
                                      static_cast<size_t>(formula.num_vars)));
    trees.push_back(std::move(t));
  }
  return forest::RandomForest::FromTrees(std::move(trees));
}

smt::ForgeryQuery ReductionQuery(size_t num_trees) {
  smt::ForgeryQuery query;
  query.signature_bits.assign(num_trees, 0);
  query.target_label = +1;
  query.domain_lo = -1.0;
  query.domain_hi = +1.0;
  return query;
}

std::vector<bool> WitnessToAssignment(std::span<const float> witness) {
  std::vector<bool> assignment(witness.size());
  for (size_t j = 0; j < witness.size(); ++j) assignment[j] = witness[j] > 0.0f;
  return assignment;
}

Result<std::vector<bool>> SolveThreeSatViaForgery(const ThreeCnf& formula,
                                                  uint64_t max_nodes) {
  TREEWM_ASSIGN_OR_RETURN(forest::RandomForest ensemble, FormulaToEnsemble(formula));
  smt::ForgeryQuery query = ReductionQuery(ensemble.num_trees());
  query.max_nodes = max_nodes;
  TREEWM_ASSIGN_OR_RETURN(smt::ForgeryOutcome outcome,
                          smt::ForgerySolver::Solve(ensemble, query));
  switch (outcome.result) {
    case sat::SatResult::kSat: {
      std::vector<bool> assignment = WitnessToAssignment(outcome.witness);
      if (!formula.Evaluate(assignment)) {
        return Status::Internal("reduction produced a non-satisfying assignment");
      }
      return assignment;
    }
    case sat::SatResult::kUnsat:
      return Status::NotFound("formula is unsatisfiable");
    case sat::SatResult::kUnknown:
      return Status::Timeout("forgery search budget exhausted");
  }
  return Status::Internal("unreachable");
}

}  // namespace treewm::reduction
