// 3CNF formulas: representation, generation, evaluation.
//
// Matches the grammar in the paper's Theorem 1 proof: a 3CNF formula is a
// conjunction of clauses, each a disjunction of at most three literals.

#ifndef TREEWM_REDUCTION_THREE_CNF_H_
#define TREEWM_REDUCTION_THREE_CNF_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sat/dimacs.h"

namespace treewm::reduction {

/// A 3CNF formula (clause arity 1..3).
struct ThreeCnf {
  int num_vars = 0;
  std::vector<std::vector<sat::Lit>> clauses;

  /// Checks arity and variable ranges.
  [[nodiscard]] Status Validate() const;

  /// Truth value under `assignment` (index = variable).
  bool Evaluate(const std::vector<bool>& assignment) const;

  /// Human-readable form, e.g. "(x1 | x2) & (x2 | x3 | ~x4)".
  std::string ToString() const;
};

/// Uniform random 3CNF with exactly 3 distinct-variable literals per clause
/// (the standard random-3SAT model; clause/variable ratio controls hardness,
/// ~4.26 is the classic phase transition).
[[nodiscard]] Result<ThreeCnf> RandomThreeCnf(int num_vars, int num_clauses, Rng* rng);

/// Conversions to/from the generic CNF container (validates arity on the
/// way in).
sat::CnfFormula ToCnfFormula(const ThreeCnf& formula);
[[nodiscard]] Result<ThreeCnf> FromCnfFormula(const sat::CnfFormula& formula);

}  // namespace treewm::reduction

#endif  // TREEWM_REDUCTION_THREE_CNF_H_
