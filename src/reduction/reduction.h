// Theorem 1: the 3SAT -> watermark-forgery reduction.
//
// Implements the conversion function J·K from the paper's NP-hardness proof:
// each 3CNF clause ψ_i becomes a decision tree of depth <= 3 over threshold-0
// tests, such that φ is satisfiable iff the forgery problem has a solution
// for the ensemble JφK with label y = +1 and the all-zeros signature.
// Variable x_j is decoded as true iff the j-th witness component is positive.

#ifndef TREEWM_REDUCTION_REDUCTION_H_
#define TREEWM_REDUCTION_REDUCTION_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "forest/random_forest.h"
#include "reduction/three_cnf.h"
#include "smt/forgery_solver.h"

namespace treewm::reduction {

/// Builds the ensemble JφK (one tree per clause, thresholds all 0).
[[nodiscard]] Result<forest::RandomForest> FormulaToEnsemble(const ThreeCnf& formula);

/// The forgery query of the reduction: label +1, signature all zeros, and a
/// symmetric domain [-1, 1] so both outcomes of every "x <= 0" test are
/// realizable.
smt::ForgeryQuery ReductionQuery(size_t num_trees);

/// Decodes a forgery witness into a Boolean assignment (x_j := witness_j > 0).
std::vector<bool> WitnessToAssignment(std::span<const float> witness);

/// End-to-end check: solves 3SAT via the forgery solver. Returns the
/// satisfying assignment, or NotFound when unsatisfiable.
[[nodiscard]] Result<std::vector<bool>> SolveThreeSatViaForgery(const ThreeCnf& formula,
                                                  uint64_t max_nodes = 0);

}  // namespace treewm::reduction

#endif  // TREEWM_REDUCTION_REDUCTION_H_
