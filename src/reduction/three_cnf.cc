#include "reduction/three_cnf.h"

#include <algorithm>

#include "common/string_util.h"

namespace treewm::reduction {

Status ThreeCnf::Validate() const {
  for (size_t c = 0; c < clauses.size(); ++c) {
    if (clauses[c].empty() || clauses[c].size() > 3) {
      return Status::InvalidArgument(
          StrFormat("clause %zu has arity %zu (want 1..3)", c, clauses[c].size()));
    }
    for (const sat::Lit& l : clauses[c]) {
      if (l.var() < 0 || l.var() >= num_vars) {
        return Status::InvalidArgument(
            StrFormat("clause %zu references variable %d outside [0,%d)", c, l.var(),
                      num_vars));
      }
    }
  }
  return Status::OK();
}

bool ThreeCnf::Evaluate(const std::vector<bool>& assignment) const {
  for (const auto& clause : clauses) {
    bool satisfied = false;
    for (const sat::Lit& l : clause) {
      if (assignment[static_cast<size_t>(l.var())] != l.negated()) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::string ThreeCnf::ToString() const {
  std::string out;
  for (size_t c = 0; c < clauses.size(); ++c) {
    if (c > 0) out += " & ";
    out += "(";
    for (size_t i = 0; i < clauses[c].size(); ++i) {
      if (i > 0) out += " | ";
      out += clauses[c][i].ToString();
    }
    out += ")";
  }
  return out;
}

Result<ThreeCnf> RandomThreeCnf(int num_vars, int num_clauses, Rng* rng) {
  if (num_vars < 3) return Status::InvalidArgument("need at least 3 variables");
  if (num_clauses < 1) return Status::InvalidArgument("need at least 1 clause");
  ThreeCnf formula;
  formula.num_vars = num_vars;
  formula.clauses.reserve(static_cast<size_t>(num_clauses));
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<size_t> vars =
        rng->SampleWithoutReplacement(static_cast<size_t>(num_vars), 3);
    std::vector<sat::Lit> clause;
    clause.reserve(3);
    for (size_t v : vars) {
      clause.push_back(sat::Lit::Make(static_cast<sat::Var>(v), rng->Bernoulli(0.5)));
    }
    formula.clauses.push_back(std::move(clause));
  }
  return formula;
}

sat::CnfFormula ToCnfFormula(const ThreeCnf& formula) {
  sat::CnfFormula out;
  out.num_vars = formula.num_vars;
  out.clauses = formula.clauses;
  return out;
}

Result<ThreeCnf> FromCnfFormula(const sat::CnfFormula& formula) {
  ThreeCnf out;
  out.num_vars = formula.num_vars;
  out.clauses = formula.clauses;
  TREEWM_RETURN_IF_ERROR(out.Validate());
  return out;
}

}  // namespace treewm::reduction
