#include "common/thread_pool.h"

#include <atomic>

namespace treewm {

namespace {
/// The pool (if any) whose WorkerLoop is running on this thread.
thread_local const ThreadPool* t_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::OnWorkerThread() const { return t_current_pool == this; }

void ThreadPool::WorkerLoop() {
  t_current_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(std::thread::hardware_concurrency() > 0
                             ? std::thread::hardware_concurrency()
                             : 4);
  return pool;
}

void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& body) {
  // Run inline when fan-out cannot help — including when the caller is
  // itself one of `pool`'s workers: blocking that worker on sub-tasks would
  // deadlock once every worker does it (nested ParallelFor).
  if (pool == nullptr || count <= 1 || pool->num_threads() == 1 ||
      pool->OnWorkerThread()) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  const size_t shards = std::min(count, pool->num_threads());
  size_t pending = shards;  // guarded by done_mutex
  for (size_t s = 0; s < shards; ++s) {
    pool->Submit([&] {
      size_t i;
      while ((i = next.fetch_add(1)) < count) body(i);
      // Decrement and notify under the lock: the waiting caller owns these
      // stack objects and may destroy them the moment it observes
      // pending == 0, so the last worker must not touch them afterwards.
      std::lock_guard<std::mutex> lock(done_mutex);
      if (--pending == 0) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return pending == 0; });
}

}  // namespace treewm
