#include "common/thread_pool.h"

#include <atomic>

#include "common/fault_injection.h"

namespace treewm {

namespace {
/// The pool (if any) whose WorkerLoop is running on this thread.
thread_local const ThreadPool* t_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::Submit(std::function<void()> task) {
  if (TREEWM_FAULT_FIRED("thread_pool.submit.reject")) {
    return Status::FailedPrecondition("injected submit rejection");
  }
  {
    MutexLock lock(&mutex_);
    if (shutting_down_) {
      return Status::FailedPrecondition("thread pool is shut down");
    }
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
  return Status::OK();
}

void ThreadPool::Wait() {
  MutexLock lock(&mutex_);
  while (in_flight_ != 0) all_done_.Wait(lock);
}

void ThreadPool::Shutdown() {
  bool do_join = false;
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
    if (!joined_) {
      joined_ = true;
      do_join = true;
    }
  }
  task_ready_.NotifyAll();
  if (do_join) {
    for (auto& worker : workers_) worker.join();
    all_done_.NotifyAll();
  } else {
    // A concurrent Shutdown already owns the join; wait for the drain so
    // every caller observes the same post-condition (all tasks ran).
    MutexLock lock(&mutex_);
    while (in_flight_ != 0) all_done_.Wait(lock);
  }
}

bool ThreadPool::IsShutdown() const {
  MutexLock lock(&mutex_);
  return shutting_down_;
}

bool ThreadPool::OnWorkerThread() const { return t_current_pool == this; }

void ThreadPool::WorkerLoop() {
  t_current_pool = this;
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!shutting_down_ && tasks_.empty()) task_ready_.Wait(lock);
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // Fault site: simulate a descheduled/stalled worker between dequeue and
    // execution — the window where batching and shutdown races live.
    // discard ok: the stall's side effect is the point; firing is not an error
    (void)TREEWM_FAULT_FIRED("thread_pool.worker.stall");
    task();
    {
      MutexLock lock(&mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(std::thread::hardware_concurrency() > 0
                             ? std::thread::hardware_concurrency()
                             : 4);
  return pool;
}

void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& body) {
  // Run inline when fan-out cannot help — including when the caller is
  // itself one of `pool`'s workers: blocking that worker on sub-tasks would
  // deadlock once every worker does it (nested ParallelFor).
  if (pool == nullptr || count <= 1 || pool->num_threads() == 1 ||
      pool->OnWorkerThread()) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<size_t> next{0};
  Mutex done_mutex;
  CondVar done_cv;
  const size_t shards = std::min(count, pool->num_threads());
  size_t pending = shards;  // guarded by done_mutex (local: annotation by comment)
  auto work = [&] {
    size_t i;
    while ((i = next.fetch_add(1)) < count) body(i);
    // Decrement and notify under the lock: the waiting caller owns these
    // stack objects and may destroy them the moment it observes
    // pending == 0, so the last worker must not touch them afterwards.
    MutexLock lock(&done_mutex);
    if (--pending == 0) done_cv.NotifyAll();
  };
  for (size_t s = 0; s < shards; ++s) {
    // A rejected shard (pool shut down mid-loop, or an injected fault) runs
    // on the calling thread: iterations are claimed via `next`, so work is
    // never lost or duplicated, only less parallel.
    if (!pool->Submit(work).ok()) work();
  }
  MutexLock lock(&done_mutex);
  while (pending != 0) done_cv.Wait(lock);
}

}  // namespace treewm
