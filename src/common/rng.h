// Deterministic pseudo-random number generation.
//
// All randomness in treewm flows from explicit 64-bit seeds through this
// class, so datasets, trained models, signatures and attacks are reproducible
// bit-for-bit across runs and platforms. The generator is xoshiro256**
// seeded via splitmix64 (the recommended seeding procedure).

#ifndef TREEWM_COMMON_RNG_H_
#define TREEWM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace treewm {

/// Fast, high-quality, deterministic PRNG (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses unbiased
  /// rejection sampling (Lemire's method).
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformIntRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double UniformReal();

  /// Uniform double in [lo, hi).
  double UniformRealRange(double lo, double hi);

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p);

  /// Standard normal variate (Box-Muller, cached spare).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Returns `k` distinct indices drawn uniformly from [0, n). Requires
  /// k <= n. The result is in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator (useful for parallel work that
  /// must stay deterministic regardless of scheduling).
  Rng Fork();

 private:
  uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace treewm

#endif  // TREEWM_COMMON_RNG_H_
