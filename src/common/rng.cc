#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace treewm {

namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (~bound + 1) % bound;
    while (l < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformIntRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformReal() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformRealRange(double lo, double hi) {
  return lo + (hi - lo) * UniformReal();
}

bool Rng::Bernoulli(double p) { return UniformReal() < p; }

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = UniformReal();
  double u2 = UniformReal();
  // Guard against log(0).
  while (u1 <= 1e-300) u1 = UniformReal();
  const double r = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = r * std::sin(kTwoPi * u2);
  has_spare_gaussian_ = true;
  return r * std::cos(kTwoPi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace treewm
