// Small string helpers used across modules (no std::format on GCC 12).

#ifndef TREEWM_COMMON_STRING_UTIL_H_
#define TREEWM_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace treewm {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StrTrim(std::string_view text);

/// True if `text` begins with `prefix`.
bool StrStartsWith(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII letters.
std::string StrToLower(std::string_view text);

/// Parses a double; returns false on malformed input or trailing garbage.
bool ParseDouble(std::string_view text, double* out);

/// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view text, int64_t* out);

}  // namespace treewm

#endif  // TREEWM_COMMON_STRING_UTIL_H_
