#include "common/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace treewm {

bool JsonValue::AsBool() const {
  assert(is_bool());
  return bool_;
}

double JsonValue::AsDouble() const {
  assert(is_number());
  return number_;
}

int64_t JsonValue::AsInt64() const {
  assert(is_number());
  return static_cast<int64_t>(std::llround(number_));
}

const std::string& JsonValue::AsString() const {
  assert(is_string());
  return string_;
}

const JsonValue::Array& JsonValue::AsArray() const {
  assert(is_array());
  return array_;
}

JsonValue::Array& JsonValue::AsArray() {
  assert(is_array());
  return array_;
}

const JsonValue::Object& JsonValue::AsObject() const {
  assert(is_object());
  return object_;
}

JsonValue::Object& JsonValue::AsObject() {
  assert(is_object());
  return object_;
}

namespace {

const char* TypeName(JsonValue::Type type) {
  switch (type) {
    case JsonValue::Type::kNull:
      return "null";
    case JsonValue::Type::kBool:
      return "bool";
    case JsonValue::Type::kNumber:
      return "number";
    case JsonValue::Type::kString:
      return "string";
    case JsonValue::Type::kArray:
      return "array";
    case JsonValue::Type::kObject:
      return "object";
  }
  return "?";
}

}  // namespace

Result<bool> JsonValue::ToBool() const {
  if (!is_bool()) {
    return Status::ParseError(StrFormat("expected bool, got %s", TypeName(type_)));
  }
  return bool_;
}

Result<double> JsonValue::ToDouble() const {
  if (!is_number()) {
    return Status::ParseError(StrFormat("expected number, got %s", TypeName(type_)));
  }
  return number_;
}

Result<int64_t> JsonValue::ToInt64() const {
  if (!is_number()) {
    return Status::ParseError(StrFormat("expected number, got %s", TypeName(type_)));
  }
  // Reject NaN/inf and magnitudes llround cannot represent; 2^63 is exactly
  // representable as double, so the open upper bound is exact.
  if (!(number_ >= -9223372036854775808.0 && number_ < 9223372036854775808.0)) {
    return Status::ParseError(StrFormat("number %g out of int64 range", number_));
  }
  return static_cast<int64_t>(std::llround(number_));
}

Result<int64_t> JsonValue::GetInt64(std::string_view key) const {
  TREEWM_ASSIGN_OR_RETURN(const JsonValue* value, Get(key));
  Result<int64_t> converted = value->ToInt64();
  if (!converted.ok()) {
    return Status::ParseError(StrFormat("key '%.*s': %s",
                                        static_cast<int>(key.size()), key.data(),
                                        converted.status().message().c_str()));
  }
  return converted;
}

Result<double> JsonValue::GetDouble(std::string_view key) const {
  TREEWM_ASSIGN_OR_RETURN(const JsonValue* value, Get(key));
  Result<double> converted = value->ToDouble();
  if (!converted.ok()) {
    return Status::ParseError(StrFormat("key '%.*s': %s",
                                        static_cast<int>(key.size()), key.data(),
                                        converted.status().message().c_str()));
  }
  return converted;
}

Result<const JsonValue*> JsonValue::GetArray(std::string_view key) const {
  TREEWM_ASSIGN_OR_RETURN(const JsonValue* value, Get(key));
  if (!value->is_array()) {
    return Status::ParseError(StrFormat("key '%.*s': expected array, got %s",
                                        static_cast<int>(key.size()), key.data(),
                                        TypeName(value->type_)));
  }
  return value;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

Result<const JsonValue*> JsonValue::Get(std::string_view key) const {
  const JsonValue* found = Find(key);
  if (found == nullptr) {
    return Status::NotFound(StrFormat("missing JSON key '%.*s'",
                                      static_cast<int>(key.size()), key.data()));
  }
  return found;
}

void JsonValue::Set(std::string key, JsonValue value) {
  assert(is_object());
  object_[std::move(key)] = std::move(value);
}

void JsonValue::Append(JsonValue value) {
  assert(is_array());
  array_.push_back(std::move(value));
}

namespace {

void EscapeStringTo(std::string* out, const std::string& s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void NumberTo(std::string* out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out->append(buf);
    return;
  }
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; serialize as null (and accept data loss loudly).
    out->append("null");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out->append(buf);
}

void Indent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      NumberTo(out, number_);
      break;
    case Type::kString:
      EscapeStringTo(out, string_);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const auto& item : array_) {
        if (!first) out->push_back(',');
        first = false;
        Indent(out, indent, depth + 1);
        item.DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) Indent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        Indent(out, indent, depth + 1);
        EscapeStringTo(out, key);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        value.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) Indent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string JsonValue::DumpPretty() const {
  std::string out;
  DumpTo(&out, /*indent=*/2, /*depth=*/0);
  return out;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

namespace {

/// Recursive-descent JSON parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    SkipWhitespace();
    TREEWM_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Error(const std::string& what) const {
    return Status::ParseError(StrFormat("%s at offset %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        TREEWM_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue obj = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      TREEWM_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      SkipWhitespace();
      TREEWM_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      obj.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue arr = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      SkipWhitespace();
      TREEWM_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            TREEWM_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
            // Surrogate pair handling.
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                  text_[pos_ + 1] == 'u') {
                pos_ += 2;
                TREEWM_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
                if (low >= 0xDC00 && low <= 0xDFFF) {
                  cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                } else {
                  return Error("invalid low surrogate");
                }
              } else {
                return Error("lone high surrogate");
              }
            }
            AppendUtf8(&out, cp);
            break;
          }
          default:
            return Error("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Error("control character in string");
      } else {
        out.push_back(c);
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit");
      }
    }
    return value;
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value;
    if (pos_ == start || !ParseDouble(text_.substr(start, pos_ - start), &value)) {
      return Error("invalid number");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure: " + path);
  return buffer.str();
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) return Status::IoError("write failure: " + path);
  return Status::OK();
}

}  // namespace treewm
