// Injectable time source for deadline and backoff logic.
//
// Serving-layer components (admission queue, batcher, retry backoff) never
// read std::chrono directly: they take a Clock*, so every deadline decision
// is unit-testable against a deterministic FakeClock without sleeping. Time
// is a monotonic nanosecond count from an unspecified epoch — absolute
// deadlines are computed as Now() + timeout and compared against later
// Now() readings from the SAME clock, never across clocks.

#ifndef TREEWM_COMMON_CLOCK_H_
#define TREEWM_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/annotations.h"
#include "common/mutex.h"

namespace treewm {

/// Monotonic time source. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Nanoseconds since this clock's (unspecified, fixed) epoch. Never
  /// decreases.
  virtual std::chrono::nanoseconds Now() const = 0;

  /// Blocks the calling thread for `duration` of this clock's time. The
  /// FakeClock advances instead of blocking, so retry/backoff loops written
  /// against SleepFor are deterministic and instant under test.
  virtual void SleepFor(std::chrono::nanoseconds duration) = 0;

  /// Process-wide steady-clock instance (never null, never destroyed).
  static Clock* System();
};

/// Real time via std::chrono::steady_clock.
class SystemClock final : public Clock {
 public:
  std::chrono::nanoseconds Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now().time_since_epoch());
  }

  void SleepFor(std::chrono::nanoseconds duration) override {
    if (duration.count() > 0) std::this_thread::sleep_for(duration);
  }
};

inline Clock* Clock::System() {
  static SystemClock* clock = new SystemClock();
  return clock;
}

/// Deterministic manual clock for tests: time moves only via Advance() /
/// SleepFor(). Thread-safe so it can be shared with components under test.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::chrono::nanoseconds start = std::chrono::nanoseconds{0})
      : now_(start) {}

  std::chrono::nanoseconds Now() const override TREEWM_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return now_;
  }

  /// A fake sleep is an instant time jump — deadline logic sees the elapsed
  /// time without the test paying it.
  void SleepFor(std::chrono::nanoseconds duration) override { Advance(duration); }

  /// Moves time forward by `delta` (negative deltas are ignored: the clock
  /// is monotonic by contract).
  void Advance(std::chrono::nanoseconds delta) TREEWM_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    if (delta.count() > 0) now_ += delta;
  }

 private:
  mutable Mutex mutex_;
  std::chrono::nanoseconds now_ TREEWM_GUARDED_BY(mutex_);
};

}  // namespace treewm

#endif  // TREEWM_COMMON_CLOCK_H_
