// Clang thread-safety annotation macros (the -Wthread-safety capability
// model from the annotated-mutex lineage popularized by Abseil).
//
// These macros attach the locking protocol to the code itself so clang can
// prove it at compile time: a field tagged TREEWM_GUARDED_BY(mu) may only
// be touched while `mu` is held, a function tagged TREEWM_REQUIRES(mu) may
// only be called with `mu` held, and every violation is a -Wthread-safety
// warning (a build error in the static-analysis CI job, which compiles
// with -Wthread-safety -Wthread-safety-beta -Werror). On compilers without
// the capability attributes (gcc, msvc) every macro expands to nothing, so
// the annotations are zero-cost documentation there.
//
// Idiom (see src/common/README.md for the full protocol):
//   * annotate every shared field with TREEWM_GUARDED_BY(mutex_);
//   * private helpers that assume the lock take TREEWM_REQUIRES(mutex_)
//     and are named ...Locked();
//   * public entry points that take the lock themselves are annotated
//     TREEWM_EXCLUDES(mutex_) so a re-entrant call is a compile error;
//   * use the annotated Mutex/MutexLock/CondVar wrappers from
//     common/mutex.h — naked std primitives are rejected by
//     tools/lint_invariants.py outside common/.

#ifndef TREEWM_COMMON_ANNOTATIONS_H_
#define TREEWM_COMMON_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define TREEWM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TREEWM_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a class as a capability (lockable): `TREEWM_CAPABILITY("mutex")`.
#define TREEWM_CAPABILITY(x) TREEWM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define TREEWM_SCOPED_CAPABILITY TREEWM_THREAD_ANNOTATION(scoped_lockable)

/// Field/variable may only be accessed while holding `x`.
#define TREEWM_GUARDED_BY(x) TREEWM_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data may only be accessed while holding `x` (the pointer
/// itself is unguarded).
#define TREEWM_PT_GUARDED_BY(x) TREEWM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and does
/// not release them). The ...Locked() helper annotation.
#define TREEWM_REQUIRES(...) \
  TREEWM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities held in shared (reader) mode.
#define TREEWM_REQUIRES_SHARED(...) \
  TREEWM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define TREEWM_ACQUIRE(...) \
  TREEWM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define TREEWM_RELEASE(...) \
  TREEWM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define TREEWM_TRY_ACQUIRE(result, ...) \
  TREEWM_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock/re-entrancy
/// guard on public entry points that lock internally).
#define TREEWM_EXCLUDES(...) \
  TREEWM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define TREEWM_RETURN_CAPABILITY(x) \
  TREEWM_THREAD_ANNOTATION(lock_returned(x))

/// Asserts (at analysis time) the capability is held — for code clang
/// cannot follow, e.g. a lock handed across a callback boundary.
#define TREEWM_ASSERT_CAPABILITY(x) \
  TREEWM_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: disables analysis for one function. Every use must carry a
/// comment explaining why the protocol cannot be expressed.
#define TREEWM_NO_THREAD_SAFETY_ANALYSIS \
  TREEWM_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // TREEWM_COMMON_ANNOTATIONS_H_
