// Process-wide, test-scoped fault-injection registry.
//
// Concurrency code is only as robust as the schedules it has survived.
// This registry lets tests force the schedules that never happen on a quiet
// machine — worker stalls, queue-full races, mid-batch shutdown — through
// named sites compiled into the production paths:
//
//   if (TREEWM_FAULT_FIRED("serve.admission.full")) { ...forced-full path... }
//
// A site is inert until a test arms it with a FaultSpec (probability- or
// sequence-triggered, seeded RNG, optional stall). The disarmed fast path is
// one relaxed atomic load shared by every site; defining
// TREEWM_DISABLE_FAULT_INJECTION compiles sites out entirely (the macro
// folds to `false`), so release builds can remove even that load.
//
// Firing decisions are deterministic: per-site hit counters and a seeded
// per-site RNG make the Nth hit of a site fire (or not) identically on
// every run regardless of wall-clock time. Determinism across *threads*
// is up to the test: arm sequence-triggered specs on sites hit by a single
// thread, or assert schedule-invariant properties (which is exactly what
// the serving determinism contract requires).

#ifndef TREEWM_COMMON_FAULT_INJECTION_H_
#define TREEWM_COMMON_FAULT_INJECTION_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace treewm {

/// When and how an armed site fires. Eligibility: hits (1-based) in
/// (skip_first, skip_first + max_fires] windows are candidates; each
/// candidate then passes a Bernoulli(probability) draw from the seeded
/// per-site RNG. Defaults fire on every hit.
struct FaultSpec {
  /// Per-eligible-hit firing probability (1.0 = always).
  double probability = 1.0;
  /// Number of initial hits that never fire (sequence triggering: "fire on
  /// the 3rd submit" = skip_first 2, max_fires 1).
  uint64_t skip_first = 0;
  /// Cap on total fires (UINT64_MAX = unlimited).
  uint64_t max_fires = UINT64_MAX;
  /// Wall-clock stall applied (on the hitting thread) each time the site
  /// fires — simulates a descheduled worker / slow disk / GC pause.
  std::chrono::nanoseconds stall{0};
  /// Seed for the per-site RNG used by `probability` draws.
  uint64_t seed = 0x5EEDFA017ULL;
};

class FaultInjection {
 public:
  /// True when any site is armed — the only check on the disarmed fast path.
  static bool Enabled();

  /// Registers a hit at `site`; returns true (after applying the spec's
  /// stall) when the armed spec fires. Unarmed sites never fire. Prefer the
  /// TREEWM_FAULT_FIRED macro, which short-circuits via Enabled() and can
  /// be compiled out.
  static bool Fire(std::string_view site);

  /// Arms `site` with `spec`, replacing any previous arming (hit/fire
  /// counters reset).
  static void Arm(const std::string& site, const FaultSpec& spec);

  /// Disarms one site (no-op when not armed).
  static void Disarm(const std::string& site);

  /// Disarms every site — test teardown.
  static void Reset();

  /// Hits observed at `site` since it was armed (0 when not armed).
  static uint64_t HitCount(const std::string& site);

  /// Fires triggered at `site` since it was armed (0 when not armed).
  static uint64_t FireCount(const std::string& site);
};

/// RAII arming for tests: arms in the constructor, disarms in the
/// destructor, so a failing ASSERT cannot leak an armed fault into the next
/// test.
class ScopedFault {
 public:
  ScopedFault(std::string site, const FaultSpec& spec) : site_(std::move(site)) {
    FaultInjection::Arm(site_, spec);
  }
  ~ScopedFault() { FaultInjection::Disarm(site_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  uint64_t hits() const { return FaultInjection::HitCount(site_); }
  uint64_t fires() const { return FaultInjection::FireCount(site_); }

 private:
  std::string site_;
};

}  // namespace treewm

/// The injection-site macro threaded through production code. Evaluates to
/// false at zero cost when TREEWM_DISABLE_FAULT_INJECTION is defined, and to
/// one relaxed atomic load when no fault is armed.
#ifdef TREEWM_DISABLE_FAULT_INJECTION
#define TREEWM_FAULT_FIRED(site) false
#else
#define TREEWM_FAULT_FIRED(site) \
  (::treewm::FaultInjection::Enabled() && ::treewm::FaultInjection::Fire(site))
#endif

#endif  // TREEWM_COMMON_FAULT_INJECTION_H_
