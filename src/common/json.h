// Self-contained JSON value model, parser and writer.
//
// Used for model serialization (trees, forests, watermark bundles). Supports
// the full JSON grammar except for \u escapes beyond the BMP surrogate pairs
// (which are passed through as UTF-8). Numbers are stored as double; the
// writer emits integers without a decimal point when the value is integral,
// and round-trips doubles with 17 significant digits.

#ifndef TREEWM_COMMON_JSON_H_
#define TREEWM_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace treewm {

/// A JSON document node: null, bool, number, string, array or object.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  // std::map keeps object keys sorted, making serialization deterministic.
  using Object = std::map<std::string, JsonValue>;

  /// Constructs null.
  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}    // NOLINT
  JsonValue(int i) : type_(Type::kNumber), number_(i) {}       // NOLINT
  JsonValue(int64_t i)                                         // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(size_t i)                                          // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  JsonValue(std::string s)                                        // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}     // NOLINT
  JsonValue(Object o) : type_(Type::kObject), object_(std::move(o)) {}  // NOLINT

  /// Factory helpers for empty containers.
  static JsonValue MakeArray() { return JsonValue(Array{}); }
  static JsonValue MakeObject() { return JsonValue(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling the wrong one is a programming error (assert).
  bool AsBool() const;
  double AsDouble() const;
  int64_t AsInt64() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  Array& AsArray();
  const Object& AsObject() const;
  Object& AsObject();

  /// Checked conversions for untrusted documents (model files, bundles):
  /// ParseError instead of an assert on type mismatch. ToInt64 also rejects
  /// non-finite numbers and values outside int64 range — a corrupt file must
  /// fail closed, not feed llround undefined behavior.
  [[nodiscard]] Result<bool> ToBool() const;
  [[nodiscard]] Result<double> ToDouble() const;
  [[nodiscard]] Result<int64_t> ToInt64() const;

  /// Object field lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Object field lookup with error status when missing.
  [[nodiscard]] Result<const JsonValue*> Get(std::string_view key) const;

  /// Typed object lookups: Get + checked conversion in one step, with the
  /// field name in the error message.
  [[nodiscard]] Result<int64_t> GetInt64(std::string_view key) const;
  [[nodiscard]] Result<double> GetDouble(std::string_view key) const;
  /// Get + must-be-array check; returns the array-typed node.
  [[nodiscard]] Result<const JsonValue*> GetArray(std::string_view key) const;

  /// Inserts/overwrites an object field. Must be an object.
  void Set(std::string key, JsonValue value);

  /// Appends to an array. Must be an array.
  void Append(JsonValue value);

  /// Serializes compactly (no whitespace).
  std::string Dump() const;

  /// Serializes with 2-space indentation.
  std::string DumpPretty() const;

  /// Parses a document from `text`.
  [[nodiscard]] static Result<JsonValue> Parse(std::string_view text);

  bool operator==(const JsonValue& other) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Reads an entire file into a string.
[[nodiscard]] Result<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path`, truncating.
[[nodiscard]] Status WriteStringToFile(const std::string& path, std::string_view contents);

}  // namespace treewm

#endif  // TREEWM_COMMON_JSON_H_
