// Annotated Mutex / MutexLock / CondVar wrappers over the std primitives.
//
// The std locking types carry no capability attributes, so clang's
// -Wthread-safety analysis cannot see through them. These wrappers are the
// project's ONLY sanctioned locking primitives outside common/ (enforced
// by tools/lint_invariants.py): they behave exactly like std::mutex /
// std::lock_guard / std::condition_variable, but every acquisition and
// release is visible to the analysis, so an access to a
// TREEWM_GUARDED_BY(mutex_) field without the lock is a compile error in
// the static-analysis CI job.
//
// Condition waits: prefer explicit `while (!condition) cv.Wait(lock);`
// loops over predicate-lambda overloads — clang analyzes a lambda body as
// a separate function that does not inherit the caller's held locks, so
// guarded-field reads inside a wait predicate would produce (spurious)
// warnings. The while-loop form keeps the accesses in the annotated scope
// and is what every migrated call site uses.

#ifndef TREEWM_COMMON_MUTEX_H_
#define TREEWM_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace treewm {

/// Exclusive mutex (std::mutex) visible to thread-safety analysis.
class TREEWM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TREEWM_ACQUIRE() { mu_.lock(); }
  void Unlock() TREEWM_RELEASE() { mu_.unlock(); }
  bool TryLock() TREEWM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII scoped lock over Mutex (std::unique_lock underneath so CondVar can
/// park on it). Acquires in the constructor, releases in the destructor.
class TREEWM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TREEWM_ACQUIRE(mu) : lock_(mu->mu_) {}
  ~MutexLock() TREEWM_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to MutexLock. The capability stays held across
/// a wait from the analysis' point of view — which is the correct end
/// state: Wait atomically releases and reacquires before returning.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Spurious wakeups happen: always wait in a
  /// `while (!condition)` loop.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Blocks until notified or `timeout` elapses. Returns
  /// std::cv_status::timeout when the wait timed out — callers re-check
  /// their condition either way.
  std::cv_status WaitFor(MutexLock& lock, std::chrono::nanoseconds timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace treewm

#endif  // TREEWM_COMMON_MUTEX_H_
