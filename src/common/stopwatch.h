// Wall-clock stopwatch for benchmark harnesses.

#ifndef TREEWM_COMMON_STOPWATCH_H_
#define TREEWM_COMMON_STOPWATCH_H_

#include <chrono>

namespace treewm {

/// Measures elapsed wall-clock time from construction or the last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since the origin.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since the origin.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace treewm

#endif  // TREEWM_COMMON_STOPWATCH_H_
