#include "common/status.h"

namespace treewm {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kNotImplemented:
      return "not_implemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) {
  assert(code != StatusCode::kOk);
  state_ = std::make_shared<const State>(State{code, std::move(message)});
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status Status::NotImplemented(std::string msg) {
  return Status(StatusCode::kNotImplemented, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::IoError(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
Status Status::ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
Status Status::Timeout(std::string msg) {
  return Status(StatusCode::kTimeout, std::move(msg));
}
Status Status::DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}

const std::string& Status::message() const {
  return state_ ? state_->message : kEmptyString;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace treewm
