#include "common/stats.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace treewm {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::PopulationVariance() const {
  if (count_ < 1) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::SampleVariance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::PopulationStdDev() const { return std::sqrt(PopulationVariance()); }

double RunningStats::SampleStdDev() const { return std::sqrt(SampleVariance()); }

double Mean(const std::vector<double>& values) {
  RunningStats stats;
  for (double v : values) stats.Add(v);
  return stats.Mean();
}

double PopulationStdDev(const std::vector<double>& values) {
  RunningStats stats;
  for (double v : values) stats.Add(v);
  return stats.PopulationStdDev();
}

double AgreementFraction(const std::vector<int>& a, const std::vector<int>& b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

}  // namespace treewm
