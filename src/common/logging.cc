#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/mutex.h"

namespace treewm {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
// Serializes stderr writes only (no guarded state): one log call = one
// un-interleaved line.
Mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  MutexLock lock(&g_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

bool ShouldLogEveryN(LogEveryNState* state, uint64_t n, uint64_t* suppressed) {
  if (n < 1) n = 1;
  const uint64_t count = state->count.fetch_add(1, std::memory_order_relaxed);
  if (count % n != 0) return false;
  // count is the pre-increment value: 0 on the first-ever call (nothing
  // suppressed yet), a multiple of n afterwards (n - 1 calls swallowed).
  *suppressed = count == 0 ? 0 : n - 1;
  return true;
}

void LogDebug(const std::string& message) { Log(LogLevel::kDebug, message); }
void LogInfo(const std::string& message) { Log(LogLevel::kInfo, message); }
void LogWarning(const std::string& message) { Log(LogLevel::kWarning, message); }
void LogError(const std::string& message) { Log(LogLevel::kError, message); }

}  // namespace treewm
