#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace treewm {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

void LogDebug(const std::string& message) { Log(LogLevel::kDebug, message); }
void LogInfo(const std::string& message) { Log(LogLevel::kInfo, message); }
void LogWarning(const std::string& message) { Log(LogLevel::kWarning, message); }
void LogError(const std::string& message) { Log(LogLevel::kError, message); }

}  // namespace treewm
