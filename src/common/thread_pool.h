// Fixed-size thread pool with a deterministic ParallelFor helper.
//
// Forest training parallelizes across trees. Determinism is preserved by
// assigning each work item its own pre-forked RNG, so the schedule cannot
// change results.
//
// Shutdown contract (the serving layer leans on this): Shutdown() stops
// admission and DRAINS — every task accepted before it runs to completion,
// tasks submitted after it are rejected with FailedPrecondition, and no
// accepted task is ever silently dropped. The destructor performs the same
// drain.

#ifndef TREEWM_COMMON_THREAD_POOL_H_
#define TREEWM_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"

namespace treewm {

/// A fixed set of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1; 0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins the workers (same as Shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Fails with FailedPrecondition once Shutdown() has
  /// begun; an OK return guarantees the task will run. Discarding the
  /// Status drops the only signal that the task will never run — callers
  /// must handle rejection (e.g. run inline) or justify the discard.
  [[nodiscard]] Status Submit(std::function<void()> task) TREEWM_EXCLUDES(mutex_);

  /// Blocks until every task submitted so far has finished.
  void Wait() TREEWM_EXCLUDES(mutex_);

  /// Stops accepting tasks, runs everything already queued, and joins the
  /// workers. Idempotent and safe to call concurrently with Submit (the
  /// race resolves to either accepted-and-run or rejected-with-Status).
  void Shutdown() TREEWM_EXCLUDES(mutex_);

  /// True once Shutdown() has begun (admission is closed).
  bool IsShutdown() const TREEWM_EXCLUDES(mutex_);

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Returns a process-wide pool sized to the hardware concurrency.
  static ThreadPool& Global();

  /// True when the calling thread is one of THIS pool's workers. ParallelFor
  /// uses it to run inline instead of deadlocking: a worker that blocked
  /// waiting on sub-tasks would occupy the very slot needed to run them.
  bool OnWorkerThread() const;

 private:
  void WorkerLoop() TREEWM_EXCLUDES(mutex_);

  // Written only by the constructor, joined under the joined_ protocol;
  // otherwise immutable, so num_threads()/OnWorkerThread() read it freely.
  std::vector<std::thread> workers_;

  mutable Mutex mutex_;
  CondVar task_ready_;
  CondVar all_done_;
  std::queue<std::function<void()>> tasks_ TREEWM_GUARDED_BY(mutex_);
  size_t in_flight_ TREEWM_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ TREEWM_GUARDED_BY(mutex_) = false;
  /// Workers joined exactly once: the Shutdown call that flips this owns
  /// the join.
  bool joined_ TREEWM_GUARDED_BY(mutex_) = false;
};

/// Runs body(i) for i in [0, count) across `pool`, blocking until all
/// iterations complete. body must be safe to invoke concurrently for distinct
/// indices. If `pool` is nullptr, shut down, or count <= 1, runs inline.
void ParallelFor(ThreadPool* pool, size_t count, const std::function<void(size_t)>& body);

}  // namespace treewm

#endif  // TREEWM_COMMON_THREAD_POOL_H_
