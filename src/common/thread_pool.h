// Fixed-size thread pool with a deterministic ParallelFor helper.
//
// Forest training parallelizes across trees. Determinism is preserved by
// assigning each work item its own pre-forked RNG, so the schedule cannot
// change results.
//
// Shutdown contract (the serving layer leans on this): Shutdown() stops
// admission and DRAINS — every task accepted before it runs to completion,
// tasks submitted after it are rejected with FailedPrecondition, and no
// accepted task is ever silently dropped. The destructor performs the same
// drain.

#ifndef TREEWM_COMMON_THREAD_POOL_H_
#define TREEWM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/status.h"

namespace treewm {

/// A fixed set of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1; 0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins the workers (same as Shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Fails with FailedPrecondition once Shutdown() has
  /// begun; an OK return guarantees the task will run.
  Status Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Stops accepting tasks, runs everything already queued, and joins the
  /// workers. Idempotent and safe to call concurrently with Submit (the
  /// race resolves to either accepted-and-run or rejected-with-Status).
  void Shutdown();

  /// True once Shutdown() has begun (admission is closed).
  bool IsShutdown() const;

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Returns a process-wide pool sized to the hardware concurrency.
  static ThreadPool& Global();

  /// True when the calling thread is one of THIS pool's workers. ParallelFor
  /// uses it to run inline instead of deadlocking: a worker that blocked
  /// waiting on sub-tasks would occupy the very slot needed to run them.
  bool OnWorkerThread() const;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  bool joined_ = false;  // guarded by mutex_; workers joined exactly once
};

/// Runs body(i) for i in [0, count) across `pool`, blocking until all
/// iterations complete. body must be safe to invoke concurrently for distinct
/// indices. If `pool` is nullptr, shut down, or count <= 1, runs inline.
void ParallelFor(ThreadPool* pool, size_t count, const std::function<void(size_t)>& body);

}  // namespace treewm

#endif  // TREEWM_COMMON_THREAD_POOL_H_
