#include "common/fault_injection.h"

#include <atomic>
#include <map>
#include <thread>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/rng.h"

namespace treewm {

namespace {

struct SiteState {
  FaultSpec spec;
  Rng rng;
  uint64_t hits = 0;
  uint64_t fires = 0;

  explicit SiteState(const FaultSpec& s) : spec(s), rng(s.seed) {}
};

// Armed-site registry. The hot path never touches it: g_armed_sites gates
// everything, and it is only nonzero between Arm and Disarm/Reset in tests.
std::atomic<size_t> g_armed_sites{0};
Mutex g_mutex;
// std::map keeps iteration deterministic for Reset; transparent compare
// lets Fire look up by string_view without allocating. Leaked on purpose
// (no destruction-order race with worker threads at exit); all access —
// including the lazy construction — happens under g_mutex.
using SiteMap = std::map<std::string, SiteState, std::less<>>;
SiteMap* g_registry TREEWM_GUARDED_BY(g_mutex) = nullptr;

SiteMap& Registry() TREEWM_REQUIRES(g_mutex) {
  if (g_registry == nullptr) g_registry = new SiteMap();
  return *g_registry;
}

}  // namespace

bool FaultInjection::Enabled() {
  return g_armed_sites.load(std::memory_order_relaxed) != 0;
}

bool FaultInjection::Fire(std::string_view site) {
  std::chrono::nanoseconds stall{0};
  bool fired = false;
  {
    MutexLock lock(&g_mutex);
    auto it = Registry().find(site);
    if (it == Registry().end()) return false;
    SiteState& state = it->second;
    const uint64_t hit = ++state.hits;
    if (hit <= state.spec.skip_first) return false;
    if (state.fires >= state.spec.max_fires) return false;
    if (state.spec.probability < 1.0 && !state.rng.Bernoulli(state.spec.probability)) {
      return false;
    }
    ++state.fires;
    stall = state.spec.stall;
    fired = true;
  }
  // Stall outside the lock: a stalling site must not serialize every other
  // site's hits behind it.
  if (stall.count() > 0) std::this_thread::sleep_for(stall);
  return fired;
}

void FaultInjection::Arm(const std::string& site, const FaultSpec& spec) {
  MutexLock lock(&g_mutex);
  auto [it, inserted] = Registry().insert_or_assign(site, SiteState(spec));
  (void)it;  // discard ok: structured binding must name both members
  if (inserted) g_armed_sites.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjection::Disarm(const std::string& site) {
  MutexLock lock(&g_mutex);
  if (Registry().erase(site) > 0) {
    g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjection::Reset() {
  MutexLock lock(&g_mutex);
  g_armed_sites.fetch_sub(Registry().size(), std::memory_order_relaxed);
  Registry().clear();
}

uint64_t FaultInjection::HitCount(const std::string& site) {
  MutexLock lock(&g_mutex);
  auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second.hits;
}

uint64_t FaultInjection::FireCount(const std::string& site) {
  MutexLock lock(&g_mutex);
  auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second.fires;
}

}  // namespace treewm
