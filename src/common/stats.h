// Streaming and batch descriptive statistics.
//
// The watermark detection attack (paper §4.2.1) and the Adjust(H) heuristic
// (paper §3.2) both reduce to "mean and standard deviation of a per-tree
// statistic"; RunningStats is the shared primitive.

#ifndef TREEWM_COMMON_STATS_H_
#define TREEWM_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace treewm {

/// Welford streaming mean/variance accumulator.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations so far.
  size_t count() const { return count_; }

  /// Sample mean (0 when empty).
  double Mean() const { return mean_; }

  /// Population variance (divides by n; 0 when fewer than 1 observation).
  double PopulationVariance() const;

  /// Sample variance (divides by n-1; 0 when fewer than 2 observations).
  double SampleVariance() const;

  /// sqrt(PopulationVariance()). The paper's detection attack uses the
  /// population convention (numpy default), so this is the primary stddev.
  double PopulationStdDev() const;

  /// sqrt(SampleVariance()).
  double SampleStdDev() const;

  /// Smallest observation (+inf when empty).
  double Min() const { return min_; }

  /// Largest observation (-inf when empty).
  double Max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;
};

/// Mean of `values` (0 when empty).
double Mean(const std::vector<double>& values);

/// Population standard deviation of `values` (0 when empty).
double PopulationStdDev(const std::vector<double>& values);

/// Fraction of positions where `a[i] == b[i]`. Requires equal sizes; returns
/// 0 for empty inputs.
double AgreementFraction(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace treewm

#endif  // TREEWM_COMMON_STATS_H_
