// Minimal leveled logging to stderr.
//
// Benchmarks and examples use INFO; library internals log at DEBUG so they
// stay silent by default. Not thread-buffered: each call writes one line.

#ifndef TREEWM_COMMON_LOGGING_H_
#define TREEWM_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace treewm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level actually emitted (default: kWarning).
void SetLogLevel(LogLevel level);

/// Returns the current global log level.
LogLevel GetLogLevel();

/// Emits one log line "[LEVEL] message" if `level` >= the global level.
void Log(LogLevel level, const std::string& message);

/// Convenience wrappers.
void LogDebug(const std::string& message);
void LogInfo(const std::string& message);
void LogWarning(const std::string& message);
void LogError(const std::string& message);

/// Per-call-site counter behind TREEWM_LOG_EVERY_N. One instance per site
/// (the macro makes a function-local static); safe to hit from any thread.
struct LogEveryNState {
  std::atomic<uint64_t> count{0};
};

/// Returns true on the 1st, (n+1)th, (2n+1)th... call against `state`
/// (n < 1 is clamped to 1 — every call logs). When it returns true,
/// *suppressed is set to the number of calls swallowed since the last
/// emission, so the log line can account for what was dropped.
bool ShouldLogEveryN(LogEveryNState* state, uint64_t n, uint64_t* suppressed);

}  // namespace treewm

/// Rate-limited logging for events that arrive at traffic rate (shed
/// requests, expired deadlines): emits `message` on every Nth call at this
/// call site, annotated with the count suppressed in between, so overload
/// reporting cannot itself become the bottleneck. `message` is only
/// evaluated when the line is actually emitted.
#define TREEWM_LOG_EVERY_N(level, n, message)                                  \
  do {                                                                         \
    static ::treewm::LogEveryNState _treewm_log_every_n_state;                 \
    uint64_t _treewm_suppressed = 0;                                           \
    if (::treewm::ShouldLogEveryN(&_treewm_log_every_n_state, (n),             \
                                  &_treewm_suppressed)) {                      \
      std::string _treewm_line = (message);                                    \
      if (_treewm_suppressed > 0) {                                            \
        _treewm_line += " [+" + std::to_string(_treewm_suppressed) +           \
                        " similar suppressed]";                                \
      }                                                                        \
      ::treewm::Log((level), _treewm_line);                                    \
    }                                                                          \
  } while (false)

#endif  // TREEWM_COMMON_LOGGING_H_
