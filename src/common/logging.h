// Minimal leveled logging to stderr.
//
// Benchmarks and examples use INFO; library internals log at DEBUG so they
// stay silent by default. Not thread-buffered: each call writes one line.

#ifndef TREEWM_COMMON_LOGGING_H_
#define TREEWM_COMMON_LOGGING_H_

#include <string>

namespace treewm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level actually emitted (default: kWarning).
void SetLogLevel(LogLevel level);

/// Returns the current global log level.
LogLevel GetLogLevel();

/// Emits one log line "[LEVEL] message" if `level` >= the global level.
void Log(LogLevel level, const std::string& message);

/// Convenience wrappers.
void LogDebug(const std::string& message);
void LogInfo(const std::string& message);
void LogWarning(const std::string& message);
void LogError(const std::string& message);

}  // namespace treewm

#endif  // TREEWM_COMMON_LOGGING_H_
