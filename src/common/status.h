// Status / Result error-handling primitives in the Arrow/RocksDB idiom.
//
// Library code returns Status (or Result<T>) instead of throwing across the
// public API boundary. A Status is cheap to copy in the OK case (no
// allocation) and carries a code plus a human-readable message otherwise.

#ifndef TREEWM_COMMON_STATUS_H_
#define TREEWM_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace treewm {

/// Machine-readable category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kNotImplemented = 7,
  kInternal = 8,
  kIoError = 9,
  kParseError = 10,
  kTimeout = 11,
  kDeadlineExceeded = 12,
};

/// Returns a stable lower-case name for `code` (e.g. "invalid_argument").
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation: OK, or a code plus message.
///
/// [[nodiscard]] on the class makes EVERY function returning Status by
/// value warn when the result is dropped (-Werror=unused-result in all CI
/// builds): a dropped refusal on the serve path must not compile silently.
/// An intentional discard is written `(void)expr;` with a
/// `// discard ok: <reason>` comment — tools/lint_invariants.py rejects
/// the cast without the justification.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk; use the default constructor for success.
  Status(StatusCode code, std::string message);

  /// Factory helpers mirroring the StatusCode enumerators.
  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg);
  [[nodiscard]] static Status NotFound(std::string msg);
  [[nodiscard]] static Status AlreadyExists(std::string msg);
  [[nodiscard]] static Status OutOfRange(std::string msg);
  [[nodiscard]] static Status FailedPrecondition(std::string msg);
  [[nodiscard]] static Status ResourceExhausted(std::string msg);
  [[nodiscard]] static Status NotImplemented(std::string msg);
  [[nodiscard]] static Status Internal(std::string msg);
  [[nodiscard]] static Status IoError(std::string msg);
  [[nodiscard]] static Status ParseError(std::string msg);
  [[nodiscard]] static Status Timeout(std::string msg);
  [[nodiscard]] static Status DeadlineExceeded(std::string msg);

  /// True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  /// The status code (kOk when ok()).
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }

  /// The error message ("" when ok()).
  const std::string& message() const;

  /// "OK" or "<code_name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Null for OK: copying a success status never allocates.
  std::shared_ptr<const State> state_;
};

/// A value or an error Status. Analogous to arrow::Result. [[nodiscard]]
/// for the same reason as Status: dropping a Result drops its error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a Result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs a Result holding a non-OK `status`. Storing an OK status is a
  /// programming error and is normalized to an Internal error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK when a value is held.
  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The held value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Moves the value out of the Result; must only be called when ok().
  T MoveValue() {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace treewm

/// Propagates a non-OK Status to the caller.
#define TREEWM_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::treewm::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                        \
  } while (false)

#define TREEWM_CONCAT_IMPL(a, b) a##b
#define TREEWM_CONCAT(a, b) TREEWM_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>), propagating errors, else binds the value.
#define TREEWM_ASSIGN_OR_RETURN(lhs, rexpr)                           \
  TREEWM_ASSIGN_OR_RETURN_IMPL(TREEWM_CONCAT(_res_, __LINE__), lhs, rexpr)

#define TREEWM_ASSIGN_OR_RETURN_IMPL(res, lhs, rexpr) \
  auto res = (rexpr);                                 \
  if (!res.ok()) return res.status();                 \
  lhs = std::move(res).MoveValue()

#endif  // TREEWM_COMMON_STATUS_H_
