#include "common/crc32.h"

#include <array>

namespace treewm {
namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t state, std::span<const uint8_t> data) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  for (uint8_t b : data) {
    state = kTable[(state ^ b) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

uint32_t Crc32(std::span<const uint8_t> data) {
  return Crc32Finish(Crc32Update(Crc32Init(), data));
}

}  // namespace treewm
