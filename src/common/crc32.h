// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) shared by every
// layer that checksums untrusted bytes: the wire framing (serve/wire/frame),
// the binary ensemble snapshot format (io/ensemble_snapshot), and the model
// registry's image checksums. One implementation means one set of test
// vectors and no chance of two layers disagreeing about what "the" CRC of a
// byte range is.

#ifndef TREEWM_COMMON_CRC32_H_
#define TREEWM_COMMON_CRC32_H_

#include <cstdint>
#include <span>

namespace treewm {

/// CRC-32 of `data` (init 0xFFFFFFFF, final xor 0xFFFFFFFF — the standard
/// "CRC-32" everyone's `crc32` tool computes).
uint32_t Crc32(std::span<const uint8_t> data);

/// Incremental form: feed `Crc32Init()` through any number of
/// `Crc32Update()` calls, then `Crc32Finish()`. `Crc32(d)` ==
/// `Crc32Finish(Crc32Update(Crc32Init(), d))`.
inline constexpr uint32_t Crc32Init() { return 0xFFFFFFFFu; }
uint32_t Crc32Update(uint32_t state, std::span<const uint8_t> data);
inline constexpr uint32_t Crc32Finish(uint32_t state) { return state ^ 0xFFFFFFFFu; }

}  // namespace treewm

#endif  // TREEWM_COMMON_CRC32_H_
