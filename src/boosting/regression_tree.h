// Regression trees (variance-reduction CART) — the member learner for
// gradient boosting.
//
// The paper's future work names gradient-boosted ensembles as the next
// target for the watermarking scheme (§5). Boosting fits trees to residuals,
// which requires a regression learner: axis-aligned splits minimizing the
// sum of squared errors, real-valued leaves. Leaf values are exposed for
// override so the booster can install Newton-step values (the standard
// logit-boost refinement).

#ifndef TREEWM_BOOSTING_REGRESSION_TREE_H_
#define TREEWM_BOOSTING_REGRESSION_TREE_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "tree/binned_columns.h"
#include "tree/sorted_columns.h"

namespace treewm::boosting {

/// One node of a flattened regression tree. Leaves have feature == -1.
struct RegressionNode {
  int feature = -1;
  float threshold = 0.0f;
  int left = -1;
  int right = -1;
  double value = 0.0;  ///< leaf prediction
};

/// Induction hyper-parameters.
struct RegressionTreeConfig {
  /// Maximum depth; boosting conventionally uses shallow trees (default 3).
  int max_depth = 3;
  /// Minimum instances per child.
  size_t min_samples_leaf = 1;
  /// Minimum SSE decrease to accept a split.
  double min_gain = 1e-12;

  /// Which split engine Fit runs: kExact (default, bit-identical to
  /// FitReference) or the approximate kHistogram binned-gradient engine
  /// (accuracy parity, not bit-identity).
  tree::TrainerMode trainer_mode = tree::TrainerMode::kExact;
  /// Histogram mode only: bins per feature for an internally built binning
  /// (ignored when prebuilt BinnedColumns are passed).
  size_t max_bins = 255;
  /// Histogram mode only: intra-tree parallelism of the per-feature
  /// histogram fan-out. 0 = global pool, 1 = serial (default), N > 1 =
  /// private pool. Chosen splits are thread-count invariant.
  size_t num_threads = 1;

  [[nodiscard]] Status Validate() const;
};

/// An immutable trained regression tree.
class RegressionTree {
 public:
  /// Fits to `targets` (one per dataset row) using the dataset's features;
  /// dataset labels are ignored.
  ///
  /// Runs on the sort-once column-index engine (tree/sorted_columns.h +
  /// tree/trainer_core.h). Pass a prebuilt `sorted` for the same dataset to
  /// amortize the one-time column sort — for GBDT the row set is fixed
  /// across ALL boosting rounds, so one sort serves every stage. nullptr
  /// builds it internally. Bit-identical to FitReference.
  ///
  /// With config.trainer_mode == kHistogram the approximate binned-gradient
  /// engine runs instead: pass prebuilt `binned` (one binning serves every
  /// boosting round) or nullptr to bin internally, and leave `sorted` null
  /// — mixing the substrates is an InvalidArgument, as is passing `binned`
  /// in exact mode.
  [[nodiscard]] static Result<RegressionTree> Fit(const data::Dataset& dataset,
                                    const std::vector<double>& targets,
                                    const RegressionTreeConfig& config,
                                    const tree::SortedColumns* sorted = nullptr,
                                    const tree::BinnedColumns* binned = nullptr);

  /// The retained naive trainer (per-node re-sorting SSE sweep) — the
  /// executable specification Fit is property-tested against.
  [[nodiscard]] static Result<RegressionTree> FitReference(const data::Dataset& dataset,
                                             const std::vector<double>& targets,
                                             const RegressionTreeConfig& config);

  /// Predicted value for one instance.
  double Predict(std::span<const float> row) const;

  /// Index (into nodes()) of the leaf `row` reaches.
  int LeafIndexFor(std::span<const float> row) const;

  /// Overwrites a leaf's value (used for Newton steps). `node` must be a
  /// leaf index.
  [[nodiscard]] Status SetLeafValue(int node, double value);

  int Depth() const;
  size_t NumLeaves() const;
  const std::vector<RegressionNode>& nodes() const { return nodes_; }
  size_t num_features() const { return num_features_; }

 private:
  RegressionTree() = default;
  std::vector<RegressionNode> nodes_;
  size_t num_features_ = 0;
};

}  // namespace treewm::boosting

#endif  // TREEWM_BOOSTING_REGRESSION_TREE_H_
