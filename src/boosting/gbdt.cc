#include "boosting/gbdt.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/string_util.h"
#include "predict/batch_predictor.h"
#include "predict/flat_cache.h"
#include "tree/histogram_core.h"

namespace treewm::boosting {

Status GbdtConfig::Validate() const {
  if (num_trees == 0) return Status::InvalidArgument("num_trees must be >= 1");
  if (learning_rate <= 0.0 || learning_rate > 1.0) {
    return Status::InvalidArgument("learning_rate must be in (0,1]");
  }
  if (use_reference_trainer &&
      tree.trainer_mode != tree::TrainerMode::kExact) {
    return Status::InvalidArgument(
        "the reference trainer is the exact-mode spec; it has no histogram mode");
  }
  return tree.Validate();
}

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

Result<Gbdt> Gbdt::Fit(const data::Dataset& dataset, const GbdtConfig& config) {
  TREEWM_RETURN_IF_ERROR(config.Validate());
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit on an empty dataset");
  }

  const size_t n = dataset.num_rows();
  Gbdt model;
  model.num_features_ = dataset.num_features();
  model.learning_rate_ = config.learning_rate;

  // F0 = log-odds of the positive class (clamped for degenerate datasets).
  const double pos = std::clamp(dataset.PositiveFraction(), 1e-6, 1.0 - 1e-6);
  model.initial_score_ = std::log(pos / (1.0 - pos));

  std::vector<double> scores(n, model.initial_score_);
  std::vector<double> residuals(n);
  model.trees_.reserve(config.num_trees);

  // The row set never changes across boosting rounds, so the per-feature
  // preprocessing is paid ONCE here and amortized over every tree of every
  // stage: the column sort for the exact engine, the binning pass for the
  // histogram engine (the big sort-once / bin-once multiplier for GBDT).
  std::shared_ptr<const tree::SortedColumns> sorted;
  std::shared_ptr<const tree::BinnedColumns> binned;
  const bool histogram =
      config.tree.trainer_mode == tree::TrainerMode::kHistogram;
  if (!config.use_reference_trainer) {
    if (histogram) {
      std::unique_ptr<ThreadPool> local_pool;
      ThreadPool* pool =
          tree::ResolveTrainerPool(config.tree.num_threads, &local_pool);
      TREEWM_ASSIGN_OR_RETURN(
          binned, tree::BinnedColumns::Build(
                      dataset, tree::BinnedOptions{config.tree.max_bins}, pool));
    } else {
      sorted = tree::SortedColumns::Build(dataset);
    }
  }

  for (size_t round = 0; round < config.num_trees; ++round) {
    // Negative gradient of logistic loss: y01 - sigmoid(F).
    for (size_t i = 0; i < n; ++i) {
      const double y01 = dataset.Label(i) > 0 ? 1.0 : 0.0;
      residuals[i] = y01 - Sigmoid(scores[i]);
    }
    TREEWM_ASSIGN_OR_RETURN(
        RegressionTree tree,
        config.use_reference_trainer
            ? RegressionTree::FitReference(dataset, residuals, config.tree)
            : RegressionTree::Fit(dataset, residuals, config.tree, sorted.get(),
                                  binned.get()));

    // Newton step per leaf: gamma = sum(residual) / sum(p(1-p)).
    std::vector<double> numerator(tree.nodes().size(), 0.0);
    std::vector<double> denominator(tree.nodes().size(), 0.0);
    std::vector<int> leaf_of(n);
    for (size_t i = 0; i < n; ++i) {
      const int leaf = tree.LeafIndexFor(dataset.Row(i));
      leaf_of[i] = leaf;
      const double p = Sigmoid(scores[i]);
      numerator[static_cast<size_t>(leaf)] += residuals[i];
      denominator[static_cast<size_t>(leaf)] += p * (1.0 - p);
    }
    for (size_t node = 0; node < tree.nodes().size(); ++node) {
      if (tree.nodes()[node].feature != -1) continue;
      const double gamma =
          denominator[node] > 1e-12 ? numerator[node] / denominator[node] : 0.0;
      TREEWM_RETURN_IF_ERROR(
          tree.SetLeafValue(static_cast<int>(node), gamma));
    }
    for (size_t i = 0; i < n; ++i) {
      scores[i] += config.learning_rate *
                   tree.nodes()[static_cast<size_t>(leaf_of[i])].value;
    }
    model.trees_.push_back(std::move(tree));
  }
  return model;
}

double Gbdt::Score(std::span<const float> row) const {
  double score = initial_score_;
  for (const RegressionTree& tree : trees_) {
    score += learning_rate_ * tree.Predict(row);
  }
  return score;
}

int Gbdt::Predict(std::span<const float> row) const {
  return Score(row) >= 0.0 ? data::kPositive : data::kNegative;
}

// Batch paths route through the flat engine; the per-row Score/Predict above
// remain the scalar reference. Flat accumulation visits trees in the same
// ascending order with the same operation sequence, so accuracies (and the
// underlying scores) are bit-exact with the scalar loop.

std::shared_ptr<const predict::FlatEnsemble> Gbdt::Flat() const {
  return predict::LazyFlat(&flat_cache_, [this] {
    return predict::FlatEnsemble::FromRegressionTrees(trees_, initial_score_,
                                                      learning_rate_);
  });
}

double Gbdt::Accuracy(const data::Dataset& dataset) const {
  return predict::BatchPredictor(Flat()).ScoreAccuracy(dataset);
}

double Gbdt::StagedAccuracy(const data::Dataset& dataset, size_t k) const {
  return predict::BatchPredictor(Flat()).ScoreAccuracy(dataset, k);
}

std::vector<double> Gbdt::StagedAccuracyCurve(const data::Dataset& dataset) const {
  return predict::BatchPredictor(Flat()).StagedAccuracyCurve(dataset);
}

std::string GbdtWatermarkabilityNote() {
  return
      "Algorithm 1 encodes the signature in per-tree *class votes* on the "
      "trigger set: tree i classifies correctly iff sigma_i = 0, which is "
      "well-defined because every random-forest member is itself a "
      "classifier and members are exchangeable. Gradient-boosted trees "
      "break both properties: (1) members emit real-valued score "
      "increments, so 'tree i misclassifies x' has no canonical meaning; "
      "(2) members are sequentially coupled — each tree fits the residual "
      "left by its predecessors — so forcing abnormal behaviour into tree i "
      "changes the training targets of every later tree, and trees cannot "
      "be interleaved from independently trained pools as Algorithm 1 "
      "requires. A boosting-native scheme must therefore pick a different "
      "signature channel (e.g. signs of per-tree increments on the trigger "
      "set, or thresholded partial sums), which changes the verification "
      "statistics and the forgery theory; that design space is exactly what "
      "the paper defers to future work.";
}

}  // namespace treewm::boosting
