// Gradient-boosted decision trees for binary classification.
//
// The baseline/future-work ensemble family from the paper's conclusion (§5).
// Standard logit boosting: additive model F(x) = F0 + lr * Σ t_k(x), trees
// fit to the logistic-loss gradient with Newton-step leaf values. Serves two
// purposes here: (1) quantifying the accuracy headroom a watermarkable
// random forest gives up (bench/ext_gbdt_baseline), and (2) demonstrating
// why the paper's per-tree-vote watermark does not transfer unchanged —
// boosted trees emit real-valued increments, not class votes, so the
// signature channel of §3.2 does not exist (see GbdtWatermarkabilityNote()).

#ifndef TREEWM_BOOSTING_GBDT_H_
#define TREEWM_BOOSTING_GBDT_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "boosting/regression_tree.h"
#include "common/status.h"
#include "data/dataset.h"
#include "predict/flat_cache.h"

namespace treewm::boosting {

/// Boosting hyper-parameters.
struct GbdtConfig {
  /// Number of boosting rounds (trees).
  size_t num_trees = 100;
  /// Shrinkage applied to every tree's contribution.
  double learning_rate = 0.1;
  /// Member-tree induction parameters (shallow by default).
  RegressionTreeConfig tree;
  /// Fit member trees with the retained naive trainer
  /// (RegressionTree::FitReference) instead of the sort-once engine. Slow;
  /// exists so the bit-identical equivalence contract is testable end to
  /// end through the boosting loop (and as the bench baseline).
  bool use_reference_trainer = false;

  [[nodiscard]] Status Validate() const;
};

/// An immutable trained GBDT binary classifier.
class Gbdt {
 public:
  /// Trains on labels ±1 with logistic loss.
  [[nodiscard]] static Result<Gbdt> Fit(const data::Dataset& dataset, const GbdtConfig& config);

  /// Raw additive score F(x) (log-odds scale).
  double Score(std::span<const float> row) const;

  /// Class prediction: sign of the score (0 -> +1 for determinism).
  int Predict(std::span<const float> row) const;

  /// Accuracy on `dataset`.
  double Accuracy(const data::Dataset& dataset) const;

  /// Accuracy using only the first `k` trees — the staged-performance curve.
  double StagedAccuracy(const data::Dataset& dataset, size_t k) const;

  /// result[k] = StagedAccuracy(dataset, k) for every k in [0, num_trees],
  /// computed in ONE batch traversal via per-tree partial sums instead of k
  /// full re-scans per stage.
  std::vector<double> StagedAccuracyCurve(const data::Dataset& dataset) const;

  size_t num_trees() const { return trees_.size(); }
  const std::vector<RegressionTree>& trees() const { return trees_; }
  double initial_score() const { return initial_score_; }
  double learning_rate() const { return learning_rate_; }

 private:
  Gbdt() = default;

  /// Packed inference image, built lazily on the first batch call and shared
  /// across calls (and copies) — the model is immutable after Fit, so the
  /// cache can never go stale. The image in turn caches its quantized
  /// sibling, so per-call kernel dispatch (see batch_predictor.h) never
  /// rebuilds either.
  std::shared_ptr<const predict::FlatEnsemble> Flat() const;

  std::vector<RegressionTree> trees_;
  double initial_score_ = 0.0;
  double learning_rate_ = 0.1;
  size_t num_features_ = 0;
  mutable predict::FlatCacheSlot flat_cache_;
};

/// Why Algorithm 1 does not port verbatim to boosting — the analysis the
/// paper defers to future work, stated precisely for documentation and
/// examples.
std::string GbdtWatermarkabilityNote();

}  // namespace treewm::boosting

#endif  // TREEWM_BOOSTING_GBDT_H_
