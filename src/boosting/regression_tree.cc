#include "boosting/regression_tree.h"

#include <algorithm>
#include <cassert>

#include <memory>
#include <utility>

#include "common/string_util.h"
#include "tree/histogram_core.h"
#include "tree/trainer_core.h"

namespace treewm::boosting {

Status RegressionTreeConfig::Validate() const {
  if (max_depth < 1) return Status::InvalidArgument("max_depth must be >= 1");
  if (min_samples_leaf < 1) {
    return Status::InvalidArgument("min_samples_leaf must be >= 1");
  }
  if (min_gain < 0.0) return Status::InvalidArgument("min_gain must be >= 0");
  if (max_bins < 2 || max_bins > 65535) {
    return Status::InvalidArgument("max_bins must be in [2, 65535]");
  }
  return Status::OK();
}

namespace {

struct Entry {
  float value;
  double target;
};

/// Best SSE-reducing split of `indices` over all features, or feature -1.
/// This is the RETAINED NAIVE REFERENCE sweep (per-node re-sort); production
/// training runs on the presorted engine below. Kept as the executable
/// specification the property tests compare against.
struct BestSplit {
  int feature = -1;
  float threshold = 0.0f;
  double gain = 0.0;
};

BestSplit FindBestSplitNaive(const data::Dataset& dataset,
                             const std::vector<double>& targets,
                             const std::vector<size_t>& indices,
                             size_t min_samples_leaf, double min_gain) {
  BestSplit best;
  const size_t n = indices.size();
  if (n < 2 * min_samples_leaf) return best;

  double total_sum = 0.0;
  for (size_t idx : indices) total_sum += targets[idx];

  std::vector<Entry> entries(n);
  for (size_t f = 0; f < dataset.num_features(); ++f) {
    for (size_t i = 0; i < n; ++i) {
      entries[i] = {dataset.At(indices[i], f), targets[indices[i]]};
    }
    // Stable: value ties keep `indices` (ascending-row) order — the
    // accumulation-order contract the presorted engine reproduces.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) { return a.value < b.value; });
    if (entries.front().value == entries.back().value) continue;

    // SSE(parent) - SSE(children) = sum_l^2/n_l + sum_r^2/n_r - sum^2/n.
    const double parent_term =
        total_sum * total_sum / static_cast<double>(n);
    double left_sum = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_sum += entries[i].target;
      if (entries[i].value == entries[i + 1].value) continue;
      const size_t left_count = i + 1;
      const size_t right_count = n - left_count;
      if (left_count < min_samples_leaf || right_count < min_samples_leaf) continue;
      const double right_sum = total_sum - left_sum;
      const double gain = left_sum * left_sum / static_cast<double>(left_count) +
                          right_sum * right_sum / static_cast<double>(right_count) -
                          parent_term;
      if (gain > min_gain && gain > best.gain) {
        float threshold =
            entries[i].value + (entries[i + 1].value - entries[i].value) * 0.5f;
        if (threshold >= entries[i + 1].value) threshold = entries[i].value;
        best.feature = static_cast<int>(f);
        best.threshold = threshold;
        best.gain = gain;
      }
    }
  }
  return best;
}

}  // namespace

namespace {

Status ValidateRegressionInputs(const data::Dataset& dataset,
                                const std::vector<double>& targets,
                                const RegressionTreeConfig& config) {
  TREEWM_RETURN_IF_ERROR(config.Validate());
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit on an empty dataset");
  }
  if (targets.size() != dataset.num_rows()) {
    return Status::InvalidArgument(
        StrFormat("targets size %zu != rows %zu", targets.size(),
                  dataset.num_rows()));
  }
  return Status::OK();
}

/// Histogram-mode grower: same DFS shape and expansion gates as the exact
/// engine (so node numbering matches when every gain agrees), but per split
/// only the smaller child is accumulated from rows; the sibling's histogram
/// and target sum come from parent-minus-child subtraction.
Status GrowHistogramRegressionNodes(const data::Dataset& dataset,
                                    const std::vector<double>& targets,
                                    const RegressionTreeConfig& config,
                                    const tree::BinnedColumns* binned,
                                    ThreadPool* pool,
                                    std::vector<RegressionNode>* nodes) {
  std::vector<int> features(dataset.num_features());
  for (size_t j = 0; j < dataset.num_features(); ++j) {
    features[j] = static_cast<int>(j);
  }
  tree::HistogramCore core(*binned, features, pool);
  const double* target_of = targets.data();
  const size_t n = dataset.num_rows();

  using Buffer = std::vector<tree::SseHistBin>;
  std::vector<std::unique_ptr<Buffer>> free_buffers;
  auto take_buffer = [&]() -> std::unique_ptr<Buffer> {
    if (!free_buffers.empty()) {
      std::unique_ptr<Buffer> buffer = std::move(free_buffers.back());
      free_buffers.pop_back();
      return buffer;
    }
    return std::make_unique<Buffer>();
  };
  auto recycle = [&](std::unique_ptr<Buffer> buffer) {
    if (buffer != nullptr) free_buffers.push_back(std::move(buffer));
  };

  const tree::HistogramCore::SseSweepConfig sweep{config.min_samples_leaf,
                                                  config.min_gain};

  /// split.feature == -1 marks a settled leaf; its hist is null.
  struct Frame {
    int node;
    int depth;
    size_t begin;
    size_t end;
    double sum;  // node target sum, carried down by subtraction
    std::unique_ptr<Buffer> hist;
    tree::HistSseSplit split;
  };

  nodes->push_back(RegressionNode{});
  double root_sum = 0.0;
  for (size_t i = 0; i < n; ++i) root_sum += target_of[i];

  Frame root{0, 0, 0, n, root_sum, nullptr, {}};
  if (0 < config.max_depth && n >= 2 * config.min_samples_leaf) {
    root.hist = take_buffer();
    core.SseOp(sweep, target_of, root.hist.get(), /*parent=*/nullptr, 0, n,
               {root_sum, n}, {}, /*sweep_fresh=*/true,
               /*sweep_remainder=*/false, &root.split, nullptr);
    if (root.split.feature == -1) recycle(std::move(root.hist));
  }

  std::vector<Frame> stack;
  stack.push_back(std::move(root));

  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const size_t count = frame.end - frame.begin;

    if (frame.split.feature == -1) {
      (*nodes)[static_cast<size_t>(frame.node)].value =
          frame.sum / static_cast<double>(count);
      continue;
    }

    const size_t mid = core.ApplySplit(frame.begin, frame.end,
                                       frame.split.feature,
                                       frame.split.split_bin);
    assert(mid == frame.begin + frame.split.left_count);

    const double left_sum = frame.split.left_sum;
    const double right_sum = frame.sum - left_sum;
    const size_t left_count = frame.split.left_count;
    const size_t right_count = count - left_count;

    const int left = static_cast<int>(nodes->size());
    nodes->push_back(RegressionNode{});
    const int right = static_cast<int>(nodes->size());
    nodes->push_back(RegressionNode{});
    RegressionNode& node = (*nodes)[static_cast<size_t>(frame.node)];
    node.feature = frame.split.feature;
    node.threshold = frame.split.threshold;
    node.left = left;
    node.right = right;

    const int child_depth = frame.depth + 1;
    const bool sweep_left = child_depth < config.max_depth &&
                            left_count >= 2 * config.min_samples_leaf;
    const bool sweep_right = child_depth < config.max_depth &&
                             right_count >= 2 * config.min_samples_leaf;

    Frame left_frame{left, child_depth, frame.begin, mid, left_sum, nullptr, {}};
    Frame right_frame{right, child_depth, mid, frame.end, right_sum, nullptr, {}};

    if (sweep_left || sweep_right) {
      const bool left_small = left_count <= right_count;
      std::unique_ptr<Buffer> fresh = take_buffer();
      tree::HistSseSplit best_fresh;
      tree::HistSseSplit best_remainder;
      if (left_small) {
        core.SseOp(sweep, target_of, fresh.get(), frame.hist.get(),
                   frame.begin, mid, {left_sum, left_count},
                   {right_sum, right_count}, sweep_left, sweep_right,
                   &best_fresh, &best_remainder);
        left_frame.hist = std::move(fresh);
        left_frame.split = best_fresh;
        right_frame.hist = std::move(frame.hist);
        right_frame.split = best_remainder;
      } else {
        core.SseOp(sweep, target_of, fresh.get(), frame.hist.get(), mid,
                   frame.end, {right_sum, right_count}, {left_sum, left_count},
                   sweep_right, sweep_left, &best_fresh, &best_remainder);
        right_frame.hist = std::move(fresh);
        right_frame.split = best_fresh;
        left_frame.hist = std::move(frame.hist);
        left_frame.split = best_remainder;
      }
    }
    // Settled leaves drop their buffers before being pushed.
    if (left_frame.split.feature == -1) recycle(std::move(left_frame.hist));
    if (right_frame.split.feature == -1) recycle(std::move(right_frame.hist));
    recycle(std::move(frame.hist));  // null unless both children went leaf

    // Same push order as the exact DFS, so pop order — and with it node
    // numbering — lines up.
    stack.push_back(std::move(left_frame));
    stack.push_back(std::move(right_frame));
  }
  return Status::OK();
}

}  // namespace

Result<RegressionTree> RegressionTree::Fit(const data::Dataset& dataset,
                                           const std::vector<double>& targets,
                                           const RegressionTreeConfig& config,
                                           const tree::SortedColumns* sorted,
                                           const tree::BinnedColumns* binned) {
  TREEWM_RETURN_IF_ERROR(ValidateRegressionInputs(dataset, targets, config));

  if (config.trainer_mode == tree::TrainerMode::kHistogram) {
    if (sorted != nullptr) {
      return Status::InvalidArgument(
          "histogram trainer mode takes binned columns, not sorted columns");
    }
    std::unique_ptr<ThreadPool> local_pool;
    ThreadPool* pool = tree::ResolveTrainerPool(config.num_threads, &local_pool);
    std::shared_ptr<const tree::BinnedColumns> owned_binned;
    if (binned == nullptr) {
      TREEWM_ASSIGN_OR_RETURN(
          owned_binned, tree::BinnedColumns::Build(
                            dataset, tree::BinnedOptions{config.max_bins}, pool));
      binned = owned_binned.get();
    }
    TREEWM_RETURN_IF_ERROR(tree::ValidateBinnedMatch(binned, dataset));
    RegressionTree tree;
    tree.num_features_ = dataset.num_features();
    TREEWM_RETURN_IF_ERROR(GrowHistogramRegressionNodes(
        dataset, targets, config, binned, pool, &tree.nodes_));
    return tree;
  }
  if (binned != nullptr) {
    return Status::InvalidArgument(
        "binned columns passed but trainer_mode is exact");
  }
  TREEWM_RETURN_IF_ERROR(tree::ValidateColumnsMatch(sorted, dataset));

  std::shared_ptr<const tree::SortedColumns> owned_sorted;
  if (sorted == nullptr) {
    owned_sorted = tree::SortedColumns::Build(dataset);
    sorted = owned_sorted.get();
  }
  std::vector<int> features(dataset.num_features());
  for (size_t j = 0; j < dataset.num_features(); ++j) features[j] = static_cast<int>(j);
  // The identity column keeps each node's members in ascending row order so
  // per-node target sums accumulate exactly as the reference's index loop.
  tree::TrainerCore core(*sorted, features, /*with_identity=*/true);

  RegressionTree tree;
  tree.num_features_ = dataset.num_features();
  const double* target_of = targets.data();

  struct Frame {
    int node;
    int depth;
    size_t begin;
    size_t end;
  };
  tree.nodes_.push_back(RegressionNode{});
  std::vector<Frame> stack{{0, 0, 0, dataset.num_rows()}};

  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const size_t count = frame.end - frame.begin;

    double sum = 0.0;
    for (const tree::ColumnEntry& e : core.Members(frame.begin, frame.end)) {
      sum += target_of[e.row];
    }
    const double mean = sum / static_cast<double>(count);

    tree::RegressionSplitCandidate split;
    if (frame.depth < config.max_depth && count >= 2 * config.min_samples_leaf) {
      const double parent_term = sum * sum / static_cast<double>(count);
      for (size_t slot = 0; slot < core.num_slots(); ++slot) {
        BestSseSplitOnColumn(core.Column(slot, frame.begin, frame.end),
                             core.feature_at(slot), target_of, sum, parent_term,
                             config.min_samples_leaf, config.min_gain, &split);
      }
    }
    if (split.feature == -1) {
      tree.nodes_[static_cast<size_t>(frame.node)].value = mean;
      continue;
    }

    const size_t mid = core.ApplySplit(frame.begin, frame.end,
                                       core.SlotOf(split.feature), split.left_count);
    assert(mid > frame.begin && mid < frame.end);

    const int left = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(RegressionNode{});
    const int right = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(RegressionNode{});
    RegressionNode& node = tree.nodes_[static_cast<size_t>(frame.node)];
    node.feature = split.feature;
    node.threshold = split.threshold;
    node.left = left;
    node.right = right;
    stack.push_back({left, frame.depth + 1, frame.begin, mid});
    stack.push_back({right, frame.depth + 1, mid, frame.end});
  }
  return tree;
}

Result<RegressionTree> RegressionTree::FitReference(
    const data::Dataset& dataset, const std::vector<double>& targets,
    const RegressionTreeConfig& config) {
  TREEWM_RETURN_IF_ERROR(ValidateRegressionInputs(dataset, targets, config));
  if (config.trainer_mode != tree::TrainerMode::kExact) {
    return Status::InvalidArgument(
        "the reference trainer is the exact-mode spec; it has no histogram mode");
  }

  RegressionTree tree;
  tree.num_features_ = dataset.num_features();

  struct Frame {
    int node;
    int depth;
    std::vector<size_t> indices;
  };
  std::vector<size_t> root_indices(dataset.num_rows());
  for (size_t i = 0; i < dataset.num_rows(); ++i) root_indices[i] = i;
  tree.nodes_.push_back(RegressionNode{});
  std::vector<Frame> stack{{0, 0, std::move(root_indices)}};

  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();

    double sum = 0.0;
    for (size_t idx : frame.indices) sum += targets[idx];
    const double mean = sum / static_cast<double>(frame.indices.size());

    BestSplit split;
    if (frame.depth < config.max_depth) {
      split = FindBestSplitNaive(dataset, targets, frame.indices,
                                 config.min_samples_leaf, config.min_gain);
    }
    if (split.feature == -1) {
      tree.nodes_[static_cast<size_t>(frame.node)].value = mean;
      continue;
    }

    std::vector<size_t> left_indices;
    std::vector<size_t> right_indices;
    for (size_t idx : frame.indices) {
      if (dataset.At(idx, static_cast<size_t>(split.feature)) <= split.threshold) {
        left_indices.push_back(idx);
      } else {
        right_indices.push_back(idx);
      }
    }
    assert(!left_indices.empty() && !right_indices.empty());

    const int left = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(RegressionNode{});
    const int right = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(RegressionNode{});
    RegressionNode& node = tree.nodes_[static_cast<size_t>(frame.node)];
    node.feature = split.feature;
    node.threshold = split.threshold;
    node.left = left;
    node.right = right;
    stack.push_back({left, frame.depth + 1, std::move(left_indices)});
    stack.push_back({right, frame.depth + 1, std::move(right_indices)});
  }
  return tree;
}

double RegressionTree::Predict(std::span<const float> row) const {
  return nodes_[static_cast<size_t>(LeafIndexFor(row))].value;
}

int RegressionTree::LeafIndexFor(std::span<const float> row) const {
  assert(row.size() == num_features_);
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].feature != -1) {
    const RegressionNode& n = nodes_[static_cast<size_t>(node)];
    node = row[static_cast<size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  return node;
}

Status RegressionTree::SetLeafValue(int node, double value) {
  if (node < 0 || static_cast<size_t>(node) >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  if (nodes_[static_cast<size_t>(node)].feature != -1) {
    return Status::InvalidArgument("node is not a leaf");
  }
  nodes_[static_cast<size_t>(node)].value = value;
  return Status::OK();
}

int RegressionTree::Depth() const {
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack{{0, 0}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    const RegressionNode& n = nodes_[static_cast<size_t>(node)];
    if (n.feature == -1) {
      max_depth = std::max(max_depth, depth);
    } else {
      stack.push_back({n.left, depth + 1});
      stack.push_back({n.right, depth + 1});
    }
  }
  return max_depth;
}

size_t RegressionTree::NumLeaves() const {
  size_t leaves = 0;
  for (const RegressionNode& n : nodes_) {
    if (n.feature == -1) ++leaves;
  }
  return leaves;
}

}  // namespace treewm::boosting
