#include "smt/tree_constraints.h"

#include "common/string_util.h"

namespace treewm::smt {

int RequiredLabel(int target_label, uint8_t signature_bit) {
  return signature_bit == 0 ? target_label : -target_label;
}

Result<std::vector<TreeRequirement>> BuildTreeRequirements(
    const forest::RandomForest& forest, const std::vector<uint8_t>& signature_bits,
    int target_label) {
  if (signature_bits.size() != forest.num_trees()) {
    return Status::InvalidArgument(
        StrFormat("signature has %zu bits but forest has %zu trees",
                  signature_bits.size(), forest.num_trees()));
  }
  if (target_label != +1 && target_label != -1) {
    return Status::InvalidArgument("target label must be +1 or -1");
  }
  std::vector<TreeRequirement> requirements;
  requirements.reserve(forest.num_trees());
  for (size_t t = 0; t < forest.num_trees(); ++t) {
    TreeRequirement req;
    req.tree_index = t;
    req.required_label = RequiredLabel(target_label, signature_bits[t]);
    for (auto& leaf : forest.trees()[t].ExtractLeaves()) {
      if (leaf.label != req.required_label) continue;
      LeafOption option;
      option.leaf_node = leaf.node_index;
      option.constraints = std::move(leaf.constraints);
      req.options.push_back(std::move(option));
    }
    requirements.push_back(std::move(req));
  }
  return requirements;
}

bool OptionCompatible(const Box& box, const LeafOption& option) {
  for (const auto& c : option.constraints) {
    if (!box.CompatibleWith(c.feature, c.lo, c.hi)) return false;
  }
  return true;
}

size_t FilterOptions(const Box& box, std::vector<TreeRequirement>* requirements) {
  size_t total = 0;
  for (TreeRequirement& req : *requirements) {
    std::vector<LeafOption> kept;
    kept.reserve(req.options.size());
    for (LeafOption& option : req.options) {
      if (OptionCompatible(box, option)) kept.push_back(std::move(option));
    }
    req.options = std::move(kept);
    total += req.options.size();
  }
  return total;
}

}  // namespace treewm::smt
