// Axis-aligned box constraints over feature space.
//
// A decision-tree leaf is reachable exactly by the points in an axis-aligned
// box whose per-feature intervals use the half-open convention (lo, hi]
// induced by "x_f <= v goes left". The forgery solver intersects such boxes;
// Box supports trail-based undo so backtracking is O(changes).

#ifndef TREEWM_SMT_BOX_H_
#define TREEWM_SMT_BOX_H_

#include <span>
#include <vector>

#include "common/status.h"

namespace treewm::smt {

/// Half-open interval (lo, hi]; lo is exclusive, hi inclusive.
struct Interval {
  double lo;
  double hi;

  bool Empty() const { return !(lo < hi); }
  bool Contains(double x) const { return x > lo && x <= hi; }
};

/// A conjunction of per-feature intervals with undo support.
class Box {
 public:
  /// Creates the universal box over `num_features` dimensions.
  explicit Box(size_t num_features);

  size_t num_features() const { return intervals_.size(); }

  /// Current interval of feature `f`.
  const Interval& Get(int f) const { return intervals_[static_cast<size_t>(f)]; }

  /// Intersects feature `f` with (lo, hi]. Returns false (and leaves the box
  /// unchanged for that feature) when the intersection is empty.
  bool Constrain(int f, double lo, double hi);

  /// Intersects feature `f` with the closed interval [a, b] (used for the
  /// L∞ ball and the [0,1] domain). Internally widens the lower end by one
  /// representable step so `a` itself stays feasible under the (lo, hi]
  /// convention.
  bool ConstrainClosed(int f, double a, double b);

  /// True if intersecting feature `f` with (lo, hi] would be non-empty;
  /// does not mutate.
  bool CompatibleWith(int f, double lo, double hi) const;

  /// Undo bookkeeping: Mark() returns a checkpoint; RevertTo() rolls back
  /// every Constrain since that checkpoint.
  size_t Mark() const { return trail_.size(); }
  void RevertTo(size_t mark);

  /// Restores the universal box and clears the trail, keeping allocated
  /// capacity (the solver's per-thread workspaces reuse one Box per anchor).
  void Reset();

  /// Picks a point inside the box, as close to `anchor` per-dimension as
  /// possible (anchor may be empty => midpoints / finite bounds are used).
  /// Requires every interval to be non-empty and bounded at least on one
  /// side; the [0,1] domain constraint guarantees this in practice.
  std::vector<float> Witness(std::span<const float> anchor) const;

 private:
  std::vector<Interval> intervals_;
  std::vector<std::pair<int, Interval>> trail_;
};

}  // namespace treewm::smt

#endif  // TREEWM_SMT_BOX_H_
