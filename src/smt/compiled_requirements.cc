#include "smt/compiled_requirements.h"

#include <algorithm>
#include <cassert>

#include "smt/tree_constraints.h"

namespace treewm::smt {

Result<std::shared_ptr<const CompiledRequirements>> CompiledRequirements::Compile(
    const forest::RandomForest& forest, const std::vector<uint8_t>& signature_bits,
    int target_label) {
  // BuildTreeRequirements stays the single authority on leaf extraction and
  // input validation; Compile only changes the shape of its answer.
  TREEWM_ASSIGN_OR_RETURN(
      std::vector<TreeRequirement> requirements,
      BuildTreeRequirements(forest, signature_bits, target_label));

  auto arena = std::shared_ptr<CompiledRequirements>(new CompiledRequirements());
  arena->num_features_ = forest.num_features();
  arena->signature_bits_ = signature_bits;
  arena->target_label_ = target_label;

  size_t num_options = 0;
  size_t num_constraints = 0;
  for (const TreeRequirement& req : requirements) {
    num_options += req.options.size();
    for (const LeafOption& option : req.options) {
      num_constraints += option.constraints.size();
    }
  }

  arena->req_option_begin_.reserve(requirements.size() + 1);
  arena->option_requirement_.reserve(num_options);
  arena->option_constraint_begin_.reserve(num_options + 1);
  arena->constraint_feature_.reserve(num_constraints);
  arena->constraint_lo_.reserve(num_constraints);
  arena->constraint_hi_.reserve(num_constraints);

  arena->req_option_begin_.push_back(0);
  arena->option_constraint_begin_.push_back(0);
  for (size_t r = 0; r < requirements.size(); ++r) {
    for (LeafOption& option : requirements[r].options) {
      // The feature-sorted, one-entry-per-feature span layout comes for
      // free: ExtractLeaves emits each leaf's constraints from a
      // std::map<feature, interval>. The watch lists below rely on the
      // per-feature uniqueness; the search relies on nothing more.
      assert(std::is_sorted(
          option.constraints.begin(), option.constraints.end(),
          [](const auto& a, const auto& b) { return a.feature < b.feature; }));
      for (const auto& c : option.constraints) {
        arena->constraint_feature_.push_back(c.feature);
        arena->constraint_lo_.push_back(c.lo);
        arena->constraint_hi_.push_back(c.hi);
      }
      arena->option_requirement_.push_back(static_cast<uint32_t>(r));
      arena->option_constraint_begin_.push_back(
          static_cast<uint32_t>(arena->constraint_feature_.size()));
    }
    arena->req_option_begin_.push_back(
        static_cast<uint32_t>(arena->option_requirement_.size()));
  }

  // Inverted index: counting sort of constraints by feature. Entries come
  // out ordered by (feature, option) — deterministic recheck order.
  const size_t d = arena->num_features_;
  arena->watch_begin_.assign(d + 1, 0);
  for (int32_t f : arena->constraint_feature_) {
    ++arena->watch_begin_[static_cast<size_t>(f) + 1];
  }
  for (size_t f = 0; f < d; ++f) {
    arena->watch_begin_[f + 1] += arena->watch_begin_[f];
  }
  arena->watch_option_.resize(num_constraints);
  arena->watch_constraint_.resize(num_constraints);
  std::vector<uint32_t> cursor(arena->watch_begin_.begin(),
                               arena->watch_begin_.end() - 1);
  for (size_t o = 0; o < arena->option_requirement_.size(); ++o) {
    for (uint32_t c = arena->option_constraint_begin_[o];
         c < arena->option_constraint_begin_[o + 1]; ++c) {
      const auto f = static_cast<size_t>(arena->constraint_feature_[c]);
      const uint32_t slot = cursor[f]++;
      arena->watch_option_[slot] = static_cast<uint32_t>(o);
      arena->watch_constraint_[slot] = c;
    }
  }

  return std::shared_ptr<const CompiledRequirements>(std::move(arena));
}

}  // namespace treewm::smt
