// Complete decision procedure for the watermark forgery problem.
//
// Plays the role Z3 plays in the paper's §4.2.2: given an ensemble T, a
// (fake) signature σ' and a label y, decide whether some instance x — here
// optionally confined to an L∞ ball around a real test instance and to the
// [0,1] feature domain — makes every tree output the σ'-required label, and
// produce such an x when one exists.
//
// The theory is a conjunction over trees of disjunctions of axis-aligned
// boxes, so a branch-and-propagate search over per-tree leaf choices with
// dynamic fail-first tree ordering is complete. A node budget stands in for
// Z3's wall-clock timeout (deterministic across machines). Results are
// validated against the actual ensemble before being reported SAT.

#ifndef TREEWM_SMT_FORGERY_SOLVER_H_
#define TREEWM_SMT_FORGERY_SOLVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "forest/random_forest.h"
#include "sat/clause.h"
#include "smt/box.h"
#include "smt/tree_constraints.h"

namespace treewm::smt {

/// One forgery query: find x with t_i(x) = label ⇔ bits[i] = 0, subject to
/// x ∈ [domain_lo, domain_hi]^d and, when `anchor` is non-empty,
/// ‖x − anchor‖_∞ <= epsilon.
struct ForgeryQuery {
  std::vector<uint8_t> signature_bits;
  int target_label = +1;
  std::vector<float> anchor;  ///< empty = unconstrained ball
  double epsilon = 1.0;
  double domain_lo = 0.0;
  double domain_hi = 1.0;
  /// Search budget in explored nodes; 0 = unlimited.
  uint64_t max_nodes = 0;
};

/// Result of a forgery attempt.
struct ForgeryOutcome {
  sat::SatResult result = sat::SatResult::kUnknown;
  /// A validated forged instance when result == kSat.
  std::vector<float> witness;
  /// Search effort (nodes expanded).
  uint64_t nodes_explored = 0;
  /// True when the witness was checked against the ensemble (always the case
  /// for kSat results).
  bool validated = false;
};

/// The branch-and-propagate forgery solver.
class ForgerySolver {
 public:
  /// Decides `query` against `forest`.
  static Result<ForgeryOutcome> Solve(const forest::RandomForest& forest,
                                      const ForgeryQuery& query);

  /// Checks that `witness` actually induces the required output pattern —
  /// the acceptance test Charlie would run. Routed through the batched
  /// flat-engine path (a one-row PatternHoldsBatch); returns false on a
  /// signature/feature dimensionality mismatch.
  static bool PatternHolds(const forest::RandomForest& forest,
                           const std::vector<uint8_t>& signature_bits,
                           int target_label, std::span<const float> witness);

  /// Batched acceptance test: result[i] != 0 iff row i of `witnesses`
  /// induces the σ'-required per-tree pattern for `target_label`. All rows
  /// are validated through one flat-engine vote-matrix query instead of a
  /// scalar PredictAll per witness — the entry point candidate witnesses and
  /// solver counterexamples go through in row blocks. A signature-length or
  /// feature-count mismatch fails every row.
  static std::vector<uint8_t> PatternHoldsBatch(
      const forest::RandomForest& forest,
      const std::vector<uint8_t>& signature_bits, int target_label,
      const data::Dataset& witnesses);
};

}  // namespace treewm::smt

#endif  // TREEWM_SMT_FORGERY_SOLVER_H_
