// Complete decision procedure for the watermark forgery problem.
//
// Plays the role Z3 plays in the paper's §4.2.2: given an ensemble T, a
// (fake) signature σ' and a label y, decide whether some instance x — here
// optionally confined to an L∞ ball around a real test instance and to the
// [0,1] feature domain — makes every tree output the σ'-required label, and
// produce such an x when one exists.
//
// The theory is a conjunction over trees of disjunctions of axis-aligned
// boxes, so a branch-and-propagate search over per-tree leaf choices with
// dynamic fail-first tree ordering is complete. A node budget stands in for
// Z3's wall-clock timeout (deterministic across machines). Results are
// validated against the actual ensemble before being reported SAT.
//
// The search runs over a CompiledRequirements arena (leaf boxes flattened
// once per (forest, σ', y)) with *watched options*: per-option liveness
// flags and per-requirement feasible-option counters maintained
// incrementally through the arena's per-feature inverted index, plus a kill
// trail for O(changes) backtracking. SolveBatch amortizes the arena across
// every anchor of an attack and fans anchors over a thread pool; the scalar
// Solve is the one-anchor wrapper over the same engine, so both paths are
// bit-identical by construction. See src/smt/README.md.

#ifndef TREEWM_SMT_FORGERY_SOLVER_H_
#define TREEWM_SMT_FORGERY_SOLVER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "forest/random_forest.h"
#include "sat/clause.h"
#include "smt/box.h"
#include "smt/compiled_requirements.h"
#include "smt/tree_constraints.h"

namespace treewm::smt {

/// Validates the shared ball geometry of a forgery query. This is the ONE
/// place the solver-side ε domain is defined: ε is an L∞ radius, any finite
/// value >= 0 is accepted (NaN is rejected), and ε >= domain_hi - domain_lo
/// simply makes the ball non-binding. The attack layer narrows this domain:
/// attacks::ForgeryAttackConfig requires ε ∈ (0,1) because attack anchors
/// live in the normalized [0,1] feature domain, where ε >= 1 removes the
/// distortion bound entirely and ε = 0 is an exact-match query that cannot
/// forge anything new (see forgery_attack.h).
[[nodiscard]] Status ValidateBallGeometry(double epsilon, double domain_lo, double domain_hi);

/// One forgery query: find x with t_i(x) = label ⇔ bits[i] = 0, subject to
/// x ∈ [domain_lo, domain_hi]^d and, when `anchor` is non-empty,
/// ‖x − anchor‖_∞ <= epsilon.
struct ForgeryQuery {
  std::vector<uint8_t> signature_bits;
  int target_label = +1;
  std::vector<float> anchor;  ///< empty = unconstrained ball
  /// L∞ radius; domain per ValidateBallGeometry (any finite ε >= 0). The
  /// default 1.0 is non-binding on the default [0,1] feature domain.
  double epsilon = 1.0;
  double domain_lo = 0.0;
  double domain_hi = 1.0;
  /// Search budget in explored nodes; 0 = unlimited.
  uint64_t max_nodes = 0;
};

/// Shared parameters of a multi-anchor forgery solve. The per-anchor target
/// label is the anchor Dataset's own row label (the attack queries each test
/// instance with its label as y, so one batch naturally mixes both labels;
/// the engine compiles one requirement arena per label present and shares it
/// across all anchors and threads).
struct ForgeryBatchQuery {
  std::vector<uint8_t> signature_bits;
  /// L∞ radius around each anchor; domain per ValidateBallGeometry.
  double epsilon = 1.0;
  double domain_lo = 0.0;
  double domain_hi = 1.0;
  /// Per-anchor search budget in explored nodes; 0 = unlimited.
  uint64_t max_nodes_per_anchor = 0;
  /// 0 = process-global pool, 1 = serial, k > 1 = private pool of k threads
  /// (mirrors predict::BatchOptions::num_threads). The thread count never
  /// changes outcomes — every anchor's search is independent.
  size_t num_threads = 0;
};

/// Result of a forgery attempt.
struct ForgeryOutcome {
  sat::SatResult result = sat::SatResult::kUnknown;
  /// A validated forged instance when result == kSat.
  std::vector<float> witness;
  /// Search effort (nodes expanded).
  uint64_t nodes_explored = 0;
  /// True when the witness was checked against the ensemble (always the case
  /// for kSat results).
  bool validated = false;
};

/// Reusable per-(forest, σ') arena cache for repeated SolveBatch calls (the
/// attack driver solves anchor chunks against the same fake signature; the
/// cache compiles each label's arena once across chunks). SolveBatch
/// verifies a cached arena's signature bits, target label and feature count
/// and fails rather than silently solving a stale query. Forest identity is
/// NOT verifiable from the arena — a cache must not outlive the forest it
/// was populated against (retrain ⇒ fresh cache).
struct ForgeryArenaCache {
  std::shared_ptr<const CompiledRequirements> positive;  ///< y = +1
  std::shared_ptr<const CompiledRequirements> negative;  ///< y = -1
};

/// The branch-and-propagate forgery solver.
class ForgerySolver {
 public:
  /// Decides `query` against `forest` (compiles the requirement arena for
  /// this one query; use the CompiledRequirements overload or SolveBatch to
  /// amortize the build across queries).
  [[nodiscard]] static Result<ForgeryOutcome> Solve(const forest::RandomForest& forest,
                                      const ForgeryQuery& query);

  /// Same, over a pre-compiled arena. `compiled` must have been built from
  /// `forest` with the query's signature bits and target label (verified;
  /// mismatch is an InvalidArgument).
  [[nodiscard]] static Result<ForgeryOutcome> Solve(const forest::RandomForest& forest,
                                      const CompiledRequirements& compiled,
                                      const ForgeryQuery& query);

  /// Multi-anchor solve: decides one query per row of `anchors` (target
  /// label = row label, ball = ε-L∞ around the row) and returns the outcomes
  /// in row order. Requirement arenas are compiled once per label and shared
  /// across anchors; anchors fan out across the thread pool with one
  /// reusable search workspace per worker; all found witnesses are validated
  /// through one PatternHoldsBatch call per label at the end. Outcomes are
  /// bit-identical to calling the scalar Solve per row, at every thread
  /// count. `cache` (optional) reuses arenas across calls.
  [[nodiscard]] static Result<std::vector<ForgeryOutcome>> SolveBatch(
      const forest::RandomForest& forest, const ForgeryBatchQuery& query,
      const data::Dataset& anchors, ForgeryArenaCache* cache = nullptr);

  /// Checks that `witness` actually induces the required output pattern —
  /// the acceptance test Charlie would run. Routed through the batched
  /// flat-engine path (a one-row PatternHoldsBatch); returns false on a
  /// signature/feature dimensionality mismatch.
  static bool PatternHolds(const forest::RandomForest& forest,
                           const std::vector<uint8_t>& signature_bits,
                           int target_label, std::span<const float> witness);

  /// Batched acceptance test: result[i] != 0 iff row i of `witnesses`
  /// induces the σ'-required per-tree pattern for `target_label`. All rows
  /// are validated through one flat-engine vote-matrix query instead of a
  /// scalar PredictAll per witness — the entry point candidate witnesses and
  /// solver counterexamples go through in row blocks. A signature-length or
  /// feature-count mismatch fails every row.
  static std::vector<uint8_t> PatternHoldsBatch(
      const forest::RandomForest& forest,
      const std::vector<uint8_t>& signature_bits, int target_label,
      const data::Dataset& witnesses);
};

}  // namespace treewm::smt

#endif  // TREEWM_SMT_FORGERY_SOLVER_H_
