// Translation of "tree t must output label y" into leaf-box alternatives.
//
// The watermark forgery problem (paper Definition 1) asks for an instance x
// with t_i(x) = y ⇔ σ_i = 0 for every tree. Per tree this is a disjunction
// over the leaves carrying the required label; each leaf is an axis-aligned
// box (§3.3's formula φ is exactly this structure).

#ifndef TREEWM_SMT_TREE_CONSTRAINTS_H_
#define TREEWM_SMT_TREE_CONSTRAINTS_H_

#include <vector>

#include "common/status.h"
#include "forest/random_forest.h"
#include "smt/box.h"
#include "tree/decision_tree.h"

namespace treewm::smt {

/// One admissible leaf: the sparse conjunction of interval constraints that
/// routes an instance to a leaf with the required label.
struct LeafOption {
  int leaf_node = -1;
  std::vector<tree::DecisionTree::PathConstraint> constraints;
};

/// The per-tree disjunction of admissible leaves.
struct TreeRequirement {
  size_t tree_index = 0;
  int required_label = 0;
  std::vector<LeafOption> options;
};

/// Required output of tree i under signature bit b_i and target label y:
/// y when b_i = 0, the opposite label when b_i = 1.
int RequiredLabel(int target_label, uint8_t signature_bit);

/// Builds the per-tree requirements for the forgery query (ensemble, σ', y).
/// `signature_bits.size()` must equal the number of trees.
[[nodiscard]] Result<std::vector<TreeRequirement>> BuildTreeRequirements(
    const forest::RandomForest& forest, const std::vector<uint8_t>& signature_bits,
    int target_label);

/// True iff every constraint of `option` individually intersects `box`
/// (equivalently, since constraints are per-feature: the leaf box and `box`
/// overlap). The naive-rescan reference search and FilterOptions both use
/// this; the watched-option engine replaces the rescan with incremental
/// liveness bookkeeping over CompiledRequirements.
bool OptionCompatible(const Box& box, const LeafOption& option);

/// Drops leaf options incompatible with `box`; removes nothing from `box`.
/// Returns the number of options remaining across all requirements.
size_t FilterOptions(const Box& box, std::vector<TreeRequirement>* requirements);

}  // namespace treewm::smt

#endif  // TREEWM_SMT_TREE_CONSTRAINTS_H_
