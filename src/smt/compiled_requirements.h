// Flat, immutable, shareable image of a forgery query's requirements.
//
// BuildTreeRequirements answers "which leaf boxes satisfy tree i under
// (σ', y)?" as nested vectors — convenient, but the forgery attack solves
// one query per test anchor against the SAME (forest, σ', y), so rebuilding
// that structure per anchor re-walks every tree to re-extract identical
// boxes. CompiledRequirements packs the answer once into a struct-of-arrays
// arena (the src/predict/ recipe applied to the solver): leaf options lie
// contiguously per requirement, each option owns a feature-sorted span of
// interval constraints, and a per-feature inverted index records which
// (option, constraint) pairs watch that feature. The watched-option search
// in forgery_solver.cc uses the index to recheck only the options whose
// feature was just tightened instead of rescanning every option of every
// tree at every node.
//
// The arena is immutable after Compile and carries no per-query state, so
// one shared_ptr serves every anchor of an attack across threads.

#ifndef TREEWM_SMT_COMPILED_REQUIREMENTS_H_
#define TREEWM_SMT_COMPILED_REQUIREMENTS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "forest/random_forest.h"

namespace treewm::smt {

/// The compiled (forest, σ', y) requirement arena. All index arrays use
/// uint32 — a query with 2^32 leaf boxes is far beyond solvable anyway.
class CompiledRequirements {
 public:
  /// Compiles the requirements for (forest, signature_bits, target_label).
  /// Validates like BuildTreeRequirements (signature length, label ∈ {±1}).
  [[nodiscard]] static Result<std::shared_ptr<const CompiledRequirements>> Compile(
      const forest::RandomForest& forest,
      const std::vector<uint8_t>& signature_bits, int target_label);

  // ------------------------------------------------------------ metadata --
  size_t num_features() const { return num_features_; }
  size_t num_requirements() const { return req_option_begin_.size() - 1; }
  size_t num_options() const { return option_requirement_.size(); }
  size_t num_constraints() const { return constraint_feature_.size(); }
  const std::vector<uint8_t>& signature_bits() const { return signature_bits_; }
  int target_label() const { return target_label_; }

  // ------------------------------------------------------------- layout ---
  // Requirement r's options:     [req_option_begin()[r], req_option_begin()[r+1])
  // Option o's constraints:      [option_constraint_begin()[o], ...[o+1])
  //                              (sorted by feature; one entry per feature)
  // Feature f's watch entries:   [watch_begin()[f], watch_begin()[f+1])
  //   — every (option, constraint) pair whose constraint tests feature f.

  std::span<const uint32_t> req_option_begin() const { return req_option_begin_; }
  std::span<const uint32_t> option_requirement() const { return option_requirement_; }
  std::span<const uint32_t> option_constraint_begin() const {
    return option_constraint_begin_;
  }
  std::span<const int32_t> constraint_feature() const { return constraint_feature_; }
  std::span<const double> constraint_lo() const { return constraint_lo_; }
  std::span<const double> constraint_hi() const { return constraint_hi_; }
  std::span<const uint32_t> watch_begin() const { return watch_begin_; }
  std::span<const uint32_t> watch_option() const { return watch_option_; }
  std::span<const uint32_t> watch_constraint() const { return watch_constraint_; }

 private:
  CompiledRequirements() = default;

  size_t num_features_ = 0;
  std::vector<uint8_t> signature_bits_;
  int target_label_ = 0;

  std::vector<uint32_t> req_option_begin_;       ///< size R+1
  std::vector<uint32_t> option_requirement_;     ///< size O
  std::vector<uint32_t> option_constraint_begin_;///< size O+1
  std::vector<int32_t> constraint_feature_;      ///< size C
  std::vector<double> constraint_lo_;            ///< size C (exclusive)
  std::vector<double> constraint_hi_;            ///< size C (inclusive)
  std::vector<uint32_t> watch_begin_;            ///< size d+1
  std::vector<uint32_t> watch_option_;           ///< size C
  std::vector<uint32_t> watch_constraint_;       ///< size C
};

}  // namespace treewm::smt

#endif  // TREEWM_SMT_COMPILED_REQUIREMENTS_H_
