// Eager propositional encoding of the forgery problem (alternative backend).
//
// Classic eager-SMT reduction: one Boolean atom per (feature, threshold)
// predicate "x_f <= v", ordering clauses between consecutive thresholds of
// the same feature, a Tseitin selector per admissible leaf and a one-of-them
// disjunction per tree. The resulting CNF goes to the CDCL solver
// (sat::Solver) and SAT models are decoded back into feature vectors.
//
// Exists for two reasons: (1) it cross-checks the dedicated box solver in
// tests — the two complete procedures must agree on satisfiability; (2) it
// is the ablation point for "dedicated decision procedure vs generic SAT"
// (see bench/ablation_solver_backend).

#ifndef TREEWM_SMT_CNF_ENCODER_H_
#define TREEWM_SMT_CNF_ENCODER_H_

#include "common/status.h"
#include "forest/random_forest.h"
#include "sat/solver.h"
#include "smt/forgery_solver.h"

namespace treewm::smt {

/// Statistics about one eager encoding.
struct CnfEncodingStats {
  size_t num_atom_vars = 0;      ///< (feature, threshold) predicates
  size_t num_selector_vars = 0;  ///< Tseitin leaf selectors
  size_t num_clauses = 0;
};

/// Solves `query` through the CNF route. Semantics match
/// ForgerySolver::Solve; `budget` bounds the CDCL search (kUnknown when
/// exhausted).
class CnfForgeryBackend {
 public:
  [[nodiscard]] static Result<ForgeryOutcome> Solve(const forest::RandomForest& forest,
                                      const ForgeryQuery& query,
                                      const sat::SolveBudget& budget = {},
                                      CnfEncodingStats* stats_out = nullptr);
};

}  // namespace treewm::smt

#endif  // TREEWM_SMT_CNF_ENCODER_H_
