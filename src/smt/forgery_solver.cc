#include "smt/forgery_solver.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace treewm::smt {

namespace {

/// Mutable search state shared across the recursion.
struct SearchState {
  Box box;
  std::vector<TreeRequirement> requirements;
  std::vector<uint8_t> assigned;  // per requirement
  size_t num_assigned = 0;
  uint64_t nodes = 0;
  uint64_t max_nodes = 0;
  bool budget_exhausted = false;

  explicit SearchState(size_t num_features) : box(num_features) {}
};

bool OptionCompatible(const Box& box, const LeafOption& option) {
  for (const auto& c : option.constraints) {
    if (!box.CompatibleWith(c.feature, c.lo, c.hi)) return false;
  }
  return true;
}

/// Applies all constraints of `option`; on failure reverts and returns false.
bool ApplyOption(Box* box, const LeafOption& option) {
  const size_t mark = box->Mark();
  for (const auto& c : option.constraints) {
    if (!box->Constrain(c.feature, c.lo, c.hi)) {
      box->RevertTo(mark);
      return false;
    }
  }
  return true;
}

/// Depth-first search with dynamic fail-first requirement selection.
bool Search(SearchState* state) {
  if (state->num_assigned == state->requirements.size()) return true;
  ++state->nodes;
  if (state->max_nodes != 0 && state->nodes > state->max_nodes) {
    state->budget_exhausted = true;
    return false;
  }

  // Pick the unassigned requirement with the fewest box-compatible options.
  size_t best_req = state->requirements.size();
  size_t best_count = SIZE_MAX;
  for (size_t r = 0; r < state->requirements.size(); ++r) {
    if (state->assigned[r]) continue;
    size_t count = 0;
    for (const LeafOption& option : state->requirements[r].options) {
      if (OptionCompatible(state->box, option)) {
        ++count;
        if (count >= best_count) break;  // cannot beat the champion
      }
    }
    if (count == 0) return false;  // dead end: some tree has no feasible leaf
    if (count < best_count) {
      best_count = count;
      best_req = r;
      if (count == 1) break;  // forced choice; no better selection exists
    }
  }
  assert(best_req < state->requirements.size());

  state->assigned[best_req] = 1;
  ++state->num_assigned;
  for (const LeafOption& option : state->requirements[best_req].options) {
    if (!OptionCompatible(state->box, option)) continue;
    const size_t mark = state->box.Mark();
    if (!ApplyOption(&state->box, option)) continue;
    if (Search(state)) return true;
    state->box.RevertTo(mark);
    if (state->budget_exhausted) break;
  }
  state->assigned[best_req] = 0;
  --state->num_assigned;
  return false;
}

}  // namespace

Result<ForgeryOutcome> ForgerySolver::Solve(const forest::RandomForest& forest,
                                            const ForgeryQuery& query) {
  const size_t d = forest.num_features();
  if (!query.anchor.empty() && query.anchor.size() != d) {
    return Status::InvalidArgument(
        StrFormat("anchor has %zu features, forest expects %zu", query.anchor.size(),
                  d));
  }
  if (query.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }
  if (query.domain_lo > query.domain_hi) {
    return Status::InvalidArgument("empty feature domain");
  }

  TREEWM_ASSIGN_OR_RETURN(
      std::vector<TreeRequirement> requirements,
      BuildTreeRequirements(forest, query.signature_bits, query.target_label));

  SearchState state(d);
  state.requirements = std::move(requirements);
  state.max_nodes = query.max_nodes;

  // Domain and ball constraints.
  for (size_t f = 0; f < d; ++f) {
    double lo = query.domain_lo;
    double hi = query.domain_hi;
    if (!query.anchor.empty()) {
      lo = std::max(lo, static_cast<double>(query.anchor[f]) - query.epsilon);
      hi = std::min(hi, static_cast<double>(query.anchor[f]) + query.epsilon);
    }
    if (lo > hi || !state.box.ConstrainClosed(static_cast<int>(f), lo, hi)) {
      ForgeryOutcome outcome;
      outcome.result = sat::SatResult::kUnsat;
      return outcome;
    }
  }

  // Static pre-filter: drop leaves incompatible with the initial box. If any
  // tree loses all its options the query is UNSAT outright.
  FilterOptions(state.box, &state.requirements);
  for (const TreeRequirement& req : state.requirements) {
    if (req.options.empty()) {
      ForgeryOutcome outcome;
      outcome.result = sat::SatResult::kUnsat;
      return outcome;
    }
  }

  state.assigned.assign(state.requirements.size(), 0);
  const bool found = Search(&state);

  ForgeryOutcome outcome;
  outcome.nodes_explored = state.nodes;
  if (found) {
    outcome.witness = state.box.Witness(query.anchor);
    outcome.validated = PatternHolds(forest, query.signature_bits, query.target_label,
                                     outcome.witness);
    if (!outcome.validated) {
      // Float rounding nudged the witness across a threshold (vanishingly
      // rare). Treat as internal error rather than report a bogus model.
      return Status::Internal("forgery witness failed ensemble validation");
    }
    outcome.result = sat::SatResult::kSat;
  } else if (state.budget_exhausted) {
    outcome.result = sat::SatResult::kUnknown;
  } else {
    outcome.result = sat::SatResult::kUnsat;
  }
  return outcome;
}

bool ForgerySolver::PatternHolds(const forest::RandomForest& forest,
                                 const std::vector<uint8_t>& signature_bits,
                                 int target_label, std::span<const float> witness) {
  if (witness.size() != forest.num_features()) return false;
  data::Dataset one(forest.num_features());
  Status st = one.AddRow(witness, data::kPositive);  // placeholder label
  if (!st.ok()) return false;
  const std::vector<uint8_t> holds =
      PatternHoldsBatch(forest, signature_bits, target_label, one);
  return holds.size() == 1 && holds[0] != 0;
}

std::vector<uint8_t> ForgerySolver::PatternHoldsBatch(
    const forest::RandomForest& forest, const std::vector<uint8_t>& signature_bits,
    int target_label, const data::Dataset& witnesses) {
  std::vector<uint8_t> out(witnesses.num_rows(), 0);
  if (signature_bits.size() != forest.num_trees() ||
      witnesses.num_features() != forest.num_features() || out.empty()) {
    return out;
  }
  // One batched query answers every (witness, tree) vote; the per-row check
  // is then a linear scan of the matrix row against the required pattern.
  const predict::VoteMatrix votes = forest.PredictAllVotes(witnesses);
  std::vector<int8_t> required(signature_bits.size());
  for (size_t t = 0; t < signature_bits.size(); ++t) {
    required[t] = static_cast<int8_t>(RequiredLabel(target_label, signature_bits[t]));
  }
  for (size_t i = 0; i < witnesses.num_rows(); ++i) {
    const std::span<const int8_t> row = votes.row(i);
    bool holds = true;
    for (size_t t = 0; t < required.size(); ++t) {
      if (row[t] != required[t]) {
        holds = false;
        break;
      }
    }
    out[i] = holds ? 1 : 0;
  }
  return out;
}

}  // namespace treewm::smt
