#include "smt/forgery_solver.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace treewm::smt {

Status ValidateBallGeometry(double epsilon, double domain_lo, double domain_hi) {
  // Negated comparisons so NaN parameters fail instead of slipping through.
  if (!(epsilon >= 0.0)) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }
  if (!(domain_lo <= domain_hi)) {
    return Status::InvalidArgument("empty feature domain");
  }
  return Status::OK();
}

namespace {

/// Mutable watched-option search state. One instance per worker thread,
/// reused across anchors: Prepare() re-initializes in O(options) without
/// reallocating, and the arena itself is shared and immutable.
struct SearchState {
  Box box{0};
  const CompiledRequirements* arena = nullptr;
  /// Liveness flag per option: 1 iff every constraint of the option still
  /// intersects the current box. Maintained incrementally via the arena's
  /// per-feature watch lists.
  std::vector<uint8_t> option_alive;
  /// Per-requirement count of alive options — the fail-first selection
  /// score, cached instead of recomputed by rescanning every option.
  std::vector<uint32_t> req_alive;
  std::vector<uint8_t> assigned;  // per requirement
  /// Options killed since the root, in kill order; backtracking revives the
  /// suffix past a mark (O(changes), mirroring the Box trail).
  std::vector<uint32_t> kill_trail;
  size_t num_assigned = 0;
  uint64_t nodes = 0;
  uint64_t max_nodes = 0;
  bool budget_exhausted = false;

  void Prepare(const CompiledRequirements& a) {
    arena = &a;
    if (box.num_features() == a.num_features()) {
      box.Reset();
    } else {
      box = Box(a.num_features());
    }
    option_alive.assign(a.num_options(), 1);
    const auto rb = a.req_option_begin();
    req_alive.resize(a.num_requirements());
    for (size_t r = 0; r < a.num_requirements(); ++r) {
      req_alive[r] = rb[r + 1] - rb[r];
    }
    assigned.assign(a.num_requirements(), 0);
    kill_trail.clear();
    num_assigned = 0;
    nodes = 0;
    max_nodes = 0;
    budget_exhausted = false;
  }
};

/// Rechecks the alive options watching feature `f` against its (just
/// tightened) interval and kills the newly incompatible ones. Only the
/// options constraining `f` can change state — the watch list makes this
/// O(watchers of f) instead of O(all options).
void PropagateFeature(SearchState* state, int f) {
  const CompiledRequirements& a = *state->arena;
  const Interval iv = state->box.Get(f);
  const auto wb = a.watch_begin();
  const auto wo = a.watch_option();
  const auto wc = a.watch_constraint();
  const auto clo = a.constraint_lo();
  const auto chi = a.constraint_hi();
  const auto oreq = a.option_requirement();
  const auto fs = static_cast<size_t>(f);
  for (uint32_t k = wb[fs]; k < wb[fs + 1]; ++k) {
    const uint32_t o = wo[k];
    if (!state->option_alive[o]) continue;
    const uint32_t c = wc[k];
    if (std::max(iv.lo, clo[c]) < std::min(iv.hi, chi[c])) continue;
    state->option_alive[o] = 0;
    --state->req_alive[oreq[o]];
    state->kill_trail.push_back(o);
  }
}

/// Box::Constrain plus watch propagation when the interval actually shrank.
bool ConstrainAndPropagate(SearchState* state, int f, double lo, double hi) {
  const Interval before = state->box.Get(f);
  if (!state->box.Constrain(f, lo, hi)) return false;
  const Interval& after = state->box.Get(f);
  if (after.lo == before.lo && after.hi == before.hi) return true;
  PropagateFeature(state, f);
  return true;
}

/// Box::ConstrainClosed plus watch propagation (initial domain/ball setup).
bool ConstrainClosedAndPropagate(SearchState* state, int f, double a, double b) {
  const Interval before = state->box.Get(f);
  if (!state->box.ConstrainClosed(f, a, b)) return false;
  const Interval& after = state->box.Get(f);
  if (after.lo == before.lo && after.hi == before.hi) return true;
  PropagateFeature(state, f);
  return true;
}

/// Intersects the box with option `o`'s leaf box. `o` must be alive, and an
/// alive option's constraints each intersect the box individually; since
/// constraints touch distinct features they cannot invalidate each other,
/// so the application never fails.
void ApplyOption(SearchState* state, uint32_t o) {
  const CompiledRequirements& a = *state->arena;
  const auto cb = a.option_constraint_begin();
  const auto cf = a.constraint_feature();
  const auto clo = a.constraint_lo();
  const auto chi = a.constraint_hi();
  for (uint32_t c = cb[o]; c < cb[o + 1]; ++c) {
    const bool ok = ConstrainAndPropagate(state, cf[c], clo[c], chi[c]);
    assert(ok);
    (void)ok;  // discard ok: asserted above; options are pre-filtered to feasible
  }
}

void RevertTo(SearchState* state, size_t box_mark, size_t kill_mark) {
  state->box.RevertTo(box_mark);
  const auto oreq = state->arena->option_requirement();
  while (state->kill_trail.size() > kill_mark) {
    const uint32_t o = state->kill_trail.back();
    state->kill_trail.pop_back();
    state->option_alive[o] = 1;
    ++state->req_alive[oreq[o]];
  }
}

/// Depth-first search with dynamic fail-first requirement selection.
///
/// Branching order, node accounting and budget semantics replicate the
/// naive-rescan search exactly (proven in tests/test_forgery_batch.cc):
/// the selection scan reads the cached counters in requirement order with
/// the same first-minimum tie-break, forced-choice break, and lazy dead-end
/// detection (a requirement emptied by propagation is only noticed at the
/// next node's scan, exactly when the rescan would have noticed it), so
/// nodes_explored and every verdict are bit-identical to the per-instance
/// solver this engine replaced.
bool Search(SearchState* state) {
  const CompiledRequirements& a = *state->arena;
  const size_t num_reqs = a.num_requirements();
  if (state->num_assigned == num_reqs) return true;
  ++state->nodes;
  if (state->max_nodes != 0 && state->nodes > state->max_nodes) {
    state->budget_exhausted = true;
    return false;
  }

  // Pick the unassigned requirement with the fewest alive options — an O(m)
  // counter scan instead of the O(Σ options) compatibility rescan.
  size_t best_req = num_reqs;
  size_t best_count = SIZE_MAX;
  for (size_t r = 0; r < num_reqs; ++r) {
    if (state->assigned[r]) continue;
    const size_t count = state->req_alive[r];
    if (count == 0) return false;  // dead end: some tree has no feasible leaf
    if (count < best_count) {
      best_count = count;
      best_req = r;
      if (count == 1) break;  // forced choice; no better selection exists
    }
  }
  assert(best_req < num_reqs);

  state->assigned[best_req] = 1;
  ++state->num_assigned;
  const auto rb = a.req_option_begin();
  for (uint32_t o = rb[best_req]; o < rb[best_req + 1]; ++o) {
    if (!state->option_alive[o]) continue;
    const size_t box_mark = state->box.Mark();
    const size_t kill_mark = state->kill_trail.size();
    ApplyOption(state, o);
    if (Search(state)) return true;
    RevertTo(state, box_mark, kill_mark);
    if (state->budget_exhausted) break;
  }
  state->assigned[best_req] = 0;
  --state->num_assigned;
  return false;
}

/// Decides one anchor against a prepared arena. Does NOT validate the
/// witness — callers validate (scalar: one-row PatternHolds; batch: one
/// PatternHoldsBatch per label over every witness at once).
ForgeryOutcome SolveOnArena(const CompiledRequirements& arena,
                            std::span<const float> anchor, double epsilon,
                            double domain_lo, double domain_hi,
                            uint64_t max_nodes, SearchState* state) {
  state->Prepare(arena);
  state->max_nodes = max_nodes;

  ForgeryOutcome outcome;
  // Domain and ball constraints; propagation kills statically incompatible
  // options (the FilterOptions pre-pass of the naive solver).
  const size_t d = arena.num_features();
  for (size_t f = 0; f < d; ++f) {
    double lo = domain_lo;
    double hi = domain_hi;
    if (!anchor.empty()) {
      lo = std::max(lo, static_cast<double>(anchor[f]) - epsilon);
      hi = std::min(hi, static_cast<double>(anchor[f]) + epsilon);
    }
    if (lo > hi ||
        !ConstrainClosedAndPropagate(state, static_cast<int>(f), lo, hi)) {
      outcome.result = sat::SatResult::kUnsat;
      return outcome;
    }
  }
  for (size_t r = 0; r < arena.num_requirements(); ++r) {
    if (state->req_alive[r] == 0) {
      outcome.result = sat::SatResult::kUnsat;
      return outcome;
    }
  }

  const bool found = Search(state);
  outcome.nodes_explored = state->nodes;
  if (found) {
    outcome.witness = state->box.Witness(anchor);
    outcome.result = sat::SatResult::kSat;
  } else if (state->budget_exhausted) {
    outcome.result = sat::SatResult::kUnknown;
  } else {
    outcome.result = sat::SatResult::kUnsat;
  }
  return outcome;
}

Status ValidateQueryShape(const forest::RandomForest& forest,
                          const ForgeryQuery& query) {
  if (!query.anchor.empty() && query.anchor.size() != forest.num_features()) {
    return Status::InvalidArgument(
        StrFormat("anchor has %zu features, forest expects %zu",
                  query.anchor.size(), forest.num_features()));
  }
  return ValidateBallGeometry(query.epsilon, query.domain_lo, query.domain_hi);
}

/// One reusable workspace per thread: SolveBatch anchors land on pool
/// workers repeatedly, and Prepare() re-initializes without reallocating.
thread_local SearchState t_search_state;

/// Returns the cached arena for `label`, compiling it on first use and
/// verifying a pre-existing cache entry still matches the query.
Result<std::shared_ptr<const CompiledRequirements>> ArenaForLabel(
    const forest::RandomForest& forest, const ForgeryBatchQuery& query,
    int label, ForgeryArenaCache* cache) {
  std::shared_ptr<const CompiledRequirements>& slot =
      label > 0 ? cache->positive : cache->negative;
  if (slot == nullptr) {
    TREEWM_ASSIGN_OR_RETURN(
        slot, CompiledRequirements::Compile(forest, query.signature_bits, label));
    return slot;
  }
  if (slot->signature_bits() != query.signature_bits ||
      slot->target_label() != label ||
      slot->num_features() != forest.num_features()) {
    return Status::InvalidArgument(
        "forgery arena cache was compiled for a different query");
  }
  return slot;
}

}  // namespace

Result<ForgeryOutcome> ForgerySolver::Solve(const forest::RandomForest& forest,
                                            const ForgeryQuery& query) {
  TREEWM_RETURN_IF_ERROR(ValidateQueryShape(forest, query));
  TREEWM_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledRequirements> arena,
                          CompiledRequirements::Compile(
                              forest, query.signature_bits, query.target_label));
  return Solve(forest, *arena, query);
}

Result<ForgeryOutcome> ForgerySolver::Solve(const forest::RandomForest& forest,
                                            const CompiledRequirements& compiled,
                                            const ForgeryQuery& query) {
  if (compiled.signature_bits() != query.signature_bits ||
      compiled.target_label() != query.target_label ||
      compiled.num_features() != forest.num_features()) {
    return Status::InvalidArgument(
        "compiled requirements do not match the forgery query");
  }
  TREEWM_RETURN_IF_ERROR(ValidateQueryShape(forest, query));

  SearchState state;
  ForgeryOutcome outcome =
      SolveOnArena(compiled, query.anchor, query.epsilon, query.domain_lo,
                   query.domain_hi, query.max_nodes, &state);
  if (outcome.result == sat::SatResult::kSat) {
    outcome.validated = PatternHolds(forest, query.signature_bits,
                                     query.target_label, outcome.witness);
    if (!outcome.validated) {
      // Float rounding nudged the witness across a threshold (vanishingly
      // rare). Treat as internal error rather than report a bogus model.
      return Status::Internal("forgery witness failed ensemble validation");
    }
  }
  return outcome;
}

Result<std::vector<ForgeryOutcome>> ForgerySolver::SolveBatch(
    const forest::RandomForest& forest, const ForgeryBatchQuery& query,
    const data::Dataset& anchors, ForgeryArenaCache* cache) {
  if (query.signature_bits.size() != forest.num_trees()) {
    return Status::InvalidArgument(
        StrFormat("signature has %zu bits but forest has %zu trees",
                  query.signature_bits.size(), forest.num_trees()));
  }
  if (anchors.num_features() != forest.num_features()) {
    return Status::InvalidArgument(
        StrFormat("anchors have %zu features, forest expects %zu",
                  anchors.num_features(), forest.num_features()));
  }
  TREEWM_RETURN_IF_ERROR(
      ValidateBallGeometry(query.epsilon, query.domain_lo, query.domain_hi));

  const size_t n = anchors.num_rows();
  std::vector<ForgeryOutcome> outcomes(n);
  if (n == 0) return outcomes;

  // One arena per target label present in the batch, shared across anchors
  // and threads (and across SolveBatch calls when the caller keeps `cache`).
  ForgeryArenaCache local_cache;
  ForgeryArenaCache* arenas = cache != nullptr ? cache : &local_cache;
  std::shared_ptr<const CompiledRequirements> positive;
  std::shared_ptr<const CompiledRequirements> negative;
  for (size_t i = 0; i < n; ++i) {
    if (anchors.Label(i) > 0 && positive == nullptr) {
      TREEWM_ASSIGN_OR_RETURN(positive,
                              ArenaForLabel(forest, query, +1, arenas));
    } else if (anchors.Label(i) < 0 && negative == nullptr) {
      TREEWM_ASSIGN_OR_RETURN(negative,
                              ArenaForLabel(forest, query, -1, arenas));
    }
  }

  // Fan anchors across the pool. Every anchor's search is independent and
  // deterministic, so the schedule cannot change outcomes.
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> local_pool;
  if (query.num_threads == 0) {
    pool = &ThreadPool::Global();
  } else if (query.num_threads > 1) {
    local_pool = std::make_unique<ThreadPool>(query.num_threads);
    pool = local_pool.get();
  }
  ParallelFor(pool, n, [&](size_t i) {
    const CompiledRequirements& arena =
        anchors.Label(i) > 0 ? *positive : *negative;
    outcomes[i] =
        SolveOnArena(arena, anchors.Row(i), query.epsilon, query.domain_lo,
                     query.domain_hi, query.max_nodes_per_anchor,
                     &t_search_state);
  });

  // Charlie's acceptance test, batched: one flat-engine vote-matrix query
  // per label over every witness found, instead of a scalar walk per anchor.
  for (int label : {data::kPositive, data::kNegative}) {
    std::vector<size_t> sat_rows;
    for (size_t i = 0; i < n; ++i) {
      if (outcomes[i].result == sat::SatResult::kSat &&
          anchors.Label(i) == label) {
        sat_rows.push_back(i);
      }
    }
    if (sat_rows.empty()) continue;
    data::Dataset witnesses(forest.num_features());
    witnesses.Reserve(sat_rows.size());
    for (size_t i : sat_rows) {
      TREEWM_RETURN_IF_ERROR(witnesses.AddRow(outcomes[i].witness, label));
    }
    const std::vector<uint8_t> holds =
        PatternHoldsBatch(forest, query.signature_bits, label, witnesses);
    for (size_t j = 0; j < sat_rows.size(); ++j) {
      if (holds[j] == 0) {
        return Status::Internal("forgery witness failed ensemble validation");
      }
      outcomes[sat_rows[j]].validated = true;
    }
  }
  return outcomes;
}

bool ForgerySolver::PatternHolds(const forest::RandomForest& forest,
                                 const std::vector<uint8_t>& signature_bits,
                                 int target_label, std::span<const float> witness) {
  if (witness.size() != forest.num_features()) return false;
  data::Dataset one(forest.num_features());
  Status st = one.AddRow(witness, data::kPositive);  // placeholder label
  if (!st.ok()) return false;
  const std::vector<uint8_t> holds =
      PatternHoldsBatch(forest, signature_bits, target_label, one);
  return holds.size() == 1 && holds[0] != 0;
}

std::vector<uint8_t> ForgerySolver::PatternHoldsBatch(
    const forest::RandomForest& forest, const std::vector<uint8_t>& signature_bits,
    int target_label, const data::Dataset& witnesses) {
  std::vector<uint8_t> out(witnesses.num_rows(), 0);
  if (signature_bits.size() != forest.num_trees() ||
      witnesses.num_features() != forest.num_features() || out.empty()) {
    return out;
  }
  // One batched query answers every (witness, tree) vote; the per-row check
  // is then a linear scan of the matrix row against the required pattern.
  const predict::VoteMatrix votes = forest.PredictAllVotes(witnesses);
  std::vector<int8_t> required(signature_bits.size());
  for (size_t t = 0; t < signature_bits.size(); ++t) {
    required[t] = static_cast<int8_t>(RequiredLabel(target_label, signature_bits[t]));
  }
  for (size_t i = 0; i < witnesses.num_rows(); ++i) {
    const std::span<const int8_t> row = votes.row(i);
    bool holds = true;
    for (size_t t = 0; t < required.size(); ++t) {
      if (row[t] != required[t]) {
        holds = false;
        break;
      }
    }
    out[i] = holds ? 1 : 0;
  }
  return out;
}

}  // namespace treewm::smt
