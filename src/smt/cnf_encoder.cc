#include "smt/cnf_encoder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/string_util.h"
#include "smt/tree_constraints.h"

namespace treewm::smt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Atom bookkeeping for one feature: sorted thresholds and their variables.
struct FeatureAtoms {
  std::vector<double> thresholds;  // sorted, unique
  std::vector<sat::Var> vars;      // parallel to thresholds

  /// Variable of predicate "x_f <= v"; v must be a known threshold.
  sat::Var VarFor(double v) const {
    const auto it = std::lower_bound(thresholds.begin(), thresholds.end(), v);
    assert(it != thresholds.end() && *it == v);
    return vars[static_cast<size_t>(it - thresholds.begin())];
  }
};

}  // namespace

Result<ForgeryOutcome> CnfForgeryBackend::Solve(const forest::RandomForest& forest,
                                                const ForgeryQuery& query,
                                                const sat::SolveBudget& budget,
                                                CnfEncodingStats* stats_out) {
  const size_t d = forest.num_features();
  if (!query.anchor.empty() && query.anchor.size() != d) {
    return Status::InvalidArgument("anchor dimensionality mismatch");
  }
  TREEWM_ASSIGN_OR_RETURN(
      std::vector<TreeRequirement> requirements,
      BuildTreeRequirements(forest, query.signature_bits, query.target_label));

  // Per-feature closed bounds from domain ∩ ball.
  std::vector<double> lo_bound(d, query.domain_lo);
  std::vector<double> hi_bound(d, query.domain_hi);
  for (size_t f = 0; f < d; ++f) {
    if (!query.anchor.empty()) {
      lo_bound[f] = std::max(lo_bound[f],
                             static_cast<double>(query.anchor[f]) - query.epsilon);
      hi_bound[f] = std::min(hi_bound[f],
                             static_cast<double>(query.anchor[f]) + query.epsilon);
    }
    if (lo_bound[f] > hi_bound[f]) {
      ForgeryOutcome outcome;
      outcome.result = sat::SatResult::kUnsat;
      return outcome;
    }
  }

  // Collect the thresholds each requirement mentions.
  std::map<int, std::vector<double>> thresholds_by_feature;
  for (const TreeRequirement& req : requirements) {
    for (const LeafOption& option : req.options) {
      for (const auto& c : option.constraints) {
        if (std::isfinite(c.lo)) thresholds_by_feature[c.feature].push_back(c.lo);
        if (std::isfinite(c.hi)) thresholds_by_feature[c.feature].push_back(c.hi);
      }
    }
  }

  sat::Solver solver;
  CnfEncodingStats stats;
  std::map<int, FeatureAtoms> atoms;
  bool consistent = true;
  for (auto& [feature, values] : thresholds_by_feature) {
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    FeatureAtoms fa;
    fa.thresholds = values;
    fa.vars.reserve(values.size());
    for (size_t i = 0; i < values.size(); ++i) fa.vars.push_back(solver.NewVar());
    stats.num_atom_vars += values.size();
    // Ordering: (x <= v_i) -> (x <= v_{i+1}).
    for (size_t i = 0; i + 1 < values.size(); ++i) {
      consistent &= solver.AddClause({sat::Lit::Make(fa.vars[i], true),
                                      sat::Lit::Make(fa.vars[i + 1], false)});
      ++stats.num_clauses;
    }
    // Domain/ball units: v < lo  =>  atom false;  v >= hi  =>  atom true.
    const size_t fidx = static_cast<size_t>(feature);
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i] < lo_bound[fidx]) {
        consistent &= solver.AddClause({sat::Lit::Make(fa.vars[i], true)});
        ++stats.num_clauses;
      } else if (values[i] >= hi_bound[fidx]) {
        consistent &= solver.AddClause({sat::Lit::Make(fa.vars[i], false)});
        ++stats.num_clauses;
      }
    }
    atoms.emplace(feature, std::move(fa));
  }

  // Leaf selectors and per-tree disjunctions.
  for (const TreeRequirement& req : requirements) {
    std::vector<sat::Lit> any_leaf;
    for (const LeafOption& option : req.options) {
      const sat::Var selector = solver.NewVar();
      ++stats.num_selector_vars;
      any_leaf.push_back(sat::Lit::Make(selector, false));
      for (const auto& c : option.constraints) {
        const FeatureAtoms& fa = atoms.at(c.feature);
        if (std::isfinite(c.hi)) {
          // selector -> (x <= hi)
          consistent &= solver.AddClause({sat::Lit::Make(selector, true),
                                          sat::Lit::Make(fa.VarFor(c.hi), false)});
          ++stats.num_clauses;
        }
        if (std::isfinite(c.lo)) {
          // selector -> not (x <= lo)
          consistent &= solver.AddClause({sat::Lit::Make(selector, true),
                                          sat::Lit::Make(fa.VarFor(c.lo), true)});
          ++stats.num_clauses;
        }
      }
    }
    if (any_leaf.empty()) {
      ForgeryOutcome outcome;
      outcome.result = sat::SatResult::kUnsat;
      return outcome;
    }
    consistent &= solver.AddClause(std::move(any_leaf));
    ++stats.num_clauses;
  }

  if (stats_out != nullptr) *stats_out = stats;

  ForgeryOutcome outcome;
  if (!consistent) {
    outcome.result = sat::SatResult::kUnsat;
    return outcome;
  }
  const sat::SatResult result = solver.Solve(budget);
  outcome.nodes_explored = solver.stats().conflicts;
  outcome.result = result;
  if (result != sat::SatResult::kSat) return outcome;

  // Decode: tightest interval per feature from atom truth values, then pick
  // a witness near the anchor.
  Box box(d);
  for (size_t f = 0; f < d; ++f) {
    if (!box.ConstrainClosed(static_cast<int>(f), lo_bound[f], hi_bound[f])) {
      return Status::Internal("decode: domain constraint became empty");
    }
  }
  for (const auto& [feature, fa] : atoms) {
    double lo = -kInf;
    double hi = kInf;
    for (size_t i = 0; i < fa.thresholds.size(); ++i) {
      if (solver.ModelValue(fa.vars[i])) {
        hi = fa.thresholds[i];  // first true atom is the tightest upper bound
        break;
      }
      lo = fa.thresholds[i];  // false atom: x > threshold
    }
    if (!box.Constrain(feature, lo, hi)) {
      return Status::Internal("decode: inconsistent atom assignment");
    }
  }
  outcome.witness = box.Witness(query.anchor);
  outcome.validated = ForgerySolver::PatternHolds(forest, query.signature_bits,
                                                  query.target_label, outcome.witness);
  if (!outcome.validated) {
    return Status::Internal("CNF-backend witness failed ensemble validation");
  }
  return outcome;
}

}  // namespace treewm::smt
