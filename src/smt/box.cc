#include "smt/box.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace treewm::smt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Box::Box(size_t num_features) : intervals_(num_features, Interval{-kInf, kInf}) {}

bool Box::Constrain(int f, double lo, double hi) {
  Interval& current = intervals_[static_cast<size_t>(f)];
  const double new_lo = std::max(current.lo, lo);
  const double new_hi = std::min(current.hi, hi);
  if (!(new_lo < new_hi)) return false;
  if (new_lo == current.lo && new_hi == current.hi) return true;  // no change
  trail_.emplace_back(f, current);
  current = Interval{new_lo, new_hi};
  return true;
}

bool Box::ConstrainClosed(int f, double a, double b) {
  // (lo, hi] cannot express a closed lower bound exactly; nudge `a` down by
  // one representable double so a itself remains feasible. Features are
  // float32, so the nudge is far below measurement resolution.
  const double lo = std::nextafter(a, -kInf);
  return Constrain(f, lo, b);
}

bool Box::CompatibleWith(int f, double lo, double hi) const {
  const Interval& current = intervals_[static_cast<size_t>(f)];
  return std::max(current.lo, lo) < std::min(current.hi, hi);
}

void Box::Reset() {
  trail_.clear();
  std::fill(intervals_.begin(), intervals_.end(), Interval{-kInf, kInf});
}

void Box::RevertTo(size_t mark) {
  assert(mark <= trail_.size());
  while (trail_.size() > mark) {
    const auto& [f, interval] = trail_.back();
    intervals_[static_cast<size_t>(f)] = interval;
    trail_.pop_back();
  }
}

std::vector<float> Box::Witness(std::span<const float> anchor) const {
  std::vector<float> out(intervals_.size());
  for (size_t f = 0; f < intervals_.size(); ++f) {
    const Interval& iv = intervals_[f];
    assert(!iv.Empty());
    double x;
    if (!anchor.empty()) {
      x = std::clamp(static_cast<double>(anchor[f]), iv.lo, iv.hi);
      if (!(x > iv.lo)) {
        // Anchor clamped onto the excluded lower endpoint: move inside.
        x = std::isfinite(iv.hi) ? (iv.lo + iv.hi) / 2.0
                                 : std::nextafter(iv.lo, kInf);
      }
    } else if (std::isfinite(iv.lo) && std::isfinite(iv.hi)) {
      x = (iv.lo + iv.hi) / 2.0;
    } else if (std::isfinite(iv.hi)) {
      x = iv.hi;
    } else if (std::isfinite(iv.lo)) {
      x = std::nextafter(iv.lo, kInf);
    } else {
      x = 0.0;
    }
    // Snap to float32 without leaving the interval.
    constexpr float kFloatInf = std::numeric_limits<float>::infinity();
    float xf = static_cast<float>(x);
    if (static_cast<double>(xf) <= iv.lo) xf = std::nextafter(xf, kFloatInf);
    if (static_cast<double>(xf) > iv.hi) xf = std::nextafter(xf, -kFloatInf);
    out[f] = xf;
  }
  return out;
}

}  // namespace treewm::smt
