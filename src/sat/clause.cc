#include "sat/clause.h"

#include "common/string_util.h"

namespace treewm::sat {

std::string Lit::ToString() const {
  if (code_ < 0) return "lit?";
  return StrFormat("%sx%d", negated() ? "~" : "", var());
}

const char* SatResultName(SatResult result) {
  switch (result) {
    case SatResult::kSat:
      return "sat";
    case SatResult::kUnsat:
      return "unsat";
    case SatResult::kUnknown:
      return "unknown";
  }
  return "?";
}

}  // namespace treewm::sat
