// Core SAT types: variables, literals, clauses, ternary truth values.
//
// Conventions follow MiniSat: variables are 0-based ints; a literal packs
// (variable << 1) | sign where sign 1 means negation.

#ifndef TREEWM_SAT_CLAUSE_H_
#define TREEWM_SAT_CLAUSE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace treewm::sat {

/// A propositional variable (0-based).
using Var = int32_t;

/// A literal: a variable or its negation.
class Lit {
 public:
  Lit() : code_(-2) {}

  /// Literal for `var`, negated when `negated` is true.
  static Lit Make(Var var, bool negated = false) {
    Lit l;
    l.code_ = (var << 1) | static_cast<int32_t>(negated);
    return l;
  }

  /// The underlying variable.
  Var var() const { return code_ >> 1; }

  /// True when this is the negation of its variable.
  bool negated() const { return (code_ & 1) != 0; }

  /// The complementary literal.
  Lit Negated() const {
    Lit l;
    l.code_ = code_ ^ 1;
    return l;
  }

  /// Dense index usable for watch lists (2*var + sign).
  int32_t index() const { return code_; }

  /// An invalid sentinel literal.
  static Lit Undef() { return Lit(); }

  bool operator==(const Lit& other) const { return code_ == other.code_; }
  bool operator!=(const Lit& other) const { return code_ != other.code_; }
  bool operator<(const Lit& other) const { return code_ < other.code_; }

  /// "x3" / "~x3" for debugging.
  std::string ToString() const;

 private:
  int32_t code_;
};

/// Ternary truth value.
enum class LBool : int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

inline LBool BoolToLBool(bool b) { return b ? LBool::kTrue : LBool::kFalse; }

/// A disjunction of literals. Learnt clauses carry an activity for deletion
/// heuristics.
struct Clause {
  std::vector<Lit> lits;
  bool learnt = false;
  double activity = 0.0;
};

/// Result of a SAT solver run.
enum class SatResult { kSat, kUnsat, kUnknown };

/// Stable name for reports ("sat" / "unsat" / "unknown").
const char* SatResultName(SatResult result);

}  // namespace treewm::sat

#endif  // TREEWM_SAT_CLAUSE_H_
