#include "sat/dimacs.h"

#include <sstream>

#include "common/json.h"
#include "common/string_util.h"
#include "sat/solver.h"

namespace treewm::sat {

Result<CnfFormula> ParseDimacs(const std::string& text) {
  CnfFormula formula;
  bool saw_header = false;
  int declared_clauses = 0;
  std::vector<Lit> current;

  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::string_view trimmed = StrTrim(line);
    if (trimmed.empty() || trimmed[0] == 'c') continue;
    if (trimmed[0] == 'p') {
      std::istringstream header{std::string(trimmed)};
      std::string p;
      std::string cnf;
      header >> p >> cnf >> formula.num_vars >> declared_clauses;
      if (p != "p" || cnf != "cnf" || formula.num_vars < 0 || declared_clauses < 0 ||
          header.fail()) {
        return Status::ParseError(StrFormat("line %zu: malformed 'p cnf' header",
                                            line_no));
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) {
      return Status::ParseError(StrFormat("line %zu: clause before header", line_no));
    }
    std::istringstream body{std::string(trimmed)};
    long long value;
    while (body >> value) {
      if (value == 0) {
        formula.clauses.push_back(current);
        current.clear();
        continue;
      }
      const long long var = value > 0 ? value : -value;
      if (var > formula.num_vars) {
        return Status::ParseError(
            StrFormat("line %zu: variable %lld exceeds declared %d", line_no, var,
                      formula.num_vars));
      }
      current.push_back(Lit::Make(static_cast<Var>(var - 1), value < 0));
    }
    if (!body.eof()) {
      return Status::ParseError(StrFormat("line %zu: bad token", line_no));
    }
  }
  if (!saw_header) return Status::ParseError("missing 'p cnf' header");
  if (!current.empty()) {
    return Status::ParseError("last clause not terminated by 0");
  }
  if (declared_clauses != static_cast<int>(formula.clauses.size())) {
    return Status::ParseError(
        StrFormat("header declares %d clauses, found %zu", declared_clauses,
                  formula.clauses.size()));
  }
  return formula;
}

Result<CnfFormula> LoadDimacs(const std::string& path) {
  TREEWM_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseDimacs(text);
}

std::string ToDimacs(const CnfFormula& formula) {
  std::ostringstream out;
  out << "p cnf " << formula.num_vars << ' ' << formula.clauses.size() << '\n';
  for (const auto& clause : formula.clauses) {
    for (const Lit& l : clause) {
      const int v = l.var() + 1;
      out << (l.negated() ? -v : v) << ' ';
    }
    out << "0\n";
  }
  return out.str();
}

bool LoadIntoSolver(const CnfFormula& formula, Solver* solver) {
  solver->EnsureVars(formula.num_vars);
  for (const auto& clause : formula.clauses) {
    if (!solver->AddClause(clause)) return false;
  }
  return true;
}

}  // namespace treewm::sat
