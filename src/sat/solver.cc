#include "sat/solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace treewm::sat {

namespace {

constexpr double kVarActivityDecay = 1.0 / 0.95;
constexpr double kClauseActivityDecay = 1.0 / 0.999;
constexpr double kActivityRescaleLimit = 1e100;
constexpr uint64_t kRestartBase = 100;  // conflicts per Luby unit

/// Luby sequence value for 0-based index x: 1,1,2,1,1,2,4,1,1,2,...
uint64_t Luby(uint64_t x) {
  uint64_t size = 1;
  uint64_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x = x % size;
  }
  return 1ULL << seq;
}

}  // namespace

Solver::Solver() = default;

Var Solver::NewVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  saved_phase_.push_back(false);
  activity_.push_back(0.0);
  reason_.push_back(kNoReason);
  level_.push_back(0);
  heap_position_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  HeapInsert(v);
  return v;
}

void Solver::EnsureVars(int n) {
  while (num_vars() < n) NewVar();
}

bool Solver::AddClause(std::vector<Lit> lits) {
  if (unsat_) return false;
  assert(CurrentLevel() == 0);

  // Normalize: sort, strip duplicates, detect tautologies, drop literals
  // already false at level 0, drop the clause if some literal is true.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> normalized;
  normalized.reserve(lits.size());
  for (const Lit& l : lits) {
    assert(l.var() >= 0 && l.var() < num_vars());
    if (!normalized.empty()) {
      if (normalized.back() == l) continue;            // duplicate
      if (normalized.back() == l.Negated()) return true;  // tautology
    }
    const LBool value = ValueOf(l);
    if (value == LBool::kTrue && level_[static_cast<size_t>(l.var())] == 0) {
      return true;  // already satisfied forever
    }
    if (value == LBool::kFalse && level_[static_cast<size_t>(l.var())] == 0) {
      continue;  // literal can never help
    }
    normalized.push_back(l);
  }

  if (normalized.empty()) {
    unsat_ = true;
    return false;
  }
  if (normalized.size() == 1) {
    const LBool value = ValueOf(normalized[0]);
    if (value == LBool::kFalse) {
      unsat_ = true;
      return false;
    }
    if (value == LBool::kUndef) Enqueue(normalized[0], kNoReason);
    // Propagate eagerly so later AddClause calls see level-0 consequences.
    if (Propagate() != kNoReason) {
      unsat_ = true;
      return false;
    }
    return true;
  }

  Clause clause;
  clause.lits = std::move(normalized);
  clauses_.push_back(std::move(clause));
  ++num_original_clauses_;
  AttachClause(static_cast<ClauseRef>(clauses_.size() - 1));
  return true;
}

void Solver::AttachClause(ClauseRef cref) {
  const Clause& c = clauses_[static_cast<size_t>(cref)];
  assert(c.lits.size() >= 2);
  watches_[static_cast<size_t>(c.lits[0].index())].push_back(cref);
  watches_[static_cast<size_t>(c.lits[1].index())].push_back(cref);
}

void Solver::Enqueue(Lit l, ClauseRef reason) {
  const size_t v = static_cast<size_t>(l.var());
  assert(assigns_[v] == LBool::kUndef);
  assigns_[v] = BoolToLBool(!l.negated());
  saved_phase_[v] = !l.negated();
  reason_[v] = reason;
  level_[v] = CurrentLevel();
  trail_.push_back(l);
}

Solver::ClauseRef Solver::Propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    const Lit false_lit = p.Negated();
    std::vector<ClauseRef>& watch_list =
        watches_[static_cast<size_t>(false_lit.index())];

    size_t keep = 0;
    for (size_t i = 0; i < watch_list.size(); ++i) {
      const ClauseRef cref = watch_list[i];
      Clause& c = clauses_[static_cast<size_t>(cref)];
      // Ensure the falsified literal sits at position 1.
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      assert(c.lits[1] == false_lit);

      if (ValueOf(c.lits[0]) == LBool::kTrue) {
        watch_list[keep++] = cref;  // clause satisfied; keep the watch
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (size_t k = 2; k < c.lits.size(); ++k) {
        if (ValueOf(c.lits[k]) != LBool::kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[static_cast<size_t>(c.lits[1].index())].push_back(cref);
          moved = true;
          break;
        }
      }
      if (moved) continue;

      // No replacement: the clause is unit or conflicting.
      watch_list[keep++] = cref;
      if (ValueOf(c.lits[0]) == LBool::kFalse) {
        // Conflict: keep the remaining watches and report.
        for (size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return cref;
      }
      Enqueue(c.lits[0], cref);
    }
    watch_list.resize(keep);
  }
  return kNoReason;
}

void Solver::Analyze(ClauseRef conflict, std::vector<Lit>* learnt,
                     int* backtrack_level) {
  learnt->clear();
  learnt->push_back(Lit::Undef());  // slot for the asserting literal

  int counter = 0;
  Lit p = Lit::Undef();
  ClauseRef confl = conflict;
  size_t index = trail_.size();

  do {
    assert(confl != kNoReason);
    Clause& c = clauses_[static_cast<size_t>(confl)];
    if (c.learnt) BumpClauseActivity(confl);
    const size_t start = (p == Lit::Undef()) ? 0 : 1;
    for (size_t j = start; j < c.lits.size(); ++j) {
      const Lit q = c.lits[j];
      const size_t v = static_cast<size_t>(q.var());
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = 1;
        BumpVarActivity(q.var());
        if (level_[v] >= CurrentLevel()) {
          ++counter;
        } else {
          learnt->push_back(q);
        }
      }
    }
    // Select the next trail literal marked seen.
    while (!seen_[static_cast<size_t>(trail_[index - 1].var())]) --index;
    --index;
    p = trail_[index];
    confl = reason_[static_cast<size_t>(p.var())];
    seen_[static_cast<size_t>(p.var())] = 0;
    --counter;
  } while (counter > 0);
  (*learnt)[0] = p.Negated();

  // Compute the backjump level and move its literal to position 1.
  if (learnt->size() == 1) {
    *backtrack_level = 0;
  } else {
    size_t max_index = 1;
    for (size_t i = 2; i < learnt->size(); ++i) {
      if (level_[static_cast<size_t>((*learnt)[i].var())] >
          level_[static_cast<size_t>((*learnt)[max_index].var())]) {
        max_index = i;
      }
    }
    std::swap((*learnt)[1], (*learnt)[max_index]);
    *backtrack_level = level_[static_cast<size_t>((*learnt)[1].var())];
  }

  for (const Lit& l : *learnt) seen_[static_cast<size_t>(l.var())] = 0;
}

void Solver::Backtrack(int target_level) {
  if (CurrentLevel() <= target_level) return;
  const size_t new_size = static_cast<size_t>(trail_limits_[static_cast<size_t>(
      target_level)]);
  for (size_t i = trail_.size(); i > new_size; --i) {
    const Var v = trail_[i - 1].var();
    assigns_[static_cast<size_t>(v)] = LBool::kUndef;
    reason_[static_cast<size_t>(v)] = kNoReason;
    if (!HeapContains(v)) HeapInsert(v);
  }
  trail_.resize(new_size);
  trail_limits_.resize(static_cast<size_t>(target_level));
  propagate_head_ = trail_.size();
}

void Solver::BumpVarActivity(Var v) {
  double& a = activity_[static_cast<size_t>(v)];
  a += var_activity_increment_;
  if (a > kActivityRescaleLimit) {
    for (double& x : activity_) x *= 1e-100;
    var_activity_increment_ *= 1e-100;
  }
  const int pos = heap_position_[static_cast<size_t>(v)];
  if (pos >= 0) HeapUp(pos);
}

void Solver::DecayVarActivity() { var_activity_increment_ *= kVarActivityDecay; }

void Solver::BumpClauseActivity(ClauseRef cref) {
  Clause& c = clauses_[static_cast<size_t>(cref)];
  c.activity += clause_activity_increment_;
  if (c.activity > kActivityRescaleLimit) {
    for (Clause& cl : clauses_) {
      if (cl.learnt) cl.activity *= 1e-100;
    }
    clause_activity_increment_ *= 1e-100;
  }
}

void Solver::DecayClauseActivity() {
  clause_activity_increment_ *= kClauseActivityDecay;
}

void Solver::ReduceDb() {
  // Collect learnt clauses that are not the reason for a current assignment.
  std::vector<ClauseRef> candidates;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    const Clause& c = clauses_[i];
    if (!c.learnt || c.lits.empty()) continue;
    const Var v0 = c.lits[0].var();
    const bool locked = reason_[static_cast<size_t>(v0)] ==
                            static_cast<ClauseRef>(i) &&
                        assigns_[static_cast<size_t>(v0)] != LBool::kUndef;
    if (!locked && c.lits.size() > 2) candidates.push_back(static_cast<ClauseRef>(i));
  }
  std::sort(candidates.begin(), candidates.end(), [this](ClauseRef a, ClauseRef b) {
    return clauses_[static_cast<size_t>(a)].activity <
           clauses_[static_cast<size_t>(b)].activity;
  });
  const size_t remove_count = candidates.size() / 2;
  for (size_t i = 0; i < remove_count; ++i) {
    const ClauseRef cref = candidates[i];
    Clause& c = clauses_[static_cast<size_t>(cref)];
    for (int w = 0; w < 2; ++w) {
      auto& list = watches_[static_cast<size_t>(c.lits[static_cast<size_t>(w)].index())];
      list.erase(std::remove(list.begin(), list.end(), cref), list.end());
    }
    c.lits.clear();
    c.lits.shrink_to_fit();
    ++stats_.deleted_clauses;
  }
}

void Solver::HeapInsert(Var v) {
  heap_position_[static_cast<size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  HeapUp(static_cast<int>(heap_.size()) - 1);
}

Var Solver::HeapPopMax() {
  assert(!heap_.empty());
  const Var top = heap_[0];
  heap_position_[static_cast<size_t>(top)] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heap_position_[static_cast<size_t>(heap_[0])] = 0;
    heap_.pop_back();
    HeapDown(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

void Solver::HeapUp(int i) {
  const Var v = heap_[static_cast<size_t>(i)];
  const double a = activity_[static_cast<size_t>(v)];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    const Var pv = heap_[static_cast<size_t>(parent)];
    if (activity_[static_cast<size_t>(pv)] >= a) break;
    heap_[static_cast<size_t>(i)] = pv;
    heap_position_[static_cast<size_t>(pv)] = i;
    i = parent;
  }
  heap_[static_cast<size_t>(i)] = v;
  heap_position_[static_cast<size_t>(v)] = i;
}

void Solver::HeapDown(int i) {
  const int n = static_cast<int>(heap_.size());
  const Var v = heap_[static_cast<size_t>(i)];
  const double a = activity_[static_cast<size_t>(v)];
  while (true) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[static_cast<size_t>(heap_[static_cast<size_t>(child + 1)])] >
            activity_[static_cast<size_t>(heap_[static_cast<size_t>(child)])]) {
      ++child;
    }
    const Var cv = heap_[static_cast<size_t>(child)];
    if (a >= activity_[static_cast<size_t>(cv)]) break;
    heap_[static_cast<size_t>(i)] = cv;
    heap_position_[static_cast<size_t>(cv)] = i;
    i = child;
  }
  heap_[static_cast<size_t>(i)] = v;
  heap_position_[static_cast<size_t>(v)] = i;
}

Lit Solver::PickBranchLit() {
  while (!heap_.empty()) {
    const Var v = HeapPopMax();
    if (assigns_[static_cast<size_t>(v)] == LBool::kUndef) {
      return Lit::Make(v, !saved_phase_[static_cast<size_t>(v)]);
    }
  }
  return Lit::Undef();
}

SatResult Solver::Solve(const SolveBudget& budget) {
  stats_ = SolveStats{};
  if (unsat_) return SatResult::kUnsat;
  Backtrack(0);
  // Re-seed the heap with all unassigned variables (previous Solve calls may
  // have emptied it).
  for (Var v = 0; v < num_vars(); ++v) {
    if (assigns_[static_cast<size_t>(v)] == LBool::kUndef && !HeapContains(v)) {
      HeapInsert(v);
    }
  }

  uint64_t conflicts_until_restart = kRestartBase * Luby(stats_.restarts);
  uint64_t conflicts_since_restart = 0;
  size_t max_learnts = std::max<size_t>(4096, num_original_clauses_ / 2);

  while (true) {
    const ClauseRef conflict = Propagate();
    if (conflict != kNoReason) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (CurrentLevel() == 0) {
        unsat_ = true;
        return SatResult::kUnsat;
      }
      std::vector<Lit> learnt;
      int backtrack_level = 0;
      Analyze(conflict, &learnt, &backtrack_level);
      Backtrack(backtrack_level);
      if (learnt.size() == 1) {
        Enqueue(learnt[0], kNoReason);
      } else {
        Clause clause;
        clause.lits = std::move(learnt);
        clause.learnt = true;
        clause.activity = clause_activity_increment_;
        clauses_.push_back(std::move(clause));
        const ClauseRef cref = static_cast<ClauseRef>(clauses_.size() - 1);
        AttachClause(cref);
        ++stats_.learnt_clauses;
        Enqueue(clauses_.back().lits[0], cref);
      }
      DecayVarActivity();
      DecayClauseActivity();
      continue;
    }

    if (budget.max_conflicts != 0 && stats_.conflicts >= budget.max_conflicts) {
      return SatResult::kUnknown;
    }
    if (budget.max_propagations != 0 &&
        stats_.propagations >= budget.max_propagations) {
      return SatResult::kUnknown;
    }
    if (conflicts_since_restart >= conflicts_until_restart) {
      ++stats_.restarts;
      conflicts_since_restart = 0;
      conflicts_until_restart = kRestartBase * Luby(stats_.restarts);
      Backtrack(0);
      continue;
    }
    if (stats_.learnt_clauses - stats_.deleted_clauses > max_learnts) {
      ReduceDb();
      max_learnts = max_learnts + max_learnts / 2;
    }

    const Lit decision = PickBranchLit();
    if (decision == Lit::Undef()) return SatResult::kSat;  // all vars assigned
    ++stats_.decisions;
    trail_limits_.push_back(static_cast<int>(trail_.size()));
    Enqueue(decision, kNoReason);
  }
}

bool Solver::ModelValue(Var v) const {
  assert(v >= 0 && v < num_vars());
  assert(assigns_[static_cast<size_t>(v)] != LBool::kUndef);
  return assigns_[static_cast<size_t>(v)] == LBool::kTrue;
}

std::vector<bool> Solver::Model() const {
  std::vector<bool> model(static_cast<size_t>(num_vars()));
  for (Var v = 0; v < num_vars(); ++v) {
    model[static_cast<size_t>(v)] =
        assigns_[static_cast<size_t>(v)] == LBool::kTrue;
  }
  return model;
}

bool Solver::ModelSatisfiesFormula(const std::vector<bool>& model) const {
  size_t checked = 0;
  for (const Clause& c : clauses_) {
    if (c.learnt) continue;
    if (c.lits.empty()) continue;  // deleted
    ++checked;
    bool satisfied = false;
    for (const Lit& l : c.lits) {
      const bool value = model[static_cast<size_t>(l.var())] != l.negated();
      if (value) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  (void)checked;  // discard ok: assert-only bookkeeping, unused in release
  return true;
}

}  // namespace treewm::sat
