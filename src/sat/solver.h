// CDCL SAT solver.
//
// A conflict-driven clause-learning solver in the MiniSat lineage:
// two-watched-literal unit propagation, 1UIP conflict analysis, VSIDS
// variable ordering with phase saving, Luby restarts and activity-based
// learnt-clause deletion. It backs the eager CNF encoding of the watermark
// forgery problem (smt::CnfEncoder) and the 3SAT experiments around the
// paper's Theorem 1.

#ifndef TREEWM_SAT_SOLVER_H_
#define TREEWM_SAT_SOLVER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sat/clause.h"

namespace treewm::sat {

/// Search limits; 0 means unlimited.
struct SolveBudget {
  uint64_t max_conflicts = 0;
  uint64_t max_propagations = 0;
};

/// Counters describing one Solve() run.
struct SolveStats {
  uint64_t conflicts = 0;
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t restarts = 0;
  uint64_t learnt_clauses = 0;
  uint64_t deleted_clauses = 0;
};

/// A CDCL SAT solver instance. Add variables and clauses, then Solve().
/// Solve() may be called repeatedly (the solver keeps learnt clauses), but
/// clauses cannot be removed.
class Solver {
 public:
  Solver();

  /// Creates a fresh variable and returns it.
  Var NewVar();

  /// Ensures variables [0, n) exist.
  void EnsureVars(int n);

  /// Number of variables.
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause (disjunction of `lits`). Returns false when the clause
  /// makes the formula trivially unsatisfiable at level 0 (e.g. empty clause
  /// or conflicting units); the solver is then permanently UNSAT.
  bool AddClause(std::vector<Lit> lits);

  /// Runs the CDCL loop. Returns kSat/kUnsat, or kUnknown when the budget is
  /// exhausted first.
  SatResult Solve(const SolveBudget& budget = {});

  /// Model access after kSat: value of `v` in the satisfying assignment.
  bool ModelValue(Var v) const;

  /// The full model (index = variable).
  std::vector<bool> Model() const;

  /// True when the instance was proven unsatisfiable.
  bool proven_unsat() const { return unsat_; }

  /// Statistics from the most recent Solve().
  const SolveStats& stats() const { return stats_; }

  /// Verifies that `model` satisfies every original (non-learnt) clause.
  bool ModelSatisfiesFormula(const std::vector<bool>& model) const;

 private:
  using ClauseRef = int32_t;
  static constexpr ClauseRef kNoReason = -1;

  LBool ValueOf(Lit l) const {
    LBool v = assigns_[static_cast<size_t>(l.var())];
    if (v == LBool::kUndef) return LBool::kUndef;
    const bool truth = (v == LBool::kTrue) != l.negated();
    return BoolToLBool(truth);
  }

  void Enqueue(Lit l, ClauseRef reason);
  ClauseRef Propagate();
  void Analyze(ClauseRef conflict, std::vector<Lit>* learnt, int* backtrack_level);
  void Backtrack(int level);
  Lit PickBranchLit();
  void BumpVarActivity(Var v);
  void DecayVarActivity();
  void BumpClauseActivity(ClauseRef cref);
  void DecayClauseActivity();
  void ReduceDb();
  void AttachClause(ClauseRef cref);
  int CurrentLevel() const { return static_cast<int>(trail_limits_.size()); }

  // Order heap (max-heap on activity) with position tracking.
  void HeapInsert(Var v);
  Var HeapPopMax();
  void HeapUp(int i);
  void HeapDown(int i);
  bool HeapContains(Var v) const {
    return heap_position_[static_cast<size_t>(v)] >= 0;
  }

  std::vector<Clause> clauses_;  // both original and learnt
  std::vector<std::vector<ClauseRef>> watches_;  // indexed by Lit::index()

  std::vector<LBool> assigns_;
  std::vector<bool> saved_phase_;
  std::vector<double> activity_;
  std::vector<ClauseRef> reason_;
  std::vector<int> level_;

  std::vector<Lit> trail_;
  std::vector<int> trail_limits_;
  size_t propagate_head_ = 0;

  std::vector<Var> heap_;
  std::vector<int> heap_position_;

  std::vector<uint8_t> seen_;  // scratch for Analyze

  double var_activity_increment_ = 1.0;
  double clause_activity_increment_ = 1.0;
  size_t num_original_clauses_ = 0;
  bool unsat_ = false;

  SolveStats stats_;
};

}  // namespace treewm::sat

#endif  // TREEWM_SAT_SOLVER_H_
