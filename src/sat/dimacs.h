// DIMACS CNF reader/writer.
//
// The standard exchange format for SAT instances: "p cnf <vars> <clauses>"
// header, clauses as whitespace-separated non-zero integers terminated by 0,
// 'c' comment lines. Used by tests and the NP-hardness harness.

#ifndef TREEWM_SAT_DIMACS_H_
#define TREEWM_SAT_DIMACS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sat/clause.h"

namespace treewm::sat {

class Solver;

/// An immutable CNF formula in memory.
struct CnfFormula {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

/// Parses DIMACS text.
[[nodiscard]] Result<CnfFormula> ParseDimacs(const std::string& text);

/// Loads a DIMACS file.
[[nodiscard]] Result<CnfFormula> LoadDimacs(const std::string& path);

/// Serializes to DIMACS text.
std::string ToDimacs(const CnfFormula& formula);

/// Loads `formula` into `solver` (creating variables as needed). Returns
/// false if the formula is trivially unsatisfiable during loading.
bool LoadIntoSolver(const CnfFormula& formula, Solver* solver);

}  // namespace treewm::sat

#endif  // TREEWM_SAT_DIMACS_H_
