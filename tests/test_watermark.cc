// Tests for Algorithm 1 (watermark creation).

#include "core/watermark.h"

#include <gtest/gtest.h>

#include "data/sampling.h"
#include "data/synthetic.h"

namespace treewm::core {
namespace {

WatermarkConfig FastConfig(uint64_t seed) {
  WatermarkConfig config;
  config.seed = seed;
  config.grid.max_depth_grid = {4, -1};
  config.grid.num_folds = 2;
  config.trigger_training.forest.feature_fraction = 0.7;
  return config;
}

data::Dataset TrainData(uint64_t seed) {
  return data::synthetic::MakeBlobs(seed, 400, 8, 2.0);
}

TEST(WatermarkerTest, ProducesInterleavedEnsemble) {
  Rng rng(1);
  auto sigma = Signature::Random(12, 0.5, &rng);
  Watermarker watermarker(FastConfig(2));
  auto wm = watermarker.CreateWatermark(TrainData(3), sigma).MoveValue();
  EXPECT_EQ(wm.model.num_trees(), sigma.length());
  EXPECT_EQ(wm.signature, sigma);
  EXPECT_TRUE(wm.t0_converged);
  EXPECT_TRUE(wm.t1_converged);
}

TEST(WatermarkerTest, TriggerBehaviourFollowsSignatureBits) {
  // The defining property of the scheme: on every trigger instance, tree i
  // classifies correctly iff σ_i = 0.
  Rng rng(4);
  auto sigma = Signature::Random(10, 0.4, &rng);
  Watermarker watermarker(FastConfig(5));
  auto wm = watermarker.CreateWatermark(TrainData(6), sigma).MoveValue();
  ASSERT_TRUE(wm.t0_converged && wm.t1_converged);
  for (size_t i = 0; i < wm.trigger_set.num_rows(); ++i) {
    const auto votes = wm.model.PredictAll(wm.trigger_set.Row(i));
    const int y = wm.trigger_set.Label(i);
    for (size_t t = 0; t < sigma.length(); ++t) {
      const int required = sigma.bit(t) == 0 ? y : -y;
      EXPECT_EQ(votes[t], required) << "instance " << i << " tree " << t;
    }
  }
}

TEST(WatermarkerTest, TriggerSetKeepsOriginalLabels) {
  Rng rng(7);
  auto sigma = Signature::Random(8, 0.5, &rng);
  Watermarker watermarker(FastConfig(8));
  auto data = TrainData(9);
  auto wm = watermarker.CreateWatermark(data, sigma).MoveValue();
  ASSERT_EQ(wm.trigger_indices.size(), wm.trigger_set.num_rows());
  for (size_t i = 0; i < wm.trigger_indices.size(); ++i) {
    EXPECT_EQ(wm.trigger_set.Label(i), data.Label(wm.trigger_indices[i]));
  }
}

TEST(WatermarkerTest, TriggerFractionControlsSize) {
  Rng rng(10);
  auto sigma = Signature::Random(6, 0.5, &rng);
  WatermarkConfig config = FastConfig(11);
  config.trigger_fraction = 0.05;
  Watermarker watermarker(config);
  auto wm = watermarker.CreateWatermark(TrainData(12), sigma).MoveValue();
  EXPECT_EQ(wm.trigger_set.num_rows(), 20u);  // 5% of 400
}

TEST(WatermarkerTest, ExplicitTriggerSizeWins) {
  Rng rng(13);
  auto sigma = Signature::Random(6, 0.5, &rng);
  WatermarkConfig config = FastConfig(14);
  config.trigger_size = 7;
  config.trigger_fraction = 0.5;  // ignored
  Watermarker watermarker(config);
  auto wm = watermarker.CreateWatermark(TrainData(15), sigma).MoveValue();
  EXPECT_EQ(wm.trigger_set.num_rows(), 7u);
}

TEST(WatermarkerTest, AccuracyStaysCloseToStandardModel) {
  Rng rng(16);
  auto data = data::synthetic::MakeBreastCancerLike(17);
  auto tt = data::MakeTrainTest(data, 0.3, &rng).MoveValue();
  auto sigma = Signature::Random(20, 0.5, &rng);
  Watermarker watermarker(FastConfig(18));
  auto wm = watermarker.CreateWatermark(tt.train, sigma).MoveValue();

  forest::ForestConfig std_config;
  std_config.num_trees = 20;
  std_config.tree = wm.tuned_config;
  std_config.seed = 19;
  auto standard = forest::RandomForest::Fit(tt.train, {}, std_config).MoveValue();
  const double wm_acc = wm.model.Accuracy(tt.test);
  const double std_acc = standard.Accuracy(tt.test);
  // Paper Figure 3: the loss is at most a couple points.
  EXPECT_GT(wm_acc, std_acc - 0.05);
  EXPECT_GT(wm_acc, 0.85);
}

TEST(WatermarkerTest, AdjustLowersDepthAndLeafLimits) {
  auto data = TrainData(20);
  tree::TreeConfig tuned;  // unlimited
  forest::ForestConfig forest_template;
  forest_template.feature_fraction = 0.7;
  auto adjusted =
      Watermarker::AdjustHyperparameters(data, tuned, forest_template, 10, 21)
          .MoveValue();
  EXPECT_GT(adjusted.max_depth, 0);
  EXPECT_GT(adjusted.max_leaf_nodes, 0);
  // The adjusted limits must bind below the unconstrained structure.
  forest::ForestConfig probe = forest_template;
  probe.num_trees = 10;
  probe.seed = 21;
  auto unconstrained = forest::RandomForest::Fit(data, {}, probe).MoveValue();
  double mean_depth = 0.0;
  for (double v : unconstrained.TreeDepths()) mean_depth += v;
  mean_depth /= 10.0;
  EXPECT_LE(adjusted.max_depth, static_cast<int>(mean_depth) + 1);
}

TEST(WatermarkerTest, AdjustCanBeDisabled) {
  Rng rng(22);
  auto sigma = Signature::Random(8, 0.5, &rng);
  WatermarkConfig config = FastConfig(23);
  config.adjust_hyperparameters = false;
  Watermarker watermarker(config);
  auto wm = watermarker.CreateWatermark(TrainData(24), sigma).MoveValue();
  EXPECT_EQ(wm.adjusted_config.max_depth, wm.tuned_config.max_depth);
  EXPECT_EQ(wm.adjusted_config.max_leaf_nodes, wm.tuned_config.max_leaf_nodes);
}

TEST(WatermarkerTest, AllZeroAndAllOneSignatures) {
  Rng rng(25);
  Watermarker watermarker(FastConfig(26));
  auto data = TrainData(27);
  // All zeros: every tree classifies the trigger correctly.
  auto zeros = Signature::FromBits(std::vector<uint8_t>(6, 0)).MoveValue();
  auto wm0 = watermarker.CreateWatermark(data, zeros).MoveValue();
  EXPECT_EQ(wm0.model.num_trees(), 6u);
  // All ones: every tree misclassifies the trigger.
  auto ones = Signature::FromBits(std::vector<uint8_t>(6, 1)).MoveValue();
  auto wm1 = watermarker.CreateWatermark(data, ones).MoveValue();
  for (size_t i = 0; i < wm1.trigger_set.num_rows(); ++i) {
    for (int v : wm1.model.PredictAll(wm1.trigger_set.Row(i))) {
      EXPECT_EQ(v, -wm1.trigger_set.Label(i));
    }
  }
}

TEST(WatermarkerTest, RejectsTinyTrainingSets) {
  Rng rng(28);
  auto sigma = Signature::Random(4, 0.5, &rng);
  Watermarker watermarker(FastConfig(29));
  data::Dataset tiny(2);
  ASSERT_TRUE(tiny.AddRow(std::vector<float>{0.1f, 0.2f}, +1).ok());
  EXPECT_FALSE(watermarker.CreateWatermark(tiny, sigma).ok());
}

TEST(WatermarkerTest, SkipGridSearchUsesProvidedConfig) {
  Rng rng(30);
  auto sigma = Signature::Random(6, 0.5, &rng);
  WatermarkConfig config = FastConfig(31);
  config.skip_grid_search = true;
  config.adjust_hyperparameters = false;
  config.trigger_training.forest.tree.max_depth = 5;
  Watermarker watermarker(config);
  auto wm = watermarker.CreateWatermark(TrainData(32), sigma).MoveValue();
  EXPECT_EQ(wm.tuned_config.max_depth, 5);
  for (const auto& t : wm.model.trees()) EXPECT_LE(t.Depth(), 5);
}

/// Sweep over signature compositions (paper Figure 3b's x-axis).
class BitFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(BitFractionSweep, WatermarkEmbedsForAnyOnesFraction) {
  const double fraction = GetParam();
  Rng rng(33);
  auto sigma = Signature::Random(10, fraction, &rng);
  Watermarker watermarker(FastConfig(34));
  auto wm = watermarker.CreateWatermark(TrainData(35), sigma).MoveValue();
  EXPECT_TRUE(wm.t0_converged);
  EXPECT_TRUE(wm.t1_converged);
  // Spot-check the signature property on the first trigger instance.
  const auto votes = wm.model.PredictAll(wm.trigger_set.Row(0));
  const int y = wm.trigger_set.Label(0);
  for (size_t t = 0; t < sigma.length(); ++t) {
    EXPECT_EQ(votes[t], sigma.bit(t) == 0 ? y : -y);
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, BitFractionSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6));

}  // namespace
}  // namespace treewm::core
