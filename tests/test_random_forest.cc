// Unit tests for the random forest.

#include "forest/random_forest.h"

#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.h"

namespace treewm::forest {
namespace {

TEST(ForestConfigTest, Validation) {
  ForestConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.num_trees = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.num_trees = 5;
  config.feature_fraction = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config.feature_fraction = 0.5;
  config.tree.max_depth = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(RandomForestTest, FitsAndPredicts) {
  auto d = data::synthetic::MakeBlobs(1, 400, 6, 2.5);
  ForestConfig config;
  config.num_trees = 11;
  config.seed = 3;
  auto forest = RandomForest::Fit(d, {}, config).MoveValue();
  EXPECT_EQ(forest.num_trees(), 11u);
  EXPECT_EQ(forest.num_features(), 6u);
  EXPECT_GT(forest.Accuracy(d), 0.95);
}

TEST(RandomForestTest, PredictAllHasOneVotePerTree) {
  auto d = data::synthetic::MakeBlobs(2, 100, 4, 2.0);
  ForestConfig config;
  config.num_trees = 7;
  auto forest = RandomForest::Fit(d, {}, config).MoveValue();
  auto votes = forest.PredictAll(d.Row(0));
  EXPECT_EQ(votes.size(), 7u);
  for (int v : votes) EXPECT_TRUE(v == +1 || v == -1);
  // Per-tree votes must match querying each tree directly.
  for (size_t t = 0; t < forest.num_trees(); ++t) {
    EXPECT_EQ(votes[t], forest.trees()[t].Predict(d.Row(0)));
  }
}

TEST(RandomForestTest, MajorityVoteConsistentWithPredictAll) {
  auto d = data::synthetic::MakeBlobs(3, 150, 4, 0.8);
  ForestConfig config;
  config.num_trees = 9;
  auto forest = RandomForest::Fit(d, {}, config).MoveValue();
  for (size_t i = 0; i < 20; ++i) {
    auto votes = forest.PredictAll(d.Row(i));
    int sum = 0;
    for (int v : votes) sum += v;
    const int expected = sum >= 0 ? +1 : -1;
    EXPECT_EQ(forest.Predict(d.Row(i)), expected);
  }
}

TEST(RandomForestTest, DeterministicAcrossThreadCounts) {
  auto d = data::synthetic::MakeBlobs(4, 300, 8, 1.0);
  ForestConfig serial;
  serial.num_trees = 8;
  serial.seed = 5;
  serial.num_threads = 1;
  ForestConfig parallel = serial;
  parallel.num_threads = 4;
  auto a = RandomForest::Fit(d, {}, serial).MoveValue();
  auto b = RandomForest::Fit(d, {}, parallel).MoveValue();
  ASSERT_EQ(a.num_trees(), b.num_trees());
  for (size_t t = 0; t < a.num_trees(); ++t) {
    EXPECT_TRUE(a.trees()[t].StructurallyEqual(b.trees()[t])) << "tree " << t;
  }
}

TEST(RandomForestTest, SeedChangesFeatureSubsets) {
  auto d = data::synthetic::MakeBlobs(5, 200, 10, 1.0);
  ForestConfig c1;
  c1.num_trees = 4;
  c1.seed = 1;
  ForestConfig c2 = c1;
  c2.seed = 2;
  auto a = RandomForest::Fit(d, {}, c1).MoveValue();
  auto b = RandomForest::Fit(d, {}, c2).MoveValue();
  bool any_difference = false;
  for (size_t t = 0; t < 4; ++t) {
    if (a.trees()[t].feature_subset() != b.trees()[t].feature_subset()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(RandomForestTest, DefaultFeatureFractionIsSqrt) {
  auto d = data::synthetic::MakeBlobs(6, 100, 16, 2.0);
  ForestConfig config;
  config.num_trees = 3;
  auto forest = RandomForest::Fit(d, {}, config).MoveValue();
  for (const auto& t : forest.trees()) {
    EXPECT_EQ(t.feature_subset().size(), 4u);  // sqrt(16)
  }
}

TEST(RandomForestTest, ExplicitFeatureFraction) {
  auto d = data::synthetic::MakeBlobs(7, 100, 10, 2.0);
  ForestConfig config;
  config.num_trees = 3;
  config.feature_fraction = 0.5;
  auto forest = RandomForest::Fit(d, {}, config).MoveValue();
  for (const auto& t : forest.trees()) {
    EXPECT_EQ(t.feature_subset().size(), 5u);
  }
}

TEST(RandomForestTest, WeightsReachEveryTree) {
  // Duplicate conflicting points; weights force all trees to agree.
  data::Dataset d(2);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(d.AddRow(std::vector<float>{0.5f, 0.5f}, +1).ok());
    ASSERT_TRUE(d.AddRow(std::vector<float>{0.5f, 0.5f}, -1).ok());
  }
  std::vector<double> weights(d.num_rows(), 1.0);
  for (size_t i = 0; i < d.num_rows(); i += 2) weights[i] = 10.0;  // favor +1
  ForestConfig config;
  config.num_trees = 5;
  auto forest = RandomForest::Fit(d, weights, config).MoveValue();
  for (int v : forest.PredictAll(d.Row(0))) EXPECT_EQ(v, +1);
}

TEST(RandomForestTest, RejectsBadWeightVectorBeforeTraining) {
  // A non-empty weight vector whose size != num_rows must fail fast with
  // InvalidArgument at the forest level (before any column sort or thread
  // fan-out), never index out of range inside the splitter.
  data::Dataset d(2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(d.AddRow(std::vector<float>{0.1f * static_cast<float>(i), 0.5f},
                         i % 2 == 0 ? +1 : -1)
                    .ok());
  }
  ForestConfig config;
  config.num_trees = 3;
  for (size_t bad_size : {1u, 9u, 11u}) {
    auto result = RandomForest::Fit(d, std::vector<double>(bad_size, 1.0), config);
    ASSERT_FALSE(result.ok()) << "weights size " << bad_size;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(RandomForestTest, FromTreesValidates) {
  EXPECT_FALSE(RandomForest::FromTrees({}).ok());
  auto t1 = tree::DecisionTree::FromNodes({tree::TreeNode{-1, 0, -1, -1, +1}}, 2)
                .MoveValue();
  auto t2 = tree::DecisionTree::FromNodes({tree::TreeNode{-1, 0, -1, -1, -1}}, 3)
                .MoveValue();
  EXPECT_FALSE(RandomForest::FromTrees({t1, t2}).ok());  // feature mismatch
  auto ok = RandomForest::FromTrees({t1, t1});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().num_trees(), 2u);
}

TEST(RandomForestTest, TieBreaksPositive) {
  auto plus = tree::DecisionTree::FromNodes({tree::TreeNode{-1, 0, -1, -1, +1}}, 1)
                  .MoveValue();
  auto minus = tree::DecisionTree::FromNodes({tree::TreeNode{-1, 0, -1, -1, -1}}, 1)
                   .MoveValue();
  auto forest = RandomForest::FromTrees({plus, minus}).MoveValue();
  EXPECT_EQ(forest.Predict(std::vector<float>{0.0f}), data::kPositive);
}

TEST(RandomForestTest, StatisticsVectors) {
  auto d = data::synthetic::MakeBlobs(8, 300, 6, 1.0);
  ForestConfig config;
  config.num_trees = 6;
  auto forest = RandomForest::Fit(d, {}, config).MoveValue();
  auto depths = forest.TreeDepths();
  auto leaves = forest.TreeLeafCounts();
  ASSERT_EQ(depths.size(), 6u);
  ASSERT_EQ(leaves.size(), 6u);
  for (size_t t = 0; t < 6; ++t) {
    EXPECT_DOUBLE_EQ(depths[t], forest.trees()[t].Depth());
    EXPECT_DOUBLE_EQ(leaves[t], forest.trees()[t].NumLeaves());
  }
}

TEST(ForestJsonTest, RoundTripPreservesPredictions) {
  auto d = data::synthetic::MakeBlobs(9, 120, 5, 1.5);
  ForestConfig config;
  config.num_trees = 4;
  auto forest = RandomForest::Fit(d, {}, config).MoveValue();
  auto parsed = RandomForest::FromJson(forest.ToJson());
  ASSERT_TRUE(parsed.ok());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_EQ(parsed.value().PredictAll(d.Row(i)), forest.PredictAll(d.Row(i)));
  }
}

TEST(PredictAllBatchTest, MatchesPerRowCalls) {
  auto d = data::synthetic::MakeBlobs(10, 50, 4, 1.0);
  ForestConfig config;
  config.num_trees = 3;
  auto forest = RandomForest::Fit(d, {}, config).MoveValue();
  auto batch = forest.PredictAllBatch(d);
  ASSERT_EQ(batch.size(), d.num_rows());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_EQ(batch[i], forest.PredictAll(d.Row(i)));
  }
}

}  // namespace
}  // namespace treewm::forest
