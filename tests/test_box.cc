// Unit tests for the interval-box constraint store.

#include "smt/box.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace treewm::smt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(IntervalTest, ContainsUsesHalfOpenConvention) {
  Interval iv{0.2, 0.8};
  EXPECT_FALSE(iv.Contains(0.2));  // lower bound excluded
  EXPECT_TRUE(iv.Contains(0.8));   // upper bound included
  EXPECT_TRUE(iv.Contains(0.5));
  EXPECT_FALSE(iv.Contains(0.9));
  EXPECT_FALSE(iv.Empty());
  EXPECT_TRUE((Interval{0.5, 0.5}).Empty());
}

TEST(BoxTest, StartsUniversal) {
  Box box(3);
  for (int f = 0; f < 3; ++f) {
    EXPECT_EQ(box.Get(f).lo, -kInf);
    EXPECT_EQ(box.Get(f).hi, kInf);
  }
}

TEST(BoxTest, ConstrainIntersects) {
  Box box(2);
  EXPECT_TRUE(box.Constrain(0, 0.1, 0.9));
  EXPECT_TRUE(box.Constrain(0, 0.3, 1.5));
  EXPECT_DOUBLE_EQ(box.Get(0).lo, 0.3);
  EXPECT_DOUBLE_EQ(box.Get(0).hi, 0.9);
  EXPECT_EQ(box.Get(1).lo, -kInf);  // untouched dimension
}

TEST(BoxTest, EmptyIntersectionFailsWithoutMutation) {
  Box box(1);
  EXPECT_TRUE(box.Constrain(0, 0.0, 0.4));
  EXPECT_FALSE(box.Constrain(0, 0.6, 1.0));
  EXPECT_DOUBLE_EQ(box.Get(0).lo, 0.0);
  EXPECT_DOUBLE_EQ(box.Get(0).hi, 0.4);
}

TEST(BoxTest, DegenerateIntersectionIsEmpty) {
  // (a, b] ∩ (b, c] = empty under the half-open convention.
  Box box(1);
  EXPECT_TRUE(box.Constrain(0, -kInf, 0.5));
  EXPECT_FALSE(box.Constrain(0, 0.5, 1.0));
}

TEST(BoxTest, MarkRevertRestoresState) {
  Box box(2);
  EXPECT_TRUE(box.Constrain(0, 0.0, 1.0));
  const size_t mark = box.Mark();
  EXPECT_TRUE(box.Constrain(0, 0.2, 0.8));
  EXPECT_TRUE(box.Constrain(1, 0.4, 0.6));
  box.RevertTo(mark);
  EXPECT_DOUBLE_EQ(box.Get(0).lo, 0.0);
  EXPECT_DOUBLE_EQ(box.Get(0).hi, 1.0);
  EXPECT_EQ(box.Get(1).lo, -kInf);
}

TEST(BoxTest, NestedMarksRevertInLifoOrder) {
  Box box(1);
  EXPECT_TRUE(box.Constrain(0, 0.0, 1.0));
  const size_t outer = box.Mark();
  EXPECT_TRUE(box.Constrain(0, 0.1, 0.9));
  const size_t inner = box.Mark();
  EXPECT_TRUE(box.Constrain(0, 0.2, 0.8));
  box.RevertTo(inner);
  EXPECT_DOUBLE_EQ(box.Get(0).lo, 0.1);
  box.RevertTo(outer);
  EXPECT_DOUBLE_EQ(box.Get(0).lo, 0.0);
}

TEST(BoxTest, RedundantConstrainAddsNoTrailEntry) {
  Box box(1);
  EXPECT_TRUE(box.Constrain(0, 0.2, 0.8));
  const size_t mark = box.Mark();
  EXPECT_TRUE(box.Constrain(0, 0.0, 1.0));  // no-op: wider than current
  EXPECT_EQ(box.Mark(), mark);
}

TEST(BoxTest, ConstrainClosedKeepsLowerEndpointFeasible) {
  Box box(1);
  EXPECT_TRUE(box.ConstrainClosed(0, 0.3, 0.7));
  EXPECT_TRUE(box.Get(0).Contains(0.3));
  EXPECT_TRUE(box.Get(0).Contains(0.7));
  EXPECT_FALSE(box.Get(0).Contains(0.29999));
}

TEST(BoxTest, CompatibleWithDoesNotMutate) {
  Box box(1);
  EXPECT_TRUE(box.Constrain(0, 0.0, 0.5));
  EXPECT_TRUE(box.CompatibleWith(0, 0.2, 0.9));
  EXPECT_FALSE(box.CompatibleWith(0, 0.6, 0.9));
  EXPECT_DOUBLE_EQ(box.Get(0).hi, 0.5);
}

TEST(BoxWitnessTest, WitnessLiesInsideEveryInterval) {
  Box box(3);
  EXPECT_TRUE(box.ConstrainClosed(0, 0.0, 1.0));
  EXPECT_TRUE(box.ConstrainClosed(1, 0.0, 1.0));
  EXPECT_TRUE(box.ConstrainClosed(2, 0.0, 1.0));
  EXPECT_TRUE(box.Constrain(0, 0.25, 0.75));
  EXPECT_TRUE(box.Constrain(2, 0.9, 2.0));
  auto witness = box.Witness({});
  ASSERT_EQ(witness.size(), 3u);
  for (int f = 0; f < 3; ++f) {
    EXPECT_TRUE(box.Get(f).Contains(witness[static_cast<size_t>(f)]))
        << "feature " << f;
  }
}

TEST(BoxWitnessTest, AnchorIsKeptWhenFeasible) {
  Box box(2);
  EXPECT_TRUE(box.ConstrainClosed(0, 0.0, 1.0));
  EXPECT_TRUE(box.ConstrainClosed(1, 0.0, 1.0));
  std::vector<float> anchor{0.33f, 0.77f};
  auto witness = box.Witness(anchor);
  EXPECT_FLOAT_EQ(witness[0], 0.33f);
  EXPECT_FLOAT_EQ(witness[1], 0.77f);
}

TEST(BoxWitnessTest, AnchorIsClampedWhenOutside) {
  Box box(1);
  EXPECT_TRUE(box.ConstrainClosed(0, 0.0, 1.0));
  EXPECT_TRUE(box.Constrain(0, 0.4, 0.6));
  std::vector<float> anchor{0.9f};
  auto witness = box.Witness(anchor);
  EXPECT_TRUE(box.Get(0).Contains(witness[0]));
  EXPECT_LE(witness[0], 0.6f);
}

/// Property sweep: witnesses are valid for arbitrary nested constraints.
class BoxWitnessSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoxWitnessSweep, RandomConstraintChainsKeepWitnessInside) {
  Rng rng(GetParam());
  Box box(4);
  for (int f = 0; f < 4; ++f) ASSERT_TRUE(box.ConstrainClosed(f, 0.0, 1.0));
  for (int step = 0; step < 30; ++step) {
    const int f = static_cast<int>(rng.UniformInt(4));
    const double a = rng.UniformReal();
    const double b = a + rng.UniformReal() * (1.0 - a);
    box.Constrain(f, a, b);  // may fail; box must stay consistent
    auto witness = box.Witness({});
    for (int g = 0; g < 4; ++g) {
      EXPECT_TRUE(box.Get(g).Contains(witness[static_cast<size_t>(g)]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxWitnessSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace treewm::smt
