// Property tests for the sort-once training engine: the presorted
// column-index trainer must produce BIT-IDENTICAL trees, forests and GBDTs
// to the retained naive reference (per-node re-sorting splitter), across
// duplicate feature values, weighted rows, min_samples_leaf edges, constant
// features, both criteria, best-first growth, boosting stages and thread
// counts. See src/tree/README.md for the equivalence contract.

#include "tree/trainer_core.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "boosting/gbdt.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "tree/decision_tree.h"
#include "tree/sorted_columns.h"

namespace treewm::tree {
namespace {

/// A dataset drawn on a coarse value grid — duplicate feature values (tied
/// runs) are the norm, not the exception, which is exactly what stresses the
/// stable-tie accumulation contract.
data::Dataset MakeGridDataset(uint64_t seed, size_t rows, size_t features,
                              uint64_t levels) {
  Rng rng(seed);
  data::Dataset d(features);
  std::vector<float> row(features);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < features; ++j) {
      row[j] = static_cast<float>(rng.UniformInt(levels)) /
               static_cast<float>(levels > 1 ? levels - 1 : 1);
    }
    const int label = rng.Bernoulli(0.5) ? data::kPositive : data::kNegative;
    EXPECT_TRUE(d.AddRow(row, label).ok());
  }
  return d;
}

/// Random weight vectors exercising the FP-order-sensitive cases: empty
/// (unit), smooth random, and two-valued trigger-style (distinct weights
/// inside value-tied runs).
std::vector<double> MakeWeights(uint64_t seed, size_t rows, int kind) {
  if (kind == 0) return {};
  Rng rng(seed);
  std::vector<double> w(rows, 1.0);
  for (size_t i = 0; i < rows; ++i) {
    w[i] = kind == 1 ? 0.25 + rng.UniformReal() * 4.0
                     : (rng.Bernoulli(0.2) ? 7.3 : 1.0);
  }
  return w;
}

bool RegressionTreesIdentical(const boosting::RegressionTree& a,
                              const boosting::RegressionTree& b) {
  if (a.nodes().size() != b.nodes().size()) return false;
  for (size_t i = 0; i < a.nodes().size(); ++i) {
    const auto& na = a.nodes()[i];
    const auto& nb = b.nodes()[i];
    if (na.feature != nb.feature || na.left != nb.left || na.right != nb.right) {
      return false;
    }
    if (na.feature != -1 && na.threshold != nb.threshold) return false;
    if (na.feature == -1 && na.value != nb.value) return false;  // bit equality
  }
  return true;
}

TEST(SortedColumnsTest, ColumnsAreSortedWithStableTies) {
  data::Dataset d = MakeGridDataset(3, 200, 4, 8);
  auto sorted = SortedColumns::Build(d);
  ASSERT_EQ(sorted->num_rows(), 200u);
  ASSERT_EQ(sorted->num_features(), 4u);
  for (size_t f = 0; f < 4; ++f) {
    auto col = sorted->Column(f);
    ASSERT_EQ(col.size(), 200u);
    std::vector<bool> seen(200, false);
    for (size_t i = 0; i < col.size(); ++i) {
      EXPECT_EQ(col[i].value, d.At(col[i].row, f));
      EXPECT_FALSE(seen[col[i].row]);
      seen[col[i].row] = true;
      if (i > 0) {
        EXPECT_LE(col[i - 1].value, col[i].value);
        if (col[i - 1].value == col[i].value) {
          EXPECT_LT(col[i - 1].row, col[i].row);  // ties ascending by row
        }
      }
    }
  }
}

TEST(SortedColumnsTest, ParallelBuildIsBitIdenticalAtEveryThreadCount) {
  // The per-feature sorts are independent, so fanning them out across a pool
  // must reproduce the serial build exactly — same rows, same values, same
  // tie order — at every pool width (including widths above the feature
  // count, which leave some workers idle).
  data::Dataset d = MakeGridDataset(811, 400, 6, 5);  // coarse grid: tie-heavy
  auto serial = SortedColumns::Build(d, nullptr);
  for (size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    auto parallel = SortedColumns::Build(d, &pool);
    ASSERT_EQ(parallel->num_features(), serial->num_features());
    for (size_t f = 0; f < serial->num_features(); ++f) {
      auto a = serial->Column(f);
      auto b = parallel->Column(f);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].row, b[i].row) << "threads=" << threads << " f=" << f;
        EXPECT_EQ(a[i].value, b[i].value) << "threads=" << threads << " f=" << f;
      }
    }
  }
  // The default Build (global pool) matches too.
  auto pooled = SortedColumns::Build(d);
  for (size_t f = 0; f < serial->num_features(); ++f) {
    auto a = serial->Column(f);
    auto b = pooled->Column(f);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].row, b[i].row);
      EXPECT_EQ(a[i].value, b[i].value);
    }
  }
}

TEST(TrainerCoreTest, ApplySplitKeepsEveryColumnSortedAndTieStable) {
  data::Dataset d = MakeGridDataset(5, 150, 3, 6);
  auto sorted = SortedColumns::Build(d);
  TrainerCore core(*sorted, {0, 1, 2}, /*with_identity=*/true);

  // Split the root on feature 1 at its median prefix.
  const size_t left_count = 70;
  const size_t mid = core.ApplySplit(0, 150, core.SlotOf(1), left_count);
  ASSERT_EQ(mid, left_count);

  // The left side is exactly the value-sorted prefix rows of feature 1.
  auto split_col = core.Column(core.SlotOf(1), 0, mid);
  std::vector<bool> is_left(150, false);
  for (const ColumnEntry& e : split_col) is_left[e.row] = true;

  for (size_t slot = 0; slot < 3; ++slot) {
    for (auto [begin, end] : {std::pair<size_t, size_t>{0, mid},
                              std::pair<size_t, size_t>{mid, 150}}) {
      auto col = core.Column(slot, begin, end);
      size_t members = 0;
      for (size_t i = 0; i < col.size(); ++i) {
        EXPECT_EQ(is_left[col[i].row], begin == 0);
        ++members;
        if (i > 0) {
          EXPECT_LE(col[i - 1].value, col[i].value);
          if (col[i - 1].value == col[i].value) {
            EXPECT_LT(col[i - 1].row, col[i].row);
          }
        }
      }
      EXPECT_EQ(members, end - begin);
    }
  }
  // Identity column: each side in ascending original-row order.
  for (auto [begin, end] : {std::pair<size_t, size_t>{0, mid},
                            std::pair<size_t, size_t>{mid, 150}}) {
    auto ids = core.Members(begin, end);
    for (size_t i = 1; i < ids.size(); ++i) {
      EXPECT_LT(ids[i - 1].row, ids[i].row);
    }
  }
}

TEST(TrainerEquivalenceTest, TreesMatchReferenceAcrossRandomizedSettings) {
  // The headline property: for every combination of tie density, weight
  // style, criterion, leaf cap and depth cap, the sort-once trainer emits
  // the same node array (same features, bit-identical thresholds, same
  // child indices, same labels) as the retained naive reference.
  size_t cases = 0;
  for (uint64_t levels : {4u, 16u, 1u << 20}) {
    for (int weight_kind : {0, 1, 2}) {
      for (SplitCriterion criterion :
           {SplitCriterion::kGini, SplitCriterion::kEntropy}) {
        for (int limits = 0; limits < 3; ++limits) {
          const uint64_t seed = 100 + cases;
          data::Dataset d = MakeGridDataset(seed, 180, 5, levels);
          std::vector<double> w = MakeWeights(seed * 7 + 1, 180, weight_kind);
          TreeConfig config;
          config.criterion = criterion;
          if (limits == 1) {
            config.max_leaf_nodes = 9;  // best-first growth
            config.min_samples_leaf = 3;
          } else if (limits == 2) {
            config.max_depth = 4;
            config.min_samples_split = 8;
          }
          auto fast = DecisionTree::Fit(d, w, config);
          auto reference = DecisionTree::FitReference(d, w, config);
          ASSERT_TRUE(fast.ok() && reference.ok());
          EXPECT_TRUE(fast.value().StructurallyEqual(reference.value()))
              << "levels=" << levels << " weights=" << weight_kind
              << " criterion=" << static_cast<int>(criterion)
              << " limits=" << limits;
          ++cases;
        }
      }
    }
  }
  EXPECT_EQ(cases, 54u);
}

TEST(TrainerEquivalenceTest, WeightedTieRunsMatchBitForBit) {
  // Distinct weights inside value-tied runs are the FP-order-sensitive case
  // the stable-tie contract exists for: both engines must accumulate the
  // tied run in ascending row order or gains drift by ulps.
  data::Dataset d = MakeGridDataset(77, 300, 3, 3);  // 3 levels -> huge tie runs
  Rng rng(78);
  std::vector<double> w(300);
  for (auto& x : w) x = 0.1 + rng.UniformReal() * 9.9;
  TreeConfig config;
  auto fast = DecisionTree::Fit(d, w, config).MoveValue();
  auto reference = DecisionTree::FitReference(d, w, config).MoveValue();
  EXPECT_TRUE(fast.StructurallyEqual(reference));
}

TEST(TrainerEquivalenceTest, ConstantAndNearConstantFeatures) {
  data::Dataset d(4);
  Rng rng(9);
  for (size_t i = 0; i < 120; ++i) {
    // f0 constant, f1 constant except one row, f2/f3 informative.
    std::vector<float> row{0.5f, i == 57 ? 0.9f : 0.2f,
                           static_cast<float>(rng.UniformReal()),
                           static_cast<float>(rng.UniformInt(4)) / 3.0f};
    const int label = row[2] + row[3] > 0.8f ? data::kPositive : data::kNegative;
    ASSERT_TRUE(d.AddRow(row, label).ok());
  }
  for (size_t msl : {1u, 2u, 10u}) {
    TreeConfig config;
    config.min_samples_leaf = msl;
    auto fast = DecisionTree::Fit(d, {}, config).MoveValue();
    auto reference = DecisionTree::FitReference(d, {}, config).MoveValue();
    EXPECT_TRUE(fast.StructurallyEqual(reference)) << "min_samples_leaf=" << msl;
  }
}

TEST(TrainerEquivalenceTest, FeatureSubsetOrderIsRespected) {
  // Sweep order = subset order (it breaks equal-gain ties), including
  // subsets given in non-ascending order as RandomForest draws them.
  data::Dataset d = MakeGridDataset(31, 160, 6, 8);
  for (const std::vector<int>& subset :
       {std::vector<int>{3, 0, 5}, std::vector<int>{5, 4, 3, 2, 1, 0},
        std::vector<int>{1}}) {
    auto fast = DecisionTree::Fit(d, {}, TreeConfig{}, subset).MoveValue();
    auto reference =
        DecisionTree::FitReference(d, {}, TreeConfig{}, subset).MoveValue();
    EXPECT_TRUE(fast.StructurallyEqual(reference));
  }
}

TEST(TrainerEquivalenceTest, PrebuiltColumnsMatchInternalBuild) {
  data::Dataset d = MakeGridDataset(41, 140, 4, 10);
  auto sorted = SortedColumns::Build(d);
  auto with = DecisionTree::Fit(d, {}, TreeConfig{}, {}, sorted.get()).MoveValue();
  auto without = DecisionTree::Fit(d, {}, TreeConfig{}).MoveValue();
  EXPECT_TRUE(with.StructurallyEqual(without));
}

TEST(TrainerEquivalenceTest, MismatchedSortedColumnsAreRejected) {
  data::Dataset d = MakeGridDataset(43, 100, 4, 10);
  data::Dataset other = MakeGridDataset(44, 60, 4, 10);
  auto wrong = SortedColumns::Build(other);
  EXPECT_FALSE(DecisionTree::Fit(d, {}, TreeConfig{}, {}, wrong.get()).ok());
  EXPECT_FALSE(boosting::RegressionTree::Fit(d, std::vector<double>(100, 0.5),
                                             boosting::RegressionTreeConfig{},
                                             wrong.get())
                   .ok());
  forest::ForestConfig fc;
  fc.num_trees = 2;
  EXPECT_FALSE(forest::RandomForest::Fit(d, {}, fc, wrong).ok());
}

TEST(TrainerEquivalenceTest, RegressionTreesMatchReference) {
  for (uint64_t levels : {3u, 12u, 1u << 20}) {
    for (size_t msl : {1u, 4u}) {
      const uint64_t seed = 200 + levels + msl;
      data::Dataset d = MakeGridDataset(seed, 220, 4, levels);
      Rng rng(seed + 1);
      std::vector<double> targets(220);
      for (auto& t : targets) t = rng.Gaussian();
      boosting::RegressionTreeConfig config;
      config.max_depth = 5;
      config.min_samples_leaf = msl;
      auto fast = boosting::RegressionTree::Fit(d, targets, config).MoveValue();
      auto reference =
          boosting::RegressionTree::FitReference(d, targets, config).MoveValue();
      EXPECT_TRUE(RegressionTreesIdentical(fast, reference))
          << "levels=" << levels << " msl=" << msl;
    }
  }
}

TEST(TrainerEquivalenceTest, GbdtStagesMatchReferenceBitForBit) {
  // Boosting couples the stages: round k's targets depend on every earlier
  // tree, so ANY divergence anywhere compounds. Equality of the final model
  // therefore proves per-stage equality too.
  data::Dataset d = MakeGridDataset(301, 240, 5, 9);
  boosting::GbdtConfig config;
  config.num_trees = 12;
  config.tree.max_depth = 3;
  auto fast = boosting::Gbdt::Fit(d, config).MoveValue();
  config.use_reference_trainer = true;
  auto reference = boosting::Gbdt::Fit(d, config).MoveValue();

  ASSERT_EQ(fast.num_trees(), reference.num_trees());
  EXPECT_EQ(fast.initial_score(), reference.initial_score());
  for (size_t t = 0; t < fast.num_trees(); ++t) {
    EXPECT_TRUE(RegressionTreesIdentical(fast.trees()[t], reference.trees()[t]))
        << "stage " << t;
  }
  for (size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(fast.Score(d.Row(i)), reference.Score(d.Row(i)));  // bit equality
  }
}

TEST(TrainerEquivalenceTest, ForestsMatchReferenceAtEveryThreadCount) {
  data::Dataset d = MakeGridDataset(401, 200, 6, 7);
  forest::ForestConfig config;
  config.num_trees = 6;
  config.feature_fraction = 0.5;
  config.seed = 17;
  config.num_threads = 1;
  config.use_reference_trainer = true;
  auto reference = forest::RandomForest::Fit(d, {}, config).MoveValue();

  std::vector<double> weights = MakeWeights(402, 200, 2);
  config.use_reference_trainer = true;
  auto weighted_reference = forest::RandomForest::Fit(d, weights, config).MoveValue();

  for (size_t threads : {1u, 2u, 5u}) {
    forest::ForestConfig fast_config = config;
    fast_config.use_reference_trainer = false;
    fast_config.num_threads = threads;
    auto fast = forest::RandomForest::Fit(d, {}, fast_config).MoveValue();
    ASSERT_EQ(fast.num_trees(), reference.num_trees());
    for (size_t t = 0; t < fast.num_trees(); ++t) {
      EXPECT_TRUE(fast.trees()[t].StructurallyEqual(reference.trees()[t]))
          << "threads=" << threads << " tree=" << t;
    }
    auto fast_weighted = forest::RandomForest::Fit(d, weights, fast_config).MoveValue();
    for (size_t t = 0; t < fast_weighted.num_trees(); ++t) {
      EXPECT_TRUE(
          fast_weighted.trees()[t].StructurallyEqual(weighted_reference.trees()[t]))
          << "weighted threads=" << threads << " tree=" << t;
    }
  }
}

TEST(TrainerEquivalenceTest, RealisticDatasetsMatchToo) {
  // Not just adversarial grids: the paper's synthetic stand-ins flow through
  // the same contract (blobs are continuous; ijcnn1-like is imbalanced).
  for (int which : {0, 1}) {
    data::Dataset d = which == 0 ? data::synthetic::MakeBlobs(501, 250, 6, 1.1)
                                 : data::synthetic::MakeIjcnn1Like(502, 250);
    TreeConfig config;
    config.max_leaf_nodes = 24;
    auto fast = DecisionTree::Fit(d, {}, config).MoveValue();
    auto reference = DecisionTree::FitReference(d, {}, config).MoveValue();
    EXPECT_TRUE(fast.StructurallyEqual(reference)) << "dataset " << which;
  }
}

}  // namespace
}  // namespace treewm::tree
