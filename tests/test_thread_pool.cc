// Unit tests for the thread pool and ParallelFor.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "common/fault_injection.h"

namespace treewm {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { ++counter; }).ok());
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  ASSERT_TRUE(pool.Submit([&counter] { ++counter; }).ok());
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  ASSERT_TRUE(pool.Submit([&counter] { ++counter; }).ok());
  ASSERT_TRUE(pool.Submit([&counter] { ++counter; }).ok());
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  ASSERT_TRUE(pool.Submit([&counter] { ++counter; }).ok());
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(pool.Submit([&counter] { ++counter; }).ok());
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> hits(10, 0);
  ParallelFor(nullptr, hits.size(), [&hits](size_t i) { hits[i] = static_cast<int>(i); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], static_cast<int>(i));
}

TEST(ParallelForTest, ZeroAndOneCounts) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  ParallelFor(&pool, 0, [&counter](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 0);
  ParallelFor(&pool, 1, [&counter](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForTest, ResultsIndependentOfThreadCount) {
  // Summing i^2 must give the same result serial and parallel.
  auto run = [](size_t threads) {
    ThreadPool pool(threads);
    std::vector<uint64_t> parts(500);
    ParallelFor(&pool, parts.size(), [&parts](size_t i) {
      parts[i] = static_cast<uint64_t>(i) * static_cast<uint64_t>(i);
    });
    return std::accumulate(parts.begin(), parts.end(), uint64_t{0});
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ParallelForTest, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  // A ParallelFor body that itself calls ParallelFor on the same pool must
  // not block waiting for workers it is occupying: the inner loop detects
  // the worker thread and runs inline.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  ParallelFor(&pool, 8, [&](size_t) {
    ParallelFor(&pool, 8, [&](size_t) { ++counter; });
  });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolShutdownTest, TasksAcceptedBeforeShutdownAllRun) {
  // Drain-on-shutdown: an OK Submit is a guarantee the task runs, even when
  // Shutdown arrives while hundreds of tasks are still queued behind slow
  // ones.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  int accepted = 0;
  for (int i = 0; i < 200; ++i) {
    Status st = pool.Submit([&counter] {
      // lint ok: tasks must outlast the Shutdown call to build a real backlog
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      ++counter;
    });
    if (st.ok()) ++accepted;
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), accepted);
  EXPECT_EQ(accepted, 200);  // nothing raced Shutdown here
}

TEST(ThreadPoolShutdownTest, SubmitAfterShutdownRejectedWithStatus) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_TRUE(pool.IsShutdown());
  bool ran = false;
  Status st = pool.Submit([&ran] { ran = true; });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(ran);  // a rejected task must never run
}

TEST(ThreadPoolShutdownTest, ShutdownIsIdempotentAndConcurrencySafe) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    // All 64 land before any closer runs, so acceptance is guaranteed.
    ASSERT_TRUE(pool.Submit([&counter] { ++counter; }).ok());
  }
  // Several threads race to shut down; all must return with the pool drained.
  // lint ok: the pool under test is being shut down — the racers must be raw
  std::vector<std::thread> closers;
  for (int i = 0; i < 4; ++i) closers.emplace_back([&pool] { pool.Shutdown(); });
  for (auto& t : closers) t.join();
  EXPECT_EQ(counter.load(), 64);
  pool.Shutdown();  // and again, after the workers are joined
  EXPECT_TRUE(pool.IsShutdown());
}

TEST(ThreadPoolShutdownTest, NoSilentDropsUnderConcurrentSubmitAndShutdown) {
  // Every Submit outcome must be accounted for: OK -> ran, !OK -> never ran.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::atomic<int> accepted{0};
  // lint ok: producers must keep submitting THROUGH Shutdown on the pool
  // under test — hosting them in another pool would serialize the race away
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &ran, &accepted] {
      for (int i = 0; i < 100; ++i) {
        if (pool.Submit([&ran] { ++ran; }).ok()) ++accepted;
      }
    });
  }
  // lint ok: lets Shutdown land mid-stream of real submissions; no deadline
  // logic — FakeClock cannot jitter a real race
  std::this_thread::sleep_for(std::chrono::microseconds(200));
  pool.Shutdown();
  for (auto& t : producers) t.join();
  pool.Shutdown();  // drain anything accepted after the first Shutdown won the race
  EXPECT_EQ(ran.load(), accepted.load());
}

TEST(ThreadPoolFaultTest, InjectedSubmitRejectionFallsBackInline) {
  // With "thread_pool.submit.reject" armed, ParallelFor's Submit calls fail
  // but the loop still covers every index via the inline fallback.
  ThreadPool pool(4);
  ScopedFault fault("thread_pool.submit.reject", FaultSpec{});
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(&pool, hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_GT(fault.fires(), 0u);
}

TEST(ThreadPoolFaultTest, WorkerStallDelaysButNeverDropsTasks) {
  ThreadPool pool(2);
  FaultSpec spec;
  spec.stall = std::chrono::microseconds(100);
  spec.max_fires = 5;
  ScopedFault fault("thread_pool.worker.stall", spec);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { ++counter; }).ok());
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
  EXPECT_EQ(fault.fires(), 5u);
}

TEST(GlobalPoolTest, IsSingletonAndUsable) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  std::atomic<int> counter{0};
  ParallelFor(&a, 10, [&counter](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace treewm
