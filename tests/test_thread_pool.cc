// Unit tests for the thread pool and ParallelFor.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace treewm {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { ++counter; });
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) pool.Submit([&counter] { ++counter; });
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> hits(10, 0);
  ParallelFor(nullptr, hits.size(), [&hits](size_t i) { hits[i] = static_cast<int>(i); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], static_cast<int>(i));
}

TEST(ParallelForTest, ZeroAndOneCounts) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  ParallelFor(&pool, 0, [&counter](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 0);
  ParallelFor(&pool, 1, [&counter](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForTest, ResultsIndependentOfThreadCount) {
  // Summing i^2 must give the same result serial and parallel.
  auto run = [](size_t threads) {
    ThreadPool pool(threads);
    std::vector<uint64_t> parts(500);
    ParallelFor(&pool, parts.size(), [&parts](size_t i) {
      parts[i] = static_cast<uint64_t>(i) * static_cast<uint64_t>(i);
    });
    return std::accumulate(parts.begin(), parts.end(), uint64_t{0});
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ParallelForTest, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  // A ParallelFor body that itself calls ParallelFor on the same pool must
  // not block waiting for workers it is occupying: the inner loop detects
  // the worker thread and runs inline.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  ParallelFor(&pool, 8, [&](size_t) {
    ParallelFor(&pool, 8, [&](size_t) { ++counter; });
  });
  EXPECT_EQ(counter.load(), 64);
}

TEST(GlobalPoolTest, IsSingletonAndUsable) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  std::atomic<int> counter{0};
  ParallelFor(&a, 10, [&counter](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace treewm
