// Unit tests for min-max scaling.

#include "data/scaler.h"

#include <gtest/gtest.h>

namespace treewm::data {
namespace {

Dataset MakeRaw() {
  Dataset d(2);
  EXPECT_TRUE(d.AddRow(std::vector<float>{10.0f, -1.0f}, kPositive).ok());
  EXPECT_TRUE(d.AddRow(std::vector<float>{20.0f, 1.0f}, kNegative).ok());
  EXPECT_TRUE(d.AddRow(std::vector<float>{15.0f, 0.0f}, kPositive).ok());
  return d;
}

TEST(MinMaxScalerTest, MapsOntoUnitInterval) {
  Dataset d = MakeRaw();
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.FitTransform(&d).ok());
  EXPECT_TRUE(d.AllValuesWithin(0.0f, 1.0f));
  EXPECT_FLOAT_EQ(d.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(d.At(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(d.At(2, 0), 0.5f);
  EXPECT_FLOAT_EQ(d.At(2, 1), 0.5f);
}

TEST(MinMaxScalerTest, TransformAppliesTrainStatistics) {
  Dataset train = MakeRaw();
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit(train).ok());
  Dataset test(2);
  ASSERT_TRUE(test.AddRow(std::vector<float>{12.5f, 0.5f}, kPositive).ok());
  ASSERT_TRUE(scaler.Transform(&test).ok());
  EXPECT_FLOAT_EQ(test.At(0, 0), 0.25f);
  EXPECT_FLOAT_EQ(test.At(0, 1), 0.75f);
}

TEST(MinMaxScalerTest, OutOfRangeTestValuesAreClamped) {
  Dataset train = MakeRaw();
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit(train).ok());
  Dataset test(2);
  ASSERT_TRUE(test.AddRow(std::vector<float>{100.0f, -100.0f}, kPositive).ok());
  ASSERT_TRUE(scaler.Transform(&test).ok());
  EXPECT_FLOAT_EQ(test.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(test.At(0, 1), 0.0f);
}

TEST(MinMaxScalerTest, ConstantFeatureMapsToZero) {
  Dataset d(1);
  ASSERT_TRUE(d.AddRow(std::vector<float>{5.0f}, kPositive).ok());
  ASSERT_TRUE(d.AddRow(std::vector<float>{5.0f}, kNegative).ok());
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.FitTransform(&d).ok());
  EXPECT_FLOAT_EQ(d.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(d.At(1, 0), 0.0f);
}

TEST(MinMaxScalerTest, ErrorsOnMisuse) {
  MinMaxScaler scaler;
  Dataset empty(2);
  EXPECT_FALSE(scaler.Fit(empty).ok());
  Dataset d = MakeRaw();
  EXPECT_FALSE(scaler.Transform(&d).ok());  // not fitted
  ASSERT_TRUE(scaler.Fit(d).ok());
  Dataset wrong(3);
  ASSERT_TRUE(wrong.AddRow(std::vector<float>{1, 2, 3}, kPositive).ok());
  EXPECT_FALSE(scaler.Transform(&wrong).ok());  // shape mismatch
}

}  // namespace
}  // namespace treewm::data
